//! Chameleon (Kotra et al., MICRO 2018).
//!
//! Chameleon organizes NM and FM into congruence groups (one NM block slot
//! plus the FM blocks congruent to it) with PoM-style *competing counters*:
//! an FM-resident block that out-accesses the group's NM resident by the
//! threshold `K` (the paper's exploration: 14 for this memory system) swaps
//! in immediately. Chameleon's distinguishing feature is a reconfigurable
//! *cache mode* for NM space not needed as memory; per the Hybrid2
//! methodology ("we allow the same NM capacity our design uses as a DRAM
//! cache to be used in Chameleon's cache mode") we reserve the same 64 MB
//! slice Hybrid2 uses and run it as a sub-blocked (64 B granular,
//! over-fetch free) cache of FM blocks.
//!
//! Simplifications (DESIGN.md §3): the OS/ISA free-page machinery
//! (ISA-Alloc/ISA-Free) is not modelled — the cache-mode slice is fixed
//! rather than tracking free pages, which matches how the Hybrid2 paper
//! itself provisions the comparison. The slice is managed write-through
//! (reads install, writes go to the block's FM home and invalidate the
//! cached copy), so conflict evictions never generate FM write bursts.

use dram::{DramAccess, DramSystem, MemoryScheme, SchemeStats, Served, ServiceRequest, Ticket};
use sim_types::{AccessKind, MemReq, MemSide, TrafficClass};

use crate::flat::FlatRemap;

/// Configuration of Chameleon.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChameleonConfig {
    /// NM capacity in bytes.
    pub nm_bytes: u64,
    /// FM capacity in bytes.
    pub fm_bytes: u64,
    /// Block size in bytes (2 KB).
    pub block_bytes: u64,
    /// Competing-counter threshold (paper: K = 14).
    pub k: u16,
    /// NM bytes run in cache mode (matched to Hybrid2's DRAM cache).
    pub cache_bytes: u64,
    /// On-chip remap-cache size in bytes (matched to the XTA).
    pub remap_cache_bytes: u64,
}

impl ChameleonConfig {
    /// The paper's configuration over the given capacities.
    pub fn paper_default(
        nm_bytes: u64,
        fm_bytes: u64,
        cache_bytes: u64,
        remap_cache_bytes: u64,
    ) -> Self {
        ChameleonConfig {
            nm_bytes,
            fm_bytes,
            block_bytes: 2048,
            k: 14,
            cache_bytes,
            remap_cache_bytes,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct CacheEntry {
    block: u64,
    in_use: bool,
    valid_mask: u64,
}

/// The Chameleon controller: congruence-group swaps + cache-mode slice.
#[derive(Clone, Debug)]
pub struct Chameleon {
    cfg: ChameleonConfig,
    flat: FlatRemap,
    /// Per-block competing counters (reset group-wide on a swap).
    counters: Vec<u16>,
    groups: u64,
    cache_entries: Vec<CacheEntry>,
    cache_base: u64,
    stats: SchemeStats,
    /// Cache-mode hits (inspection/testing).
    pub cache_hits: u64,
}

impl Chameleon {
    /// Builds the controller.
    ///
    /// # Panics
    ///
    /// Panics if the cache-mode slice leaves no NM for the flat space.
    pub fn new(cfg: ChameleonConfig) -> Self {
        let nm_blocks_total = cfg.nm_bytes / cfg.block_bytes;
        let cache_blocks = cfg.cache_bytes / cfg.block_bytes;
        assert!(
            cache_blocks < nm_blocks_total,
            "cache-mode slice must leave NM blocks for the flat space"
        );
        let nm_flat = nm_blocks_total - cache_blocks;
        let fm_blocks = cfg.fm_bytes / cfg.block_bytes;
        let flat = FlatRemap::new(cfg.block_bytes, nm_flat, fm_blocks, cfg.remap_cache_bytes);
        let cache_base = flat.meta_end();
        let total = nm_flat + fm_blocks;
        Chameleon {
            counters: vec![0; total as usize],
            groups: nm_flat,
            cache_entries: vec![CacheEntry::default(); cache_blocks as usize],
            cache_base,
            flat,
            stats: SchemeStats::default(),
            cache_hits: 0,
            cfg,
        }
    }

    /// Shared remapping substrate (inspection/testing).
    pub fn flat(&self) -> &FlatRemap {
        &self.flat
    }

    fn group_of(&self, block: u64) -> u64 {
        block % self.groups
    }

    fn cache_index(&self, block: u64) -> usize {
        (block % self.cache_entries.len() as u64) as usize
    }

    /// Drops any cache-mode copy of `block` (called before the block
    /// migrates into NM so the flat copy stays authoritative). Copies are
    /// clean by construction (write-through), so nothing is written back.
    fn flush_cache_entry(&mut self, block: u64) {
        let idx = self.cache_index(block);
        let e = self.cache_entries[idx];
        if e.in_use && e.block == block {
            self.cache_entries[idx] = CacheEntry::default();
        }
    }
}

impl MemoryScheme for Chameleon {
    fn name(&self) -> &'static str {
        "CHA"
    }

    fn access(&mut self, req: &MemReq, dram: &mut DramSystem) -> Served {
        self.stats.requests += 1;
        let write = req.kind.is_write();
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let block = self.flat.block_of(req.addr);
        let offset = req.addr.raw() % self.cfg.block_bytes;
        let line = (offset / 64).min(63);
        let (loc, ready) = self.flat.locate(block, req.at, dram);

        if loc.is_nm() {
            self.stats.lookup_hits += 1;
            self.stats.served_from_nm += 1;
            let (side, addr) = self.flat.device_addr(loc, offset);
            let (kind, class) = if write {
                (AccessKind::Write, TrafficClass::Writeback)
            } else {
                (AccessKind::Read, TrafficClass::Demand)
            };
            let done = dram
                .submit(ServiceRequest::new(
                    side,
                    Ticket::core(usize::from(req.core)),
                    DramAccess {
                        addr,
                        bytes: req.bytes,
                        kind,
                        class,
                        at: ready,
                    },
                ))
                .ready;
            return Served::new(done, true);
        }

        // FM-resident: competing counters (PoM) first.
        self.stats.lookup_misses += 1;
        let group = self.group_of(block);
        let resident = self.flat.block_at(group);
        self.counters[block as usize] = self.counters[block as usize].saturating_add(1);
        let should_swap = self.counters[block as usize]
            >= self.counters[resident as usize].saturating_add(self.cfg.k);

        // Cache-mode probe (sub-blocked: only previously fetched 64 B lines
        // hit; no over-fetch). The slice is write-through: writes always go
        // to the FM home and invalidate any cached copy of the line.
        let idx = self.cache_index(block);
        let entry = self.cache_entries[idx];
        let cache_hit =
            !write && entry.in_use && entry.block == block && entry.valid_mask & (1 << line) != 0;

        let served = if cache_hit {
            self.cache_hits += 1;
            self.stats.served_from_nm += 1;
            let addr = self.cache_base + idx as u64 * self.cfg.block_bytes + offset;
            let done = dram
                .submit(ServiceRequest::new(
                    MemSide::Nm,
                    Ticket::core(usize::from(req.core)),
                    DramAccess {
                        addr,
                        bytes: req.bytes,
                        kind: AccessKind::Read,
                        class: TrafficClass::Demand,
                        at: ready,
                    },
                ))
                .ready;
            Served::new(done, true)
        } else if write {
            // Write-through to the FM home; drop a stale cached line.
            let (side, addr) = self.flat.device_addr(loc, offset);
            let done = dram
                .submit(ServiceRequest::new(
                    side,
                    Ticket::core(usize::from(req.core)),
                    DramAccess {
                        addr,
                        bytes: req.bytes,
                        kind: AccessKind::Write,
                        class: TrafficClass::Writeback,
                        at: ready,
                    },
                ))
                .ready;
            if entry.in_use && entry.block == block {
                self.cache_entries[idx].valid_mask &= !(1 << line);
            }
            Served::new(done, false)
        } else {
            // Read miss: serve from FM and install the clean line.
            let (side, addr) = self.flat.device_addr(loc, offset);
            let done = dram
                .submit(ServiceRequest::new(
                    side,
                    Ticket::core(usize::from(req.core)),
                    DramAccess {
                        addr,
                        bytes: req.bytes,
                        kind: AccessKind::Read,
                        class: TrafficClass::Demand,
                        at: ready,
                    },
                ))
                .ready;
            if self.cache_entries[idx].in_use && self.cache_entries[idx].block != block {
                self.cache_entries[idx] = CacheEntry::default();
            }
            let e = &mut self.cache_entries[idx];
            e.block = block;
            e.in_use = true;
            e.valid_mask |= 1 << line;
            dram.submit(ServiceRequest::new(
                MemSide::Nm,
                Ticket::CONTROLLER,
                DramAccess {
                    addr: self.cache_base + idx as u64 * self.cfg.block_bytes + offset,
                    bytes: req.bytes,
                    kind: AccessKind::Write,
                    class: TrafficClass::Fill,
                    at: done,
                },
            ));
            Served::new(done, false)
        };

        if should_swap {
            // Drop any cache copy so the migrated data is authoritative.
            self.flush_cache_entry(block);
            self.flat.swap_into_nm(block, group, 0, served.done, dram);
            self.stats.moved_into_nm += 1;
            self.stats.moved_out_of_nm += 1;
            // Reset the whole group's counters (PoM).
            let mut b = group;
            let total = self.counters.len() as u64;
            while b < total {
                self.counters[b as usize] = 0;
                b += self.groups;
            }
        }
        self.stats.metadata_reads = self.flat.table_reads;
        served
    }

    fn flat_capacity_bytes(&self) -> u64 {
        self.flat.flat_capacity_bytes()
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_types::{Cycle, PAddr};

    fn chameleon() -> (Chameleon, DramSystem) {
        let cfg = ChameleonConfig {
            nm_bytes: 64 * 1024,
            fm_bytes: 1024 * 1024,
            block_bytes: 2048,
            k: 4,
            cache_bytes: 16 * 1024,
            remap_cache_bytes: 4096,
        };
        (Chameleon::new(cfg), DramSystem::paper_default())
    }

    #[test]
    fn nm_resident_blocks_serve_from_nm() {
        let (mut c, mut dram) = chameleon();
        let s = c.access(&MemReq::read(PAddr::new(0), 64, Cycle::ZERO), &mut dram);
        assert!(s.from_nm);
    }

    #[test]
    fn competing_counters_trigger_group_swap() {
        let (mut c, mut dram) = chameleon();
        let fm = PAddr::new(512 * 1024);
        let block = c.flat().block_of(fm);
        // K=4: the 4th access (counter 4 >= 0 + 4) swaps.
        let mut t = Cycle::ZERO;
        for _ in 0..4 {
            let s = c.access(&MemReq::read(fm, 64, t), &mut dram);
            t = s.done;
        }
        assert!(c.flat().peek(block).is_nm(), "block must swap in after K");
        assert_eq!(c.stats().moved_into_nm, 1);
        c.flat().check_invariants().unwrap();
        let s = c.access(&MemReq::read(fm, 64, t), &mut dram);
        assert!(s.from_nm);
    }

    #[test]
    fn counters_reset_after_swap() {
        let (mut c, mut dram) = chameleon();
        let fm = PAddr::new(512 * 1024);
        let block = c.flat().block_of(fm);
        for i in 0..4 {
            c.access(&MemReq::read(fm, 64, Cycle::new(i * 100)), &mut dram);
        }
        assert_eq!(c.counters[block as usize], 0, "group counters reset");
    }

    #[test]
    fn cache_mode_hits_after_install() {
        let (mut c, mut dram) = chameleon();
        let fm = PAddr::new(512 * 1024);
        let s1 = c.access(&MemReq::read(fm, 64, Cycle::ZERO), &mut dram);
        assert!(!s1.from_nm, "first access installs");
        let s2 = c.access(&MemReq::read(fm, 64, s1.done), &mut dram);
        assert!(s2.from_nm, "second access hits the cache slice");
        assert_eq!(c.cache_hits, 1);
    }

    #[test]
    fn cache_mode_is_subblocked_no_overfetch() {
        let (mut c, mut dram) = chameleon();
        let fm = PAddr::new(512 * 1024);
        c.access(&MemReq::read(fm, 64, Cycle::ZERO), &mut dram);
        // Different 64 B line of the same block: still a cache miss.
        let s = c.access(
            &MemReq::read(PAddr::new(512 * 1024 + 128), 64, Cycle::ZERO),
            &mut dram,
        );
        assert!(!s.from_nm);
        // Only 64 B fills went into NM (no 2 KB over-fetch).
        let fill = dram.device(MemSide::Nm).stats().bytes(TrafficClass::Fill);
        assert_eq!(fill, 128);
    }

    #[test]
    fn writes_go_through_and_invalidate_the_cached_line() {
        let (mut c, mut dram) = chameleon();
        let a = PAddr::new(512 * 1024);
        // Install the line, then write it: the write must reach FM and the
        // cached copy must be dropped (no stale read hit).
        c.access(&MemReq::read(a, 64, Cycle::ZERO), &mut dram);
        let fm_writes_before = dram.device(MemSide::Fm).stats().writes;
        let s = c.access(&MemReq::write(a, 64, Cycle::new(100)), &mut dram);
        assert!(!s.from_nm, "writes go through to FM");
        assert_eq!(
            dram.device(MemSide::Fm).stats().writes,
            fm_writes_before + 1
        );
        let s = c.access(&MemReq::read(a, 64, Cycle::new(200)), &mut dram);
        assert!(!s.from_nm, "the stale cached line was invalidated");
        // And no dirty writebacks ever originate from the slice.
        assert_eq!(c.stats().dirty_writebacks, 0);
    }

    #[test]
    fn capacity_excludes_cache_slice() {
        let (c, _) = chameleon();
        // 64 KB NM - 16 KB cache slice = 48 KB flat NM + 1 MB FM.
        assert_eq!(c.flat_capacity_bytes(), 48 * 1024 + 1024 * 1024);
        assert_eq!(c.name(), "CHA");
    }

    #[test]
    fn random_workout_keeps_bijection() {
        let (mut c, mut dram) = chameleon();
        let cap = c.flat_capacity_bytes();
        let mut rng = sim_types::rng::SplitMix64::new(8);
        let mut t = Cycle::ZERO;
        for _ in 0..3000 {
            let a = PAddr::new(rng.gen_range(cap / 64) * 64);
            let req = if rng.chance(1, 4) {
                MemReq::write(a, 64, t)
            } else {
                MemReq::read(a, 64, t)
            };
            let s = c.access(&req, &mut dram);
            t = s.done.max(t) + 3;
        }
        c.flat().check_invariants().unwrap();
    }
}
