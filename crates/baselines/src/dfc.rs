//! The Decoupled Fused Cache (Vasilakis et al., TACO 2019).
//!
//! DFC keeps DRAM-cache tags in DRAM but *fuses* presence/way information
//! into the on-chip LLC tag array, so most lookups need no DRAM tag probe.
//! We model the fused information as an on-chip fused-tag cache keyed by
//! DRAM-cache line address: a fused hit answers the lookup instantly, a
//! fused miss pays a 64 B tag read in NM before the data access and then
//! installs the entry (the paper found DFC's best configuration at 1 KB
//! cache lines, which is what [`DfcConfig::paper_best`] uses).

use dram::{DramAccess, DramSystem, MemoryScheme, SchemeStats, Served, ServiceRequest, Ticket};
use mem_cache::{CacheConfig, SetAssocCache};
use sim_types::{AccessKind, MemReq, MemSide, TrafficClass};

/// Configuration of the DFC model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DfcConfig {
    /// NM capacity in bytes (cache data).
    pub nm_bytes: u64,
    /// FM capacity in bytes (main memory).
    pub fm_bytes: u64,
    /// DRAM-cache line size in bytes (paper best: 1 KB).
    pub line_bytes: u64,
    /// Associativity of the DRAM cache.
    pub assoc: u32,
    /// On-chip fused-tag capacity in bytes (scales with the LLC tag array).
    pub fused_bytes: u64,
}

impl DfcConfig {
    /// The paper's best configuration (1 KB lines) over the given
    /// capacities, with the fused store scaled as `llc_bytes / 32`.
    pub fn paper_best(nm_bytes: u64, fm_bytes: u64, llc_bytes: u64) -> Self {
        DfcConfig {
            nm_bytes,
            fm_bytes,
            line_bytes: 1024,
            assoc: 16,
            fused_bytes: (llc_bytes / 32).max(4 * 64),
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
}

/// The fused-tag DRAM cache.
#[derive(Clone, Debug)]
pub struct Dfc {
    cfg: DfcConfig,
    lines: Vec<Line>,
    sets: u64,
    assoc: usize,
    clock: u64,
    fused: SetAssocCache,
    /// DRAM tag probes that the fused information saved.
    pub fused_hits: u64,
    /// DRAM tag probes actually paid.
    pub tag_probes: u64,
    stats: SchemeStats,
}

impl Dfc {
    /// Builds the cache.
    ///
    /// # Panics
    ///
    /// Panics on structurally invalid configurations.
    pub fn new(cfg: DfcConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two() && cfg.line_bytes >= 64);
        let total = cfg.nm_bytes / cfg.line_bytes;
        assert!(total.is_multiple_of(u64::from(cfg.assoc)));
        let sets = total / u64::from(cfg.assoc);
        assert!(sets.is_power_of_two());
        let fused_sets = (cfg.fused_bytes / (4 * 64)).next_power_of_two().max(1);
        let fused = SetAssocCache::new(
            CacheConfig::new(fused_sets * 4 * 64, 4, 64).expect("fused shape valid"),
        );
        Dfc {
            lines: vec![Line::default(); total as usize],
            sets,
            assoc: cfg.assoc as usize,
            clock: 0,
            fused,
            fused_hits: 0,
            tag_probes: 0,
            stats: SchemeStats::default(),
            cfg,
        }
    }

    fn set_of(&self, line_addr: u64) -> u64 {
        (line_addr / self.cfg.line_bytes) & (self.sets - 1)
    }

    fn tag_of(&self, line_addr: u64) -> u64 {
        (line_addr / self.cfg.line_bytes) >> self.sets.trailing_zeros()
    }

    fn nm_addr(&self, set: u64, way: usize, offset: u64) -> u64 {
        (set * self.assoc as u64 + way as u64) * self.cfg.line_bytes + offset
    }

    /// Device address of the in-DRAM tag block of `set` (tags are stored
    /// alongside the data rows, past the data region in this model).
    fn tag_addr(&self, set: u64) -> u64 {
        self.cfg.nm_bytes + set * 64
    }
}

impl MemoryScheme for Dfc {
    fn name(&self) -> &'static str {
        "DFC"
    }

    fn access(&mut self, req: &MemReq, dram: &mut DramSystem) -> Served {
        self.clock += 1;
        self.stats.requests += 1;
        let write = req.kind.is_write();
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let line_base = req.addr.raw() & !(self.cfg.line_bytes - 1);
        let in_line = req.addr.raw() - line_base;
        let set = self.set_of(line_base);
        let tag = self.tag_of(line_base);

        // Fused-tag lookup: on-chip, free; miss pays a DRAM tag probe.
        let fused_key = line_base / self.cfg.line_bytes * 64;
        let lookup_done = if self.fused.access(fused_key, false).hit {
            self.fused_hits += 1;
            req.at
        } else {
            self.tag_probes += 1;
            self.stats.metadata_reads += 1;
            dram.submit(ServiceRequest::new(
                MemSide::Nm,
                Ticket::CONTROLLER,
                DramAccess {
                    addr: self.tag_addr(set),
                    bytes: 64,
                    kind: AccessKind::Read,
                    class: TrafficClass::Metadata,
                    at: req.at,
                },
            ))
            .ready
        };

        let range = (set * self.assoc as u64) as usize..((set + 1) * self.assoc as u64) as usize;
        for w in 0..self.assoc {
            let idx = range.start + w;
            let l = &mut self.lines[idx];
            if l.valid && l.tag == tag {
                l.stamp = self.clock;
                l.dirty |= write;
                self.stats.lookup_hits += 1;
                self.stats.served_from_nm += 1;
                let (kind, class) = if write {
                    (AccessKind::Write, TrafficClass::Writeback)
                } else {
                    (AccessKind::Read, TrafficClass::Demand)
                };
                let done = dram
                    .submit(ServiceRequest::new(
                        MemSide::Nm,
                        Ticket::core(usize::from(req.core)),
                        DramAccess {
                            addr: self.nm_addr(set, w, in_line),
                            bytes: req.bytes,
                            kind,
                            class,
                            at: lookup_done,
                        },
                    ))
                    .ready;
                return Served::new(done, true);
            }
        }

        // Miss: critical access from FM, then line fill + possible eviction.
        self.stats.lookup_misses += 1;
        let class = if write {
            TrafficClass::Fill
        } else {
            TrafficClass::Demand
        };
        let critical = dram
            .submit(ServiceRequest::new(
                MemSide::Fm,
                Ticket::core(usize::from(req.core)),
                DramAccess {
                    addr: req.addr.raw() % self.cfg.fm_bytes,
                    bytes: req.bytes,
                    kind: req.kind,
                    class,
                    at: lookup_done,
                },
            ))
            .ready;

        let mut victim = range.start;
        let mut lru = u64::MAX;
        for idx in range.clone() {
            if !self.lines[idx].valid {
                victim = idx;
                break;
            }
            if self.lines[idx].stamp < lru {
                lru = self.lines[idx].stamp;
                victim = idx;
            }
        }
        let way = victim - range.start;
        let chunks = (self.cfg.line_bytes / 64) as u32;
        let old = self.lines[victim];
        if old.valid {
            // Invalidate the old fused entry and write back if dirty.
            let old_base = ((old.tag << self.sets.trailing_zeros()) | set) * self.cfg.line_bytes;
            self.fused.invalidate(old_base / self.cfg.line_bytes * 64);
            if old.dirty {
                dram.submit(
                    ServiceRequest::new(
                        MemSide::Nm,
                        Ticket::CONTROLLER,
                        DramAccess {
                            addr: self.nm_addr(set, way, 0),
                            bytes: 64,
                            kind: AccessKind::Read,
                            class: TrafficClass::Writeback,
                            at: req.at,
                        },
                    )
                    .with_count(chunks),
                );
                dram.submit(
                    ServiceRequest::new(
                        MemSide::Fm,
                        Ticket::CONTROLLER,
                        DramAccess {
                            addr: old_base % self.cfg.fm_bytes,
                            bytes: 64,
                            kind: AccessKind::Write,
                            class: TrafficClass::Writeback,
                            at: req.at,
                        },
                    )
                    .with_count(chunks),
                );
                self.stats.dirty_writebacks += 1;
            }
        }

        dram.submit(
            ServiceRequest::new(
                MemSide::Fm,
                Ticket::CONTROLLER,
                DramAccess {
                    addr: line_base % self.cfg.fm_bytes,
                    bytes: 64,
                    kind: AccessKind::Read,
                    class: TrafficClass::Fill,
                    at: critical,
                },
            )
            .with_count(chunks),
        );
        dram.submit(
            ServiceRequest::new(
                MemSide::Nm,
                Ticket::CONTROLLER,
                DramAccess {
                    addr: self.nm_addr(set, way, 0),
                    bytes: 64,
                    kind: AccessKind::Write,
                    class: TrafficClass::Fill,
                    at: critical,
                },
            )
            .with_count(chunks),
        );
        // The in-DRAM tag row is updated with the new mapping.
        self.stats.metadata_writes += 1;
        dram.submit(ServiceRequest::new(
            MemSide::Nm,
            Ticket::CONTROLLER,
            DramAccess {
                addr: self.tag_addr(set),
                bytes: 64,
                kind: AccessKind::Write,
                class: TrafficClass::Metadata,
                at: req.at,
            },
        ));
        self.stats.moved_into_nm += 1;
        self.lines[victim] = Line {
            tag,
            valid: true,
            dirty: write,
            stamp: self.clock,
        };
        Served::new(if write { req.at } else { critical }, false)
    }

    fn flat_capacity_bytes(&self) -> u64 {
        self.cfg.fm_bytes
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_types::{Cycle, PAddr};

    fn dfc() -> (Dfc, DramSystem) {
        (
            Dfc::new(DfcConfig {
                nm_bytes: 64 * 1024,
                fm_bytes: 1024 * 1024,
                line_bytes: 1024,
                assoc: 4,
                fused_bytes: 2048,
            }),
            DramSystem::paper_default(),
        )
    }

    #[test]
    fn miss_then_hit_with_fused_info() {
        let (mut d, mut dram) = dfc();
        let a = PAddr::new(0x800);
        let s1 = d.access(&MemReq::read(a, 64, Cycle::ZERO), &mut dram);
        assert!(!s1.from_nm);
        let s2 = d.access(&MemReq::read(a, 64, s1.done), &mut dram);
        assert!(s2.from_nm);
        assert!(d.fused_hits >= 1, "second access should reuse fused info");
    }

    #[test]
    fn fused_miss_pays_tag_probe_latency() {
        let (mut d, mut dram) = dfc();
        // Fill, then thrash the fused store with many distinct lines so the
        // original fused entry is evicted while the DC line stays resident.
        let a = PAddr::new(0);
        d.access(&MemReq::read(a, 64, Cycle::ZERO), &mut dram);
        for i in 1..200u64 {
            d.access(
                &MemReq::read(PAddr::new(i * 1024), 64, Cycle::ZERO),
                &mut dram,
            );
        }
        let before = d.tag_probes;
        d.access(&MemReq::read(a, 64, Cycle::ZERO), &mut dram);
        assert!(d.tag_probes > before, "lost fused info forces a tag probe");
    }

    #[test]
    fn one_kb_line_fills_charge_fill_traffic() {
        let (mut d, mut dram) = dfc();
        d.access(&MemReq::read(PAddr::new(0), 64, Cycle::ZERO), &mut dram);
        assert_eq!(
            dram.device(MemSide::Fm).stats().bytes(TrafficClass::Fill),
            1024
        );
        assert_eq!(
            dram.device(MemSide::Nm).stats().bytes(TrafficClass::Fill),
            1024
        );
    }

    #[test]
    fn tag_metadata_written_on_fill() {
        let (mut d, mut dram) = dfc();
        d.access(&MemReq::read(PAddr::new(0), 64, Cycle::ZERO), &mut dram);
        assert!(d.stats().metadata_writes >= 1);
        assert!(
            dram.device(MemSide::Nm)
                .stats()
                .bytes(TrafficClass::Metadata)
                > 0
        );
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let (mut d, mut dram) = dfc();
        // 64KB/1KB/4-way = 16 sets; same-set stride = 16 KiB.
        d.access(&MemReq::write(PAddr::new(0), 64, Cycle::ZERO), &mut dram);
        for i in 1..=4u64 {
            d.access(
                &MemReq::read(PAddr::new(i * 16 * 1024), 64, Cycle::ZERO),
                &mut dram,
            );
        }
        assert_eq!(d.stats().dirty_writebacks, 1);
    }

    #[test]
    fn capacity_and_name() {
        let (d, _) = dfc();
        assert_eq!(d.flat_capacity_bytes(), 1024 * 1024);
        assert_eq!(d.name(), "DFC");
    }
}
