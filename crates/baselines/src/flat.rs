//! All-to-all block remapping shared by the migration baselines.
//!
//! MemPod, Chameleon and LGM all move 2 KB blocks between NM and FM and all
//! need the same two pieces of machinery:
//!
//! * a **remap table** (block → current location) and **inverted table**
//!   (NM slot → block), stored in NM, with an on-chip **remap cache** whose
//!   capacity the paper fixes to the XTA's size for fairness, and
//! * a **swap** primitive that exchanges an FM-resident block with an
//!   NM-resident victim, charging both directions as migration traffic.
//!
//! Hybrid2's own remapping is different enough (free-FM stack, cache pool)
//! that it lives in `hybrid2-core`; this module serves only the baselines.

use dram::{DramAccess, DramSystem, ServiceRequest, Ticket};
use mem_cache::{CacheConfig, SetAssocCache};
use sim_types::{AccessKind, Cycle, MemSide, PAddr, TrafficClass};

/// Where a flat block currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockLoc {
    /// NM block slot index.
    Nm(u64),
    /// FM block slot index.
    Fm(u64),
}

impl BlockLoc {
    /// True when the block is in near memory.
    pub fn is_nm(self) -> bool {
        matches!(self, BlockLoc::Nm(_))
    }
}

/// Shared remapping substrate for block-migration schemes.
#[derive(Clone, Debug)]
pub struct FlatRemap {
    block_bytes: u64,
    nm_blocks: u64,
    fm_blocks: u64,
    remap: Vec<BlockLoc>,
    inverted: Vec<u64>,
    remap_cache: SetAssocCache,
    /// On-chip remap-cache hit latency in cycles.
    cache_latency: u64,
    /// Device byte address where the in-NM remap table begins (after the
    /// data blocks).
    meta_base: u64,
    /// Swaps performed (each = one block in + one block out).
    pub swaps: u64,
    /// Remap lookups that had to read the in-NM table.
    pub table_reads: u64,
}

impl FlatRemap {
    /// Builds an identity-mapped flat space of `nm_blocks + fm_blocks`
    /// blocks of `block_bytes` each, with an on-chip remap cache of
    /// `remap_cache_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the remap cache shape is invalid.
    pub fn new(block_bytes: u64, nm_blocks: u64, fm_blocks: u64, remap_cache_bytes: u64) -> Self {
        assert!(block_bytes.is_power_of_two() && block_bytes >= 64);
        assert!(nm_blocks > 0 && fm_blocks > 0);
        let total = nm_blocks + fm_blocks;
        let remap = (0..total)
            .map(|b| {
                if b < nm_blocks {
                    BlockLoc::Nm(b)
                } else {
                    BlockLoc::Fm(b - nm_blocks)
                }
            })
            .collect();
        let inverted = (0..nm_blocks).collect();
        // Remap-cache entries are 8 B; model it as a 4-way cache of 64 B
        // lines over the table's address space (8 entries per line).
        let cache_bytes = remap_cache_bytes.max(4 * 64);
        let sets = (cache_bytes / (4 * 64)).next_power_of_two() / 2;
        let cfg = CacheConfig::new(sets.max(1) * 4 * 64, 4, 64)
            .expect("remap cache shape is valid by construction");
        FlatRemap {
            block_bytes,
            nm_blocks,
            fm_blocks,
            remap,
            inverted,
            remap_cache: SetAssocCache::new(cfg),
            cache_latency: 2,
            meta_base: nm_blocks * block_bytes,
            swaps: 0,
            table_reads: 0,
        }
    }

    /// Total flat capacity in bytes (NM + FM — migration keeps NM visible).
    pub fn flat_capacity_bytes(&self) -> u64 {
        (self.nm_blocks + self.fm_blocks) * self.block_bytes
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Number of NM block slots.
    pub fn nm_blocks(&self) -> u64 {
        self.nm_blocks
    }

    /// The flat block index containing `addr`.
    pub fn block_of(&self, addr: PAddr) -> u64 {
        addr.raw() / self.block_bytes
    }

    /// First NM device byte address past the in-NM remap table, block
    /// aligned — where a scheme may place additional NM structures
    /// (Chameleon's cache-mode region).
    pub fn meta_end(&self) -> u64 {
        let end = self.meta_base + (self.nm_blocks + self.fm_blocks) * 8;
        end.next_multiple_of(self.block_bytes)
    }

    /// Current location of `block` *without* modelling lookup cost
    /// (policy bookkeeping).
    pub fn peek(&self, block: u64) -> BlockLoc {
        self.remap[block as usize]
    }

    /// The flat block stored in NM slot `slot`.
    pub fn block_at(&self, slot: u64) -> u64 {
        self.inverted[slot as usize]
    }

    /// Looks up `block`'s location, charging the remap-cache latency on a
    /// hit or an NM table read on a miss. Returns the location and the
    /// cycle at which it is known.
    pub fn locate(&mut self, block: u64, at: Cycle, dram: &mut DramSystem) -> (BlockLoc, Cycle) {
        let entry_addr = block * 8;
        let hit = self.remap_cache.access(entry_addr, false).hit;
        let ready = if hit {
            at + self.cache_latency
        } else {
            self.table_reads += 1;
            dram.submit(ServiceRequest::new(
                MemSide::Nm,
                Ticket::CONTROLLER,
                DramAccess {
                    addr: self.meta_base + (entry_addr & !63),
                    bytes: 64,
                    kind: AccessKind::Read,
                    class: TrafficClass::Metadata,
                    at: at + self.cache_latency,
                },
            ))
            .ready
        };
        (self.remap[block as usize], ready)
    }

    /// Device byte address of a block location plus `offset`.
    pub fn device_addr(&self, loc: BlockLoc, offset: u64) -> (MemSide, u64) {
        debug_assert!(offset < self.block_bytes);
        match loc {
            BlockLoc::Nm(slot) => (MemSide::Nm, slot * self.block_bytes + offset),
            BlockLoc::Fm(slot) => (MemSide::Fm, slot * self.block_bytes + offset),
        }
    }

    /// Swaps FM-resident `fm_block` with the block occupying NM slot
    /// `victim_slot`, charging 2 × block reads + 2 × block writes of
    /// migration traffic plus a remap-table update, unless `skip_lines`
    /// marks 64-byte lines of `fm_block` that need not be transferred
    /// (LGM's LLC-present optimization).
    ///
    /// # Panics
    ///
    /// Panics if `fm_block` is not FM-resident.
    pub fn swap_into_nm(
        &mut self,
        fm_block: u64,
        victim_slot: u64,
        skip_lines: u64,
        at: Cycle,
        dram: &mut DramSystem,
    ) {
        let BlockLoc::Fm(fm_slot) = self.remap[fm_block as usize] else {
            panic!("swap_into_nm called on an NM-resident block");
        };
        let victim_block = self.inverted[victim_slot as usize];
        let lines = (self.block_bytes / 64) as u32;
        let moved_in = lines - skip_lines.count_ones().min(lines);

        // Inbound: FM -> NM (only the lines not skipped).
        for i in 0..lines {
            if skip_lines & (1 << i) != 0 {
                continue;
            }
            let off = u64::from(i) * 64;
            dram.submit(ServiceRequest::new(
                MemSide::Fm,
                Ticket::CONTROLLER,
                DramAccess {
                    addr: fm_slot * self.block_bytes + off,
                    bytes: 64,
                    kind: AccessKind::Read,
                    class: TrafficClass::Migration,
                    at,
                },
            ));
            dram.submit(ServiceRequest::new(
                MemSide::Nm,
                Ticket::CONTROLLER,
                DramAccess {
                    addr: victim_slot * self.block_bytes + off,
                    bytes: 64,
                    kind: AccessKind::Write,
                    class: TrafficClass::Migration,
                    at,
                },
            ));
        }
        let _ = moved_in;
        // Outbound: NM victim -> the vacated FM slot (full block; swaps move
        // whole blocks out, the paper's "double the overheads of copying").
        dram.submit(
            ServiceRequest::new(
                MemSide::Nm,
                Ticket::CONTROLLER,
                DramAccess {
                    addr: victim_slot * self.block_bytes,
                    bytes: 64,
                    kind: AccessKind::Read,
                    class: TrafficClass::Migration,
                    at,
                },
            )
            .with_count(lines),
        );
        dram.submit(
            ServiceRequest::new(
                MemSide::Fm,
                Ticket::CONTROLLER,
                DramAccess {
                    addr: fm_slot * self.block_bytes,
                    bytes: 64,
                    kind: AccessKind::Write,
                    class: TrafficClass::Migration,
                    at,
                },
            )
            .with_count(lines),
        );

        self.remap[fm_block as usize] = BlockLoc::Nm(victim_slot);
        self.remap[victim_block as usize] = BlockLoc::Fm(fm_slot);
        self.inverted[victim_slot as usize] = fm_block;
        self.swaps += 1;

        // Remap-table updates for both blocks.
        dram.submit(ServiceRequest::new(
            MemSide::Nm,
            Ticket::CONTROLLER,
            DramAccess {
                addr: self.meta_base + ((fm_block * 8) & !63),
                bytes: 64,
                kind: AccessKind::Write,
                class: TrafficClass::Metadata,
                at,
            },
        ));
        dram.submit(ServiceRequest::new(
            MemSide::Nm,
            Ticket::CONTROLLER,
            DramAccess {
                addr: self.meta_base + ((victim_block * 8) & !63),
                bytes: 64,
                kind: AccessKind::Write,
                class: TrafficClass::Metadata,
                at,
            },
        ));
    }

    /// Remap bijection check for tests.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut nm_seen = vec![false; self.nm_blocks as usize];
        let mut fm_seen = vec![false; self.fm_blocks as usize];
        for (b, loc) in self.remap.iter().enumerate() {
            match *loc {
                BlockLoc::Nm(s) => {
                    if nm_seen[s as usize] {
                        return Err(format!("NM slot {s} doubly mapped"));
                    }
                    nm_seen[s as usize] = true;
                    if self.inverted[s as usize] != b as u64 {
                        return Err(format!("inverted[{s}] != {b}"));
                    }
                }
                BlockLoc::Fm(s) => {
                    if fm_seen[s as usize] {
                        return Err(format!("FM slot {s} doubly mapped"));
                    }
                    fm_seen[s as usize] = true;
                }
            }
        }
        if !nm_seen.iter().all(|&s| s) {
            return Err("an NM slot holds no block".into());
        }
        if !fm_seen.iter().all(|&s| s) {
            return Err("an FM slot holds no block".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn remap() -> (FlatRemap, DramSystem) {
        (
            FlatRemap::new(2048, 8, 64, 4096),
            DramSystem::paper_default(),
        )
    }

    #[test]
    fn identity_boot_state() {
        let (r, _) = remap();
        assert_eq!(r.peek(0), BlockLoc::Nm(0));
        assert_eq!(r.peek(8), BlockLoc::Fm(0));
        assert_eq!(r.flat_capacity_bytes(), (8 + 64) * 2048);
        r.check_invariants().unwrap();
    }

    #[test]
    fn swap_exchanges_homes() {
        let (mut r, mut dram) = remap();
        r.swap_into_nm(10, 3, 0, Cycle::ZERO, &mut dram);
        assert_eq!(r.peek(10), BlockLoc::Nm(3));
        assert_eq!(r.peek(3), BlockLoc::Fm(2)); // block 3 went to FM slot of block 10
        assert_eq!(r.block_at(3), 10);
        assert_eq!(r.swaps, 1);
        r.check_invariants().unwrap();
    }

    #[test]
    fn swap_charges_both_directions() {
        let (mut r, mut dram) = remap();
        r.swap_into_nm(10, 0, 0, Cycle::ZERO, &mut dram);
        let nm = dram
            .device(MemSide::Nm)
            .stats()
            .bytes(TrafficClass::Migration);
        let fm = dram
            .device(MemSide::Fm)
            .stats()
            .bytes(TrafficClass::Migration);
        assert_eq!(nm, 2 * 2048, "block written into NM and victim read out");
        assert_eq!(fm, 2 * 2048, "block read from FM and victim written back");
    }

    #[test]
    fn skip_lines_reduce_inbound_traffic() {
        let (mut r, mut dram) = remap();
        // Skip 16 of the 32 inbound lines.
        r.swap_into_nm(10, 0, 0x0000_FFFF, Cycle::ZERO, &mut dram);
        let fm_reads = dram.device(MemSide::Fm).stats().reads;
        assert_eq!(fm_reads, 16, "only unskipped lines read from FM");
    }

    #[test]
    fn locate_uses_remap_cache() {
        let (mut r, mut dram) = remap();
        let (loc1, t1) = r.locate(5, Cycle::ZERO, &mut dram);
        assert_eq!(loc1, BlockLoc::Nm(5));
        assert_eq!(r.table_reads, 1, "cold lookup reads the in-NM table");
        let (_, t2) = r.locate(5, Cycle::ZERO, &mut dram);
        assert_eq!(r.table_reads, 1, "second lookup hits the remap cache");
        assert!(t2 - Cycle::ZERO < t1 - Cycle::ZERO);
    }

    #[test]
    fn device_addresses_scale_by_block() {
        let (r, _) = remap();
        assert_eq!(
            r.device_addr(BlockLoc::Nm(2), 100),
            (MemSide::Nm, 2 * 2048 + 100)
        );
        assert_eq!(r.device_addr(BlockLoc::Fm(3), 0), (MemSide::Fm, 3 * 2048));
    }

    #[test]
    fn many_swaps_keep_bijection() {
        let (mut r, mut dram) = remap();
        let mut rng = sim_types::rng::SplitMix64::new(5);
        for _ in 0..200 {
            // Pick any FM-resident block and any NM slot.
            let block = loop {
                let b = rng.gen_range(72);
                if !r.peek(b).is_nm() {
                    break b;
                }
            };
            let slot = rng.gen_range(8);
            r.swap_into_nm(block, slot, 0, Cycle::ZERO, &mut dram);
        }
        r.check_invariants().unwrap();
        assert_eq!(r.swaps, 200);
    }

    #[test]
    #[should_panic(expected = "NM-resident")]
    fn swapping_nm_block_panics() {
        let (mut r, mut dram) = remap();
        r.swap_into_nm(0, 0, 0, Cycle::ZERO, &mut dram);
    }
}
