//! The normalization baseline: a system with no 3D-stacked DRAM at all.
//!
//! Every figure in the paper's evaluation is normalized to this system
//! ("All our results are normalized to a Baseline system without 3D-stacked
//! DRAM"). All requests go straight to the DDR4 far memory.

use dram::{DramAccess, DramSystem, MemoryScheme, SchemeStats, Served, ServiceRequest, Ticket};
use sim_types::{MemReq, MemSide, TrafficClass};

/// The no-NM baseline.
#[derive(Clone, Debug, Default)]
pub struct FmOnly {
    fm_bytes: u64,
    stats: SchemeStats,
}

impl FmOnly {
    /// Creates the baseline over `fm_bytes` of far memory.
    pub fn new(fm_bytes: u64) -> Self {
        FmOnly {
            fm_bytes,
            stats: SchemeStats::default(),
        }
    }
}

impl MemoryScheme for FmOnly {
    fn name(&self) -> &'static str {
        "BASELINE"
    }

    fn access(&mut self, req: &MemReq, dram: &mut DramSystem) -> Served {
        self.stats.requests += 1;
        let class = if req.kind.is_write() {
            self.stats.writes += 1;
            TrafficClass::Writeback
        } else {
            self.stats.reads += 1;
            TrafficClass::Demand
        };
        let done = dram
            .submit(ServiceRequest::new(
                MemSide::Fm,
                Ticket::core(usize::from(req.core)),
                DramAccess {
                    addr: req.addr.raw() % self.fm_bytes.max(1),
                    bytes: req.bytes,
                    kind: req.kind,
                    class,
                    at: req.at,
                },
            ))
            .ready;
        Served::new(done, false)
    }

    fn flat_capacity_bytes(&self) -> u64 {
        self.fm_bytes
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_types::{Cycle, PAddr};

    #[test]
    fn everything_goes_to_fm() {
        let mut s = FmOnly::new(1 << 30);
        let mut dram = DramSystem::paper_default();
        let served = s.access(
            &MemReq::read(PAddr::new(0x1000), 64, Cycle::ZERO),
            &mut dram,
        );
        assert!(!served.from_nm);
        assert!(served.done > Cycle::ZERO);
        s.access(
            &MemReq::write(PAddr::new(0x2000), 64, served.done),
            &mut dram,
        );
        assert_eq!(dram.device(MemSide::Fm).stats().accesses, 2);
        assert_eq!(dram.device(MemSide::Nm).stats().accesses, 0);
        assert_eq!(s.stats().requests, 2);
        assert_eq!(s.stats().served_from_nm, 0);
    }

    #[test]
    fn capacity_is_fm_only() {
        let s = FmOnly::new(16 << 30);
        assert_eq!(s.flat_capacity_bytes(), 16 << 30);
        assert_eq!(s.name(), "BASELINE");
    }
}
