//! The IDEAL DRAM cache of the paper's motivation study (§2.3, Figures 1
//! and 2).
//!
//! A set-associative, write-back DRAM cache over the whole NM with **zero**
//! tag-lookup cost — an upper bound that isolates the effect of cache-line
//! size. It also tracks, per resident line, which 64-byte chunks were ever
//! touched, which is exactly the measurement behind Figure 1 ("percentage
//! of data brought in DRAM cache, but remained unused").

use dram::{DramAccess, DramSystem, MemoryScheme, SchemeStats, Served, ServiceRequest, Ticket};
use sim_types::{AccessKind, MemReq, MemSide, TrafficClass};

/// Configuration of the ideal cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IdealCacheConfig {
    /// NM capacity used as cache data, in bytes.
    pub nm_bytes: u64,
    /// FM (main memory) capacity in bytes.
    pub fm_bytes: u64,
    /// Cache-line size in bytes (the Figure 1/2 sweep: 64 B – 4 KB).
    pub line_bytes: u64,
    /// Associativity (16 in the motivation study's realistic points).
    pub assoc: u32,
}

impl IdealCacheConfig {
    /// Validates shape constraints.
    ///
    /// # Panics
    ///
    /// Panics on a structurally impossible configuration.
    pub fn assert_valid(&self) {
        assert!(self.line_bytes.is_power_of_two() && self.line_bytes >= 64);
        assert!(self.line_bytes <= 4096, "paper sweeps at most 4 KB lines");
        assert!(self
            .nm_bytes
            .is_multiple_of(self.line_bytes * u64::from(self.assoc)));
        assert!(self.fm_bytes > self.nm_bytes);
    }
}

/// Figure 1's measurement: bytes fetched vs bytes actually used.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WasteStats {
    /// Bytes fetched into the cache from FM.
    pub fetched_bytes: u64,
    /// Of those, bytes touched by the processor before eviction.
    pub used_bytes: u64,
}

impl WasteStats {
    /// Percentage of fetched data never used (Figure 1's y-axis).
    pub fn wasted_pct(&self) -> f64 {
        if self.fetched_bytes == 0 {
            0.0
        } else {
            100.0 * (self.fetched_bytes - self.used_bytes) as f64 / self.fetched_bytes as f64
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    touched: u64,
    stamp: u64,
}

/// The zero-overhead DRAM cache.
#[derive(Clone, Debug)]
pub struct IdealCache {
    cfg: IdealCacheConfig,
    lines: Vec<Line>,
    sets: u64,
    assoc: usize,
    clock: u64,
    chunks_per_line: u32,
    stats: SchemeStats,
    waste: WasteStats,
}

impl IdealCache {
    /// Builds the cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: IdealCacheConfig) -> Self {
        cfg.assert_valid();
        let total_lines = cfg.nm_bytes / cfg.line_bytes;
        let sets = total_lines / u64::from(cfg.assoc);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        IdealCache {
            lines: vec![Line::default(); total_lines as usize],
            sets,
            assoc: cfg.assoc as usize,
            clock: 0,
            chunks_per_line: (cfg.line_bytes / 64) as u32,
            stats: SchemeStats::default(),
            waste: WasteStats::default(),
            cfg,
        }
    }

    /// The Figure 1 measurement, *including* lines still resident (their
    /// touched chunks count as used, their untouched ones as wasted).
    pub fn waste_stats(&self) -> WasteStats {
        let mut w = self.waste;
        for l in &self.lines {
            if l.valid {
                w.used_bytes += u64::from(l.touched.count_ones()) * 64;
                // fetched_bytes already accounted at fill time.
            }
        }
        w
    }

    fn set_of(&self, line_addr: u64) -> u64 {
        (line_addr / self.cfg.line_bytes) & (self.sets - 1)
    }

    fn tag_of(&self, line_addr: u64) -> u64 {
        (line_addr / self.cfg.line_bytes) >> self.sets.trailing_zeros()
    }

    /// NM device address of way `w` of set `s`.
    fn nm_addr(&self, set: u64, way: usize, offset: u64) -> u64 {
        (set * self.assoc as u64 + way as u64) * self.cfg.line_bytes + offset
    }
}

impl MemoryScheme for IdealCache {
    fn name(&self) -> &'static str {
        "IDEAL"
    }

    fn access(&mut self, req: &MemReq, dram: &mut DramSystem) -> Served {
        self.clock += 1;
        self.stats.requests += 1;
        let write = req.kind.is_write();
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let line_base = req.addr.raw() & !(self.cfg.line_bytes - 1);
        let in_line = req.addr.raw() - line_base;
        let chunk_bit = 1u64 << (in_line / 64).min(63);
        let set = self.set_of(line_base);
        let tag = self.tag_of(line_base);
        let range = (set * self.assoc as u64) as usize..((set + 1) * self.assoc as u64) as usize;

        // Hit path: zero tag cost, direct NM access.
        for w in 0..self.assoc {
            let idx = range.start + w;
            let l = &mut self.lines[idx];
            if l.valid && l.tag == tag {
                l.stamp = self.clock;
                l.dirty |= write;
                l.touched |= chunk_bit;
                self.stats.lookup_hits += 1;
                self.stats.served_from_nm += 1;
                let (kind, class) = if write {
                    (AccessKind::Write, TrafficClass::Writeback)
                } else {
                    (AccessKind::Read, TrafficClass::Demand)
                };
                let done = dram
                    .submit(ServiceRequest::new(
                        MemSide::Nm,
                        Ticket::core(usize::from(req.core)),
                        DramAccess {
                            addr: self.nm_addr(set, w, in_line),
                            bytes: req.bytes,
                            kind,
                            class,
                            at: req.at,
                        },
                    ))
                    .ready;
                return Served::new(done, true);
            }
        }

        // Miss: serve the critical 64 B from FM, fetch the full line, evict.
        self.stats.lookup_misses += 1;
        let class = if write {
            TrafficClass::Fill
        } else {
            TrafficClass::Demand
        };
        let critical = dram
            .submit(ServiceRequest::new(
                MemSide::Fm,
                Ticket::core(usize::from(req.core)),
                DramAccess {
                    addr: req.addr.raw() % self.cfg.fm_bytes,
                    bytes: req.bytes,
                    kind: req.kind,
                    class,
                    at: req.at,
                },
            ))
            .ready;

        // Victim selection: invalid way first, else LRU.
        let mut victim = range.start;
        let mut lru = u64::MAX;
        for idx in range.clone() {
            if !self.lines[idx].valid {
                victim = idx;
                break;
            }
            if self.lines[idx].stamp < lru {
                lru = self.lines[idx].stamp;
                victim = idx;
            }
        }
        let way = victim - range.start;
        let old = self.lines[victim];
        if old.valid {
            // Figure 1 bookkeeping: the old line's fetched bytes are final.
            self.waste.used_bytes += u64::from(old.touched.count_ones()) * 64;
            self.stats.used_bytes += u64::from(old.touched.count_ones()) * 64;
            if old.dirty {
                // Write the whole line back to FM.
                let old_base =
                    ((old.tag << self.sets.trailing_zeros()) | set) * self.cfg.line_bytes;
                dram.submit(
                    ServiceRequest::new(
                        MemSide::Nm,
                        Ticket::CONTROLLER,
                        DramAccess {
                            addr: self.nm_addr(set, way, 0),
                            bytes: 64,
                            kind: AccessKind::Read,
                            class: TrafficClass::Writeback,
                            at: req.at,
                        },
                    )
                    .with_count(self.chunks_per_line),
                );
                dram.submit(
                    ServiceRequest::new(
                        MemSide::Fm,
                        Ticket::CONTROLLER,
                        DramAccess {
                            addr: old_base % self.cfg.fm_bytes,
                            bytes: 64,
                            kind: AccessKind::Write,
                            class: TrafficClass::Writeback,
                            at: req.at,
                        },
                    )
                    .with_count(self.chunks_per_line),
                );
                self.stats.dirty_writebacks += 1;
            }
        }

        // Fetch the full new line FM -> NM (the line-size over-fetch).
        dram.submit(
            ServiceRequest::new(
                MemSide::Fm,
                Ticket::CONTROLLER,
                DramAccess {
                    addr: line_base % self.cfg.fm_bytes,
                    bytes: 64,
                    kind: AccessKind::Read,
                    class: TrafficClass::Fill,
                    at: critical,
                },
            )
            .with_count(self.chunks_per_line),
        );
        dram.submit(
            ServiceRequest::new(
                MemSide::Nm,
                Ticket::CONTROLLER,
                DramAccess {
                    addr: self.nm_addr(set, way, 0),
                    bytes: 64,
                    kind: AccessKind::Write,
                    class: TrafficClass::Fill,
                    at: critical,
                },
            )
            .with_count(self.chunks_per_line),
        );
        self.waste.fetched_bytes += self.cfg.line_bytes;
        self.stats.fetched_bytes += self.cfg.line_bytes;
        self.stats.moved_into_nm += 1;
        self.lines[victim] = Line {
            tag,
            valid: true,
            dirty: write,
            touched: chunk_bit,
            stamp: self.clock,
        };
        Served::new(if write { req.at } else { critical }, false)
    }

    fn on_finish(&mut self) {
        // Fold lines still resident into the generic Figure-1 counters so
        // RunResult sees the same numbers as waste_stats().
        for l in &self.lines {
            if l.valid {
                self.stats.used_bytes += u64::from(l.touched.count_ones()) * 64;
            }
        }
    }

    fn flat_capacity_bytes(&self) -> u64 {
        // A cache denies NM capacity to the system: only FM is memory.
        self.cfg.fm_bytes
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_types::{Cycle, PAddr};

    fn cache(line: u64) -> (IdealCache, DramSystem) {
        let cfg = IdealCacheConfig {
            nm_bytes: 64 * 1024,
            fm_bytes: 1024 * 1024,
            line_bytes: line,
            assoc: 4,
        };
        (IdealCache::new(cfg), DramSystem::paper_default())
    }

    #[test]
    fn miss_then_hit() {
        let (mut c, mut dram) = cache(256);
        let a = PAddr::new(0x1000);
        let s1 = c.access(&MemReq::read(a, 64, Cycle::ZERO), &mut dram);
        assert!(!s1.from_nm);
        let s2 = c.access(&MemReq::read(a, 64, s1.done), &mut dram);
        assert!(s2.from_nm);
        assert_eq!(c.stats().lookup_hits, 1);
    }

    #[test]
    fn spatial_neighbor_hits_within_line() {
        let (mut c, mut dram) = cache(1024);
        c.access(&MemReq::read(PAddr::new(0), 64, Cycle::ZERO), &mut dram);
        let s = c.access(&MemReq::read(PAddr::new(512), 64, Cycle::ZERO), &mut dram);
        assert!(s.from_nm, "same 1 KB line must hit");
    }

    #[test]
    fn waste_tracks_untouched_chunks() {
        let (mut c, mut dram) = cache(1024);
        // Touch one 64 B chunk of a 1 KB line: 15/16 wasted.
        c.access(&MemReq::read(PAddr::new(0), 64, Cycle::ZERO), &mut dram);
        let w = c.waste_stats();
        assert_eq!(w.fetched_bytes, 1024);
        assert_eq!(w.used_bytes, 64);
        assert!((w.wasted_pct() - 93.75).abs() < 1e-9);
    }

    #[test]
    fn fully_streamed_line_wastes_nothing() {
        let (mut c, mut dram) = cache(256);
        for i in 0..4u64 {
            c.access(
                &MemReq::read(PAddr::new(i * 64), 64, Cycle::ZERO),
                &mut dram,
            );
        }
        let w = c.waste_stats();
        assert_eq!(w.fetched_bytes, 256);
        assert_eq!(w.used_bytes, 256);
        assert_eq!(w.wasted_pct(), 0.0);
    }

    #[test]
    fn bigger_lines_waste_more_on_random_access() {
        use sim_types::rng::SplitMix64;
        let mut results = Vec::new();
        for line in [256u64, 1024, 4096] {
            let (mut c, mut dram) = cache(line);
            let mut rng = SplitMix64::new(1);
            for _ in 0..4000 {
                let a = PAddr::new(rng.gen_range(512 * 1024 / 64) * 64);
                c.access(&MemReq::read(a, 64, Cycle::ZERO), &mut dram);
            }
            results.push(c.waste_stats().wasted_pct());
        }
        assert!(
            results[0] < results[1] && results[1] < results[2],
            "waste must grow with line size: {results:?}"
        );
    }

    #[test]
    fn dirty_victims_write_back_whole_line() {
        let (mut c, mut dram) = cache(256);
        // 64 KiB / 256 B / 4-way = 64 sets; same-set stride = 64*256.
        let stride = 64 * 256u64;
        c.access(&MemReq::write(PAddr::new(0), 64, Cycle::ZERO), &mut dram);
        for i in 1..=4u64 {
            c.access(
                &MemReq::read(PAddr::new(i * stride), 64, Cycle::ZERO),
                &mut dram,
            );
        }
        assert_eq!(c.stats().dirty_writebacks, 1);
        let wb = dram
            .device(MemSide::Fm)
            .stats()
            .bytes(TrafficClass::Writeback);
        assert_eq!(wb, 256);
    }

    #[test]
    fn hit_latency_beats_miss_latency() {
        let (mut c, mut dram) = cache(256);
        let a = PAddr::new(0x40000);
        let t0 = Cycle::new(10_000);
        let s1 = c.access(&MemReq::read(a, 64, t0), &mut dram);
        // Let the asynchronous line fill drain before timing the hit.
        let t1 = s1.done + 2_000;
        let s2 = c.access(&MemReq::read(a, 64, t1), &mut dram);
        assert!(s2.done - t1 < s1.done - t0);
    }

    #[test]
    fn capacity_is_fm_only() {
        let (c, _) = cache(256);
        assert_eq!(c.flat_capacity_bytes(), 1024 * 1024);
    }

    #[test]
    #[should_panic]
    fn rejects_lines_over_4kb() {
        let cfg = IdealCacheConfig {
            nm_bytes: 1 << 20,
            fm_bytes: 1 << 24,
            line_bytes: 8192,
            assoc: 4,
        };
        let _ = IdealCache::new(cfg);
    }
}
