//! LLC-Guided data Migration (Vasilakis et al., IPDPS 2019).
//!
//! LGM watches the last-level cache to learn which 2 KB segments exhibit
//! spatial locality worth migrating, and *economizes migration bandwidth*
//! two ways: it only migrates segments whose observed line coverage is
//! dense, and it skips transferring lines that are present in the LLC —
//! those are simply marked dirty there and written back to the segment's
//! new home on natural LLC eviction. Migration volume per 50 µs interval is
//! bounded by a high watermark (the paper's exploration: 256 segments).
//!
//! Our model feeds LGM the LLC-miss stream (every miss is an LLC fill, so
//! per-interval per-segment fill masks are exactly the "lines now in the
//! LLC" information the hardware observes).

use std::collections::HashMap;

use dram::{DramAccess, DramSystem, MemoryScheme, SchemeStats, Served, ServiceRequest, Ticket};
use sim_types::{AccessKind, Cycle, MemReq, TrafficClass};

use crate::flat::FlatRemap;
use crate::INTERVAL_CYCLES;

/// Configuration of LGM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LgmConfig {
    /// NM capacity in bytes.
    pub nm_bytes: u64,
    /// FM capacity in bytes.
    pub fm_bytes: u64,
    /// Segment (migration block) size in bytes (2 KB).
    pub block_bytes: u64,
    /// Maximum segments migrated per interval (paper's best: 256).
    pub watermark: u32,
    /// Minimum distinct 64 B lines observed in a segment before it is a
    /// migration candidate (spatial-locality filter).
    pub min_lines: u32,
    /// Interval length in CPU cycles (50 µs).
    pub interval_cycles: u64,
    /// On-chip remap-cache size in bytes (matched to the XTA).
    pub remap_cache_bytes: u64,
}

impl LgmConfig {
    /// The paper's configuration over the given capacities.
    pub fn paper_default(nm_bytes: u64, fm_bytes: u64, remap_cache_bytes: u64) -> Self {
        LgmConfig {
            nm_bytes,
            fm_bytes,
            block_bytes: 2048,
            watermark: 256,
            min_lines: 8,
            interval_cycles: INTERVAL_CYCLES,
            remap_cache_bytes,
        }
    }
}

/// The LGM migration controller.
#[derive(Clone, Debug)]
pub struct Lgm {
    cfg: LgmConfig,
    flat: FlatRemap,
    /// Per-interval activity: segment -> (miss count, 64 B line mask).
    activity: HashMap<u64, (u32, u64)>,
    fifo: u64,
    stats: SchemeStats,
    /// Lines skipped thanks to LLC presence (bandwidth saved), for reports.
    pub lines_skipped: u64,
}

impl Lgm {
    /// Builds the controller.
    pub fn new(cfg: LgmConfig) -> Self {
        let nm_blocks = cfg.nm_bytes / cfg.block_bytes;
        let fm_blocks = cfg.fm_bytes / cfg.block_bytes;
        Lgm {
            flat: FlatRemap::new(cfg.block_bytes, nm_blocks, fm_blocks, cfg.remap_cache_bytes),
            activity: HashMap::new(),
            fifo: 0,
            stats: SchemeStats::default(),
            lines_skipped: 0,
            cfg,
        }
    }

    /// Shared remapping substrate (inspection/testing).
    pub fn flat(&self) -> &FlatRemap {
        &self.flat
    }
}

impl MemoryScheme for Lgm {
    fn name(&self) -> &'static str {
        "LGM"
    }

    fn access(&mut self, req: &MemReq, dram: &mut DramSystem) -> Served {
        self.stats.requests += 1;
        let write = req.kind.is_write();
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let block = self.flat.block_of(req.addr);
        let offset = req.addr.raw() % self.cfg.block_bytes;
        let (loc, ready) = self.flat.locate(block, req.at, dram);
        if loc.is_nm() {
            self.stats.lookup_hits += 1;
            self.stats.served_from_nm += 1;
        } else {
            self.stats.lookup_misses += 1;
            // Observe the LLC fill: which line of the segment was brought
            // on-chip.
            let line = (offset / 64).min(63);
            let e = self.activity.entry(block).or_insert((0, 0));
            e.0 += 1;
            e.1 |= 1u64 << line;
        }
        let (side, addr) = self.flat.device_addr(loc, offset);
        let (kind, class) = if write {
            (AccessKind::Write, TrafficClass::Writeback)
        } else {
            (AccessKind::Read, TrafficClass::Demand)
        };
        let done = dram
            .submit(ServiceRequest::new(
                side,
                Ticket::core(usize::from(req.core)),
                DramAccess {
                    addr,
                    bytes: req.bytes,
                    kind,
                    class,
                    at: ready,
                },
            ))
            .ready;
        Served::new(done, loc.is_nm())
    }

    fn on_tick(&mut self, now: Cycle, dram: &mut DramSystem) {
        // Rank candidates by observed spatial density, then miss count.
        let mut candidates: Vec<(u64, u32, u64)> = self
            .activity
            .iter()
            .filter(|(_, (_, mask))| mask.count_ones() >= self.cfg.min_lines)
            .map(|(&b, &(count, mask))| (b, count, mask))
            .collect();
        candidates.sort_by(|a, b| (b.2.count_ones(), b.1, a.0).cmp(&(a.2.count_ones(), a.1, b.0)));
        candidates.truncate(self.cfg.watermark as usize);
        // Spread migration traffic across the interval (see MemPod).
        let mut at = now;
        let spread = 4 * self.cfg.block_bytes / 16;
        let migrating: Vec<u64> = candidates
            .iter()
            .map(|c| c.0)
            .filter(|&b| !self.flat.peek(b).is_nm())
            .collect();
        for &(block, _, mask) in &candidates {
            if !migrating.contains(&block) {
                continue;
            }
            // FIFO victim selection over NM slots (§3.5 of Hybrid2 credits
            // this policy to LGM and MemPod), skipping same-interval blocks.
            let nm_blocks = self.flat.nm_blocks();
            let mut slot = None;
            for _ in 0..nm_blocks {
                let s = self.fifo % nm_blocks;
                self.fifo += 1;
                if !migrating.contains(&self.flat.block_at(s)) {
                    slot = Some(s);
                    break;
                }
            }
            let Some(slot) = slot else { break };
            // Lines observed in the LLC this interval are *not* moved: the
            // LLC marks them dirty and writes them back to the new home.
            self.lines_skipped += u64::from(mask.count_ones());
            self.flat.swap_into_nm(block, slot, mask, at, dram);
            at += spread;
            self.stats.moved_into_nm += 1;
            self.stats.moved_out_of_nm += 1;
        }
        self.activity.clear();
        self.stats.metadata_reads = self.flat.table_reads;
    }

    fn tick_period(&self) -> Option<u64> {
        Some(self.cfg.interval_cycles)
    }

    fn flat_capacity_bytes(&self) -> u64 {
        self.flat.flat_capacity_bytes()
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_types::PAddr;

    fn lgm() -> (Lgm, DramSystem) {
        let cfg = LgmConfig {
            nm_bytes: 64 * 1024,
            fm_bytes: 1024 * 1024,
            block_bytes: 2048,
            watermark: 4,
            min_lines: 4,
            interval_cycles: 1000,
            remap_cache_bytes: 4096,
        };
        (Lgm::new(cfg), DramSystem::paper_default())
    }

    /// Touch `n` distinct 64 B lines of the segment at `base`.
    fn touch_lines(l: &mut Lgm, dram: &mut DramSystem, base: u64, n: u64) {
        for i in 0..n {
            l.access(
                &MemReq::read(PAddr::new(base + i * 64), 64, Cycle::ZERO),
                dram,
            );
        }
    }

    #[test]
    fn dense_segment_migrates_sparse_does_not() {
        let (mut l, mut dram) = lgm();
        let dense = 512 * 1024u64;
        let sparse = 768 * 1024u64;
        touch_lines(&mut l, &mut dram, dense, 16); // 16 lines: dense
        touch_lines(&mut l, &mut dram, sparse, 2); // 2 lines: sparse
        l.on_tick(Cycle::new(1000), &mut dram);
        assert!(
            l.flat().peek(dense / 2048).is_nm(),
            "dense segment migrates"
        );
        assert!(
            !l.flat().peek(sparse / 2048).is_nm(),
            "sparse segment stays in FM"
        );
        l.flat().check_invariants().unwrap();
    }

    #[test]
    fn llc_present_lines_are_skipped() {
        let (mut l, mut dram) = lgm();
        let seg = 512 * 1024u64;
        touch_lines(&mut l, &mut dram, seg, 16);
        let before = dram.device(sim_types::MemSide::Fm).stats().reads;
        l.on_tick(Cycle::new(1000), &mut dram);
        let mig_reads = dram.device(sim_types::MemSide::Fm).stats().reads - before;
        // 32 lines per 2 KB segment, 16 observed in the LLC -> only 16 read.
        assert_eq!(mig_reads, 16);
        assert_eq!(l.lines_skipped, 16);
    }

    #[test]
    fn watermark_caps_migrations_per_interval() {
        let (mut l, mut dram) = lgm();
        // Make 10 dense FM segments; watermark is 4.
        for s in 0..10u64 {
            touch_lines(&mut l, &mut dram, 512 * 1024 + s * 2048, 8);
        }
        l.on_tick(Cycle::new(1000), &mut dram);
        assert!(l.stats().moved_into_nm <= 4);
        assert!(l.stats().moved_into_nm >= 1);
    }

    #[test]
    fn activity_clears_between_intervals() {
        let (mut l, mut dram) = lgm();
        touch_lines(&mut l, &mut dram, 512 * 1024, 3); // below min_lines
        l.on_tick(Cycle::new(1000), &mut dram);
        assert!(l.activity.is_empty());
        assert_eq!(l.stats().moved_into_nm, 0);
    }

    #[test]
    fn nm_segments_serve_from_nm() {
        let (mut l, mut dram) = lgm();
        let s = l.access(&MemReq::read(PAddr::new(0), 64, Cycle::ZERO), &mut dram);
        assert!(s.from_nm);
        assert_eq!(l.stats().served_from_nm, 1);
    }

    #[test]
    fn capacity_and_name() {
        let (l, _) = lgm();
        assert_eq!(l.flat_capacity_bytes(), 64 * 1024 + 1024 * 1024);
        assert_eq!(l.name(), "LGM");
    }

    #[test]
    fn repeated_intervals_keep_bijection() {
        let (mut l, mut dram) = lgm();
        let mut rng = sim_types::rng::SplitMix64::new(4);
        let cap = l.flat_capacity_bytes();
        for i in 0..15 {
            for _ in 0..300 {
                let a = PAddr::new(rng.gen_range(cap / 64) * 64);
                l.access(&MemReq::read(a, 64, Cycle::new(i * 1000)), &mut dram);
            }
            l.on_tick(Cycle::new((i + 1) * 1000), &mut dram);
            l.flat().check_invariants().unwrap();
        }
    }
}
