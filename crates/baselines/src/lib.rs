//! The comparison schemes of the Hybrid2 evaluation (§5).
//!
//! Every scheme here implements [`dram::MemoryScheme`] and can be dropped
//! into the same simulated system as the Hybrid2 DCMC, so performance,
//! traffic and energy are accounted identically:
//!
//! | Scheme | Paper | Kind | Crate module |
//! |--------|-------|------|--------------|
//! | Baseline (no NM) | §5 normalization | — | [`FmOnly`] |
//! | MemPod | Prodromou et al., HPCA'17 | migration | [`MemPod`] |
//! | Chameleon | Kotra et al., MICRO'18 | migration + cache mode | [`Chameleon`] |
//! | LGM | Vasilakis et al., IPDPS'19 | migration | [`Lgm`] |
//! | Tagless DRAM cache | Lee et al., ISCA'15 | cache | [`Tagless`] |
//! | Decoupled Fused Cache | Vasilakis et al., TACO'19 | cache | [`Dfc`] |
//! | IDEAL cache | §2.3 motivation | cache | [`IdealCache`] |
//!
//! The migration schemes share the all-to-all remapping substrate in
//! [`flat`]: a block-granular remap table (+ inverted table) stored in NM
//! with an on-chip remap cache sized like Hybrid2's XTA, exactly as the
//! paper's methodology section prescribes ("we adjust the size of their
//! respective remap cache to be equal to that of the XTA ... for a fair
//! comparison").
//!
//! Fidelity notes and deliberate simplifications are listed per-module and
//! in `DESIGN.md` §3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chameleon;
mod dfc;
pub mod flat;
mod fm_only;
mod ideal;
mod lgm;
mod mea;
mod mempod;
mod tagless;

pub use chameleon::{Chameleon, ChameleonConfig};
pub use dfc::{Dfc, DfcConfig};
pub use fm_only::FmOnly;
pub use ideal::{IdealCache, IdealCacheConfig, WasteStats};
pub use lgm::{Lgm, LgmConfig};
pub use mea::MeaCounters;
pub use mempod::{MemPod, MemPodConfig};
pub use tagless::{Tagless, TaglessConfig};

/// The paper's migration interval: 50 µs at 3.2 GHz.
pub const INTERVAL_CYCLES: u64 = 160_000;
