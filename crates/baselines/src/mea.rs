//! The Majority Element Algorithm counters used by MemPod.
//!
//! MemPod (HPCA'17) identifies hot 2 KB blocks per interval with the
//! streaming Majority Element Algorithm of Karp, Shenker & Papadimitriou
//! (TODS 2003): `k` counters track candidate elements; an untracked element
//! takes a free counter, and when none is free every counter is decremented
//! (counters reaching zero free their slot). Elements still tracked at the
//! end of an interval are the migration candidates.

/// A bank of MEA counters over `u64` keys (block indices).
#[derive(Clone, Debug)]
pub struct MeaCounters {
    entries: Vec<(u64, u32)>,
    capacity: usize,
}

impl MeaCounters {
    /// Creates a bank of `capacity` counters (MemPod's best: 64).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MEA needs at least one counter");
        MeaCounters {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Feeds one occurrence of `key`.
    pub fn observe(&mut self, key: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == key) {
            e.1 += 1;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((key, 1));
            return;
        }
        // Decrement-all step; zeroed counters free their slots.
        for e in &mut self.entries {
            e.1 -= 1;
        }
        self.entries.retain(|e| e.1 > 0);
        // Karp's algorithm drops the new element in this case too.
    }

    /// The tracked candidates, hottest first.
    pub fn candidates(&self) -> Vec<(u64, u32)> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Clears all counters (interval boundary).
    pub fn reset(&mut self) {
        self.entries.clear();
    }

    /// Number of tracked candidates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no candidate is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_up_to_capacity() {
        let mut m = MeaCounters::new(2);
        m.observe(1);
        m.observe(2);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn majority_element_survives() {
        // Stream: a appears 60%, noise 40% across many keys. MEA guarantees
        // any element with frequency > 1/(k+1) survives.
        let mut m = MeaCounters::new(4);
        for i in 0..1000u64 {
            m.observe(if i % 5 < 3 { 42 } else { 100 + i });
        }
        let c = m.candidates();
        assert_eq!(c.first().map(|e| e.0), Some(42));
    }

    #[test]
    fn decrement_all_frees_slots() {
        let mut m = MeaCounters::new(2);
        m.observe(1); // (1,1)
        m.observe(2); // (2,1)
        m.observe(3); // decrement-all -> both drop to 0 and vanish; 3 not added
        assert!(m.is_empty());
        m.observe(4);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn counts_accumulate_for_tracked_keys() {
        let mut m = MeaCounters::new(2);
        for _ in 0..5 {
            m.observe(7);
        }
        assert_eq!(m.candidates(), vec![(7, 5)]);
    }

    #[test]
    fn candidates_sorted_hottest_first_stable_by_key() {
        let mut m = MeaCounters::new(4);
        m.observe(3);
        m.observe(1);
        m.observe(1);
        m.observe(2);
        m.observe(2);
        let c = m.candidates();
        assert_eq!(c[0].1, 2);
        assert_eq!(c[2], (3, 1));
        // Equal counts tie-break by key for determinism.
        assert!(c[0].0 < c[1].0);
    }

    #[test]
    fn reset_clears() {
        let mut m = MeaCounters::new(2);
        m.observe(1);
        m.reset();
        assert!(m.is_empty());
    }

    #[test]
    fn brute_force_agreement_on_heavy_hitters() {
        // Any key with frequency > n/(k+1) must be tracked at stream end.
        use sim_types::rng::SplitMix64;
        let mut rng = SplitMix64::new(9);
        let k = 8;
        let n = 2000u64;
        let mut m = MeaCounters::new(k);
        let mut truth = std::collections::HashMap::new();
        for _ in 0..n {
            // Key 5 gets ~30% of the stream; the rest spread over 1000 keys.
            let key = if rng.chance(3, 10) {
                5
            } else {
                10 + rng.gen_range(1000)
            };
            m.observe(key);
            *truth.entry(key).or_insert(0u64) += 1;
        }
        let tracked: Vec<u64> = m.candidates().iter().map(|e| e.0).collect();
        for (key, count) in truth {
            if count > n / (k as u64 + 1) {
                assert!(tracked.contains(&key), "heavy hitter {key} lost");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_panics() {
        let _ = MeaCounters::new(0);
    }
}
