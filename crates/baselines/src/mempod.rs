//! MemPod (Prodromou et al., HPCA 2017).
//!
//! MemPod clusters NM and FM into *pods* for scalability and, inside each
//! pod, uses the Majority Element Algorithm to identify the hottest 2 KB
//! blocks of each 50 µs interval; at the interval boundary those blocks are
//! swapped into the pod's NM slice, with victims chosen round-robin (FIFO).
//! The paper's design-space exploration settled on 64 MEA counters per pod.

use dram::{DramAccess, DramSystem, MemoryScheme, SchemeStats, Served, ServiceRequest, Ticket};
use sim_types::{AccessKind, Cycle, MemReq, TrafficClass};

use crate::flat::FlatRemap;
use crate::mea::MeaCounters;
use crate::INTERVAL_CYCLES;

/// Configuration of MemPod.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemPodConfig {
    /// NM capacity in bytes.
    pub nm_bytes: u64,
    /// FM capacity in bytes.
    pub fm_bytes: u64,
    /// Migration block size (2 KB in the paper).
    pub block_bytes: u64,
    /// Number of pods (one per NM channel: 8).
    pub pods: u32,
    /// MEA counters per pod (paper's best: 64).
    pub mea_counters: usize,
    /// Interval length in CPU cycles (50 µs).
    pub interval_cycles: u64,
    /// On-chip remap-cache size in bytes (matched to the XTA for fairness).
    pub remap_cache_bytes: u64,
}

impl MemPodConfig {
    /// The paper's configuration over the given capacities.
    pub fn paper_default(nm_bytes: u64, fm_bytes: u64, remap_cache_bytes: u64) -> Self {
        MemPodConfig {
            nm_bytes,
            fm_bytes,
            block_bytes: 2048,
            pods: 8,
            mea_counters: 64,
            interval_cycles: INTERVAL_CYCLES,
            remap_cache_bytes,
        }
    }
}

#[derive(Clone, Debug)]
struct Pod {
    mea: MeaCounters,
    fifo: u64,
}

/// The MemPod migration controller.
#[derive(Clone, Debug)]
pub struct MemPod {
    cfg: MemPodConfig,
    flat: FlatRemap,
    pods: Vec<Pod>,
    slots_per_pod: u64,
    stats: SchemeStats,
}

impl MemPod {
    /// Builds the controller.
    ///
    /// # Panics
    ///
    /// Panics if NM cannot be split evenly across the pods.
    pub fn new(cfg: MemPodConfig) -> Self {
        let nm_blocks = cfg.nm_bytes / cfg.block_bytes;
        let fm_blocks = cfg.fm_bytes / cfg.block_bytes;
        assert!(
            nm_blocks.is_multiple_of(u64::from(cfg.pods)),
            "NM blocks must divide evenly across pods"
        );
        let flat = FlatRemap::new(cfg.block_bytes, nm_blocks, fm_blocks, cfg.remap_cache_bytes);
        MemPod {
            slots_per_pod: nm_blocks / u64::from(cfg.pods),
            pods: (0..cfg.pods)
                .map(|_| Pod {
                    mea: MeaCounters::new(cfg.mea_counters),
                    fifo: 0,
                })
                .collect(),
            flat,
            stats: SchemeStats::default(),
            cfg,
        }
    }

    /// Pod owning flat block `b` (block-interleaved).
    fn pod_of(&self, block: u64) -> usize {
        (block % u64::from(self.cfg.pods)) as usize
    }

    /// Shared remapping substrate (inspection/testing).
    pub fn flat(&self) -> &FlatRemap {
        &self.flat
    }
}

impl MemoryScheme for MemPod {
    fn name(&self) -> &'static str {
        "MPOD"
    }

    fn access(&mut self, req: &MemReq, dram: &mut DramSystem) -> Served {
        self.stats.requests += 1;
        let write = req.kind.is_write();
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let block = self.flat.block_of(req.addr);
        let offset = req.addr.raw() % self.cfg.block_bytes;
        let (loc, ready) = self.flat.locate(block, req.at, dram);
        if loc.is_nm() {
            self.stats.lookup_hits += 1;
            self.stats.served_from_nm += 1;
        } else {
            self.stats.lookup_misses += 1;
            let pod = self.pod_of(block);
            self.pods[pod].mea.observe(block);
        }
        let (side, addr) = self.flat.device_addr(loc, offset);
        let (kind, class) = if write {
            (AccessKind::Write, TrafficClass::Writeback)
        } else {
            (AccessKind::Read, TrafficClass::Demand)
        };
        let done = dram
            .submit(ServiceRequest::new(
                side,
                Ticket::core(usize::from(req.core)),
                DramAccess {
                    addr,
                    bytes: req.bytes,
                    kind,
                    class,
                    at: ready,
                },
            ))
            .ready;
        Served::new(done, loc.is_nm())
    }

    fn on_tick(&mut self, now: Cycle, dram: &mut DramSystem) {
        let pods = u64::from(self.cfg.pods);
        // Hardware spreads migration traffic across the interval rather
        // than firing every swap in one cycle; stagger arrivals so demand
        // requests are not buried behind the whole migration batch.
        let mut at = now;
        let spread = 4 * self.cfg.block_bytes / 16; // ~2 block transfers
        for p in 0..self.pods.len() {
            let candidates = self.pods[p].mea.candidates();
            // Streaming floods the MEA with count-1 survivors; migrating
            // them is pure churn (they will not be touched again). Keep the
            // blocks the algorithm actually certifies as frequent.
            let migrating: Vec<u64> = candidates
                .iter()
                .filter(|&&(_, count)| count >= 2)
                .map(|&(b, _)| b)
                .filter(|&b| !self.flat.peek(b).is_nm())
                .collect();
            for &block in &migrating {
                // Round-robin victim slot inside this pod, skipping slots
                // holding blocks that are migrating this interval.
                let mut slot = None;
                for _ in 0..self.slots_per_pod {
                    let s = p as u64 + pods * (self.pods[p].fifo % self.slots_per_pod);
                    self.pods[p].fifo += 1;
                    if !migrating.contains(&self.flat.block_at(s)) {
                        slot = Some(s);
                        break;
                    }
                }
                let Some(slot) = slot else { break };
                self.flat.swap_into_nm(block, slot, 0, at, dram);
                at += spread;
                self.stats.moved_into_nm += 1;
                self.stats.moved_out_of_nm += 1;
            }
            self.pods[p].mea.reset();
        }
        self.stats.metadata_reads = self.flat.table_reads;
    }

    fn tick_period(&self) -> Option<u64> {
        Some(self.cfg.interval_cycles)
    }

    fn flat_capacity_bytes(&self) -> u64 {
        self.flat.flat_capacity_bytes()
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_types::PAddr;

    fn mempod() -> (MemPod, DramSystem) {
        let cfg = MemPodConfig {
            nm_bytes: 64 * 1024,
            fm_bytes: 1024 * 1024,
            block_bytes: 2048,
            pods: 4,
            mea_counters: 8,
            interval_cycles: 1000,
            remap_cache_bytes: 4096,
        };
        (MemPod::new(cfg), DramSystem::paper_default())
    }

    #[test]
    fn nm_blocks_serve_from_nm() {
        let (mut m, mut dram) = mempod();
        let s = m.access(&MemReq::read(PAddr::new(0), 64, Cycle::ZERO), &mut dram);
        assert!(s.from_nm, "block 0 boots in NM");
        let far = PAddr::new(512 * 1024);
        let s = m.access(&MemReq::read(far, 64, Cycle::ZERO), &mut dram);
        assert!(!s.from_nm);
    }

    #[test]
    fn hot_fm_block_migrates_at_interval() {
        let (mut m, mut dram) = mempod();
        let hot = PAddr::new(512 * 1024); // an FM-resident block
        let block = m.flat().block_of(hot);
        for i in 0..50 {
            m.access(&MemReq::read(hot, 64, Cycle::new(i * 10)), &mut dram);
        }
        m.on_tick(Cycle::new(1000), &mut dram);
        assert!(m.flat().peek(block).is_nm(), "hot block must migrate");
        assert!(m.stats().moved_into_nm >= 1);
        m.flat().check_invariants().unwrap();
        // Subsequent accesses come from NM.
        let s = m.access(&MemReq::read(hot, 64, Cycle::new(2000)), &mut dram);
        assert!(s.from_nm);
    }

    #[test]
    fn swaps_charge_migration_traffic() {
        let (mut m, mut dram) = mempod();
        let hot = PAddr::new(512 * 1024);
        for i in 0..50 {
            m.access(&MemReq::read(hot, 64, Cycle::new(i * 10)), &mut dram);
        }
        m.on_tick(Cycle::new(1000), &mut dram);
        let mig = dram
            .device(sim_types::MemSide::Fm)
            .stats()
            .bytes(TrafficClass::Migration);
        assert!(mig >= 2 * 2048, "swap moves a block each way");
    }

    #[test]
    fn mea_resets_each_interval() {
        let (mut m, mut dram) = mempod();
        let warm = PAddr::new(512 * 1024);
        m.access(&MemReq::read(warm, 64, Cycle::ZERO), &mut dram);
        m.on_tick(Cycle::new(1000), &mut dram);
        for p in &m.pods {
            assert!(p.mea.is_empty());
        }
    }

    #[test]
    fn pods_partition_blocks() {
        let (m, _) = mempod();
        assert_eq!(m.pod_of(0), 0);
        assert_eq!(m.pod_of(5), 1);
        assert_eq!(m.pod_of(7), 3);
    }

    #[test]
    fn capacity_includes_nm() {
        let (m, _) = mempod();
        assert_eq!(m.flat_capacity_bytes(), 64 * 1024 + 1024 * 1024);
        assert_eq!(m.name(), "MPOD");
    }

    #[test]
    fn many_intervals_keep_bijection() {
        let (mut m, mut dram) = mempod();
        let mut rng = sim_types::rng::SplitMix64::new(3);
        let cap = m.flat_capacity_bytes();
        let mut t = Cycle::ZERO;
        for interval in 0..20 {
            for _ in 0..200 {
                let a = PAddr::new(rng.gen_range(cap / 64) * 64);
                m.access(&MemReq::read(a, 64, t), &mut dram);
                t += 5;
            }
            m.on_tick(Cycle::new((interval + 1) * 1000), &mut dram);
            m.flat().check_invariants().unwrap();
        }
    }
}
