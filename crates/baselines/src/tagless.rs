//! The Tagless DRAM cache (Lee et al., ISCA 2015).
//!
//! The Tagless design tracks DRAM-cache contents through the page tables
//! and TLBs, so a lookup costs nothing — but the cache must operate at OS
//! page granularity (4 KB): every miss fetches a whole page, the over-fetch
//! behaviour that Figure 13 shows demolishing omnetpp and deepsjeng. Per
//! the paper's methodology we "optimistically do not model any operating
//! system overheads"; replacement is a clock (second-chance) approximation
//! of LRU over a fully associative frame pool.

use std::collections::HashMap;

use dram::{DramAccess, DramSystem, MemoryScheme, SchemeStats, Served, ServiceRequest, Ticket};
use sim_types::{AccessKind, MemReq, MemSide, TrafficClass};

/// Configuration of the Tagless cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaglessConfig {
    /// NM capacity in bytes (all of it becomes page frames).
    pub nm_bytes: u64,
    /// FM (main memory) capacity in bytes.
    pub fm_bytes: u64,
    /// Page size in bytes (4 KB in the paper).
    pub page_bytes: u64,
}

impl TaglessConfig {
    /// The paper's configuration over the given capacities.
    pub fn new(nm_bytes: u64, fm_bytes: u64) -> Self {
        TaglessConfig {
            nm_bytes,
            fm_bytes,
            page_bytes: 4096,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Frame {
    page: u64,
    valid: bool,
    dirty: bool,
    referenced: bool,
}

/// The page-granular, tag-free DRAM cache.
#[derive(Clone, Debug)]
pub struct Tagless {
    cfg: TaglessConfig,
    frames: Vec<Frame>,
    map: HashMap<u64, u32>,
    hand: usize,
    stats: SchemeStats,
}

impl Tagless {
    /// Builds the cache.
    ///
    /// # Panics
    ///
    /// Panics if the page size is not a non-zero power of two or NM holds
    /// no full page.
    pub fn new(cfg: TaglessConfig) -> Self {
        assert!(cfg.page_bytes.is_power_of_two() && cfg.page_bytes >= 64);
        let frames = cfg.nm_bytes / cfg.page_bytes;
        assert!(frames > 0, "NM must hold at least one page");
        Tagless {
            frames: vec![Frame::default(); frames as usize],
            map: HashMap::new(),
            hand: 0,
            stats: SchemeStats::default(),
            cfg,
        }
    }

    /// Clock (second-chance) victim selection.
    fn pick_frame(&mut self) -> usize {
        loop {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            let f = &mut self.frames[idx];
            if !f.valid {
                return idx;
            }
            if f.referenced {
                f.referenced = false;
            } else {
                return idx;
            }
        }
    }
}

impl MemoryScheme for Tagless {
    fn name(&self) -> &'static str {
        "TAGLESS"
    }

    fn access(&mut self, req: &MemReq, dram: &mut DramSystem) -> Served {
        self.stats.requests += 1;
        let write = req.kind.is_write();
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let page = req.addr.raw() / self.cfg.page_bytes;
        let in_page = req.addr.raw() % self.cfg.page_bytes;

        if let Some(&frame) = self.map.get(&page) {
            // Page-table hit: zero lookup cost, direct NM access.
            let f = &mut self.frames[frame as usize];
            f.referenced = true;
            f.dirty |= write;
            self.stats.lookup_hits += 1;
            self.stats.served_from_nm += 1;
            let (kind, class) = if write {
                (AccessKind::Write, TrafficClass::Writeback)
            } else {
                (AccessKind::Read, TrafficClass::Demand)
            };
            let done = dram
                .submit(ServiceRequest::new(
                    MemSide::Nm,
                    Ticket::core(usize::from(req.core)),
                    DramAccess {
                        addr: u64::from(frame) * self.cfg.page_bytes + in_page,
                        bytes: req.bytes,
                        kind,
                        class,
                        at: req.at,
                    },
                ))
                .ready;
            return Served::new(done, true);
        }

        // Miss: serve the critical access from FM, then move a whole page.
        self.stats.lookup_misses += 1;
        let class = if write {
            TrafficClass::Fill
        } else {
            TrafficClass::Demand
        };
        let critical = dram
            .submit(ServiceRequest::new(
                MemSide::Fm,
                Ticket::core(usize::from(req.core)),
                DramAccess {
                    addr: req.addr.raw() % self.cfg.fm_bytes,
                    bytes: req.bytes,
                    kind: req.kind,
                    class,
                    at: req.at,
                },
            ))
            .ready;

        let frame = self.pick_frame();
        let lines = (self.cfg.page_bytes / 64) as u32;
        let old = self.frames[frame];
        if old.valid {
            self.map.remove(&old.page);
            if old.dirty {
                dram.submit(
                    ServiceRequest::new(
                        MemSide::Nm,
                        Ticket::CONTROLLER,
                        DramAccess {
                            addr: frame as u64 * self.cfg.page_bytes,
                            bytes: 64,
                            kind: AccessKind::Read,
                            class: TrafficClass::Writeback,
                            at: req.at,
                        },
                    )
                    .with_count(lines),
                );
                dram.submit(
                    ServiceRequest::new(
                        MemSide::Fm,
                        Ticket::CONTROLLER,
                        DramAccess {
                            addr: (old.page * self.cfg.page_bytes) % self.cfg.fm_bytes,
                            bytes: 64,
                            kind: AccessKind::Write,
                            class: TrafficClass::Writeback,
                            at: req.at,
                        },
                    )
                    .with_count(lines),
                );
                self.stats.dirty_writebacks += 1;
            }
        }

        // Full-page fetch — the over-fetch that hurts sparse access patterns.
        dram.submit(
            ServiceRequest::new(
                MemSide::Fm,
                Ticket::CONTROLLER,
                DramAccess {
                    addr: (page * self.cfg.page_bytes) % self.cfg.fm_bytes,
                    bytes: 64,
                    kind: AccessKind::Read,
                    class: TrafficClass::Fill,
                    at: critical,
                },
            )
            .with_count(lines),
        );
        dram.submit(
            ServiceRequest::new(
                MemSide::Nm,
                Ticket::CONTROLLER,
                DramAccess {
                    addr: frame as u64 * self.cfg.page_bytes,
                    bytes: 64,
                    kind: AccessKind::Write,
                    class: TrafficClass::Fill,
                    at: critical,
                },
            )
            .with_count(lines),
        );
        self.stats.moved_into_nm += 1;
        self.frames[frame] = Frame {
            page,
            valid: true,
            dirty: write,
            referenced: true,
        };
        self.map.insert(page, frame as u32);
        Served::new(if write { req.at } else { critical }, false)
    }

    fn flat_capacity_bytes(&self) -> u64 {
        self.cfg.fm_bytes
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_types::{Cycle, PAddr};

    fn tagless() -> (Tagless, DramSystem) {
        (
            Tagless::new(TaglessConfig::new(64 * 1024, 1024 * 1024)),
            DramSystem::paper_default(),
        )
    }

    #[test]
    fn page_hit_after_miss() {
        let (mut t, mut dram) = tagless();
        let a = PAddr::new(0x1234);
        let s1 = t.access(&MemReq::read(a, 64, Cycle::ZERO), &mut dram);
        assert!(!s1.from_nm);
        // Anywhere in the same 4 KB page now hits.
        let s2 = t.access(&MemReq::read(PAddr::new(0x1fc0), 64, s1.done), &mut dram);
        assert!(s2.from_nm);
    }

    #[test]
    fn miss_fetches_whole_page() {
        let (mut t, mut dram) = tagless();
        t.access(&MemReq::read(PAddr::new(0), 64, Cycle::ZERO), &mut dram);
        let fill = dram.device(MemSide::Fm).stats().bytes(TrafficClass::Fill);
        assert_eq!(fill, 4096, "whole page over-fetched");
    }

    #[test]
    fn clock_replacement_recycles_frames() {
        let (mut t, mut dram) = tagless();
        // 16 frames; touch 40 distinct pages.
        for i in 0..40u64 {
            t.access(
                &MemReq::read(PAddr::new(i * 4096), 64, Cycle::ZERO),
                &mut dram,
            );
        }
        assert_eq!(t.stats().lookup_misses, 40);
        assert!(t.map.len() <= 16);
    }

    #[test]
    fn recently_used_page_survives_clock() {
        let (mut t, mut dram) = tagless();
        // Fill all 16 frames (pages 0..15); every frame referenced, hand=0.
        for i in 0..16u64 {
            t.access(
                &MemReq::read(PAddr::new(i * 4096), 64, Cycle::ZERO),
                &mut dram,
            );
        }
        // Page 16 sweeps once (clearing every ref bit), evicts frame 0 and
        // lands there with its ref bit set; the hand now points at frame 1.
        t.access(
            &MemReq::read(PAddr::new(16 * 4096), 64, Cycle::ZERO),
            &mut dram,
        );
        // Re-reference page 1 (frame 1): second chance armed.
        t.access(&MemReq::read(PAddr::new(4096), 64, Cycle::ZERO), &mut dram);
        // Page 17: the hand skips frame 1 (referenced) and evicts frame 2.
        t.access(
            &MemReq::read(PAddr::new(17 * 4096), 64, Cycle::ZERO),
            &mut dram,
        );
        let s1 = t.access(&MemReq::read(PAddr::new(4096), 64, Cycle::ZERO), &mut dram);
        assert!(s1.from_nm, "referenced page got its second chance");
        let s2 = t.access(
            &MemReq::read(PAddr::new(2 * 4096), 64, Cycle::ZERO),
            &mut dram,
        );
        assert!(
            !s2.from_nm,
            "the unreferenced neighbour was evicted instead"
        );
    }

    #[test]
    fn dirty_pages_write_back_in_full() {
        let (mut t, mut dram) = tagless();
        t.access(&MemReq::write(PAddr::new(0), 64, Cycle::ZERO), &mut dram);
        for i in 1..=16u64 {
            t.access(
                &MemReq::read(PAddr::new(i * 4096), 64, Cycle::ZERO),
                &mut dram,
            );
        }
        assert_eq!(t.stats().dirty_writebacks, 1);
        let wb = dram
            .device(MemSide::Fm)
            .stats()
            .bytes(TrafficClass::Writeback);
        assert_eq!(wb, 4096);
    }

    #[test]
    fn lookup_is_free_hits_have_nm_latency_only() {
        let (mut t, mut dram) = tagless();
        let a = PAddr::new(0);
        let s1 = t.access(&MemReq::read(a, 64, Cycle::ZERO), &mut dram);
        // Let the asynchronous page fill drain before timing the hit.
        let t1 = s1.done + 5_000;
        let s2 = t.access(&MemReq::read(a, 64, t1), &mut dram);
        // A hit is a single NM access; at 3.2 GHz that is well under 40
        // cycles uncontended.
        assert!(s2.done - t1 < 40, "hit took {}", s2.done - t1);
    }

    #[test]
    fn capacity_excludes_nm() {
        let (t, _) = tagless();
        assert_eq!(t.flat_capacity_bytes(), 1024 * 1024);
        assert_eq!(t.name(), "TAGLESS");
    }
}
