//! Regenerates the DESIGN.md ablations (budget reset period, free-stack
//! on-chip window) and times the full Hybrid2 policy.

use bench::{bench_cfg, kernel_cfg, print_reports};
use criterion::{criterion_group, criterion_main, Criterion};
use sim::experiments::{ablation_budget_period, ablation_free_hints, ablation_stack_window};
use sim::{run_one, NmRatio, SchemeKind};
use workloads::catalog;

fn bench(c: &mut Criterion) {
    print_reports(&ablation_budget_period(&bench_cfg(), true));
    print_reports(&ablation_stack_window(&bench_cfg(), true));
    print_reports(&ablation_free_hints(&bench_cfg(), true));
    let cfg = kernel_cfg();
    let spec = catalog::by_name("gcc").unwrap();
    c.bench_function("ablations/hybrid2_gcc", |b| {
        b.iter(|| run_one(SchemeKind::Hybrid2, spec, NmRatio::OneGb, &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
