//! Epoch-batched vs per-op reference machine-loop throughput.
//!
//! The tentpole claim of the batching PR, measured the only way that is
//! honest on a drifting-load box: `Machine::run_reference` *is* the PR 2
//! hot path kept verbatim, so one process interleaves pre (reference) and
//! post (batched) samples back-to-back per scheme — no binary juggling,
//! no cross-run drift between a pair. Captured to `BENCH_batched.json`
//! via `CRITERION_SHIM_JSON`; the gate is mem-ops/sec geomean
//! batched-over-reference ≥ 1.1×, with byte-identity of the two loops
//! enforced separately (tests/batched_differential.rs, CI batched-verify).

use criterion::{criterion_group, criterion_main, Criterion};
use dram::DramSystem;
use mem_cache::Hierarchy;
use sim::{build_scheme, scheme_label, EvalConfig, Machine, NmRatio, ScaledSystem, SchemeKind};
use workloads::{catalog, Workload};

fn machine(kind: SchemeKind, cfg: &EvalConfig) -> Machine {
    let sys = ScaledSystem::new(NmRatio::OneGb, cfg.scale_den);
    let spec = catalog::by_name("lbm").unwrap();
    Machine::new(
        8,
        Hierarchy::new(sys.hierarchy()),
        build_scheme(kind, &sys),
        DramSystem::paper_default(),
        Workload::build(spec, 8, cfg.scale_den, cfg.seed),
        cfg.seed,
    )
}

fn e2e_batched(c: &mut Criterion) {
    let cfg = EvalConfig::smoke();
    let mut group = c.benchmark_group("e2e_batched");
    group.sample_size(7);
    for kind in SchemeKind::MAIN {
        // Reference and batched adjacent in time: the pair shares whatever
        // load the box is under, so their ratio is meaningful even when
        // absolute numbers drift between schemes.
        group.bench_function(format!("ref/{}", scheme_label(kind)), |b| {
            b.iter(|| machine(kind, &cfg).run_reference(cfg.instrs_per_core))
        });
        group.bench_function(format!("batched/{}", scheme_label(kind)), |b| {
            b.iter(|| machine(kind, &cfg).run_batched(cfg.instrs_per_core, cfg.batch))
        });
    }
    group.finish();

    // Ops-per-run constant for deriving mem-ops/sec from the timings
    // (identical across schemes and across the two loops — asserted).
    let a = machine(SchemeKind::Hybrid2, &cfg).run_reference(cfg.instrs_per_core);
    let b = machine(SchemeKind::Hybrid2, &cfg).run_batched(cfg.instrs_per_core, cfg.batch);
    assert_eq!(a.mem_ops, b.mem_ops, "loops disagree on op count");
    println!("e2e_batched/mem_ops_per_run: {}", a.mem_ops);
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = e2e_batched
}
criterion_main!(benches);
