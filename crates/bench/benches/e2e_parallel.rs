//! Optimistic parallel vs epoch-batched machine-loop throughput.
//!
//! The tentpole claim of the parallel-stepping PR, measured the same way
//! `e2e_batched` measures batching: `Machine::run_batched` is the PR 5
//! hot path kept verbatim, so one process interleaves pre (batched) and
//! post (parallel, at the host's hardware parallelism capped to the core
//! count) samples back-to-back per scheme — no binary juggling, no
//! cross-run drift between a pair. Captured to `BENCH_parallel.json`
//! via `CRITERION_SHIM_JSON`. The speedup is only visible on a
//! multi-core host (on 1 vCPU the parallel loop degrades gracefully to
//! near-batched throughput); byte-identity of the loops is enforced
//! separately (tests/batched_differential.rs, CI parallel-verify).

use criterion::{criterion_group, criterion_main, Criterion};
use dram::DramSystem;
use mem_cache::Hierarchy;
use sim::{build_scheme, scheme_label, EvalConfig, Machine, NmRatio, ScaledSystem, SchemeKind};
use workloads::Workload;
use workloads::{catalog, MpkiClass, PaperRow, PatternSpec, WorkloadKind, WorkloadSpec};

const CORES: usize = 8;

/// An L1-resident hot set: at 1/16 scale the 4 KB minimum hot region is
/// exactly the scaled L1, so after warmup nearly every op speculates and
/// rounds run wide (measured 99.97% speculated, full-budget windows) —
/// the long-window regime where the dispatch gate opens and worker
/// threads carry real work. The paper-mix group below is the opposite
/// regime: line-length windows, gate closed, parity with batched.
static RESIDENT: std::sync::LazyLock<WorkloadSpec> = std::sync::LazyLock::new(|| WorkloadSpec {
    name: "resident".into(),
    kind: WorkloadKind::MultiProgrammed,
    class: MpkiClass::Low,
    paper: PaperRow {
        mpki: 0.1,
        footprint_gb: 0.25,
        traffic_gb: 0.5,
    },
    pattern: PatternSpec::Hotspot {
        hot_bp: 1,
        hot_pct: 100,
    },
    mem_every: 2,
    write_pct: 20,
});

fn machine_for(spec: &WorkloadSpec, kind: SchemeKind, cfg: &EvalConfig) -> Machine {
    let sys = ScaledSystem::new(NmRatio::OneGb, cfg.scale_den);
    Machine::new(
        CORES,
        Hierarchy::new(sys.hierarchy()),
        build_scheme(kind, &sys),
        DramSystem::paper_default(),
        Workload::build(spec, CORES, cfg.scale_den, cfg.seed),
        cfg.seed,
    )
}

fn machine(kind: SchemeKind, cfg: &EvalConfig) -> Machine {
    machine_for(catalog::by_name("lbm").unwrap(), kind, cfg)
}

/// Worker threads for the parallel samples: the host's available
/// parallelism, capped to the simulated core count (more workers than
/// cores would idle by construction).
fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(CORES)
}

fn e2e_parallel(c: &mut Criterion) {
    let cfg = EvalConfig::smoke();
    let threads = threads();
    let mut group = c.benchmark_group("e2e_parallel");
    group.sample_size(7);
    for kind in SchemeKind::MAIN {
        // Batched and parallel adjacent in time: the pair shares whatever
        // load the box is under, so their ratio is meaningful even when
        // absolute numbers drift between schemes.
        group.bench_function(format!("batched/{}", scheme_label(kind)), |b| {
            b.iter(|| machine(kind, &cfg).run_batched(cfg.instrs_per_core, cfg.batch))
        });
        group.bench_function(format!("parallel/{}", scheme_label(kind)), |b| {
            b.iter(|| machine(kind, &cfg).run_parallel(cfg.instrs_per_core, cfg.batch, threads))
        });
    }
    group.finish();

    // The long-window regime: only here does the yield gate open and the
    // worker pool carry real work, so this group is where a multi-core
    // host shows the parallel loop's scaling (a 1-vCPU host degrades to
    // batched-loop parity by construction).
    let mut resident_cfg = EvalConfig::smoke();
    resident_cfg.scale_den = 16;
    resident_cfg.instrs_per_core = 400_000;
    let mut group = c.benchmark_group("e2e_parallel_resident");
    group.sample_size(7);
    group.bench_function("batched/HYBRID2", |b| {
        b.iter(|| {
            machine_for(&RESIDENT, SchemeKind::Hybrid2, &resident_cfg)
                .run_batched(resident_cfg.instrs_per_core, resident_cfg.batch)
        })
    });
    group.bench_function("parallel/HYBRID2", |b| {
        b.iter(|| {
            machine_for(&RESIDENT, SchemeKind::Hybrid2, &resident_cfg).run_parallel(
                resident_cfg.instrs_per_core,
                resident_cfg.batch,
                threads,
            )
        })
    });
    group.finish();

    // Ops-per-run constants for deriving mem-ops/sec from the timings
    // (identical across schemes and across the two loops — asserted).
    let a = machine(SchemeKind::Hybrid2, &cfg).run_batched(cfg.instrs_per_core, cfg.batch);
    let b =
        machine(SchemeKind::Hybrid2, &cfg).run_parallel(cfg.instrs_per_core, cfg.batch, threads);
    assert_eq!(a.mem_ops, b.mem_ops, "loops disagree on op count");
    println!("e2e_parallel/mem_ops_per_run: {}", a.mem_ops);
    let (r, t) = machine_for(&RESIDENT, SchemeKind::Hybrid2, &resident_cfg).run_parallel_telemetry(
        resident_cfg.instrs_per_core,
        resident_cfg.batch,
        2,
    );
    println!("e2e_parallel_resident/mem_ops_per_run: {}", r.mem_ops);
    println!(
        "e2e_parallel_resident/speculated_fraction: {:.4} ({} of {} rounds dispatched)",
        t.speculated_fraction(),
        t.dispatched_rounds,
        t.rounds
    );
    println!("e2e_parallel/machine_threads: {threads}");
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = e2e_parallel
}
criterion_main!(benches);
