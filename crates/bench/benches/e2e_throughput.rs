//! End-to-end simulator throughput: one `run_one` per MAIN scheme at the
//! smoke scale (8 cores, 1 M instructions/core, 1/1024 capacities).
//!
//! This is the number every perf PR is judged against: the wall-clock of
//! the full per-op pipeline (trace generation → page translation → SRAM
//! hierarchy → scheme → DRAM timing), not of any one structure. Captured
//! to `BENCH_hotpath.json` via `CRITERION_SHIM_JSON`; mem-ops/sec is
//! `mem_ops / median_time` with `mem_ops` printed at the end of the run
//! (it is identical across schemes — the op stream depends only on the
//! workload, seed and instruction target).

use criterion::{criterion_group, criterion_main, Criterion};
use sim::runlog::RunRecord;
use sim::{run_one, run_one_timed, scheme_label, EvalConfig, NmRatio, SchemeKind};
use workloads::catalog;

fn e2e_throughput(c: &mut Criterion) {
    let cfg = EvalConfig::smoke();
    let spec = catalog::by_name("lbm").unwrap();
    let mut group = c.benchmark_group("e2e");
    group.sample_size(7);
    for kind in SchemeKind::MAIN {
        group.bench_function(format!("run_one/{}", scheme_label(kind)), |b| {
            b.iter(|| run_one(kind, spec, NmRatio::OneGb, &cfg))
        });
    }
    group.finish();

    // Ops-per-run constant for deriving mem-ops/sec from the timings.
    let r = run_one(SchemeKind::Hybrid2, spec, NmRatio::OneGb, &cfg);
    println!("e2e/mem_ops_per_run: {}", r.mem_ops);

    // Opt-in run records (`RUNLOG_DIR`): one timed run per scheme row, so
    // bench sessions land in the same queryable store as `reproduce` runs
    // and BENCH_*.json numbers stay reproducible from logs.
    if let Some(mut log) = bench::runlog_from_env("bench-e2e") {
        for kind in std::iter::once(SchemeKind::Baseline).chain(SchemeKind::MAIN) {
            let (r, secs) = run_one_timed(kind, spec, NmRatio::OneGb, &cfg);
            let rec = RunRecord::new("bench:e2e", kind, NmRatio::OneGb, &cfg, &r, secs);
            if let Err(e) = log.append(&rec) {
                eprintln!("bench: cannot append run record: {e}");
                break;
            }
        }
        println!("e2e/runlog: {}", log.path().display());
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = e2e_throughput
}
criterion_main!(benches);
