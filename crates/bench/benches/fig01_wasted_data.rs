//! Regenerates Figure 1 (fetched-but-unused data vs cache line size) and
//! times the ideal-cache sweep kernel.

use bench::{bench_cfg, kernel_cfg, print_reports};
use criterion::{criterion_group, criterion_main, Criterion};
use sim::experiments::fig01_wasted_data;
use sim::{run_one, NmRatio, SchemeKind};
use workloads::catalog;

fn bench(c: &mut Criterion) {
    print_reports(&fig01_wasted_data(&bench_cfg(), true));
    let cfg = kernel_cfg();
    let spec = catalog::by_name("omnetpp").unwrap();
    c.bench_function("fig01/ideal_cache_4k_lines", |b| {
        b.iter(|| run_one(SchemeKind::IdealLine(4096), spec, NmRatio::OneGb, &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
