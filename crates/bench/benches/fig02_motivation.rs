//! Regenerates Figure 2 (motivation: min/max/geomean of migration vs cache
//! designs) and times one mid-sweep cache point.

use bench::{bench_cfg, kernel_cfg, print_reports};
use criterion::{criterion_group, criterion_main, Criterion};
use sim::experiments::fig02_motivation;
use sim::{run_one, NmRatio, SchemeKind};
use workloads::catalog;

fn bench(c: &mut Criterion) {
    print_reports(&fig02_motivation(&bench_cfg(), true));
    let cfg = kernel_cfg();
    let spec = catalog::by_name("lbm").unwrap();
    c.bench_function("fig02/dfc_1k_run", |b| {
        b.iter(|| run_one(SchemeKind::DfcLine(1024), spec, NmRatio::OneGb, &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
