//! Regenerates Figure 11 (Hybrid2 design-space exploration) and times the
//! paper-best configuration.

use bench::{bench_cfg, kernel_cfg, print_reports};
use criterion::{criterion_group, criterion_main, Criterion};
use sim::experiments::fig11_design_space;
use sim::{run_one, NmRatio, SchemeKind};
use workloads::catalog;

fn bench(c: &mut Criterion) {
    print_reports(&fig11_design_space(&bench_cfg(), true));
    let cfg = kernel_cfg();
    let spec = catalog::by_name("lbm").unwrap();
    c.bench_function("fig11/hybrid2_64mb_2k_256", |b| {
        b.iter(|| {
            run_one(
                SchemeKind::Hybrid2Config {
                    cache_bytes_paper: 64 << 20,
                    sector: 2048,
                    line: 256,
                },
                spec,
                NmRatio::OneGb,
                &cfg,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
