//! Regenerates Figure 12 (geomean speedup by MPKI class at the three NM:FM
//! ratios) and times a Hybrid2 run at each ratio.

use bench::{bench_cfg, kernel_cfg, print_reports};
use criterion::{criterion_group, criterion_main, Criterion};
use sim::experiments::fig12_speedup_by_ratio;
use sim::{run_one, NmRatio, SchemeKind};
use workloads::catalog;

fn bench(c: &mut Criterion) {
    print_reports(&fig12_speedup_by_ratio(&bench_cfg(), true));
    let cfg = kernel_cfg();
    let spec = catalog::by_name("lbm").unwrap();
    let mut group = c.benchmark_group("fig12");
    for ratio in NmRatio::ALL {
        group.bench_function(format!("hybrid2_{}", ratio.label()), |b| {
            b.iter(|| run_one(SchemeKind::Hybrid2, spec, ratio, &cfg))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
