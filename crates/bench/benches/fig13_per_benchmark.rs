//! Regenerates Figure 13 (per-benchmark speedups at 1:16) and times the
//! six-scheme smoke matrix.

use bench::{bench_cfg, kernel_cfg, print_reports};
use criterion::{criterion_group, criterion_main, Criterion};
use sim::experiments::{fig13_per_benchmark, main_matrix};
use sim::{Matrix, NmRatio, SchemeKind};
use workloads::catalog;

fn bench(c: &mut Criterion) {
    let m = main_matrix(NmRatio::OneGb, &bench_cfg(), true);
    print_reports(&[fig13_per_benchmark(&m)]);
    let cfg = kernel_cfg();
    let specs = [catalog::by_name("xalanc").unwrap().clone()];
    c.bench_function("fig13/two_scheme_matrix", |b| {
        b.iter(|| {
            Matrix::run(
                &[SchemeKind::Hybrid2, SchemeKind::Lgm],
                &specs,
                NmRatio::OneGb,
                &cfg,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
