//! Regenerates Figure 14 (Hybrid2 performance-factor breakdown) and times
//! the Cache-Only and Full variants.

use bench::{bench_cfg, kernel_cfg, print_reports};
use criterion::{criterion_group, criterion_main, Criterion};
use hybrid2_core::Variant;
use sim::experiments::fig14_breakdown;
use sim::{run_one, NmRatio, SchemeKind};
use workloads::catalog;

fn bench(c: &mut Criterion) {
    print_reports(&fig14_breakdown(&bench_cfg(), true));
    let cfg = kernel_cfg();
    let spec = catalog::by_name("lbm").unwrap();
    let mut group = c.benchmark_group("fig14");
    for variant in [Variant::CacheOnly, Variant::Full] {
        group.bench_function(variant.label(), |b| {
            b.iter(|| {
                run_one(
                    SchemeKind::Hybrid2Variant(variant),
                    spec,
                    NmRatio::OneGb,
                    &cfg,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
