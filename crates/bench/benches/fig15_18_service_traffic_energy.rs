//! Regenerates Figures 15–18 (NM service rate, FM traffic, NM traffic and
//! dynamic energy by MPKI class) from one shared matrix and times the
//! matrix construction.

use bench::{bench_cfg, kernel_cfg, print_reports};
use criterion::{criterion_group, criterion_main, Criterion};
use sim::experiments::{
    fig15_nm_served, fig16_fm_traffic, fig17_nm_traffic, fig18_energy, main_matrix,
};
use sim::{Matrix, NmRatio, SchemeKind};
use workloads::catalog;

fn bench(c: &mut Criterion) {
    let m = main_matrix(NmRatio::OneGb, &bench_cfg(), true);
    print_reports(&[
        fig15_nm_served(&m),
        fig16_fm_traffic(&m),
        fig17_nm_traffic(&m),
        fig18_energy(&m),
    ]);
    let cfg = kernel_cfg();
    let specs = [catalog::by_name("lbm").unwrap().clone()];
    c.bench_function("fig15_18/tagless_vs_hybrid2", |b| {
        b.iter(|| {
            Matrix::run(
                &[SchemeKind::Tagless, SchemeKind::Hybrid2],
                &specs,
                NmRatio::OneGb,
                &cfg,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
