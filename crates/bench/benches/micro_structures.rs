//! Microbenchmarks of the hot structures on the simulated critical path:
//! XTA lookups, DRAM device accesses, MEA updates, SRAM cache filtering and
//! remap-table lookups. These track the simulator's own performance and
//! give a feel for the relative cost of each mechanism.

use baselines::{flat::FlatRemap, MeaCounters};
use criterion::{criterion_group, criterion_main, Criterion};
use dram::{DeviceConfig, DramAccess, DramDevice, DramSystem};
use hybrid2_core::xta::Xta;
use mem_cache::{CacheConfig, SetAssocCache};
use sim_types::rng::SplitMix64;
use sim_types::{AccessKind, Cycle, SectorId, TrafficClass};

fn xta_lookup(c: &mut Criterion) {
    let mut xta = Xta::new(1024, 16, 8, 9);
    // 64 sets x 16 ways: sector id i maps to set i % 64, filling evenly.
    for i in 0..1024u64 {
        xta.insert(Xta::entry_for_fm_fetch(
            SectorId::new(i),
            sim_types::NmLoc::new(i),
            sim_types::FmLoc::new(i),
            0,
            false,
        ));
    }
    let mut rng = SplitMix64::new(1);
    c.bench_function("micro/xta_lookup_hit", |b| {
        b.iter(|| {
            let s = SectorId::new(rng.gen_range(1024));
            xta.lookup_mut(s).map(|e| e.counter)
        })
    });
}

fn dram_access(c: &mut Criterion) {
    let mut dev = DramDevice::new(DeviceConfig::hbm2_near_memory());
    let mut rng = SplitMix64::new(2);
    let mut t = Cycle::ZERO;
    c.bench_function("micro/dram_device_access", |b| {
        b.iter(|| {
            let done = dev.access(DramAccess {
                addr: rng.gen_range(1 << 26),
                bytes: 64,
                kind: AccessKind::Read,
                class: TrafficClass::Demand,
                at: t,
            });
            t = done;
            done
        })
    });
}

fn mea_update(c: &mut Criterion) {
    let mut mea = MeaCounters::new(64);
    let mut rng = SplitMix64::new(3);
    c.bench_function("micro/mea_observe", |b| {
        b.iter(|| {
            // 70% hot keys, 30% noise: the MemPod steady state.
            let key = if rng.chance(7, 10) {
                rng.gen_range(32)
            } else {
                1000 + rng.gen_range(100_000)
            };
            mea.observe(key);
        })
    });
}

fn sram_cache_filter(c: &mut Criterion) {
    let mut l1 = SetAssocCache::new(CacheConfig::l1());
    let mut rng = SplitMix64::new(4);
    c.bench_function("micro/sram_cache_access", |b| {
        b.iter(|| {
            let hot = rng.chance(9, 10);
            let span: u64 = if hot { 32 * 1024 } else { 1 << 24 };
            l1.access(rng.gen_range(span / 64) * 64, false).hit
        })
    });
}

fn remap_locate(c: &mut Criterion) {
    let mut flat = FlatRemap::new(2048, 512, 8192, 64 * 1024);
    let mut dram = DramSystem::paper_default();
    let mut rng = SplitMix64::new(5);
    c.bench_function("micro/flat_remap_locate", |b| {
        b.iter(|| {
            let block = rng.gen_range(512 + 8192);
            flat.locate(block, Cycle::ZERO, &mut dram)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = xta_lookup, dram_access, mea_update, sram_cache_filter, remap_locate
}
criterion_main!(benches);
