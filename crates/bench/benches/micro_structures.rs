//! Microbenchmarks of the hot structures on the simulated critical path:
//! XTA lookups, DRAM device accesses, MEA updates, SRAM cache filtering and
//! remap-table lookups. These track the simulator's own performance and
//! give a feel for the relative cost of each mechanism.

use baselines::{flat::FlatRemap, MeaCounters};
use criterion::{criterion_group, criterion_main, Criterion};
use dram::{DeviceConfig, DramAccess, DramDevice, DramSystem};
use hybrid2_core::xta::Xta;
use mem_cache::{CacheConfig, SetAssocCache};
use sim::PageAllocator;
use sim_types::rng::SplitMix64;
use sim_types::{AccessKind, Cycle, SectorId, TrafficClass, VAddr};

fn xta_lookup(c: &mut Criterion) {
    let mut xta = Xta::new(1024, 16, 8, 9);
    // 64 sets x 16 ways: sector id i maps to set i % 64, filling evenly.
    for i in 0..1024u64 {
        xta.insert(Xta::entry_for_fm_fetch(
            SectorId::new(i),
            sim_types::NmLoc::new(i),
            sim_types::FmLoc::new(i),
            0,
            false,
        ));
    }
    let mut rng = SplitMix64::new(1);
    c.bench_function("micro/xta_lookup_hit", |b| {
        b.iter(|| {
            let s = SectorId::new(rng.gen_range(1024));
            xta.lookup_mut(s).map(|e| e.counter)
        })
    });
}

fn dram_access(c: &mut Criterion) {
    let mut dev = DramDevice::new(DeviceConfig::hbm2_near_memory());
    let mut rng = SplitMix64::new(2);
    let mut t = Cycle::ZERO;
    c.bench_function("micro/dram_device_access", |b| {
        b.iter(|| {
            let done = dev.access(DramAccess {
                addr: rng.gen_range(1 << 26),
                bytes: 64,
                kind: AccessKind::Read,
                class: TrafficClass::Demand,
                at: t,
            });
            t = done;
            done
        })
    });
}

fn mea_update(c: &mut Criterion) {
    let mut mea = MeaCounters::new(64);
    let mut rng = SplitMix64::new(3);
    c.bench_function("micro/mea_observe", |b| {
        b.iter(|| {
            // 70% hot keys, 30% noise: the MemPod steady state.
            let key = if rng.chance(7, 10) {
                rng.gen_range(32)
            } else {
                1000 + rng.gen_range(100_000)
            };
            mea.observe(key);
        })
    });
}

fn sram_cache_filter(c: &mut Criterion) {
    let mut l1 = SetAssocCache::new(CacheConfig::l1());
    let mut rng = SplitMix64::new(4);
    c.bench_function("micro/sram_cache_access", |b| {
        b.iter(|| {
            let hot = rng.chance(9, 10);
            let span: u64 = if hot { 32 * 1024 } else { 1 << 24 };
            l1.access(rng.gen_range(span / 64) * 64, false).hit
        })
    });
}

fn remap_locate(c: &mut Criterion) {
    let mut flat = FlatRemap::new(2048, 512, 8192, 64 * 1024);
    let mut dram = DramSystem::paper_default();
    let mut rng = SplitMix64::new(5);
    c.bench_function("micro/flat_remap_locate", |b| {
        b.iter(|| {
            let block = rng.gen_range(512 + 8192);
            flat.locate(block, Cycle::ZERO, &mut dram)
        })
    });
}

fn page_translate(c: &mut Criterion) {
    // Hit path: every op after a page's first touch takes this route.
    let mut alloc = PageAllocator::new(1 << 30, 11);
    for v in 0..4096u64 {
        alloc.translate(0, VAddr::new(v * 4096));
    }
    let mut rng = SplitMix64::new(12);
    c.bench_function("micro/page_translate_hit", |b| {
        b.iter(|| alloc.translate(0, VAddr::new(rng.gen_range(4096) * 4096 + 8)))
    });

    // Cold path: first touch allocates a random free frame. The allocator
    // is sized far beyond what calibration + samples can exhaust so every
    // iteration really is a fresh page.
    let mut cold = PageAllocator::new(1 << 35, 13);
    let mut next = 0u64;
    c.bench_function("micro/page_translate_cold", |b| {
        b.iter(|| {
            next += 1;
            cold.translate(0, VAddr::new(next * 4096))
        })
    });
}

fn scheme_dispatch(c: &mut Criterion) {
    use dram::MemoryScheme;
    use hybrid2_core::{Dcmc, Hybrid2Config};
    use sim::{build_scheme, NmRatio, ScaledSystem, SchemeKind};
    use sim_types::{MemReq, PAddr};

    // Same scheme, same request stream, two dispatch mechanisms: the
    // devirtualized AnyScheme enum the Machine now uses, and the
    // Box<dyn MemoryScheme> call it replaced (the trait still exists, so
    // the old shape needs no compile gate to stay benchmarkable).
    let sys = ScaledSystem::new(NmRatio::OneGb, 1024);

    let mut enum_scheme = build_scheme(SchemeKind::Hybrid2, &sys);
    // One span for both benches, so the two request streams (same RNG
    // seed) are byte-identical and only the dispatch mechanism differs.
    let span = enum_scheme.flat_capacity_bytes() / 2;
    let mut dram = DramSystem::paper_default();
    let mut rng = SplitMix64::new(6);
    let mut t = Cycle::ZERO;
    c.bench_function("micro/scheme_dispatch_enum", |b| {
        b.iter(|| {
            let req = MemReq::read(PAddr::new(rng.gen_range(span / 64) * 64), 64, t);
            let served = enum_scheme.access(&req, &mut dram);
            t = served.done;
            served
        })
    });

    let cfg = Hybrid2Config::scaled_down(1024).expect("smoke-scale config is valid");
    let mut boxed: Box<dyn MemoryScheme> =
        Box::new(Dcmc::new(cfg).expect("smoke-scale Dcmc builds"));
    assert_eq!(
        boxed.flat_capacity_bytes() / 2,
        span,
        "both dispatch benches must drive the same address span"
    );
    let mut dram = DramSystem::paper_default();
    let mut rng = SplitMix64::new(6);
    let mut t = Cycle::ZERO;
    c.bench_function("micro/scheme_dispatch_boxed", |b| {
        b.iter(|| {
            let req = MemReq::read(PAddr::new(rng.gen_range(span / 64) * 64), 64, t);
            let served = boxed.access(&req, &mut dram);
            t = served.done;
            served
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = xta_lookup, dram_access, mea_update, sram_cache_filter, remap_locate,
        page_translate, scheme_dispatch
}
criterion_main!(benches);
