//! Scenario-engine throughput: one `run_one` per scenario family under
//! Hybrid2 (composite-generator overhead rides the same per-op pipeline as
//! `e2e_throughput`), plus the whole 8-scenario MAIN-scheme grid through
//! the work-stealing `Matrix` — the number the scheduler swap is judged
//! against. Captured to `BENCH_scenarios.json` via `CRITERION_SHIM_JSON`.

use criterion::{criterion_group, criterion_main, Criterion};
use sim::{scenario, EvalConfig, NmRatio, SchemeKind};
use workloads::scenarios;

fn scenario_throughput(c: &mut Criterion) {
    let cfg = EvalConfig::smoke();
    let mut group = c.benchmark_group("scenario");
    group.sample_size(7);
    // One phased and one mix scenario: composite-generator cost end to end.
    for name in ["tile-chase-drift", "stream-chase"] {
        let spec = scenarios::workload_of(name).expect("scenario exists");
        group.bench_function(format!("run_one/{name}"), |b| {
            b.iter(|| sim::run_one(SchemeKind::Hybrid2, spec, NmRatio::OneGb, &cfg))
        });
    }
    group.finish();

    // The full grid through the work-stealing matrix, at a reduced window
    // so one sample stays in bench territory.
    let grid_cfg = EvalConfig {
        instrs_per_core: 100_000,
        ..EvalConfig::smoke()
    };
    let scens = scenario::select(scenarios::builtin(), "all").expect("catalog is non-empty");
    let mut grid = c.benchmark_group("scenario_grid");
    grid.sample_size(3);
    grid.bench_function("matrix/all8_main6", |b| {
        b.iter(|| scenario::run_grid(&scens, NmRatio::OneGb, &grid_cfg))
    });
    grid.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = scenario_throughput
}
criterion_main!(benches);
