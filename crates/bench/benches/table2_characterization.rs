//! Regenerates Table 2 (benchmark characterization) and times one
//! baseline characterization run.

use bench::{bench_cfg, kernel_cfg, print_reports};
use criterion::{criterion_group, criterion_main, Criterion};
use sim::experiments::table2_characterization;
use sim::{run_one, NmRatio, SchemeKind};
use workloads::catalog;

fn bench(c: &mut Criterion) {
    print_reports(&table2_characterization(&bench_cfg(), true));
    let cfg = kernel_cfg();
    let spec = catalog::by_name("lbm").unwrap();
    c.bench_function("table2/baseline_run_lbm", |b| {
        b.iter(|| run_one(SchemeKind::Baseline, spec, NmRatio::OneGb, &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
