//! Shared plumbing for the criterion benchmark harness.
//!
//! Every bench target in `benches/` regenerates one table or figure of the
//! paper at a reduced scale — it *prints* the paper-style series once, then
//! times a representative kernel so `cargo bench` also tracks simulator
//! performance regressions. `EXPERIMENTS.md` records the paper-vs-measured
//! comparison produced at the default evaluation scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sim::report::Report;
use sim::runlog::RunLog;
use sim::EvalConfig;

/// The benchmark-scale evaluation configuration: 1/1024 capacities with a
/// proportional ~1 M-instruction window, small enough that every figure
/// regenerates in seconds.
pub fn bench_cfg() -> EvalConfig {
    EvalConfig {
        scale_den: 1024,
        instrs_per_core: 150_000,
        seed: 2020,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        ..EvalConfig::smoke()
    }
}

/// A minimal configuration for the timed kernel inside each bench.
pub fn kernel_cfg() -> EvalConfig {
    EvalConfig {
        scale_den: 1024,
        instrs_per_core: 30_000,
        seed: 9,
        threads: 1,
        ..EvalConfig::smoke()
    }
}

/// Prints the regenerated series for the humans reading the bench log.
pub fn print_reports(reports: &[Report]) {
    for r in reports {
        println!("{}", r.render());
    }
}

/// Opens a run-record log in the directory named by `RUNLOG_DIR`, if set —
/// the benches' opt-in telemetry hook (CI's e2e job sets it so bench runs
/// land in the same queryable store as `reproduce` runs). A bench must
/// never fail because telemetry could not be written, so errors are
/// reported to stderr and swallowed into `None`.
pub fn runlog_from_env(context: &str) -> Option<RunLog> {
    let dir = std::env::var_os("RUNLOG_DIR")?;
    match RunLog::create(std::path::Path::new(&dir), context) {
        Ok(log) => Some(log),
        Err(e) => {
            eprintln!("bench: cannot open run log: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_sane() {
        assert!(bench_cfg().scale_den >= 256);
        assert!(kernel_cfg().instrs_per_core <= bench_cfg().instrs_per_core);
    }
}
