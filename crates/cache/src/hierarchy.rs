//! The three-level on-chip cache hierarchy of Table 1.
//!
//! Private L1 (64 KB, 4-way, 1 cycle) and L2 (256 KB, 8-way, 9 cycles) per
//! core plus one shared, non-inclusive 8 MB 16-way LLC (14 cycles). The
//! hierarchy filters the raw trace into the LLC-miss/writeback stream that
//! the memory schemes see, and reports the events LGM and DFC observe.

use sim_types::{AccessKind, PAddr};

use crate::set_assoc::{CacheConfig, CacheStats, SetAssocCache};

/// Latency and shape configuration for the hierarchy.
#[derive(Clone, Debug)]
pub struct HierarchyConfig {
    /// Number of cores (private L1/L2 instances).
    pub cores: usize,
    /// Per-core L1 configuration.
    pub l1: CacheConfig,
    /// Per-core L2 configuration.
    pub l2: CacheConfig,
    /// Shared LLC configuration.
    pub llc: CacheConfig,
    /// L1 hit latency in cycles (Table 1: 1).
    pub l1_latency: u64,
    /// L2 hit latency in cycles (Table 1: 9).
    pub l2_latency: u64,
    /// LLC hit latency in cycles (Table 1: 14).
    pub llc_latency: u64,
}

impl HierarchyConfig {
    /// The paper's Table 1 hierarchy for `cores` cores.
    pub fn paper_default(cores: usize) -> Self {
        HierarchyConfig {
            cores,
            l1: CacheConfig::l1(),
            l2: CacheConfig::l2(),
            llc: CacheConfig::llc(),
            l1_latency: 1,
            l2_latency: 9,
            llc_latency: 14,
        }
    }

    /// A proportionally scaled hierarchy for reduced-scale experiments:
    /// capacities multiplied by `num/den` (minimum one set per cache).
    ///
    /// # Panics
    ///
    /// Panics if the scaled configuration is structurally invalid (cannot
    /// happen for power-of-two `den` up to 1024).
    pub fn scaled(cores: usize, num: u64, den: u64) -> Self {
        let scale = |cap: u64, assoc: u32, line: u64| {
            let scaled = (cap * num / den).max(u64::from(assoc) * line);
            // Round down to the nearest valid power-of-two set count.
            let set_bytes = u64::from(assoc) * line;
            let sets = (scaled / set_bytes).max(1);
            let sets = if sets.is_power_of_two() {
                sets
            } else {
                sets.next_power_of_two() / 2
            };
            CacheConfig::new(sets * set_bytes, assoc, line).expect("scaled cache config")
        };
        HierarchyConfig {
            cores,
            l1: scale(64 * 1024, 4, 64),
            l2: scale(256 * 1024, 8, 64),
            llc: scale(8 * 1024 * 1024, 16, 64),
            l1_latency: 1,
            l2_latency: 9,
            llc_latency: 14,
        }
    }
}

/// What happened below the core for one access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// On-chip latency component in cycles (hit level latency; for LLC
    /// misses this is the LLC lookup latency — memory latency is added by
    /// the memory scheme).
    pub latency: u64,
    /// `Some(line address)` if the access missed the LLC and must go to
    /// memory.
    pub llc_miss: Option<PAddr>,
    /// A dirty LLC victim that must be written back to memory.
    pub writeback: Option<PAddr>,
    /// LLC events observed for this access (used by LGM/DFC).
    pub llc_fill: Option<PAddr>,
    /// Clean or dirty line evicted from the LLC (dirty ones also appear in
    /// `writeback`).
    pub llc_evict: Option<PAddr>,
}

/// Per-level aggregate statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Lookups at this level.
    pub accesses: u64,
    /// Hits at this level.
    pub hits: u64,
}

/// Aggregate hierarchy statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 totals across cores.
    pub l1: LevelStats,
    /// L2 totals across cores.
    pub l2: LevelStats,
    /// Shared LLC totals.
    pub llc: LevelStats,
    /// Dirty LLC evictions sent to memory.
    pub writebacks: u64,
}

impl HierarchyStats {
    /// LLC misses (demand stream to memory).
    pub fn llc_misses(&self) -> u64 {
        self.llc.accesses - self.llc.hits
    }

    /// Misses per kilo-instruction given a retired-instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.llc_misses() as f64 * 1000.0 / instructions as f64
        }
    }
}

/// The private-L1/L2 + shared-LLC filter.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    llc: SetAssocCache,
    stats: HierarchyStats,
}

/// An LLC-level event fed to observers such as LGM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemLevelEvent {
    /// A line was filled into the LLC.
    Fill(PAddr),
    /// A line left the LLC (`dirty` = needs memory writeback).
    Evict {
        /// Address of the evicted line.
        addr: PAddr,
        /// Whether it was dirty.
        dirty: bool,
    },
}

impl Hierarchy {
    /// Builds the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores` is zero.
    pub fn new(cfg: HierarchyConfig) -> Self {
        assert!(cfg.cores > 0, "hierarchy needs at least one core");
        Hierarchy {
            l1: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l1)).collect(),
            l2: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l2)).collect(),
            llc: SetAssocCache::new(cfg.llc),
            stats: HierarchyStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// LLC line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.cfg.llc.line_size()
    }

    /// True if `addr`'s line is resident in the shared LLC (LGM's probe).
    pub fn llc_contains(&self, addr: PAddr) -> bool {
        self.llc.probe(addr.raw())
    }

    /// Marks `addr`'s LLC line dirty if resident (LGM's "mark instead of
    /// migrate" optimization); returns whether it was resident.
    pub fn llc_mark_dirty(&mut self, addr: PAddr) -> bool {
        self.llc.mark_dirty(addr.raw())
    }

    /// The private-hit fast path of the epoch-batched machine loop: if
    /// `addr`'s line is resident in `core`'s L1, performs the access with
    /// mutations identical to [`Hierarchy::access`]'s L1-hit path (L1 LRU
    /// stamp, dirty bit, per-cache and aggregate counters) and returns
    /// `true`. Otherwise mutates **nothing** and returns `false`; the
    /// caller must replay the op through [`Hierarchy::access`] once it is
    /// globally ordered, and that replay counts the access exactly once.
    ///
    /// Only L1 hits qualify as core-local: an L1 miss can displace a dirty
    /// L1 victim into L2 and from there spill into the shared LLC, so
    /// everything below L1 belongs to the globally ordered path.
    ///
    /// This is the probe/credit split the *parallel* machine loop pulls
    /// apart: a speculation thread owning a detached L1 bank performs the
    /// bank half ([`SetAssocCache::access_if_hit`]) privately — it cannot
    /// touch these shared aggregate counters — and the hits are credited
    /// later, in one deterministic sum, via
    /// [`Hierarchy::credit_speculated_l1_hits`].
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[inline]
    pub fn l1_access_fast(&mut self, core: usize, addr: PAddr, kind: AccessKind) -> bool {
        assert!(core < self.cfg.cores, "core {core} out of range");
        if self.l1[core].access_if_hit(addr.raw(), kind.is_write()) {
            self.stats.l1.accesses += 1;
            self.stats.l1.hits += 1;
            true
        } else {
            false
        }
    }

    /// Read-only residency probe of `core`'s private L1: `true` iff
    /// `addr`'s line is resident. Mutates nothing — not the LRU clock, not
    /// a counter — so a speculative probe can never perturb shared state.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[inline]
    pub fn l1_probe(&self, core: usize, addr: PAddr) -> bool {
        assert!(core < self.cfg.cores, "core {core} out of range");
        self.l1[core].probe(addr.raw())
    }

    /// Credits `hits` speculative L1 hits into the aggregate counters — the
    /// deferred half of [`Hierarchy::l1_access_fast`] for hits consumed on
    /// detached banks (see [`Hierarchy::detach_l1`]). Order-independent
    /// (u64 sums), so crediting per-core side buffers in any grouping
    /// yields byte-identical statistics.
    pub fn credit_speculated_l1_hits(&mut self, hits: u64) {
        self.stats.l1.accesses += hits;
        self.stats.l1.hits += hits;
    }

    /// Detaches the private L1 banks so the parallel machine loop can hand
    /// each speculation worker exclusive ownership of its core's bank.
    /// While detached, per-core accesses must go through
    /// [`Hierarchy::access_detached`]; reattach with
    /// [`Hierarchy::attach_l1`] before using [`Hierarchy::access`] again.
    pub fn detach_l1(&mut self) -> Vec<SetAssocCache> {
        std::mem::take(&mut self.l1)
    }

    /// Restores banks taken by [`Hierarchy::detach_l1`].
    ///
    /// # Panics
    ///
    /// Panics if the bank count does not match the configured core count.
    pub fn attach_l1(&mut self, banks: Vec<SetAssocCache>) {
        assert_eq!(banks.len(), self.cfg.cores, "L1 bank count mismatch");
        self.l1 = banks;
    }

    /// Runs one access from `core` through the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range, or if the L1 banks are currently
    /// detached (see [`Hierarchy::detach_l1`]).
    pub fn access(&mut self, core: usize, addr: PAddr, kind: AccessKind) -> Outcome {
        assert!(core < self.cfg.cores, "core {core} out of range");
        let Hierarchy {
            cfg,
            l1,
            l2,
            llc,
            stats,
        } = self;
        access_impl(cfg, &mut l1[core], &mut l2[core], llc, stats, addr, kind)
    }

    /// [`Hierarchy::access`] with `core`'s private L1 bank held outside the
    /// hierarchy — the parallel machine loop's drain path, where banks live
    /// in per-core slots that speculation workers take ownership of. Byte-
    /// identical to `access` on the same bank state.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access_detached(
        &mut self,
        l1: &mut SetAssocCache,
        core: usize,
        addr: PAddr,
        kind: AccessKind,
    ) -> Outcome {
        assert!(core < self.cfg.cores, "core {core} out of range");
        let Hierarchy {
            cfg,
            l2,
            llc,
            stats,
            ..
        } = self;
        access_impl(cfg, l1, &mut l2[core], llc, stats, addr, kind)
    }

    /// Per-level raw cache statistics (L1s, L2s, LLC) for diagnostics.
    pub fn level_stats(&self) -> (Vec<CacheStats>, Vec<CacheStats>, CacheStats) {
        (
            self.l1.iter().map(|c| *c.stats()).collect(),
            self.l2.iter().map(|c| *c.stats()).collect(),
            *self.llc.stats(),
        )
    }
}

/// The body of [`Hierarchy::access`], over explicitly split borrows so the
/// same path serves attached banks (`access`) and detached ones
/// (`access_detached`) without duplicating the spill logic.
fn access_impl(
    cfg: &HierarchyConfig,
    l1: &mut SetAssocCache,
    l2: &mut SetAssocCache,
    llc: &mut SetAssocCache,
    stats: &mut HierarchyStats,
    addr: PAddr,
    kind: AccessKind,
) -> Outcome {
    let a = addr.raw();
    let write = kind.is_write();

    // L1.
    stats.l1.accesses += 1;
    let l1_out = l1.access(a, write);
    if l1_out.hit {
        stats.l1.hits += 1;
        return Outcome {
            latency: cfg.l1_latency,
            llc_miss: None,
            writeback: None,
            llc_fill: None,
            llc_evict: None,
        };
    }
    // L1 victim writebacks are absorbed by L2 (allocate-on-write below).
    let l1_victim = l1_out.evicted;

    // L2. Inserting a dirty L1 victim may itself displace a dirty L2
    // line, which must continue down to the LLC.
    stats.l2.accesses += 1;
    let mut spilled_by_l1_victim = None;
    if let Some(v) = l1_victim {
        if v.dirty {
            spilled_by_l1_victim = l2.access(v.line_addr, true).evicted;
        }
    }
    let l2_out = l2.access(a, false);
    let l2_victim = l2_out.evicted;
    if l2_out.hit {
        stats.l2.hits += 1;
        // Even on an L2 hit, displaced L2 victims may spill to the LLC.
        let wb = spill_to_llc(llc, stats, spilled_by_l1_victim)
            .or_else(|| spill_to_llc(llc, stats, l2_victim));
        return Outcome {
            latency: cfg.l2_latency,
            llc_miss: None,
            writeback: wb,
            llc_fill: None,
            llc_evict: None,
        };
    }

    // LLC (shared).
    stats.llc.accesses += 1;
    let spill = spill_to_llc(llc, stats, spilled_by_l1_victim)
        .or_else(|| spill_to_llc(llc, stats, l2_victim));
    let llc_out = llc.access(a, false);
    let mut writeback = spill;
    let mut llc_evict = None;
    if let Some(v) = llc_out.evicted {
        llc_evict = Some(PAddr::new(v.line_addr));
        if v.dirty {
            stats.writebacks += 1;
            // At most one dirty writeback per access reaches memory in
            // this model; prefer the demand-path victim.
            writeback = Some(PAddr::new(v.line_addr));
        }
    }
    if llc_out.hit {
        stats.llc.hits += 1;
        return Outcome {
            latency: cfg.llc_latency,
            llc_miss: None,
            writeback,
            llc_fill: None,
            llc_evict: None,
        };
    }

    Outcome {
        latency: cfg.llc_latency,
        llc_miss: Some(PAddr::new(llc.line_base(a))),
        writeback,
        llc_fill: Some(PAddr::new(llc.line_base(a))),
        llc_evict,
    }
}

/// Writes a dirty L2 victim into the LLC; returns a dirty LLC victim
/// displaced by the spill, if any.
fn spill_to_llc(
    llc: &mut SetAssocCache,
    stats: &mut HierarchyStats,
    victim: Option<crate::set_assoc::Evicted>,
) -> Option<PAddr> {
    let v = victim?;
    if !v.dirty {
        return None;
    }
    let out = llc.access(v.line_addr, true);
    let ev = out.evicted?;
    if ev.dirty {
        stats.writebacks += 1;
        Some(PAddr::new(ev.line_addr))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        // Small hierarchy: L1 256 B/2-way, L2 512 B/2-way, LLC 2 KB/4-way.
        Hierarchy::new(HierarchyConfig {
            cores: 2,
            l1: CacheConfig::new(256, 2, 64).unwrap(),
            l2: CacheConfig::new(512, 2, 64).unwrap(),
            llc: CacheConfig::new(2048, 4, 64).unwrap(),
            l1_latency: 1,
            l2_latency: 9,
            llc_latency: 14,
        })
    }

    #[test]
    fn repeat_access_hits_l1() {
        let mut h = tiny();
        let a = PAddr::new(0x1000);
        let first = h.access(0, a, AccessKind::Read);
        assert!(first.llc_miss.is_some());
        let second = h.access(0, a, AccessKind::Read);
        assert!(second.llc_miss.is_none());
        assert_eq!(second.latency, 1);
        assert_eq!(h.stats().l1.hits, 1);
    }

    #[test]
    fn private_l1s_do_not_share() {
        let mut h = tiny();
        let a = PAddr::new(0x1000);
        h.access(0, a, AccessKind::Read);
        // Core 1 misses its own L1/L2 but hits the shared LLC.
        let out = h.access(1, a, AccessKind::Read);
        assert!(out.llc_miss.is_none());
        assert_eq!(out.latency, 14);
        assert_eq!(h.stats().llc.hits, 1);
    }

    #[test]
    fn paper_default_shapes() {
        let h = Hierarchy::new(HierarchyConfig::paper_default(8));
        assert_eq!(h.line_size(), 64);
        assert_eq!(h.config().llc.capacity(), 8 * 1024 * 1024);
    }

    #[test]
    fn llc_miss_reports_line_address() {
        let mut h = tiny();
        let out = h.access(0, PAddr::new(0x1234), AccessKind::Read);
        assert_eq!(out.llc_miss, Some(PAddr::new(0x1200)));
        assert_eq!(out.llc_fill, Some(PAddr::new(0x1200)));
    }

    #[test]
    fn mpki_accounting() {
        let mut h = tiny();
        for i in 0..10u64 {
            h.access(0, PAddr::new(i * 0x10000), AccessKind::Read);
        }
        assert_eq!(h.stats().llc_misses(), 10);
        assert!((h.stats().mpki(1000) - 10.0).abs() < 1e-12);
        assert_eq!(h.stats().mpki(0), 0.0);
    }

    #[test]
    fn dirty_data_eventually_writes_back() {
        let mut h = tiny();
        // Write lines mapping to the same LLC set until a dirty victim
        // reaches memory. LLC: 2048/4-way/64B -> 8 sets; stride 8*64=512.
        let mut saw_writeback = false;
        for i in 0..64u64 {
            let out = h.access(0, PAddr::new(i * 512), AccessKind::Write);
            saw_writeback |= out.writeback.is_some();
        }
        assert!(saw_writeback, "dirty lines must eventually write back");
        assert!(h.stats().writebacks > 0);
    }

    #[test]
    fn llc_probe_and_mark_dirty() {
        let mut h = tiny();
        let a = PAddr::new(0x4000);
        h.access(0, a, AccessKind::Read);
        assert!(h.llc_contains(a));
        assert!(h.llc_mark_dirty(a));
        assert!(!h.llc_contains(PAddr::new(0x8000)));
        assert!(!h.llc_mark_dirty(PAddr::new(0x8000)));
    }

    #[test]
    fn scaled_config_preserves_shape() {
        let c = HierarchyConfig::scaled(4, 1, 64);
        assert_eq!(c.l1.line_size(), 64);
        assert!(c.llc.capacity() >= c.l2.capacity());
        assert!(c.llc.capacity() <= 8 * 1024 * 1024);
        let _ = Hierarchy::new(c);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        let mut h = tiny();
        h.access(7, PAddr::new(0), AccessKind::Read);
    }

    /// Interleaving `l1_access_fast` (replaying its misses through the full
    /// path) with a reference hierarchy driven only by `access` must leave
    /// byte-identical state and statistics.
    #[test]
    fn l1_fast_path_is_equivalent_to_full_access() {
        let mut fast = tiny();
        let mut reference = tiny();
        let ops: [(usize, u64, AccessKind); 8] = [
            (0, 0x1000, AccessKind::Read),
            (0, 0x1000, AccessKind::Write), // L1 hit
            (1, 0x1000, AccessKind::Read),  // other core: own L1 miss
            (0, 0x1008, AccessKind::Read),  // L1 hit, same line
            (0, 0x2000, AccessKind::Write),
            (0, 0x2010, AccessKind::Read), // L1 hit
            (1, 0x1030, AccessKind::Read), // L1 hit on core 1
            (0, 0x1000, AccessKind::Read), // still an L1 hit
        ];
        for (core, addr, kind) in ops {
            let a = PAddr::new(addr);
            if !fast.l1_access_fast(core, a, kind) {
                fast.access(core, a, kind);
            }
            reference.access(core, a, kind);
        }
        assert_eq!(fast.stats().l1.accesses, reference.stats().l1.accesses);
        assert_eq!(fast.stats().l1.hits, reference.stats().l1.hits);
        assert_eq!(fast.stats().l2.accesses, reference.stats().l2.accesses);
        assert_eq!(fast.stats().llc.accesses, reference.stats().llc.accesses);
        let (l1a, l2a, llca) = fast.level_stats();
        let (l1b, l2b, llcb) = reference.level_stats();
        assert_eq!(l1a, l1b);
        assert_eq!(l2a, l2b);
        assert_eq!(llca, llcb);
    }

    /// Driving a hierarchy through detached banks (`access_detached` for
    /// misses, `access_if_hit` on the bank + deferred credit for hits) must
    /// be byte-identical to the attached fast path.
    #[test]
    fn detached_banks_are_equivalent_to_attached() {
        let mut det = tiny();
        let mut reference = tiny();
        let ops: [(usize, u64, AccessKind); 8] = [
            (0, 0x1000, AccessKind::Read),
            (0, 0x1000, AccessKind::Write),
            (1, 0x1000, AccessKind::Read),
            (0, 0x1008, AccessKind::Read),
            (0, 0x2000, AccessKind::Write),
            (0, 0x2010, AccessKind::Read),
            (1, 0x1030, AccessKind::Read),
            (0, 0x1000, AccessKind::Read),
        ];
        let mut banks = det.detach_l1();
        let mut speculated_hits = 0u64;
        for (core, addr, kind) in ops {
            let a = PAddr::new(addr);
            if banks[core].access_if_hit(a.raw(), kind.is_write()) {
                speculated_hits += 1;
            } else {
                det.access_detached(&mut banks[core], core, a, kind);
            }
            if !reference.l1_access_fast(core, a, kind) {
                reference.access(core, a, kind);
            }
        }
        det.attach_l1(banks);
        det.credit_speculated_l1_hits(speculated_hits);
        assert_eq!(det.stats(), reference.stats());
        assert_eq!(det.level_stats(), reference.level_stats());
    }

    /// `l1_probe` is a pure residency query: no counters, no LRU motion.
    #[test]
    fn l1_probe_is_read_only() {
        let mut h = tiny();
        let a = PAddr::new(0x1000);
        assert!(!h.l1_probe(0, a));
        h.access(0, a, AccessKind::Read);
        let stats_before = h.stats().clone();
        let levels_before = h.level_stats();
        assert!(h.l1_probe(0, a));
        assert!(!h.l1_probe(1, a));
        assert_eq!(h.stats(), &stats_before);
        assert_eq!(h.level_stats(), levels_before);
    }

    #[test]
    #[should_panic(expected = "bank count mismatch")]
    fn attaching_wrong_bank_count_panics() {
        let mut h = tiny();
        let mut banks = h.detach_l1();
        banks.pop();
        h.attach_l1(banks);
    }

    #[test]
    fn l1_fast_path_miss_changes_nothing() {
        let mut h = tiny();
        h.access(0, PAddr::new(0x1000), AccessKind::Read);
        let before = h.stats().clone();
        assert!(!h.l1_access_fast(1, PAddr::new(0x1000), AccessKind::Read));
        assert!(!h.l1_access_fast(0, PAddr::new(0x9000), AccessKind::Write));
        assert_eq!(h.stats().l1.accesses, before.l1.accesses);
        assert_eq!(h.stats().llc.accesses, before.llc.accesses);
    }

    #[test]
    fn streaming_misses_every_line() {
        let mut h = tiny();
        let mut misses = 0;
        for i in 0..100u64 {
            if h.access(0, PAddr::new(i * 64), AccessKind::Read)
                .llc_miss
                .is_some()
            {
                misses += 1;
            }
        }
        assert_eq!(misses, 100, "cold streaming never hits");
    }
}
