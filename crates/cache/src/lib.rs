//! Set-associative SRAM cache models and the on-chip cache hierarchy.
//!
//! The Hybrid2 system (Table 1) filters every core's memory stream through
//! private L1 (64 KB, 4-way) and L2 (256 KB, 8-way) caches and a shared
//! 8 MB 16-way last-level cache before anything reaches the hybrid memory
//! controller. This crate provides:
//!
//! * [`SetAssocCache`] — a generic write-back, allocate-on-miss,
//!   LRU-replacement cache used for all three levels *and* for the on-chip
//!   metadata structures of the schemes (remap caches, DFC's fused tags).
//! * [`Hierarchy`] — the three-level filter; it turns per-core accesses into
//!   an LLC-miss/writeback stream and exposes the LLC observation hooks that
//!   the LGM and DFC schemes need (fill/evict events, residency probes).
//!
//! # Example
//!
//! ```
//! use mem_cache::{CacheConfig, SetAssocCache};
//!
//! let mut c = SetAssocCache::new(CacheConfig::new(1024, 4, 64)?);
//! assert!(!c.access(0x40, false).hit); // cold miss
//! assert!(c.access(0x40, false).hit);  // now resident
//! # Ok::<(), mem_cache::CacheConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hierarchy;
mod set_assoc;

pub use hierarchy::{
    Hierarchy, HierarchyConfig, HierarchyStats, LevelStats, MemLevelEvent, Outcome,
};
pub use set_assoc::{Access, CacheConfig, CacheConfigError, CacheStats, Evicted, SetAssocCache};
