//! A generic set-associative, write-back, LRU cache.

use core::fmt;

/// Errors returned when constructing an invalid [`CacheConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheConfigError {
    /// Capacity must be non-zero and divisible into sets.
    BadCapacity {
        /// Offending capacity in bytes.
        capacity: u64,
        /// Bytes per set (`assoc * line`).
        set_bytes: u64,
    },
    /// Associativity must be non-zero.
    ZeroAssociativity,
    /// Line size must be a non-zero power of two.
    BadLineSize(u64),
    /// The derived set count must be a power of two (index bits).
    SetsNotPowerOfTwo(u64),
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CacheConfigError::BadCapacity {
                capacity,
                set_bytes,
            } => write!(
                f,
                "capacity {capacity} is not a non-zero multiple of the set size {set_bytes}"
            ),
            CacheConfigError::ZeroAssociativity => f.write_str("associativity must be non-zero"),
            CacheConfigError::BadLineSize(l) => {
                write!(f, "line size {l} is not a non-zero power of two")
            }
            CacheConfigError::SetsNotPowerOfTwo(s) => {
                write!(f, "derived set count {s} is not a power of two")
            }
        }
    }
}

impl std::error::Error for CacheConfigError {}

/// Size/shape of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    capacity: u64,
    assoc: u32,
    line: u64,
    sets: u64,
}

impl CacheConfig {
    /// Creates a configuration of `capacity` bytes, `assoc` ways and `line`
    /// bytes per line.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheConfigError`] unless capacity divides evenly into a
    /// power-of-two number of sets.
    pub fn new(capacity: u64, assoc: u32, line: u64) -> Result<Self, CacheConfigError> {
        if assoc == 0 {
            return Err(CacheConfigError::ZeroAssociativity);
        }
        if line == 0 || !line.is_power_of_two() {
            return Err(CacheConfigError::BadLineSize(line));
        }
        let set_bytes = u64::from(assoc) * line;
        if capacity == 0 || !capacity.is_multiple_of(set_bytes) {
            return Err(CacheConfigError::BadCapacity {
                capacity,
                set_bytes,
            });
        }
        let sets = capacity / set_bytes;
        if !sets.is_power_of_two() {
            return Err(CacheConfigError::SetsNotPowerOfTwo(sets));
        }
        Ok(CacheConfig {
            capacity,
            assoc,
            line,
            sets,
        })
    }

    /// Table 1 L1: 64 KB, 4-way, 64 B lines.
    pub fn l1() -> Self {
        Self::new(64 * 1024, 4, 64).expect("L1 constants are valid")
    }

    /// Table 1 L2: 256 KB, 8-way, 64 B lines.
    pub fn l2() -> Self {
        Self::new(256 * 1024, 8, 64).expect("L2 constants are valid")
    }

    /// Table 1 shared LLC: 8 MB, 16-way, 64 B lines.
    pub fn llc() -> Self {
        Self::new(8 * 1024 * 1024, 16, 64).expect("LLC constants are valid")
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Ways per set.
    pub fn associativity(&self) -> u32 {
        self.assoc
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.line
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }
}

/// One cache way, packed to 16 bytes so a 4-way set scan touches a single
/// cache line of the host: `meta` holds `stamp << 2 | dirty << 1 | valid`.
/// The LRU stamp is a per-cache access counter, so `stamp << 2` cannot
/// overflow before 2^62 accesses.
#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: u64,
    meta: u64,
}

impl Way {
    const VALID: u64 = 1;
    const DIRTY: u64 = 2;

    #[inline]
    fn filled(tag: u64, dirty: bool, stamp: u64) -> Way {
        Way {
            tag,
            meta: (stamp << 2) | (u64::from(dirty) << 1) | Way::VALID,
        }
    }

    #[inline]
    fn valid(self) -> bool {
        self.meta & Way::VALID != 0
    }

    #[inline]
    fn dirty(self) -> bool {
        self.meta & Way::DIRTY != 0
    }

    #[inline]
    fn stamp(self) -> u64 {
        self.meta >> 2
    }
}

/// A line evicted to make room for a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// First byte address of the evicted line.
    pub line_addr: u64,
    /// Whether the line was dirty (requires a writeback).
    pub dirty: bool,
}

/// Result of one [`SetAssocCache::access`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Whether the line was already resident.
    pub hit: bool,
    /// A victim displaced by the allocation, if any.
    pub evicted: Option<Evicted>,
}

/// Hit/miss counters for one cache instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that found the line resident.
    pub hits: u64,
    /// Dirty victims produced.
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Misses (`accesses - hits`).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Hit rate in [0, 1]; 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A write-back, allocate-on-miss, true-LRU set-associative cache.
///
/// Addresses are byte addresses; the cache works at [`CacheConfig::line_size`]
/// granularity. This structure is used for the L1/L2/LLC SRAM levels and for
/// scheme metadata caches (where "addresses" are table-entry indices scaled
/// by an entry size).
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    ways: Vec<Way>,
    stats: CacheStats,
    line_shift: u32,
    set_mask: u64,
    set_shift: u32,
    clock: u64,
}

impl SetAssocCache {
    /// Builds a cache from a validated configuration.
    pub fn new(cfg: CacheConfig) -> Self {
        let ways = vec![Way::default(); (cfg.sets * u64::from(cfg.assoc)) as usize];
        SetAssocCache {
            line_shift: cfg.line.trailing_zeros(),
            set_mask: cfg.sets - 1,
            set_shift: cfg.sets.trailing_zeros(),
            ways,
            stats: CacheStats::default(),
            clock: 0,
            cfg,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_of(&self, addr: u64) -> (u64, u64) {
        let line = addr >> self.line_shift;
        (line & self.set_mask, line >> self.set_shift)
    }

    fn set_range(&self, set: u64) -> core::ops::Range<usize> {
        let start = (set * u64::from(self.cfg.assoc)) as usize;
        start..start + self.cfg.assoc as usize
    }

    /// Looks up `addr`, allocating it on miss (possibly evicting a victim).
    /// `write` marks the line dirty.
    ///
    /// Hit scan and victim scan are fused into one pass over a set sliced
    /// out once: a hit returns immediately; otherwise the pass has already
    /// found the first invalid way (preferred victim) and the LRU way.
    pub fn access(&mut self, addr: u64, write: bool) -> Access {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag) = self.set_of(addr);
        let start = (set * u64::from(self.cfg.assoc)) as usize;
        let ways = &mut self.ways[start..start + self.cfg.assoc as usize];
        self.stats.accesses += 1;

        let mut lru = 0usize;
        let mut lru_stamp = u64::MAX;
        let mut invalid: Option<usize> = None;
        for (i, w) in ways.iter_mut().enumerate() {
            if w.valid() {
                if w.tag == tag {
                    w.meta = (clock << 2) | (w.meta & 3) | (u64::from(write) << 1);
                    self.stats.hits += 1;
                    return Access {
                        hit: true,
                        evicted: None,
                    };
                }
                if w.stamp() < lru_stamp {
                    lru_stamp = w.stamp();
                    lru = i;
                }
            } else if invalid.is_none() {
                invalid = Some(i);
            }
        }

        // Miss: fill the first invalid way, else evict the LRU victim.
        let victim_idx = start + invalid.unwrap_or(lru);
        let evicted = if invalid.is_some() {
            None
        } else {
            let w = self.ways[victim_idx];
            if w.dirty() {
                self.stats.dirty_evictions += 1;
            }
            Some(Evicted {
                line_addr: self.reconstruct(set, w.tag),
                dirty: w.dirty(),
            })
        };

        self.ways[victim_idx] = Way::filled(tag, write, clock);
        Access {
            hit: false,
            evicted,
        }
    }

    /// Performs the access only if `addr`'s line is resident, mutating
    /// exactly what the hit path of [`SetAssocCache::access`] would mutate
    /// (clock advance, LRU stamp, dirty bit, hit/access counters) and
    /// returning `true`. On a miss **nothing** changes — not even the LRU
    /// clock or the access counter — so replaying the same op through
    /// [`SetAssocCache::access`] later observes the state a plain call
    /// would have, with identical stamps and statistics.
    ///
    /// This is the private-cache fast path of the epoch-batched machine
    /// loop: a run-ahead core may consume L1 hits eagerly, but a miss must
    /// wait for global ordering and be replayed in full.
    #[inline]
    pub fn access_if_hit(&mut self, addr: u64, write: bool) -> bool {
        let (set, tag) = self.set_of(addr);
        let start = (set * u64::from(self.cfg.assoc)) as usize;
        let ways = &mut self.ways[start..start + self.cfg.assoc as usize];
        for w in ways.iter_mut() {
            if w.valid() && w.tag == tag {
                self.clock += 1;
                w.meta = (self.clock << 2) | (w.meta & 3) | (u64::from(write) << 1);
                self.stats.accesses += 1;
                self.stats.hits += 1;
                return true;
            }
        }
        false
    }

    /// Non-allocating residency probe.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_of(addr);
        self.ways[self.set_range(set)]
            .iter()
            .any(|w| w.valid() && w.tag == tag)
    }

    /// Marks a resident line dirty without affecting LRU; returns whether the
    /// line was resident. Used by LGM's "mark instead of migrate" policy.
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_of(addr);
        let range = self.set_range(set);
        for w in &mut self.ways[range] {
            if w.valid() && w.tag == tag {
                w.meta |= Way::DIRTY;
                return true;
            }
        }
        false
    }

    /// Removes a line; returns `Some(dirty)` if it was resident.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let (set, tag) = self.set_of(addr);
        let range = self.set_range(set);
        for w in &mut self.ways[range] {
            if w.valid() && w.tag == tag {
                let dirty = w.dirty();
                w.meta &= !(Way::VALID | Way::DIRTY);
                return Some(dirty);
            }
        }
        None
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> u64 {
        self.ways.iter().filter(|w| w.valid()).count() as u64
    }

    /// Iterates over the addresses of all resident lines (diagnostics/tests).
    pub fn resident_lines(&self) -> impl Iterator<Item = u64> + '_ {
        let assoc = u64::from(self.cfg.assoc);
        self.ways.iter().enumerate().filter_map(move |(i, w)| {
            if w.valid() {
                Some(self.reconstruct(i as u64 / assoc, w.tag))
            } else {
                None
            }
        })
    }

    #[inline]
    fn reconstruct(&self, set: u64, tag: u64) -> u64 {
        ((tag << self.set_shift) | set) << self.line_shift
    }

    /// Aligns an arbitrary byte address down to its line base.
    pub fn line_base(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 64 B = 512 B.
        SetAssocCache::new(CacheConfig::new(512, 2, 64).unwrap())
    }

    #[test]
    fn config_presets_match_table_1() {
        assert_eq!(CacheConfig::l1().capacity(), 64 * 1024);
        assert_eq!(CacheConfig::l1().associativity(), 4);
        assert_eq!(CacheConfig::l2().capacity(), 256 * 1024);
        assert_eq!(CacheConfig::llc().capacity(), 8 * 1024 * 1024);
        assert_eq!(CacheConfig::llc().associativity(), 16);
    }

    #[test]
    fn config_rejects_bad_shapes() {
        assert!(matches!(
            CacheConfig::new(0, 4, 64),
            Err(CacheConfigError::BadCapacity { .. })
        ));
        assert_eq!(
            CacheConfig::new(1024, 0, 64),
            Err(CacheConfigError::ZeroAssociativity)
        );
        assert_eq!(
            CacheConfig::new(1024, 4, 60),
            Err(CacheConfigError::BadLineSize(60))
        );
        // 3 sets.
        assert!(matches!(
            CacheConfig::new(3 * 2 * 64, 2, 64),
            Err(CacheConfigError::SetsNotPowerOfTwo(3))
        ));
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(63, false).hit, "same line, different byte");
        assert!(!c.access(64, false).hit, "next line");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds lines whose (line index % 4) == 0: 0, 256, 512...
        c.access(0, false);
        c.access(256, false);
        // Touch line 0 so 256 becomes LRU.
        c.access(0, false);
        let out = c.access(512, false);
        assert!(!out.hit);
        assert_eq!(out.evicted.unwrap().line_addr, 256);
        assert!(c.probe(0));
        assert!(!c.probe(256));
    }

    #[test]
    fn dirty_victims_are_flagged() {
        let mut c = small();
        c.access(0, true); // dirty
        c.access(256, false);
        let out = c.access(512, false); // evicts 0 (LRU)
        let ev = out.evicted.unwrap();
        assert_eq!(ev.line_addr, 0);
        assert!(ev.dirty);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn write_hit_sets_dirty() {
        let mut c = small();
        c.access(0, false);
        c.access(0, true); // hit, now dirty
        c.access(256, false);
        let ev = c.access(512, false).evicted.unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn eviction_reconstructs_full_address() {
        let mut c = small();
        let addr = 0x1_2340; // line base 0x12340, set = (0x12340>>6)&3
        c.access(addr, false);
        // Fill the same set with two more lines to force eviction.
        let set_stride = 4 * 64; // sets * line
        c.access(addr + set_stride, false);
        let ev = c.access(addr + 2 * set_stride, false).evicted.unwrap();
        assert_eq!(ev.line_addr, c.line_base(addr));
    }

    #[test]
    fn invalidate_removes_and_reports_dirty() {
        let mut c = small();
        c.access(0, true);
        assert_eq!(c.invalidate(0), Some(true));
        assert_eq!(c.invalidate(0), None);
        assert!(!c.probe(0));
    }

    #[test]
    fn mark_dirty_only_when_resident() {
        let mut c = small();
        assert!(!c.mark_dirty(0));
        c.access(0, false);
        assert!(c.mark_dirty(0));
        assert_eq!(c.invalidate(0), Some(true));
    }

    #[test]
    fn occupancy_and_resident_iteration() {
        let mut c = small();
        c.access(0, false);
        c.access(64, false);
        assert_eq!(c.occupancy(), 2);
        let mut lines: Vec<u64> = c.resident_lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0, 64]);
    }

    #[test]
    fn associativity_capacity_exact() {
        let mut c = small(); // 2-way
        c.access(0, false);
        c.access(256, false);
        // Both fit; neither evicted.
        assert!(c.probe(0) && c.probe(256));
        assert_eq!(c.stats().misses(), 2);
    }

    #[test]
    fn access_if_hit_miss_mutates_nothing() {
        let mut c = small();
        c.access(0, false);
        let stats_before = *c.stats();
        assert!(!c.access_if_hit(256, false), "cold line cannot fast-hit");
        assert_eq!(*c.stats(), stats_before, "miss path must not count");
        assert!(!c.probe(256), "miss path must not allocate");
        // The replayed full access behaves exactly like a first touch.
        assert!(!c.access(256, false).hit);
        assert!(c.probe(256));
    }

    /// Driving one cache through `access_if_hit`-then-replay and another
    /// through plain `access` leaves byte-identical state: same stats, same
    /// resident lines, same LRU victim choice afterwards.
    #[test]
    fn access_if_hit_is_equivalent_to_access_hit_path() {
        let mut fast = small();
        let mut reference = small();
        // Mixed hits/misses within one set (stride 256 maps to set 0).
        let ops: [(u64, bool); 9] = [
            (0, false),
            (0, true),
            (256, false),
            (0, false),
            (256, true),
            (512, false), // evicts; exercises post-divergence-risk state
            (0, false),
            (512, false),
            (256, false),
        ];
        for (addr, write) in ops {
            if !fast.access_if_hit(addr, write) {
                fast.access(addr, write);
            }
            reference.access(addr, write);
        }
        assert_eq!(*fast.stats(), *reference.stats());
        let mut a: Vec<u64> = fast.resident_lines().collect();
        let mut b: Vec<u64> = reference.resident_lines().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // Same next victim: LRU stamps must agree, not just residency.
        assert_eq!(fast.access(768, false), reference.access(768, false));
    }

    #[test]
    fn stats_hit_rate() {
        let mut c = small();
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The most recently touched line of a set is never the next victim.
        #[test]
        fn mru_line_survives_next_miss(addrs in proptest::collection::vec(0u64..4096, 1..200)) {
            let mut c = SetAssocCache::new(CacheConfig::new(512, 2, 64).unwrap());
            let mut last: Option<u64> = None;
            for a in addrs {
                let out = c.access(a, false);
                if let (Some(prev), Some(ev)) = (last, out.evicted) {
                    prop_assert_ne!(c.line_base(prev), ev.line_addr,
                        "evicted the most recently used line");
                }
                last = Some(a);
            }
        }

        /// Occupancy never exceeds total way count and probes agree with
        /// the resident-line iterator.
        #[test]
        fn occupancy_bounded_and_consistent(addrs in proptest::collection::vec(0u64..65536, 1..300)) {
            let mut c = SetAssocCache::new(CacheConfig::new(1024, 4, 64).unwrap());
            for a in addrs {
                c.access(a, a % 3 == 0);
            }
            prop_assert!(c.occupancy() <= 16); // 4 sets x 4 ways
            for line in c.resident_lines() {
                prop_assert!(c.probe(line));
            }
        }

        /// A line is resident immediately after being accessed.
        #[test]
        fn accessed_line_is_resident(addrs in proptest::collection::vec(0u64..1u64<<20, 1..300)) {
            let mut c = SetAssocCache::new(CacheConfig::new(2048, 2, 64).unwrap());
            for a in addrs {
                c.access(a, false);
                prop_assert!(c.probe(a));
            }
        }

        /// hits + misses == accesses.
        #[test]
        fn stats_balance(addrs in proptest::collection::vec(0u64..8192, 1..200)) {
            let mut c = SetAssocCache::new(CacheConfig::new(512, 2, 64).unwrap());
            for a in addrs.iter() {
                c.access(*a, false);
            }
            prop_assert_eq!(c.stats().hits + c.stats().misses(), addrs.len() as u64);
        }
    }
}
