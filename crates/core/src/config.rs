//! Hybrid2 configuration and near/far memory layout (§3.3, Figure 6).

use core::fmt;

use sim_types::{FmLoc, Geometry, GeometryError, NmLoc, PAddr, SectorId};

/// Figure 14's ablation variants plus the full design.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The complete Hybrid2 design.
    Full,
    /// Only the 64 MB sectored DRAM cache; no migration, and NM's flat
    /// share is still used as plain memory (Figure 14 "Cache-Only":
    /// no migration and no address-translation overheads).
    CacheOnly,
    /// Migrate every FM sector evicted from the DRAM cache (Figure 14
    /// "Migr-All"): the §3.7 selection policy is bypassed.
    MigrateAll,
    /// Never migrate (Figure 14 "Migr-None").
    MigrateNone,
    /// Full policy but all remap-table / inverted-remap / free-stack
    /// accesses complete instantly and cost no traffic (Figure 14
    /// "No-Remap"): isolates the metadata overhead.
    NoRemap,
}

impl Variant {
    /// All variants in Figure 14 reporting order.
    pub const ALL: [Variant; 5] = [
        Variant::CacheOnly,
        Variant::MigrateAll,
        Variant::MigrateNone,
        Variant::NoRemap,
        Variant::Full,
    ];

    /// The label used in Figure 14.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Full => "HYBRID2",
            Variant::CacheOnly => "Cache-Only",
            Variant::MigrateAll => "Migr-All",
            Variant::MigrateNone => "Migr-None",
            Variant::NoRemap => "No-Remap",
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Errors from [`Hybrid2Config::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// Invalid line/sector geometry.
    Geometry(GeometryError),
    /// The DRAM cache does not fit in NM together with the metadata.
    CacheTooLarge {
        /// Requested cache bytes.
        cache: u64,
        /// Available NM bytes.
        nm: u64,
    },
    /// Cache capacity in sectors must be a multiple of the associativity
    /// with a power-of-two set count.
    BadCacheShape {
        /// Cache capacity in sectors.
        sectors: u64,
        /// Requested associativity.
        assoc: u32,
    },
    /// NM flat region too small relative to the cache (the FIFO allocator
    /// needs headroom; see DESIGN.md §4 invariants).
    FlatRegionTooSmall {
        /// Flat NM sectors remaining.
        flat: u64,
        /// Cache sectors.
        cache: u64,
    },
    /// Memory sizes must be non-zero multiples of the sector size.
    UnalignedCapacity {
        /// Which capacity ("nm", "fm" or "cache").
        which: &'static str,
        /// The offending byte count.
        bytes: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::Geometry(e) => write!(f, "geometry: {e}"),
            ConfigError::CacheTooLarge { cache, nm } => {
                write!(f, "cache of {cache} bytes does not fit in NM of {nm} bytes")
            }
            ConfigError::BadCacheShape { sectors, assoc } => write!(
                f,
                "cache of {sectors} sectors cannot form power-of-two sets at associativity {assoc}"
            ),
            ConfigError::FlatRegionTooSmall { flat, cache } => write!(
                f,
                "flat NM region of {flat} sectors is too small for a {cache}-sector cache (need > 2x)"
            ),
            ConfigError::UnalignedCapacity { which, bytes } => {
                write!(f, "{which} capacity {bytes} is not a non-zero multiple of the sector size")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<GeometryError> for ConfigError {
    fn from(e: GeometryError) -> Self {
        ConfigError::Geometry(e)
    }
}

/// Full configuration of the DCMC.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hybrid2Config {
    /// Cache-line / sector geometry (paper best: 256 B / 2 KB).
    pub geometry: Geometry,
    /// DRAM cache capacity in bytes (paper best: 64 MB).
    pub cache_bytes: u64,
    /// XTA associativity (paper: 16).
    pub xta_assoc: u32,
    /// Near memory capacity in bytes.
    pub nm_bytes: u64,
    /// Far memory capacity in bytes.
    pub fm_bytes: u64,
    /// On-chip XTA lookup latency in CPU cycles.
    pub xta_latency: u64,
    /// Access-counter width in bits (paper: 9).
    pub counter_bits: u32,
    /// FM-access budget reset period in CPU cycles (paper: 100 K).
    pub budget_reset_period: u64,
    /// Entries of the Free-FM-Stack kept on-chip (§3.3).
    pub free_stack_onchip: usize,
    /// Which design variant to run.
    pub variant: Variant,
}

impl Hybrid2Config {
    /// The paper's chosen configuration at full scale: 64 MB cache, 2 KB
    /// sectors, 256 B lines, 16-way XTA, 1 GB NM, 16 GB FM.
    pub fn paper_default() -> Self {
        Hybrid2Config {
            geometry: Geometry::paper_default(),
            cache_bytes: 64 * 1024 * 1024,
            xta_assoc: 16,
            nm_bytes: 1024 * 1024 * 1024,
            fm_bytes: 16 * 1024 * 1024 * 1024,
            xta_latency: 2,
            counter_bits: 9,
            budget_reset_period: 100_000,
            free_stack_onchip: 64,
            variant: Variant::Full,
        }
    }

    /// The paper configuration with all capacities divided by `scale_den`
    /// (the NM:FM ratio and cache:NM fraction are preserved exactly).
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the scaled shape becomes invalid
    /// (extreme denominators).
    pub fn scaled_down(scale_den: u64) -> Result<Self, ConfigError> {
        let mut cfg = Self::paper_default();
        cfg.cache_bytes /= scale_den;
        cfg.nm_bytes /= scale_den;
        cfg.fm_bytes /= scale_den;
        cfg.validate()?;
        Ok(cfg)
    }

    /// Returns this configuration with a different [`Variant`].
    #[must_use]
    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Validates the configuration and computes the memory layout.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`ConfigError`].
    pub fn validate(&self) -> Result<Layout, ConfigError> {
        let g = self.geometry;
        let sector = g.sector_size();
        for (which, bytes) in [
            ("nm", self.nm_bytes),
            ("fm", self.fm_bytes),
            ("cache", self.cache_bytes),
        ] {
            if bytes == 0 || bytes % sector != 0 {
                return Err(ConfigError::UnalignedCapacity { which, bytes });
            }
        }
        let nm_sectors_total = self.nm_bytes / sector;
        let fm_sectors = self.fm_bytes / sector;
        let cache_sectors = self.cache_bytes / sector;

        // XTA shape: one entry per cache sector, set-associative.
        if !cache_sectors.is_multiple_of(u64::from(self.xta_assoc))
            || !(cache_sectors / u64::from(self.xta_assoc)).is_power_of_two()
        {
            return Err(ConfigError::BadCacheShape {
                sectors: cache_sectors,
                assoc: self.xta_assoc,
            });
        }

        // Metadata sizing (§3.3: "3.5% of the NM capacity"). Upper bounds:
        // remap entries for every possible flat sector (NM data + FM), an
        // inverted entry per NM slot, a stack entry per cache sector; 8 B
        // each.
        let remap_entries = nm_sectors_total + fm_sectors;
        let inverted_entries = nm_sectors_total;
        let stack_entries = cache_sectors;
        let meta_bytes_raw = 8 * (remap_entries + inverted_entries + stack_entries);
        let meta_sectors = meta_bytes_raw.div_ceil(sector);

        let slots = nm_sectors_total
            .checked_sub(meta_sectors)
            .and_then(|s| s.checked_sub(0))
            .unwrap_or(0);
        if slots <= cache_sectors {
            return Err(ConfigError::CacheTooLarge {
                cache: self.cache_bytes,
                nm: self.nm_bytes,
            });
        }
        let nm_flat_sectors = slots - cache_sectors;
        if nm_flat_sectors < 2 * cache_sectors {
            return Err(ConfigError::FlatRegionTooSmall {
                flat: nm_flat_sectors,
                cache: cache_sectors,
            });
        }

        Ok(Layout {
            geometry: g,
            nm_sectors_total,
            meta_sectors,
            meta_bytes: meta_sectors * sector,
            slots,
            cache_sectors,
            nm_flat_sectors,
            fm_sectors,
            flat_sectors: nm_flat_sectors + fm_sectors,
            remap_entries,
            inverted_entries,
        })
    }

    /// XTA storage estimate in bytes (for the 512 KB design constraint of
    /// §5.1): per entry tag + valid/dirty vectors + counter + two pointers
    /// + LRU + state.
    pub fn xta_size_bytes(&self) -> u64 {
        let layout = match self.validate() {
            Ok(l) => l,
            Err(_) => return u64::MAX,
        };
        let lines = u64::from(self.geometry.lines_per_sector());
        let sets = layout.cache_sectors / u64::from(self.xta_assoc);
        // Tag bits cover the flat sector space divided by sets.
        let tag_bits = 64 - (layout.flat_sectors / sets.max(1)).leading_zeros() as u64;
        let nm_ptr_bits = 64 - layout.slots.leading_zeros() as u64;
        let fm_ptr_bits = 64 - layout.fm_sectors.leading_zeros() as u64;
        let entry_bits = tag_bits
            + 2 * lines                      // valid + dirty vectors
            + u64::from(self.counter_bits)   // access counter
            + nm_ptr_bits
            + fm_ptr_bits
            + 4                              // LRU
            + 2; // entry valid + resident-side state
        (entry_bits * layout.cache_sectors).div_ceil(8)
    }
}

/// Derived memory layout (Figure 6): where metadata, cache slots and the
/// flat space live, and how large each region is (all in sectors unless
/// noted).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    /// Line/sector geometry.
    pub geometry: Geometry,
    /// Total NM capacity in sectors.
    pub nm_sectors_total: u64,
    /// Sectors reserved in NM for remap / inverted-remap / free-stack.
    pub meta_sectors: u64,
    /// The same reservation in bytes.
    pub meta_bytes: u64,
    /// NM data slots (total minus metadata): slot ids `0..slots`.
    pub slots: u64,
    /// Slots owned by the DRAM cache pool (constant after boot, §3.5).
    pub cache_sectors: u64,
    /// NM sectors contributed to the flat address space.
    pub nm_flat_sectors: u64,
    /// FM capacity in sectors.
    pub fm_sectors: u64,
    /// Total flat (processor physical) space in sectors.
    pub flat_sectors: u64,
    /// Remap-table entries.
    pub remap_entries: u64,
    /// Inverted-remap entries.
    pub inverted_entries: u64,
}

impl Layout {
    /// Bytes of flat memory visible to software.
    pub fn flat_capacity_bytes(&self) -> u64 {
        self.flat_sectors * self.geometry.sector_size()
    }

    /// The initial (boot) location of a flat sector: the first
    /// `nm_flat_sectors` live in NM slots after the boot cache pool, the
    /// rest in FM (identity mapping; the *page allocator* randomizes which
    /// virtual pages land where, per §4 of the paper).
    pub fn initial_location(&self, sector: SectorId) -> crate::remap::Loc {
        let s = sector.raw();
        debug_assert!(s < self.flat_sectors, "sector outside flat space");
        if s < self.nm_flat_sectors {
            crate::remap::Loc::Nm(NmLoc::new(self.cache_sectors + s))
        } else {
            crate::remap::Loc::Fm(FmLoc::new(s - self.nm_flat_sectors))
        }
    }

    /// NM device byte address of data slot `slot`.
    pub fn nm_slot_addr(&self, slot: NmLoc) -> u64 {
        debug_assert!(slot.raw() < self.slots, "slot out of range");
        self.meta_bytes + slot.raw() * self.geometry.sector_size()
    }

    /// FM device byte address of sector location `loc`.
    pub fn fm_loc_addr(&self, loc: FmLoc) -> u64 {
        debug_assert!(loc.raw() < self.fm_sectors, "FM location out of range");
        loc.raw() * self.geometry.sector_size()
    }

    /// NM device byte address of the remap-table entry for `sector`.
    pub fn remap_entry_addr(&self, sector: SectorId) -> u64 {
        sector.raw() * 8
    }

    /// NM device byte address of the inverted-remap entry for `slot`.
    pub fn inverted_entry_addr(&self, slot: NmLoc) -> u64 {
        self.remap_entries * 8 + slot.raw() * 8
    }

    /// NM device byte address of free-stack entry `depth`.
    pub fn stack_entry_addr(&self, depth: u64) -> u64 {
        (self.remap_entries + self.inverted_entries) * 8 + depth * 8
    }

    /// The sector id containing physical address `addr`.
    pub fn sector_of(&self, addr: PAddr) -> SectorId {
        self.geometry.sector_of(addr)
    }

    /// Metadata reservation as a fraction of NM capacity (paper: 3.5%).
    pub fn metadata_fraction(&self) -> f64 {
        self.meta_sectors as f64 / self.nm_sectors_total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        let cfg = Hybrid2Config::paper_default();
        let l = cfg.validate().unwrap();
        assert_eq!(l.cache_sectors, 64 * 1024 * 1024 / 2048); // 32 Ki sectors
        assert_eq!(l.fm_sectors, 16 * 1024 * 1024 * 1024 / 2048);
        assert!(l.nm_flat_sectors > 0);
        assert_eq!(l.flat_sectors, l.nm_flat_sectors + l.fm_sectors);
    }

    #[test]
    fn metadata_fraction_close_to_paper() {
        let l = Hybrid2Config::paper_default().validate().unwrap();
        // Paper reports 3.5% of NM; our sizing lands in the same ballpark.
        let f = l.metadata_fraction();
        assert!(f > 0.01 && f < 0.08, "metadata fraction was {f}");
    }

    #[test]
    fn xta_fits_the_512kb_budget_at_paper_scale() {
        let cfg = Hybrid2Config::paper_default();
        let bytes = cfg.xta_size_bytes();
        assert!(
            bytes <= 512 * 1024,
            "64MB/2KB/256B/16-way XTA must fit 512 KB, got {bytes}"
        );
    }

    #[test]
    fn bigger_cache_or_smaller_lines_grow_the_xta() {
        let base = Hybrid2Config::paper_default();
        let mut big = base;
        big.cache_bytes *= 2;
        assert!(big.xta_size_bytes() > base.xta_size_bytes());
        let mut fine = base;
        fine.geometry = Geometry::new(64, 2048).unwrap();
        assert!(fine.xta_size_bytes() > base.xta_size_bytes());
    }

    #[test]
    fn scaled_down_preserves_ratios() {
        let cfg = Hybrid2Config::scaled_down(64).unwrap();
        assert_eq!(cfg.nm_bytes * 16, cfg.fm_bytes);
        assert_eq!(cfg.cache_bytes * 16, cfg.nm_bytes);
        cfg.validate().unwrap();
    }

    #[test]
    fn rejects_unaligned_capacities() {
        let mut cfg = Hybrid2Config::paper_default();
        cfg.nm_bytes += 1;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::UnalignedCapacity { which: "nm", .. })
        ));
    }

    #[test]
    fn rejects_cache_larger_than_nm() {
        let mut cfg = Hybrid2Config::paper_default();
        cfg.cache_bytes = cfg.nm_bytes;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::CacheTooLarge { .. }) | Err(ConfigError::FlatRegionTooSmall { .. })
        ));
    }

    #[test]
    fn rejects_bad_cache_shape() {
        let mut cfg = Hybrid2Config::paper_default();
        cfg.xta_assoc = 7;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadCacheShape { .. })
        ));
    }

    #[test]
    fn initial_locations_partition_the_flat_space() {
        let l = Hybrid2Config::scaled_down(64).unwrap().validate().unwrap();
        match l.initial_location(SectorId::new(0)) {
            crate::remap::Loc::Nm(slot) => assert_eq!(slot.raw(), l.cache_sectors),
            crate::remap::Loc::Fm(_) => panic!("sector 0 must start in NM"),
        }
        match l.initial_location(SectorId::new(l.nm_flat_sectors)) {
            crate::remap::Loc::Fm(f) => assert_eq!(f.raw(), 0),
            crate::remap::Loc::Nm(_) => panic!("first FM sector wrong"),
        }
    }

    #[test]
    fn device_addresses_do_not_collide() {
        let l = Hybrid2Config::scaled_down(64).unwrap().validate().unwrap();
        // Metadata region ends before the first slot.
        let last_meta = l.stack_entry_addr(l.cache_sectors - 1) + 8;
        assert!(
            last_meta <= l.meta_bytes,
            "metadata overflows its reservation"
        );
        assert_eq!(l.nm_slot_addr(NmLoc::new(0)), l.meta_bytes);
    }

    #[test]
    fn variant_labels_match_figure_14() {
        assert_eq!(Variant::Full.label(), "HYBRID2");
        assert_eq!(Variant::CacheOnly.label(), "Cache-Only");
        assert_eq!(Variant::ALL.len(), 5);
    }

    #[test]
    fn flat_capacity_exceeds_fm_alone() {
        // The headline claim: migration keeps NM capacity in the system.
        let l = Hybrid2Config::paper_default().validate().unwrap();
        assert!(l.flat_capacity_bytes() > 16 * 1024 * 1024 * 1024);
    }
}
