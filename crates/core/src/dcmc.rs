//! The DRAM Cache Migration Controller: §3.4–§3.7 wired together.

use dram::{DramAccess, DramSystem, MemoryScheme, SchemeStats, Served, ServiceRequest, Ticket};
use sim_types::{AccessKind, Cycle, MemReq, MemSide, NmLoc, TrafficClass};

use crate::config::{ConfigError, Hybrid2Config, Layout, Variant};
use crate::free_stack::FreeFmStack;
use crate::migrate::{decide, CostInputs, Decision};
use crate::remap::{Loc, RemapTables, SlotState};
use crate::xta::{Xta, XtaEntry};

/// The Hybrid2 memory controller (Figure 3's shaded box).
///
/// All processor requests flow through [`Dcmc::access`], which implements
/// the four-outcome path of Figure 7; evictions follow Figure 9, NM
/// allocation Figure 8, and the migration decision Figure 10.
#[derive(Clone, Debug)]
pub struct Dcmc {
    cfg: Hybrid2Config,
    layout: Layout,
    xta: Xta,
    tables: RemapTables,
    stack: FreeFmStack,
    /// Unassigned cache-pool slots (boot region first, then recycled ones).
    free_pool: Vec<NmLoc>,
    /// §3.5 FIFO wrap-around counter over NM slots.
    fifo_ptr: u64,
    /// §3.7.3 FM-access budget.
    fm_budget: u64,
    last_budget_reset: Cycle,
    /// Time of the most recent `on_tick` delivery, guarding the machine
    /// loop's interval contract (see `on_tick`).
    last_tick: Cycle,
    stats: SchemeStats,
    /// §3.8 extension: OS-hinted dead sectors (indexed by flat sector id).
    unused: Vec<bool>,
    /// Count of `true` entries in `unused`. Every demand access must
    /// revive its sector, but without hints there is nothing to revive —
    /// the counter lets the per-request hot path skip the random write
    /// into the (large) `unused` vector entirely.
    unused_live: u64,
    /// §3.8: Figure-8 swap copies skipped thanks to hints.
    swaps_avoided: u64,
    /// §3.8: eviction writebacks skipped thanks to hints.
    writebacks_avoided: u64,
}

impl Dcmc {
    /// Builds a controller from a configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is structurally
    /// invalid.
    pub fn new(cfg: Hybrid2Config) -> Result<Self, ConfigError> {
        let layout = cfg.validate()?;
        let xta = Xta::new(
            layout.cache_sectors,
            cfg.xta_assoc,
            cfg.geometry.lines_per_sector(),
            cfg.counter_bits,
        );
        let tables = RemapTables::new(layout);
        // Boot pool: slots [0, cache_sectors), popped from the back so slot 0
        // is handed out first (the §3.5 boot counter).
        let free_pool: Vec<NmLoc> = (0..layout.cache_sectors).rev().map(NmLoc::new).collect();
        Ok(Dcmc {
            stack: FreeFmStack::new(layout.cache_sectors, cfg.free_stack_onchip),
            xta,
            tables,
            free_pool,
            fifo_ptr: 0,
            fm_budget: 0,
            last_budget_reset: Cycle::ZERO,
            last_tick: Cycle::ZERO,
            stats: SchemeStats::default(),
            unused: vec![false; layout.flat_sectors as usize],
            unused_live: 0,
            swaps_avoided: 0,
            writebacks_avoided: 0,
            layout,
            cfg,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &Hybrid2Config {
        &self.cfg
    }

    /// The derived memory layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The on-chip tag array (inspection/testing).
    pub fn xta(&self) -> &Xta {
        &self.xta
    }

    /// The remap tables (inspection/testing).
    pub fn tables(&self) -> &RemapTables {
        &self.tables
    }

    /// The free-FM stack (inspection/testing).
    pub fn free_stack(&self) -> &FreeFmStack {
        &self.stack
    }

    /// Current §3.7.3 budget value (inspection/testing).
    pub fn fm_budget(&self) -> u64 {
        self.fm_budget
    }

    /// Unassigned cache-pool slots (inspection/testing).
    pub fn free_pool_len(&self) -> usize {
        self.free_pool.len()
    }

    /// §3.8: Figure-8 swap copies avoided thanks to OS free-space hints.
    pub fn swaps_avoided(&self) -> u64 {
        self.swaps_avoided
    }

    /// §3.8: dirty-writeback bursts avoided thanks to OS free-space hints.
    pub fn writebacks_avoided(&self) -> u64 {
        self.writebacks_avoided
    }

    /// §3.8: sectors currently hinted unused.
    pub fn unused_sector_count(&self) -> u64 {
        self.unused.iter().filter(|u| **u).count() as u64
    }

    fn remap_is_free(&self) -> bool {
        matches!(self.cfg.variant, Variant::NoRemap | Variant::CacheOnly)
    }

    fn meta_read(&mut self, addr: u64, at: Cycle, dram: &mut DramSystem) -> Cycle {
        if self.remap_is_free() {
            return at;
        }
        self.stats.metadata_reads += 1;
        dram.submit(ServiceRequest::new(
            MemSide::Nm,
            Ticket::CONTROLLER,
            DramAccess {
                addr: addr & !63,
                bytes: 64,
                kind: AccessKind::Read,
                class: TrafficClass::Metadata,
                at,
            },
        ))
        .ready
    }

    fn meta_write(&mut self, addr: u64, at: Cycle, dram: &mut DramSystem) {
        if self.remap_is_free() {
            return;
        }
        self.stats.metadata_writes += 1;
        dram.submit(ServiceRequest::new(
            MemSide::Nm,
            Ticket::CONTROLLER,
            DramAccess {
                addr: addr & !63,
                bytes: 64,
                kind: AccessKind::Write,
                class: TrafficClass::Metadata,
                at,
            },
        ));
    }

    /// Figure 9 + Figure 10: dispose of an XTA victim. Must be called after
    /// the victim has been removed from the XTA (so the §3.7.1 peer
    /// comparison sees only the remaining sectors).
    fn process_eviction(&mut self, victim: XtaEntry, at: Cycle, dram: &mut DramSystem) {
        let Some(fm) = victim.fm_loc else {
            // Case 1: already-migrated sector — no data movement, the remap
            // tables are already correct (§3.6).
            return;
        };
        let g = self.layout.geometry;
        let lines = g.lines_per_sector();
        let line_bytes = g.line_size() as u32;
        // §3.8: a sector the OS declared dead needs neither migration nor
        // writebacks — drop it and recycle the slot.
        if self.unused_live > 0 && self.unused[victim.sector.index()] {
            if victim.dirty != 0 {
                self.writebacks_avoided += 1;
            }
            self.tables.set_sector_at(victim.nm_slot, None);
            let inv_addr = self.layout.inverted_entry_addr(victim.nm_slot);
            self.meta_write(inv_addr, at, dram);
            self.free_pool.push(victim.nm_slot);
            return;
        }
        let peers = self.xta.competing_counters(victim.sector);
        let cost = CostInputs {
            nall: lines,
            nvalid: victim.valid_count(),
            ndirty: victim.dirty_count(),
        };
        match decide(
            victim.counter,
            &peers,
            cost,
            self.fm_budget,
            self.cfg.variant,
        ) {
            Decision::Evict => {
                // Write dirty lines back to FM; no remap structures change.
                let nm_base = self.layout.nm_slot_addr(victim.nm_slot);
                let fm_base = self.layout.fm_loc_addr(fm);
                for i in 0..lines {
                    if victim.dirty & (1 << i) != 0 {
                        let off = u64::from(i) * g.line_size();
                        dram.submit(ServiceRequest::new(
                            MemSide::Nm,
                            Ticket::CONTROLLER,
                            DramAccess {
                                addr: nm_base + off,
                                bytes: line_bytes,
                                kind: AccessKind::Read,
                                class: TrafficClass::Writeback,
                                at,
                            },
                        ));
                        dram.submit(ServiceRequest::new(
                            MemSide::Fm,
                            Ticket::CONTROLLER,
                            DramAccess {
                                addr: fm_base + off,
                                bytes: line_bytes,
                                kind: AccessKind::Write,
                                class: TrafficClass::Writeback,
                                at,
                            },
                        ));
                        self.stats.dirty_writebacks += 1;
                    }
                }
                // The slot returns to the cache pool's free list.
                self.tables.set_sector_at(victim.nm_slot, None);
                let inv_addr = self.layout.inverted_entry_addr(victim.nm_slot);
                self.meta_write(inv_addr, at, dram);
                self.free_pool.push(victim.nm_slot);
            }
            Decision::Migrate { net_cost } => {
                if matches!(self.cfg.variant, Variant::Full | Variant::NoRemap) {
                    self.fm_budget = self.fm_budget.saturating_sub(net_cost);
                }
                // Fetch the lines not yet in NM (§3.6 case 2, migrate arm).
                let nm_base = self.layout.nm_slot_addr(victim.nm_slot);
                let fm_base = self.layout.fm_loc_addr(fm);
                for i in 0..lines {
                    if victim.valid & (1 << i) == 0 {
                        let off = u64::from(i) * g.line_size();
                        dram.submit(ServiceRequest::new(
                            MemSide::Fm,
                            Ticket::CONTROLLER,
                            DramAccess {
                                addr: fm_base + off,
                                bytes: line_bytes,
                                kind: AccessKind::Read,
                                class: TrafficClass::Migration,
                                at,
                            },
                        ));
                        dram.submit(ServiceRequest::new(
                            MemSide::Nm,
                            Ticket::CONTROLLER,
                            DramAccess {
                                addr: nm_base + off,
                                bytes: line_bytes,
                                kind: AccessKind::Write,
                                class: TrafficClass::Migration,
                                at,
                            },
                        ));
                    }
                }
                // The vacated FM location becomes reusable.
                let eff = self.stack.push(fm);
                if eff.touches_nm {
                    let addr = self.layout.stack_entry_addr(eff.depth);
                    self.meta_write(addr, at, dram);
                }
                // Remap: the sector's home is now its (former cache) slot.
                self.tables
                    .set_location(victim.sector, Loc::Nm(victim.nm_slot));
                let remap_addr = self.layout.remap_entry_addr(victim.sector);
                self.meta_write(remap_addr, at, dram);
                // The slot permanently leaves the cache pool (§3.5 will
                // replenish it by swapping some flat sector out).
                self.tables.set_slot_state(victim.nm_slot, SlotState::Flat);
                self.stats.moved_into_nm += 1;
            }
        }
    }

    /// Figure 8: obtain an NM slot for a newly cached FM sector.
    fn alloc_cache_slot(&mut self, at: Cycle, dram: &mut DramSystem) -> NmLoc {
        if let Some(slot) = self.free_pool.pop() {
            return slot;
        }
        let g = self.layout.geometry;
        let lines = g.lines_per_sector();
        let line_bytes = g.line_size() as u32;
        let mut probes = 0u64;
        loop {
            probes += 1;
            assert!(
                probes <= 2 * self.layout.slots,
                "FIFO allocator scanned every slot twice without a victim — \
                 the flat region is too small (validated impossible)"
            );
            let cand = NmLoc::new(self.fifo_ptr % self.layout.slots);
            self.fifo_ptr += 1;
            // Cache-pool slots are skipped outright (they are not part of
            // the flat space; no metadata access needed — ownership is
            // implicit in the DCMC's own slot bookkeeping).
            if self.tables.slot_state(cand) == SlotState::CachePool {
                continue;
            }
            // Inverted-remap lookup to learn which sector lives here.
            let inv_addr = self.layout.inverted_entry_addr(cand);
            self.meta_read(inv_addr, at, dram);
            let sec = self
                .tables
                .sector_at(cand)
                .expect("flat slot must hold a sector");
            // §3.5: a sector that is in the DRAM cache must not be swapped
            // out; this doubles as a replacement filter.
            if self.xta.contains(sec) {
                continue;
            }
            // Swap the victim flat sector out to a free FM location.
            let (f, eff) = self
                .stack
                .pop()
                .expect("free-FM stack cannot be empty when the boot pool is exhausted");
            if eff.touches_nm {
                let addr = self.layout.stack_entry_addr(eff.depth);
                self.meta_read(addr, at, dram);
            }
            // §3.8: dead data need not be copied — only the remap changes.
            if self.unused_live > 0 && self.unused[sec.index()] {
                self.swaps_avoided += 1;
            } else {
                dram.submit(
                    ServiceRequest::new(
                        MemSide::Nm,
                        Ticket::CONTROLLER,
                        DramAccess {
                            addr: self.layout.nm_slot_addr(cand),
                            bytes: line_bytes,
                            kind: AccessKind::Read,
                            class: TrafficClass::Migration,
                            at,
                        },
                    )
                    .with_count(lines),
                );
                dram.submit(
                    ServiceRequest::new(
                        MemSide::Fm,
                        Ticket::CONTROLLER,
                        DramAccess {
                            addr: self.layout.fm_loc_addr(f),
                            bytes: line_bytes,
                            kind: AccessKind::Write,
                            class: TrafficClass::Migration,
                            at,
                        },
                    )
                    .with_count(lines),
                );
            }
            self.tables.set_location(sec, Loc::Fm(f));
            let remap_addr = self.layout.remap_entry_addr(sec);
            self.meta_write(remap_addr, at, dram);
            self.tables.set_sector_at(cand, None);
            self.tables.set_slot_state(cand, SlotState::CachePool);
            self.stats.moved_out_of_nm += 1;
            return cand;
        }
    }

    fn maybe_reset_budget(&mut self, now: Cycle) {
        if now.saturating_since(self.last_budget_reset) >= self.cfg.budget_reset_period {
            self.fm_budget = 0;
            self.last_budget_reset = now;
        }
    }

    /// Full-structure consistency check for tests: remap bijection, pool
    /// conservation, stack/remap agreement, XTA/pool slot disjointness.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.tables.check_invariants()?;
        // Pool conservation: owned slots never exceed the cache capacity,
        // and free + XTA-assigned = owned.
        let owned = self.tables.cache_pool_size();
        if owned > self.layout.cache_sectors {
            return Err(format!(
                "cache pool owns {owned} slots > capacity {}",
                self.layout.cache_sectors
            ));
        }
        let assigned = self.xta.iter().filter(|e| !e.is_nm_resident()).count() as u64;
        if assigned + self.free_pool.len() as u64 != owned {
            return Err(format!(
                "pool accounting broken: {assigned} assigned + {} free != {owned} owned",
                self.free_pool.len()
            ));
        }
        // Stack contents are exactly the unmapped FM locations.
        let mut expected = self.tables.free_fm_locations();
        let mut actual: Vec<_> = self.stack.as_slice().to_vec();
        expected.sort_unstable();
        actual.sort_unstable();
        if expected != actual {
            return Err(format!(
                "free-FM stack ({} entries) disagrees with remap table ({} free)",
                actual.len(),
                expected.len()
            ));
        }
        // dirty ⊆ valid in every XTA entry.
        for e in self.xta.iter() {
            if e.dirty & !e.valid != 0 {
                return Err(format!("entry {:?} has dirty lines not valid", e.sector));
            }
            if e.is_nm_resident() && e.valid != self.xta.full_mask() {
                return Err(format!(
                    "NM-resident entry {:?} must have all lines valid",
                    e.sector
                ));
            }
        }
        Ok(())
    }
}

impl MemoryScheme for Dcmc {
    fn name(&self) -> &'static str {
        self.cfg.variant.label()
    }

    fn access(&mut self, req: &MemReq, dram: &mut DramSystem) -> Served {
        self.maybe_reset_budget(req.at);
        let g = self.layout.geometry;
        let sector = g.sector_of(req.addr);
        assert!(
            sector.raw() < self.layout.flat_sectors,
            "physical address {} outside the flat space",
            req.addr
        );
        let line = g.line_within_sector(req.addr);
        let bit = 1u64 << line;
        let in_sector_off = req.addr.raw() & (g.sector_size() - 1);
        let write = req.kind.is_write();
        let ticket = Ticket::core(usize::from(req.core));

        self.stats.requests += 1;
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        // §3.8: any touch revives a hinted-dead sector (implicit realloc).
        if self.unused_live > 0 {
            let u = &mut self.unused[sector.index()];
            if *u {
                *u = false;
                self.unused_live -= 1;
            }
        }

        // Every request pays the on-chip XTA lookup (§3.2).
        let t0 = req.at + self.cfg.xta_latency;
        let counter_max = self.xta.counter_max();

        if let Some(entry) = self.xta.lookup_mut(sector) {
            self.stats.lookup_hits += 1;
            if !entry.is_nm_resident() {
                Xta::bump_counter(entry, counter_max);
            }
            let nm_slot = entry.nm_slot;
            if entry.valid & bit != 0 {
                // 1a: XTA hit / line hit — serve from NM.
                if write {
                    entry.dirty |= bit;
                }
                let addr = self.layout.nm_slot_addr(nm_slot) + in_sector_off;
                let (kind, class) = if write {
                    (AccessKind::Write, TrafficClass::Writeback)
                } else {
                    (AccessKind::Read, TrafficClass::Demand)
                };
                let done = dram
                    .submit(ServiceRequest::new(
                        MemSide::Nm,
                        ticket,
                        DramAccess {
                            addr,
                            bytes: req.bytes,
                            kind,
                            class,
                            at: t0,
                        },
                    ))
                    .ready;
                self.stats.served_from_nm += 1;
                Served::new(done, true)
            } else {
                // 1b: XTA hit / line miss — fetch the whole DCMC line from
                // FM via the FM pointer, fill it into NM via the NM pointer.
                let fm = entry
                    .fm_loc
                    .expect("NM-resident entries have all lines valid");
                entry.valid |= bit;
                if write {
                    entry.dirty |= bit;
                }
                let line_off = u64::from(line) * g.line_size();
                let fm_addr = self.layout.fm_loc_addr(fm) + line_off;
                let nm_addr = self.layout.nm_slot_addr(nm_slot) + line_off;
                let class = if write {
                    TrafficClass::Fill
                } else {
                    TrafficClass::Demand
                };
                let fetched = dram
                    .submit(ServiceRequest::new(
                        MemSide::Fm,
                        ticket,
                        DramAccess {
                            addr: fm_addr,
                            bytes: g.line_size() as u32,
                            kind: AccessKind::Read,
                            class,
                            at: t0,
                        },
                    ))
                    .ready;
                dram.submit(ServiceRequest::new(
                    MemSide::Nm,
                    ticket,
                    DramAccess {
                        addr: nm_addr,
                        bytes: g.line_size() as u32,
                        kind: AccessKind::Write,
                        class: TrafficClass::Fill,
                        at: fetched,
                    },
                ));
                self.fm_budget += 1;
                Served::new(if write { t0 } else { fetched }, false)
            }
        } else {
            // 2: XTA miss — consult the remap table (in NM) and allocate.
            self.stats.lookup_misses += 1;
            let remap_addr = self.layout.remap_entry_addr(sector);
            let t1 = self.meta_read(remap_addr, t0, dram);
            let loc = self.tables.location(sector);

            // Make room in the set (Figure 9).
            if self.xta.set_is_full(sector) {
                let victim = self
                    .xta
                    .evict_lru(sector)
                    .expect("full set has an LRU victim");
                self.process_eviction(victim, t1, dram);
            }

            match loc {
                Loc::Nm(slot) => {
                    // 2a: sector already in NM — link it, all lines valid.
                    let entry = self.xta.entry_for_nm_sector(sector, slot);
                    self.xta.insert(entry);
                    let addr = self.layout.nm_slot_addr(slot) + in_sector_off;
                    let (kind, class) = if write {
                        (AccessKind::Write, TrafficClass::Writeback)
                    } else {
                        (AccessKind::Read, TrafficClass::Demand)
                    };
                    let done = dram
                        .submit(ServiceRequest::new(
                            MemSide::Nm,
                            ticket,
                            DramAccess {
                                addr,
                                bytes: req.bytes,
                                kind,
                                class,
                                at: t1,
                            },
                        ))
                        .ready;
                    self.stats.served_from_nm += 1;
                    Served::new(done, true)
                }
                Loc::Fm(fm) => {
                    // 2b: sector in FM — allocate NM space, fetch the line.
                    let slot = self.alloc_cache_slot(t1, dram);
                    // Eager inverted-remap update (§3.4, correctness of the
                    // FIFO allocator).
                    self.tables.set_sector_at(slot, Some(sector));
                    let inv_addr = self.layout.inverted_entry_addr(slot);
                    self.meta_write(inv_addr, t1, dram);

                    let line_off = u64::from(line) * g.line_size();
                    let fm_addr = self.layout.fm_loc_addr(fm) + line_off;
                    let nm_addr = self.layout.nm_slot_addr(slot) + line_off;
                    let class = if write {
                        TrafficClass::Fill
                    } else {
                        TrafficClass::Demand
                    };
                    let fetched = dram
                        .submit(ServiceRequest::new(
                            MemSide::Fm,
                            ticket,
                            DramAccess {
                                addr: fm_addr,
                                bytes: g.line_size() as u32,
                                kind: AccessKind::Read,
                                class,
                                at: t1,
                            },
                        ))
                        .ready;
                    dram.submit(ServiceRequest::new(
                        MemSide::Nm,
                        ticket,
                        DramAccess {
                            addr: nm_addr,
                            bytes: g.line_size() as u32,
                            kind: AccessKind::Write,
                            class: TrafficClass::Fill,
                            at: fetched,
                        },
                    ));
                    self.fm_budget += 1;
                    let entry = Xta::entry_for_fm_fetch(sector, slot, fm, line, write);
                    self.xta.insert(entry);
                    Served::new(if write { t1 } else { fetched }, false)
                }
            }
        }
    }

    fn on_tick(&mut self, now: Cycle, _dram: &mut DramSystem) {
        // Machine-loop contract, relied on by the §3.7.3 budget interval
        // (and by any future tick-driven migration state): the event loop —
        // per-op reference and epoch-batched alike — delivers ticks in
        // nondecreasing time order, interleaved with `access` calls exactly
        // as the per-op reference schedule would. A run-ahead core must
        // never fire a tick early.
        debug_assert!(
            now >= self.last_tick,
            "on_tick went backwards: {now:?} after {:?}",
            self.last_tick
        );
        self.last_tick = now;
        self.maybe_reset_budget(now);
    }

    fn os_hint_unused(&mut self, addr: sim_types::PAddr, bytes: u64) {
        // Only sectors fully inside the hinted range become skippable.
        let sector_bytes = self.layout.geometry.sector_size();
        let first = addr.raw().div_ceil(sector_bytes);
        let last = (addr.raw() + bytes) / sector_bytes;
        for sec in first..last.min(self.layout.flat_sectors) {
            let u = &mut self.unused[sec as usize];
            if !*u {
                *u = true;
                self.unused_live += 1;
            }
        }
    }

    fn os_hint_used(&mut self, addr: sim_types::PAddr, bytes: u64) {
        let sector_bytes = self.layout.geometry.sector_size();
        let first = addr.raw() / sector_bytes;
        let last = (addr.raw() + bytes).div_ceil(sector_bytes);
        for sec in first..last.min(self.layout.flat_sectors) {
            let u = &mut self.unused[sec as usize];
            if *u {
                *u = false;
                self.unused_live -= 1;
            }
        }
    }

    fn tick_period(&self) -> Option<u64> {
        Some(self.cfg.budget_reset_period)
    }

    fn flat_capacity_bytes(&self) -> u64 {
        self.layout.flat_capacity_bytes()
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_types::{PAddr, SectorId};

    fn small_dcmc(variant: Variant) -> (Dcmc, DramSystem) {
        // 1/1024 scale: NM 1 MB, FM 16 MB, cache 64 KB (32 sectors, 2 sets
        // of 16 ways).
        let cfg = Hybrid2Config::scaled_down(1024)
            .unwrap()
            .with_variant(variant);
        (Dcmc::new(cfg).unwrap(), DramSystem::paper_default())
    }

    fn fm_addr(dcmc: &Dcmc, n: u64) -> PAddr {
        // An address whose sector boots in FM.
        let l = dcmc.layout();
        PAddr::new((l.nm_flat_sectors + n) * l.geometry.sector_size())
    }

    fn nm_addr(_dcmc: &Dcmc, n: u64) -> PAddr {
        PAddr::new(n * 2048)
    }

    #[test]
    fn read_of_nm_born_sector_is_2a_then_1a() {
        let (mut d, mut dram) = small_dcmc(Variant::Full);
        let a = nm_addr(&d, 0);
        let s1 = d.access(&MemReq::read(a, 64, Cycle::ZERO), &mut dram);
        assert!(s1.from_nm);
        assert_eq!(d.stats().lookup_misses, 1);
        let s2 = d.access(&MemReq::read(a, 64, s1.done), &mut dram);
        assert!(s2.from_nm);
        assert_eq!(d.stats().lookup_hits, 1);
        d.check_invariants().unwrap();
    }

    #[test]
    fn read_of_fm_sector_is_2b_then_line_hit() {
        let (mut d, mut dram) = small_dcmc(Variant::Full);
        let a = fm_addr(&d, 0);
        let s1 = d.access(&MemReq::read(a, 64, Cycle::ZERO), &mut dram);
        assert!(!s1.from_nm, "first touch comes from FM");
        // Same 256 B line: now cached in NM.
        let s2 = d.access(&MemReq::read(a.offset(64), 64, s1.done), &mut dram);
        assert!(s2.from_nm);
        // Different line of the same sector: 1b (XTA hit, line miss).
        let s3 = d.access(&MemReq::read(a.offset(512), 64, s2.done), &mut dram);
        assert!(!s3.from_nm);
        assert_eq!(d.stats().lookup_hits, 2);
        d.check_invariants().unwrap();
    }

    #[test]
    fn fm_fetch_consumes_boot_pool() {
        let (mut d, mut dram) = small_dcmc(Variant::Full);
        let before = d.free_pool_len();
        d.access(&MemReq::read(fm_addr(&d, 0), 64, Cycle::ZERO), &mut dram);
        assert_eq!(d.free_pool_len(), before - 1);
        d.check_invariants().unwrap();
    }

    #[test]
    fn writes_mark_lines_dirty_and_do_not_wait_for_fm() {
        let (mut d, mut dram) = small_dcmc(Variant::Full);
        let a = fm_addr(&d, 1);
        let t = Cycle::new(100);
        let s = d.access(&MemReq::write(a, 64, t), &mut dram);
        assert!(!s.from_nm);
        // Writes are buffered: done is the post-lookup time, well before an
        // FM round trip.
        assert!(s.done - t < 50, "write stalled: {}", s.done - t);
        let e = d
            .xta()
            .iter()
            .find(|e| e.sector == d.layout().geometry.sector_of(a))
            .unwrap();
        assert_eq!(e.dirty.count_ones(), 1);
        d.check_invariants().unwrap();
    }

    /// Touch every line of `sector_addr` so Nvalid = Nall (cheap migration).
    fn touch_all_lines(d: &mut Dcmc, dram: &mut DramSystem, base: PAddr, write: bool) {
        let g = d.layout().geometry;
        for l in 0..g.lines_per_sector() {
            let a = base.offset(u64::from(l) * g.line_size());
            let req = if write {
                MemReq::write(a, 64, Cycle::ZERO)
            } else {
                MemReq::read(a, 64, Cycle::ZERO)
            };
            d.access(&req, dram);
        }
    }

    /// Force sector `addr`'s XTA entry out by filling its set with other
    /// FM sectors. Returns how many allocations were made.
    fn force_eviction(d: &mut Dcmc, dram: &mut DramSystem, addr: PAddr) {
        let sets = d.xta().sets();
        let g = d.layout().geometry;
        let target = g.sector_of(addr);
        let l = *d.layout();
        let assoc = d.config().xta_assoc as u64;
        let mut filled = 0;
        let mut n = 0u64;
        while filled < assoc + 1 {
            let sec = l.nm_flat_sectors + n;
            n += 1;
            if sec >= l.flat_sectors {
                panic!("ran out of FM sectors");
            }
            let sid = SectorId::new(sec);
            if sid == target || (sid.raw() & (sets - 1)) != (target.raw() & (sets - 1)) {
                continue;
            }
            d.access(
                &MemReq::read(PAddr::new(sec * g.sector_size()), 64, Cycle::ZERO),
                dram,
            );
            filled += 1;
        }
    }

    #[test]
    fn migrate_all_variant_migrates_on_eviction() {
        let (mut d, mut dram) = small_dcmc(Variant::MigrateAll);
        let a = fm_addr(&d, 0);
        touch_all_lines(&mut d, &mut dram, a, false);
        force_eviction(&mut d, &mut dram, a);
        assert!(
            d.stats().moved_into_nm >= 1,
            "MigrateAll must migrate the evicted sector"
        );
        // The sector's home is now NM.
        let sec = d.layout().geometry.sector_of(a);
        assert!(d.tables().location(sec).is_nm());
        // Its old FM location is on the free stack (possibly already
        // consumed by a subsequent swap; at least it passed through).
        d.check_invariants().unwrap();
    }

    #[test]
    fn migrate_none_variant_never_migrates() {
        let (mut d, mut dram) = small_dcmc(Variant::MigrateNone);
        let a = fm_addr(&d, 0);
        touch_all_lines(&mut d, &mut dram, a, true);
        force_eviction(&mut d, &mut dram, a);
        assert_eq!(d.stats().moved_into_nm, 0);
        assert!(d.stats().dirty_writebacks > 0, "dirty lines written back");
        let sec = d.layout().geometry.sector_of(a);
        assert!(!d.tables().location(sec).is_nm());
        d.check_invariants().unwrap();
    }

    #[test]
    fn full_policy_migrates_hot_sector_with_budget() {
        let (mut d, mut dram) = small_dcmc(Variant::Full);
        let a = fm_addr(&d, 0);
        // Build budget with demand FM fetches and make the sector hot and
        // fully valid+dirty (net cost 1).
        touch_all_lines(&mut d, &mut dram, a, true);
        for _ in 0..4 {
            touch_all_lines(&mut d, &mut dram, a, false);
        }
        assert!(d.fm_budget() > 1);
        force_eviction(&mut d, &mut dram, a);
        assert!(d.stats().moved_into_nm >= 1, "hot sector should migrate");
        d.check_invariants().unwrap();
    }

    #[test]
    fn cold_sector_with_zero_budget_is_evicted() {
        let (mut d, mut dram) = small_dcmc(Variant::Full);
        let a = fm_addr(&d, 0);
        d.access(&MemReq::read(a, 64, Cycle::ZERO), &mut dram);
        // Zero the budget via a reset far in the future.
        d.on_tick(Cycle::new(10_000_000), &mut dram);
        assert_eq!(d.fm_budget(), 0);
        force_eviction(&mut d, &mut dram, a);
        // force_eviction's own fetches rebuild some budget, but the victim
        // selection compares counters: our victim (1 access) competes with
        // fresh sectors (1 access each) — equal is allowed, so the budget
        // gate decides. Either way the invariants hold and nothing leaked.
        d.check_invariants().unwrap();
    }

    #[test]
    fn boot_pool_exhaustion_triggers_fig8_swap() {
        let (mut d, mut dram) = small_dcmc(Variant::MigrateAll);
        let l = *d.layout();
        let g = l.geometry;
        // Touch far more FM sectors than the cache holds; MigrateAll makes
        // every eviction migrate, draining the pool and forcing Figure-8
        // swaps (moved_out_of_nm).
        let n = l.cache_sectors * 3;
        for i in 0..n {
            let sec = l.nm_flat_sectors + i;
            d.access(
                &MemReq::read(PAddr::new(sec * g.sector_size()), 64, Cycle::ZERO),
                &mut dram,
            );
        }
        assert!(d.stats().moved_out_of_nm > 0, "Figure-8 swaps must occur");
        assert!(d.stats().moved_into_nm > 0);
        d.check_invariants().unwrap();
    }

    #[test]
    fn budget_resets_on_period() {
        let (mut d, mut dram) = small_dcmc(Variant::Full);
        d.access(&MemReq::read(fm_addr(&d, 0), 64, Cycle::ZERO), &mut dram);
        assert!(d.fm_budget() > 0);
        let period = d.config().budget_reset_period;
        d.on_tick(Cycle::new(period), &mut dram);
        assert_eq!(d.fm_budget(), 0);
    }

    #[test]
    fn noremap_variant_produces_no_metadata_traffic() {
        let (mut d, mut dram) = small_dcmc(Variant::NoRemap);
        for i in 0..50 {
            d.access(&MemReq::read(fm_addr(&d, i), 64, Cycle::ZERO), &mut dram);
        }
        assert_eq!(d.stats().metadata_reads, 0);
        assert_eq!(d.stats().metadata_writes, 0);
        assert_eq!(
            dram.device(MemSide::Nm)
                .stats()
                .bytes(TrafficClass::Metadata),
            0
        );
    }

    #[test]
    fn full_variant_charges_metadata_traffic() {
        let (mut d, mut dram) = small_dcmc(Variant::Full);
        for i in 0..50 {
            d.access(&MemReq::read(fm_addr(&d, i), 64, Cycle::ZERO), &mut dram);
        }
        assert!(d.stats().metadata_reads > 0);
        assert!(
            dram.device(MemSide::Nm)
                .stats()
                .bytes(TrafficClass::Metadata)
                > 0
        );
    }

    #[test]
    fn xta_miss_pays_remap_latency() {
        let (mut d_full, mut dram_full) = small_dcmc(Variant::Full);
        let (mut d_free, mut dram_free) = small_dcmc(Variant::NoRemap);
        let a_full = fm_addr(&d_full, 0);
        let s_full = d_full.access(&MemReq::read(a_full, 64, Cycle::ZERO), &mut dram_full);
        let s_free = d_free.access(&MemReq::read(a_full, 64, Cycle::ZERO), &mut dram_free);
        assert!(
            s_full.done > s_free.done,
            "remap lookup must lengthen the critical path"
        );
    }

    #[test]
    fn served_from_nm_counts_demand_hits() {
        let (mut d, mut dram) = small_dcmc(Variant::Full);
        let a = nm_addr(&d, 0);
        d.access(&MemReq::read(a, 64, Cycle::ZERO), &mut dram);
        d.access(&MemReq::read(a, 64, Cycle::ZERO), &mut dram);
        let b = fm_addr(&d, 0);
        d.access(&MemReq::read(b, 64, Cycle::ZERO), &mut dram);
        assert_eq!(d.stats().requests, 3);
        assert_eq!(d.stats().served_from_nm, 2);
    }

    #[test]
    fn flat_capacity_includes_nm_share() {
        let (d, _) = small_dcmc(Variant::Full);
        assert!(d.flat_capacity_bytes() > d.config().fm_bytes);
        assert_eq!(d.name(), "HYBRID2");
    }

    #[test]
    #[should_panic(expected = "outside the flat space")]
    fn out_of_range_address_panics() {
        let (mut d, mut dram) = small_dcmc(Variant::Full);
        let beyond = d.flat_capacity_bytes();
        d.access(
            &MemReq::read(PAddr::new(beyond), 64, Cycle::ZERO),
            &mut dram,
        );
    }

    #[test]
    fn os_hints_mark_only_fully_covered_sectors() {
        let (mut d, _) = small_dcmc(Variant::Full);
        let sector = d.layout().geometry.sector_size();
        // A range covering 1.5 sectors marks only the fully covered one.
        d.os_hint_unused(PAddr::new(sector), sector + sector / 2);
        assert_eq!(d.unused_sector_count(), 1);
        // Revive half of it: the whole sector becomes live again.
        d.os_hint_used(PAddr::new(sector), 64);
        assert_eq!(d.unused_sector_count(), 0);
    }

    #[test]
    fn unused_victims_skip_writebacks() {
        let (mut d, mut dram) = small_dcmc(Variant::Full);
        let a = fm_addr(&d, 0);
        touch_all_lines(&mut d, &mut dram, a, true); // all dirty
        let sector_bytes = d.layout().geometry.sector_size();
        d.os_hint_unused(a, sector_bytes);
        let wb_before = dram
            .device(MemSide::Fm)
            .stats()
            .bytes(TrafficClass::Writeback);
        force_eviction(&mut d, &mut dram, a);
        let wb_after = dram
            .device(MemSide::Fm)
            .stats()
            .bytes(TrafficClass::Writeback);
        assert_eq!(wb_before, wb_after, "dead data must not be written back");
        assert_eq!(d.writebacks_avoided(), 1);
        // The dead sector itself must not have migrated (fillers may).
        let sec = d.layout().geometry.sector_of(a);
        assert!(
            !d.tables().location(sec).is_nm(),
            "dead data must not migrate"
        );
        d.check_invariants().unwrap();
    }

    #[test]
    fn unused_flat_sectors_skip_fig8_copies() {
        let (mut d, mut dram) = small_dcmc(Variant::MigrateAll);
        // Hint the whole NM-born flat region dead: every Figure-8 swap can
        // skip its copy.
        let l = *d.layout();
        let g = l.geometry;
        d.os_hint_unused(PAddr::new(0), l.nm_flat_sectors * g.sector_size());
        let n = l.cache_sectors * 3;
        for i in 0..n {
            let sec = l.nm_flat_sectors + i;
            d.access(
                &MemReq::read(PAddr::new(sec * g.sector_size()), 64, Cycle::ZERO),
                &mut dram,
            );
        }
        assert!(
            d.stats().moved_out_of_nm > 0,
            "swaps still happen logically"
        );
        // Every NM-born (still dead) victim skips its copy; sectors that were
        // touched and later migrated in are live again, so they still copy.
        assert!(d.swaps_avoided() > 0, "dead swap-outs must skip copies");
        assert!(d.swaps_avoided() <= d.stats().moved_out_of_nm);
        d.check_invariants().unwrap();
    }

    #[test]
    fn touching_a_dead_sector_revives_it() {
        let (mut d, mut dram) = small_dcmc(Variant::Full);
        let a = fm_addr(&d, 0);
        d.os_hint_unused(a, d.layout().geometry.sector_size());
        assert_eq!(d.unused_sector_count(), 1);
        d.access(&MemReq::read(a, 64, Cycle::ZERO), &mut dram);
        assert_eq!(d.unused_sector_count(), 0, "implicit realloc on touch");
    }

    #[test]
    fn random_workout_preserves_invariants() {
        use sim_types::rng::SplitMix64;
        for variant in Variant::ALL {
            let (mut d, mut dram) = small_dcmc(variant);
            let flat = d.flat_capacity_bytes();
            let mut rng = SplitMix64::new(0xD00D ^ variant as u64);
            let mut t = Cycle::ZERO;
            for i in 0..4000 {
                let addr = PAddr::new(rng.gen_range(flat / 64) * 64);
                let req = if rng.chance(3, 10) {
                    MemReq::write(addr, 64, t)
                } else {
                    MemReq::read(addr, 64, t)
                };
                let served = d.access(&req, &mut dram);
                t = served.done.max(t) + rng.gen_range(100);
                if i % 500 == 0 {
                    d.check_invariants()
                        .unwrap_or_else(|e| panic!("{variant}: {e}"));
                }
            }
            d.check_invariants()
                .unwrap_or_else(|e| panic!("{variant}: {e}"));
        }
    }
}
