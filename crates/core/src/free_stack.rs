//! The Free-FM-Stack (§3.3, §3.5).
//!
//! Every time a sector migrates from FM into NM, its vacated FM location is
//! pushed here; the §3.5 allocator pops a location when it must swap a flat
//! NM sector out to FM. The stack itself lives in the NM metadata region,
//! but the stack pointer and the top entries are kept on-chip in the DCMC,
//! so only pushes/pops beyond that window touch DRAM — the caller is told
//! via [`StackEffect`] whether an NM metadata access must be charged.

use sim_types::FmLoc;

/// Whether a stack operation needed to touch the in-NM backing store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StackEffect {
    /// Depth of the entry touched (for metadata addressing).
    pub depth: u64,
    /// True if the operation went beyond the on-chip window and must be
    /// charged as an NM metadata access.
    pub touches_nm: bool,
}

/// The free-FM-location stack with an on-chip top window.
#[derive(Clone, Debug)]
pub struct FreeFmStack {
    entries: Vec<FmLoc>,
    onchip: usize,
    capacity: u64,
}

impl FreeFmStack {
    /// Creates an empty stack bounded by `capacity` (the number of sectors
    /// that fit in the DRAM cache, §3.3) keeping `onchip` entries on-chip.
    pub fn new(capacity: u64, onchip: usize) -> Self {
        FreeFmStack {
            entries: Vec::new(),
            onchip,
            capacity,
        }
    }

    /// Number of free FM locations currently recorded.
    pub fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// True when no free FM location is available.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pushes a vacated FM location.
    ///
    /// # Panics
    ///
    /// Panics if the stack exceeds its §3.3 bound (the number of cache
    /// sectors) — that would mean the DCMC leaked FM locations.
    pub fn push(&mut self, loc: FmLoc) -> StackEffect {
        assert!(
            self.len() < self.capacity,
            "free-FM-stack overflow: pushed more vacancies than cache sectors"
        );
        let depth = self.entries.len() as u64;
        self.entries.push(loc);
        StackEffect {
            depth,
            touches_nm: self.entries.len() > self.onchip,
        }
    }

    /// Pops the most recently freed FM location.
    pub fn pop(&mut self) -> Option<(FmLoc, StackEffect)> {
        let loc = self.entries.pop()?;
        let depth = self.entries.len() as u64;
        Some((
            loc,
            StackEffect {
                depth,
                touches_nm: self.entries.len() + 1 > self.onchip,
            },
        ))
    }

    /// All recorded free locations, bottom to top (for invariant tests).
    pub fn as_slice(&self) -> &[FmLoc] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut s = FreeFmStack::new(16, 4);
        s.push(FmLoc::new(1));
        s.push(FmLoc::new(2));
        assert_eq!(s.pop().unwrap().0, FmLoc::new(2));
        assert_eq!(s.pop().unwrap().0, FmLoc::new(1));
        assert!(s.pop().is_none());
    }

    #[test]
    fn onchip_window_avoids_nm_traffic() {
        let mut s = FreeFmStack::new(16, 2);
        assert!(!s.push(FmLoc::new(1)).touches_nm);
        assert!(!s.push(FmLoc::new(2)).touches_nm);
        assert!(s.push(FmLoc::new(3)).touches_nm, "third entry spills");
        let (_, e) = s.pop().unwrap();
        assert!(e.touches_nm, "popping the spilled entry reads NM");
        let (_, e) = s.pop().unwrap();
        assert!(!e.touches_nm);
    }

    #[test]
    fn depth_reported_for_addressing() {
        let mut s = FreeFmStack::new(16, 1);
        assert_eq!(s.push(FmLoc::new(9)).depth, 0);
        assert_eq!(s.push(FmLoc::new(8)).depth, 1);
        assert_eq!(s.pop().unwrap().1.depth, 1);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_is_a_bug() {
        let mut s = FreeFmStack::new(1, 1);
        s.push(FmLoc::new(0));
        s.push(FmLoc::new(1));
    }

    #[test]
    fn emptiness_and_len() {
        let mut s = FreeFmStack::new(4, 4);
        assert!(s.is_empty());
        s.push(FmLoc::new(0));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
