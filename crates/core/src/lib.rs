//! The Hybrid2 DRAM Cache Migration Controller (DCMC).
//!
//! This crate is the paper's contribution (§3): a hybrid memory controller
//! that dedicates a small slice of near memory (64 MB of 1–4 GB in the
//! paper) to a *sectored DRAM cache* whose tags — the eXtended Tag Array
//! ([`xta::Xta`]) — live on-chip, while the rest of NM joins FM in a flat,
//! hardware-migrated address space. One mechanism serves both worlds:
//!
//! * the XTA holds, per cached sector, the conventional sectored-cache state
//!   (tag, per-line valid/dirty bits) **plus** an NM pointer and an FM
//!   pointer, so it doubles as a cache of the in-NM remap tables;
//! * data is fetched into the cache at *cache line* granularity (256 B) but
//!   tagged at *sector* granularity (2 KB), bounding both tag size and
//!   over-fetch;
//! * migration into NM is decided **at cache eviction time**, using the
//!   access history the cache observed (§3.7: set-relative access counters,
//!   a net-cost function, and an FM-bandwidth budget);
//! * the NM pointer indirection lets a sector that wins migration simply
//!   *stay where it already is* — no NM-to-NM copy (§3.6 case 1 / §3.5).
//!
//! The crate exposes the full mechanism plus the ablation variants of
//! Figure 14 ([`Variant::CacheOnly`], [`Variant::MigrateAll`],
//! [`Variant::MigrateNone`], [`Variant::NoRemap`]).
//!
//! # Example
//!
//! ```
//! use hybrid2_core::{Dcmc, Hybrid2Config};
//! use dram::{DramSystem, MemoryScheme};
//! use sim_types::{Cycle, MemReq, PAddr};
//!
//! let cfg = Hybrid2Config::scaled_down(64)?; // paper config at 1/64 scale
//! let mut dcmc = Dcmc::new(cfg)?;
//! let mut dram = DramSystem::paper_default();
//! let served = dcmc.access(&MemReq::read(PAddr::new(0), 64, Cycle::ZERO), &mut dram);
//! assert!(served.done > Cycle::ZERO);
//! # Ok::<(), hybrid2_core::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dcmc;
mod free_stack;
mod migrate;
mod remap;
pub mod xta;

pub use config::{ConfigError, Hybrid2Config, Layout, Variant};
pub use dcmc::Dcmc;
pub use free_stack::FreeFmStack;
pub use migrate::{decide, CostInputs, Decision};
pub use remap::{Loc, RemapTables, SlotState};
