//! The migration decision (§3.7, Figure 10).
//!
//! When an FM-resident sector is evicted from the DRAM cache, three factors
//! decide between *migrating* it into NM and *evicting* it back to FM:
//!
//! 1. **Access counter** (§3.7.1) — the victim must have been accessed at
//!    least as often as every competing (FM-resident, non-saturated) sector
//!    in its set.
//! 2. **Cost function** (§3.7.2) — the net FM traffic of migrating instead
//!    of evicting: `Netcost = 2*Nall − Nvalid − Ndirty + 1`.
//! 3. **Migration bandwidth** (§3.7.3) — `Netcost` must fit in the FM-access
//!    budget accumulated from demand misses since the last 100 K-cycle
//!    reset, and is debited from it on migration.
//!
//! The function here is pure so the exact arithmetic of the paper can be
//! tested exhaustively; [`crate::Dcmc`] wires it to live state.

use crate::config::Variant;

/// Inputs to the §3.7.2 cost function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostInputs {
    /// Cache lines per sector (`Nall`).
    pub nall: u32,
    /// Valid lines of the victim (`Nvalid`).
    pub nvalid: u32,
    /// Dirty lines of the victim (`Ndirty`).
    pub ndirty: u32,
}

impl CostInputs {
    /// Migration cost in FM accesses: fetch the missing lines, swap a full
    /// sector out of NM, plus one access for the remap-table updates.
    /// `Mcost = Nall − Nvalid + Nall + 1`.
    pub fn migration_cost(&self) -> u64 {
        debug_assert!(self.nvalid <= self.nall && self.ndirty <= self.nvalid);
        u64::from(2 * self.nall - self.nvalid) + 1
    }

    /// Eviction cost in FM accesses: write back the dirty lines.
    /// `Ecost = Ndirty`.
    pub fn eviction_cost(&self) -> u64 {
        u64::from(self.ndirty)
    }

    /// `Netcost = Mcost − Ecost = 2*Nall − Nvalid − Ndirty + 1`.
    pub fn net_cost(&self) -> u64 {
        self.migration_cost() - self.eviction_cost()
    }
}

/// Outcome of the decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Migrate the sector into NM; the caller debits `net_cost` from the
    /// FM-access budget.
    Migrate {
        /// The §3.7.2 net cost to debit.
        net_cost: u64,
    },
    /// Write dirty lines back and return the sector to FM.
    Evict,
}

/// Applies Figure 10 for one victim.
///
/// * `victim_counter` — the victim's §3.7.1 access counter.
/// * `peer_counters` — counters of the other FM-resident, non-saturated
///   sectors of the set (from
///   [`Xta::competing_counters`](crate::xta::Xta::competing_counters)).
/// * `cost` — the victim's valid/dirty population.
/// * `budget` — the current FM-access counter (§3.7.3).
/// * `variant` — ablations: `MigrateAll` skips the policy and always
///   migrates; `MigrateNone` and `CacheOnly` never migrate.
pub fn decide(
    victim_counter: u16,
    peer_counters: &[u16],
    cost: CostInputs,
    budget: u64,
    variant: Variant,
) -> Decision {
    match variant {
        Variant::CacheOnly | Variant::MigrateNone => return Decision::Evict,
        Variant::MigrateAll => {
            return Decision::Migrate {
                net_cost: cost.net_cost(),
            }
        }
        Variant::Full | Variant::NoRemap => {}
    }
    // §3.7.1: another sector with a strictly greater counter wins.
    if peer_counters.iter().any(|&p| p > victim_counter) {
        return Decision::Evict;
    }
    // §3.7.3: "if the migration cost (Netcost) is smaller than the counter
    // value then the sector is considered for migration".
    let net = cost.net_cost();
    if net < budget {
        Decision::Migrate { net_cost: net }
    } else {
        Decision::Evict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NALL: u32 = 8;

    fn cost(nvalid: u32, ndirty: u32) -> CostInputs {
        CostInputs {
            nall: NALL,
            nvalid,
            ndirty,
        }
    }

    #[test]
    fn net_cost_matches_paper_formula() {
        // Netcost = 2*Nall - Nvalid - Ndirty + 1.
        assert_eq!(cost(8, 8).net_cost(), 1); // all valid+dirty -> minimum 1
        assert_eq!(cost(1, 0).net_cost(), 2 * 8 - 1 + 1); // 16 = 2*Nall
        assert_eq!(cost(4, 2).net_cost(), 16 - 4 - 2 + 1);
    }

    #[test]
    fn cost_extremes_from_the_paper_text() {
        // "from 1 when all cache lines of a sector are valid and dirty, to
        //  2*Nall when only one cacheline is valid and clean".
        assert_eq!(cost(NALL, NALL).net_cost(), 1);
        assert_eq!(cost(1, 0).net_cost(), u64::from(2 * NALL));
    }

    #[test]
    fn migration_and_eviction_costs() {
        let c = cost(5, 3);
        assert_eq!(c.migration_cost(), u64::from(2 * NALL - 5) + 1);
        assert_eq!(c.eviction_cost(), 3);
        assert_eq!(c.net_cost(), c.migration_cost() - c.eviction_cost());
    }

    #[test]
    fn peer_with_greater_counter_blocks_migration() {
        let d = decide(5, &[6], cost(8, 8), 1_000, Variant::Full);
        assert_eq!(d, Decision::Evict);
    }

    #[test]
    fn equal_peer_counter_allows_migration() {
        // "greater or equal to all other sectors in the set".
        let d = decide(5, &[5, 3], cost(8, 8), 1_000, Variant::Full);
        assert!(matches!(d, Decision::Migrate { net_cost: 1 }));
    }

    #[test]
    fn empty_set_allows_migration() {
        let d = decide(0, &[], cost(8, 8), 1_000, Variant::Full);
        assert!(matches!(d, Decision::Migrate { .. }));
    }

    #[test]
    fn budget_gates_migration() {
        // net cost of cost(4,2) is 11.
        assert_eq!(
            decide(9, &[], cost(4, 2), 11, Variant::Full),
            Decision::Evict
        );
        assert!(matches!(
            decide(9, &[], cost(4, 2), 12, Variant::Full),
            Decision::Migrate { net_cost: 11 }
        ));
        assert_eq!(
            decide(9, &[], cost(4, 2), 0, Variant::Full),
            Decision::Evict
        );
    }

    #[test]
    fn ablation_variants_override_policy() {
        // MigrateAll ignores both the peers and the budget.
        assert!(matches!(
            decide(0, &[100], cost(1, 0), 0, Variant::MigrateAll),
            Decision::Migrate { .. }
        ));
        // MigrateNone / CacheOnly never migrate, even with a perfect case.
        assert_eq!(
            decide(100, &[], cost(8, 8), 1_000_000, Variant::MigrateNone),
            Decision::Evict
        );
        assert_eq!(
            decide(100, &[], cost(8, 8), 1_000_000, Variant::CacheOnly),
            Decision::Evict
        );
    }

    #[test]
    fn noremap_uses_the_full_policy() {
        assert_eq!(
            decide(5, &[6], cost(8, 8), 1_000, Variant::NoRemap),
            Decision::Evict
        );
        assert!(matches!(
            decide(6, &[6], cost(8, 8), 1_000, Variant::NoRemap),
            Decision::Migrate { .. }
        ));
    }

    #[test]
    fn more_dirty_lines_lower_net_cost() {
        // Dirty lines would be written back anyway, so they subsidize
        // migration — the paper's swap-vs-copy asymmetry.
        assert!(cost(8, 8).net_cost() < cost(8, 0).net_cost());
        assert!(cost(8, 4).net_cost() < cost(4, 4).net_cost());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Netcost is always in [1, 2*Nall] (the paper's stated range).
        #[test]
        fn net_cost_range(nall in 1u32..=64, nvalid_raw in 0u32..=64, ndirty_raw in 0u32..=64) {
            let nvalid = nvalid_raw.min(nall).max(1);
            let ndirty = ndirty_raw.min(nvalid);
            let c = CostInputs { nall, nvalid, ndirty };
            let net = c.net_cost();
            prop_assert!(net >= 1);
            prop_assert!(net <= u64::from(2 * nall));
        }

        /// The decision never migrates with a zero budget (except MigrateAll).
        #[test]
        fn zero_budget_never_migrates(victim in 0u16..512, peers in proptest::collection::vec(0u16..512, 0..16)) {
            let c = CostInputs { nall: 8, nvalid: 8, ndirty: 8 };
            let d = decide(victim, &peers, c, 0, Variant::Full);
            prop_assert_eq!(d, Decision::Evict);
        }

        /// Monotonicity: raising the budget never flips Migrate -> Evict.
        #[test]
        fn budget_monotonic(victim in 0u16..512,
                            peers in proptest::collection::vec(0u16..512, 0..16),
                            nvalid in 1u32..=8, ndirty_raw in 0u32..=8,
                            b1 in 0u64..40, b2 in 0u64..40) {
            let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
            let c = CostInputs { nall: 8, nvalid, ndirty: ndirty_raw.min(nvalid) };
            let d_lo = decide(victim, &peers, c, lo, Variant::Full);
            let d_hi = decide(victim, &peers, c, hi, Variant::Full);
            let lo_migrates = matches!(d_lo, Decision::Migrate { .. });
            let hi_migrates = matches!(d_hi, Decision::Migrate { .. });
            if lo_migrates {
                prop_assert!(hi_migrates, "raising the budget flipped Migrate to Evict");
            }
        }
    }
}
