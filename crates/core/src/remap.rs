//! The remap table, inverted remap table and slot ownership (§3.3).
//!
//! The remap table maps every *flat* (processor physical) sector to its
//! current home: an NM data slot or an FM sector location. The inverted
//! remap table answers the reverse question for NM slots, which the FIFO
//! allocator (§3.5) needs to avoid swapping out sectors that are currently
//! in the DRAM cache. Both tables live in the reserved NM metadata region;
//! the DCMC charges NM traffic for touching them (unless the `NoRemap`
//! ablation is active). This module is the *state*; traffic accounting
//! happens in [`crate::Dcmc`].

use sim_types::{FmLoc, NmLoc, SectorId};

use crate::config::Layout;

/// Where a flat sector currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Loc {
    /// An NM data slot.
    Nm(NmLoc),
    /// An FM sector location.
    Fm(FmLoc),
}

impl Loc {
    /// True if the sector lives in near memory.
    pub fn is_nm(self) -> bool {
        matches!(self, Loc::Nm(_))
    }
}

/// Ownership of one NM data slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotState {
    /// The slot is a home of a flat-space sector.
    Flat,
    /// The slot belongs to the DRAM cache pool (holding cached lines of an
    /// FM-resident sector, or awaiting assignment).
    CachePool,
}

/// The two remap tables plus slot ownership, with invariant checkers.
#[derive(Clone, Debug)]
pub struct RemapTables {
    remap: Vec<Loc>,
    inverted: Vec<Option<SectorId>>,
    slot_state: Vec<SlotState>,
    layout: Layout,
}

impl RemapTables {
    /// Builds boot-state tables for `layout`: identity mapping (flat NM
    /// sectors in slots after the cache pool, FM sectors in order), boot
    /// cache pool unassigned.
    pub fn new(layout: Layout) -> Self {
        let mut remap = Vec::with_capacity(layout.flat_sectors as usize);
        let mut inverted: Vec<Option<SectorId>> = vec![None; layout.slots as usize];
        let mut slot_state = vec![SlotState::CachePool; layout.slots as usize];
        for s in 0..layout.flat_sectors {
            let sector = SectorId::new(s);
            let loc = layout.initial_location(sector);
            if let Loc::Nm(slot) = loc {
                inverted[slot.index()] = Some(sector);
                slot_state[slot.index()] = SlotState::Flat;
            }
            remap.push(loc);
        }
        RemapTables {
            remap,
            inverted,
            slot_state,
            layout,
        }
    }

    /// The layout these tables were built for.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Current location of `sector`.
    ///
    /// # Panics
    ///
    /// Panics if `sector` is outside the flat space.
    pub fn location(&self, sector: SectorId) -> Loc {
        self.remap[sector.index()]
    }

    /// Points `sector` at a new home.
    pub fn set_location(&mut self, sector: SectorId, loc: Loc) {
        self.remap[sector.index()] = loc;
        if let Loc::Nm(slot) = loc {
            self.inverted[slot.index()] = Some(sector);
        }
    }

    /// The flat sector registered at NM `slot`, if any.
    pub fn sector_at(&self, slot: NmLoc) -> Option<SectorId> {
        self.inverted[slot.index()]
    }

    /// Registers `sector` in the inverted table for `slot` (done on 2b
    /// fetches *before* any migration so the FIFO allocator sees it, §3.4).
    pub fn set_sector_at(&mut self, slot: NmLoc, sector: Option<SectorId>) {
        self.inverted[slot.index()] = sector;
    }

    /// Ownership of `slot`.
    pub fn slot_state(&self, slot: NmLoc) -> SlotState {
        self.slot_state[slot.index()]
    }

    /// Transfers `slot` between the cache pool and the flat space.
    pub fn set_slot_state(&mut self, slot: NmLoc, state: SlotState) {
        self.slot_state[slot.index()] = state;
    }

    /// Number of slots currently owned by the cache pool.
    pub fn cache_pool_size(&self) -> u64 {
        self.slot_state
            .iter()
            .filter(|s| **s == SlotState::CachePool)
            .count() as u64
    }

    /// Checks the §4 invariants; returns a description of the first
    /// violation. Used by tests and debug assertions — O(flat space).
    pub fn check_invariants(&self) -> Result<(), String> {
        // 1. Remap is injective: no two sectors share a home.
        let mut nm_seen = vec![false; self.layout.slots as usize];
        let mut fm_seen = vec![false; self.layout.fm_sectors as usize];
        for (s, loc) in self.remap.iter().enumerate() {
            match *loc {
                Loc::Nm(slot) => {
                    if nm_seen[slot.index()] {
                        return Err(format!("NM slot {slot:?} mapped by two sectors"));
                    }
                    nm_seen[slot.index()] = true;
                    // 2. Inverted table agrees.
                    if self.inverted[slot.index()] != Some(SectorId::new(s as u64)) {
                        return Err(format!(
                            "inverted[{slot:?}] = {:?} but remap says sector {s}",
                            self.inverted[slot.index()]
                        ));
                    }
                    // 3. A sector's NM home is a Flat slot.
                    if self.slot_state[slot.index()] != SlotState::Flat {
                        return Err(format!("sector {s} homed in cache-pool slot {slot:?}"));
                    }
                }
                Loc::Fm(f) => {
                    if fm_seen[f.index()] {
                        return Err(format!("FM loc {f:?} mapped by two sectors"));
                    }
                    fm_seen[f.index()] = true;
                }
            }
        }
        // 4. The number of Flat slots equals the number of NM-homed sectors;
        //    pool size is therefore slots - nm_homed.
        let nm_homed = nm_seen.iter().filter(|b| **b).count() as u64;
        let flat_slots = self
            .slot_state
            .iter()
            .filter(|s| **s == SlotState::Flat)
            .count() as u64;
        if nm_homed != flat_slots {
            return Err(format!(
                "{nm_homed} sectors homed in NM but {flat_slots} slots marked Flat"
            ));
        }
        Ok(())
    }

    /// FM locations not used by any sector (the free-stack's rightful
    /// contents); O(flat space), for invariant tests.
    pub fn free_fm_locations(&self) -> Vec<FmLoc> {
        let mut used = vec![false; self.layout.fm_sectors as usize];
        for loc in &self.remap {
            if let Loc::Fm(f) = loc {
                used[f.index()] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter(|(_, u)| !**u)
            .map(|(i, _)| FmLoc::new(i as u64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Hybrid2Config;

    fn tables() -> RemapTables {
        let layout = Hybrid2Config::scaled_down(256).unwrap().validate().unwrap();
        RemapTables::new(layout)
    }

    #[test]
    fn boot_state_is_identity_and_valid() {
        let t = tables();
        t.check_invariants().unwrap();
        let l = *t.layout();
        assert_eq!(t.cache_pool_size(), l.cache_sectors);
        // First flat sector homed at the first slot after the boot pool.
        match t.location(SectorId::new(0)) {
            Loc::Nm(slot) => assert_eq!(slot.raw(), l.cache_sectors),
            Loc::Fm(_) => panic!("sector 0 should boot in NM"),
        }
        assert!(!t.location(SectorId::new(l.nm_flat_sectors)).is_nm());
    }

    #[test]
    fn boot_free_fm_is_empty() {
        let t = tables();
        assert!(t.free_fm_locations().is_empty());
    }

    #[test]
    fn swap_maintains_invariants() {
        let mut t = tables();
        let l = *t.layout();
        // Move sector 5 from its NM slot to FM... requires a free FM loc, so
        // first move an FM sector into a pool slot (simulating a migration).
        let fm_sector = SectorId::new(l.nm_flat_sectors + 3);
        let Loc::Fm(freed) = t.location(fm_sector) else {
            panic!("expected FM sector")
        };
        let pool_slot = NmLoc::new(0);
        assert_eq!(t.slot_state(pool_slot), SlotState::CachePool);
        t.set_location(fm_sector, Loc::Nm(pool_slot));
        t.set_slot_state(pool_slot, SlotState::Flat);
        // Now swap sector 5 out to the freed FM location.
        let s5 = SectorId::new(5);
        let Loc::Nm(old_slot) = t.location(s5) else {
            panic!("sector 5 boots in NM")
        };
        t.set_location(s5, Loc::Fm(freed));
        t.set_sector_at(old_slot, None);
        t.set_slot_state(old_slot, SlotState::CachePool);
        t.check_invariants().unwrap();
        assert_eq!(t.cache_pool_size(), l.cache_sectors); // conserved
    }

    #[test]
    fn invariant_checker_catches_double_mapping() {
        let mut t = tables();
        let l = *t.layout();
        let a = SectorId::new(l.nm_flat_sectors); // an FM sector
        let b = SectorId::new(l.nm_flat_sectors + 1);
        let Loc::Fm(fa) = t.location(a) else { panic!() };
        t.set_location(b, Loc::Fm(fa));
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn invariant_checker_catches_inverted_mismatch() {
        let mut t = tables();
        let s = SectorId::new(0);
        let Loc::Nm(slot) = t.location(s) else {
            panic!()
        };
        t.set_sector_at(slot, Some(SectorId::new(1)));
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn free_fm_tracks_vacated_locations() {
        let mut t = tables();
        let l = *t.layout();
        let fm_sector = SectorId::new(l.nm_flat_sectors + 7);
        let Loc::Fm(freed) = t.location(fm_sector) else {
            panic!()
        };
        t.set_location(fm_sector, Loc::Nm(NmLoc::new(1)));
        t.set_slot_state(NmLoc::new(1), SlotState::Flat);
        assert_eq!(t.free_fm_locations(), vec![freed]);
    }
}
