//! The eXtended Tag Array (§3.2, Figures 4 and 5).
//!
//! A set-associative, on-chip tag array with one entry per cached sector.
//! Each entry holds the conventional sectored-cache state — tag, per-line
//! valid and dirty bit-vectors, LRU — *extended* with the fields that let
//! the same structure serve the migration machinery:
//!
//! * an **NM pointer** decoupling the set/way from the physical NM location
//!   (the indirection that makes migration-on-eviction free of NM-to-NM
//!   copies),
//! * an **FM pointer** caching the remap-table entry for FM-resident
//!   sectors (skipping remap lookups on hits), and
//! * a **9-bit access counter** driving the §3.7 migration decision.

use sim_types::{FmLoc, NmLoc, SectorId};

/// One XTA entry (Figure 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XtaEntry {
    /// The cached sector's flat (processor physical) id; hardware would
    /// store only the tag bits, the full id is equivalent here.
    pub sector: SectorId,
    /// NM data slot holding this sector's cached lines (or its permanent
    /// home, for NM-resident sectors).
    pub nm_slot: NmLoc,
    /// FM home of the sector; `None` means the sector is NM-resident
    /// (migrated or NM-born), in which case all lines are valid by
    /// convention (Figure 5, bottom entry).
    pub fm_loc: Option<FmLoc>,
    /// Per-line valid bits.
    pub valid: u64,
    /// Per-line dirty bits (always a subset of `valid`).
    pub dirty: u64,
    /// Saturating access counter (§3.7.1); only advances for FM-resident
    /// sectors.
    pub counter: u16,
    /// LRU timestamp (larger = more recent).
    stamp: u64,
}

impl XtaEntry {
    /// Number of valid lines (`Nvalid` in the §3.7.2 cost function).
    pub fn valid_count(&self) -> u32 {
        self.valid.count_ones()
    }

    /// Number of dirty lines (`Ndirty`).
    pub fn dirty_count(&self) -> u32 {
        self.dirty.count_ones()
    }

    /// True for sectors whose home is NM (migrated or NM-born).
    pub fn is_nm_resident(&self) -> bool {
        self.fm_loc.is_none()
    }
}

/// The set-associative eXtended Tag Array.
#[derive(Clone, Debug)]
pub struct Xta {
    entries: Vec<Option<XtaEntry>>,
    sets: u64,
    assoc: usize,
    clock: u64,
    counter_max: u16,
    all_lines_mask: u64,
}

impl Xta {
    /// Builds an XTA with `sectors` total entries, `assoc` ways,
    /// `lines_per_sector` valid/dirty bits and a counter saturating at
    /// `2^counter_bits - 1`.
    ///
    /// # Panics
    ///
    /// Panics if the shape is invalid (use
    /// [`Hybrid2Config::validate`](crate::Hybrid2Config::validate) first).
    pub fn new(sectors: u64, assoc: u32, lines_per_sector: u32, counter_bits: u32) -> Self {
        assert!(assoc > 0 && sectors.is_multiple_of(u64::from(assoc)));
        let sets = sectors / u64::from(assoc);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!((1..=64).contains(&lines_per_sector));
        assert!((1..=16).contains(&counter_bits));
        Xta {
            entries: vec![None; sectors as usize],
            sets,
            assoc: assoc as usize,
            clock: 0,
            counter_max: ((1u32 << counter_bits) - 1) as u16,
            all_lines_mask: if lines_per_sector == 64 {
                u64::MAX
            } else {
                (1u64 << lines_per_sector) - 1
            },
        }
    }

    /// The all-lines-valid mask for this geometry.
    pub fn full_mask(&self) -> u64 {
        self.all_lines_mask
    }

    /// The saturation value of the access counters.
    pub fn counter_max(&self) -> u16 {
        self.counter_max
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    #[inline]
    fn set_of(&self, sector: SectorId) -> usize {
        (sector.raw() & (self.sets - 1)) as usize
    }

    fn range_of(&self, sector: SectorId) -> core::ops::Range<usize> {
        let start = self.set_of(sector) * self.assoc;
        start..start + self.assoc
    }

    /// Looks up `sector`, updating LRU on hit. The §3.7.1 counter rule is
    /// applied by the caller via [`XtaEntry::counter`] (it depends on the
    /// access, not the lookup).
    pub fn lookup_mut(&mut self, sector: SectorId) -> Option<&mut XtaEntry> {
        self.clock += 1;
        let clock = self.clock;
        let range = self.range_of(sector);
        let entry = self.entries[range]
            .iter_mut()
            .flatten()
            .find(|e| e.sector == sector)?;
        entry.stamp = clock;
        Some(entry)
    }

    /// Residency probe without LRU update (used by the §3.5 FIFO allocator).
    pub fn contains(&self, sector: SectorId) -> bool {
        let range = self.range_of(sector);
        self.entries[range]
            .iter()
            .flatten()
            .any(|e| e.sector == sector)
    }

    /// True if inserting `sector` requires evicting a victim first.
    pub fn set_is_full(&self, sector: SectorId) -> bool {
        let range = self.range_of(sector);
        self.entries[range].iter().all(Option::is_some)
    }

    /// Removes and returns the LRU entry of `sector`'s set (§3.6: "uses a
    /// standard LRU algorithm").
    pub fn evict_lru(&mut self, sector: SectorId) -> Option<XtaEntry> {
        let range = self.range_of(sector);
        let mut lru_idx = None;
        let mut lru_stamp = u64::MAX;
        for i in range {
            if let Some(e) = &self.entries[i] {
                if e.stamp < lru_stamp {
                    lru_stamp = e.stamp;
                    lru_idx = Some(i);
                }
            }
        }
        lru_idx.and_then(|i| self.entries[i].take())
    }

    /// Inserts a new entry (MRU position).
    ///
    /// # Panics
    ///
    /// Panics if the set is full or the sector is already present — callers
    /// must evict first; double insertion is a controller bug.
    pub fn insert(&mut self, mut entry: XtaEntry) {
        assert!(
            !self.contains(entry.sector),
            "sector {:?} inserted twice",
            entry.sector
        );
        self.clock += 1;
        entry.stamp = self.clock;
        let range = self.range_of(entry.sector);
        for i in range {
            if self.entries[i].is_none() {
                self.entries[i] = Some(entry);
                return;
            }
        }
        panic!("XTA set full on insert; evict first");
    }

    /// Access-counter values of the *other* FM-resident, non-saturated
    /// sectors in `sector`'s set — the §3.7.1 comparison population
    /// (NM-resident sectors never advance their counters, saturated ones
    /// are ignored to prevent starvation).
    pub fn competing_counters(&self, sector: SectorId) -> Vec<u16> {
        let range = self.range_of(sector);
        self.entries[range]
            .iter()
            .flatten()
            .filter(|e| e.sector != sector && !e.is_nm_resident() && e.counter < self.counter_max)
            .map(|e| e.counter)
            .collect()
    }

    /// Bumps an entry's counter with saturation; call only for FM-resident
    /// sectors (§3.7.1).
    pub fn bump_counter(entry: &mut XtaEntry, max: u16) {
        if entry.counter < max {
            entry.counter += 1;
        }
    }

    /// Number of occupied entries.
    pub fn occupancy(&self) -> u64 {
        self.entries.iter().flatten().count() as u64
    }

    /// Iterates over all resident entries.
    pub fn iter(&self) -> impl Iterator<Item = &XtaEntry> {
        self.entries.iter().flatten()
    }

    /// Constructs a fresh entry for an FM-resident sector fetched via the
    /// 2b path: one line valid, dirty iff the access was a write, counter
    /// starts at 1 (the allocation access counts).
    pub fn entry_for_fm_fetch(
        sector: SectorId,
        nm_slot: NmLoc,
        fm_loc: FmLoc,
        line: u32,
        write: bool,
    ) -> XtaEntry {
        let bit = 1u64 << line;
        XtaEntry {
            sector,
            nm_slot,
            fm_loc: Some(fm_loc),
            valid: bit,
            dirty: if write { bit } else { 0 },
            counter: 1,
            stamp: 0,
        }
    }

    /// Constructs a fresh entry for an NM-resident sector linked via the 2a
    /// path: all lines valid and dirty by convention (Figure 5), counter
    /// pinned to zero (§3.7.1).
    pub fn entry_for_nm_sector(&self, sector: SectorId, nm_slot: NmLoc) -> XtaEntry {
        XtaEntry {
            sector,
            nm_slot,
            fm_loc: None,
            valid: self.all_lines_mask,
            dirty: self.all_lines_mask,
            counter: 0,
            stamp: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xta() -> Xta {
        // 8 entries, 2-way, 8 lines/sector, 9-bit counters -> 4 sets.
        Xta::new(8, 2, 8, 9)
    }

    fn fm_entry(sector: u64, slot: u64) -> XtaEntry {
        Xta::entry_for_fm_fetch(
            SectorId::new(sector),
            NmLoc::new(slot),
            FmLoc::new(100 + sector),
            0,
            false,
        )
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut x = xta();
        x.insert(fm_entry(4, 0)); // set 0
        assert!(x.contains(SectorId::new(4)));
        let e = x.lookup_mut(SectorId::new(4)).unwrap();
        assert_eq!(e.nm_slot, NmLoc::new(0));
        assert!(!x.contains(SectorId::new(8)));
    }

    #[test]
    fn lru_eviction_order() {
        let mut x = xta();
        x.insert(fm_entry(0, 0)); // set 0
        x.insert(fm_entry(4, 1)); // set 0
                                  // Touch 0 -> 4 becomes LRU.
        x.lookup_mut(SectorId::new(0)).unwrap();
        let victim = x.evict_lru(SectorId::new(8)).unwrap(); // set 0
        assert_eq!(victim.sector, SectorId::new(4));
    }

    #[test]
    fn set_is_full_tracks_ways() {
        let mut x = xta();
        assert!(!x.set_is_full(SectorId::new(0)));
        x.insert(fm_entry(0, 0));
        assert!(!x.set_is_full(SectorId::new(0)));
        x.insert(fm_entry(4, 1));
        assert!(x.set_is_full(SectorId::new(0)));
        assert!(!x.set_is_full(SectorId::new(1)), "other sets unaffected");
    }

    #[test]
    #[should_panic(expected = "evict first")]
    fn insert_into_full_set_panics() {
        let mut x = xta();
        x.insert(fm_entry(0, 0));
        x.insert(fm_entry(4, 1));
        x.insert(fm_entry(8, 2));
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut x = xta();
        x.insert(fm_entry(0, 0));
        x.insert(fm_entry(0, 1));
    }

    #[test]
    fn competing_counters_exclude_nm_saturated_and_self() {
        let mut x = Xta::new(8, 4, 8, 3); // counter max 7, sets = 2
        let mut a = fm_entry(0, 0);
        a.counter = 3;
        x.insert(a);
        let mut b = fm_entry(2, 1); // set 0 (sector % 2)
        b.counter = 7; // saturated -> ignored
        x.insert(b);
        let nm = x.entry_for_nm_sector(SectorId::new(4), NmLoc::new(2)); // set 0
        x.insert(nm);
        let peers = x.competing_counters(SectorId::new(6)); // set 0, not present
        assert_eq!(peers, vec![3], "only the unsaturated FM peer counts");
    }

    #[test]
    fn counter_saturates() {
        let mut e = fm_entry(0, 0);
        for _ in 0..1000 {
            Xta::bump_counter(&mut e, 511);
        }
        assert_eq!(e.counter, 511);
    }

    #[test]
    fn fm_fetch_entry_shape() {
        let e = Xta::entry_for_fm_fetch(SectorId::new(9), NmLoc::new(3), FmLoc::new(7), 5, true);
        assert_eq!(e.valid, 1 << 5);
        assert_eq!(e.dirty, 1 << 5);
        assert_eq!(e.counter, 1);
        assert_eq!(e.valid_count(), 1);
        assert_eq!(e.dirty_count(), 1);
        assert!(!e.is_nm_resident());
    }

    #[test]
    fn nm_entry_is_fully_valid_dirty_with_zero_counter() {
        let x = xta();
        let e = x.entry_for_nm_sector(SectorId::new(1), NmLoc::new(9));
        assert_eq!(e.valid, x.full_mask());
        assert_eq!(e.dirty, x.full_mask());
        assert_eq!(e.counter, 0);
        assert!(e.is_nm_resident());
        assert_eq!(e.valid_count(), 8);
    }

    #[test]
    fn full_mask_for_64_lines() {
        let x = Xta::new(4, 2, 64, 9);
        assert_eq!(x.full_mask(), u64::MAX);
    }

    #[test]
    fn occupancy_and_iter() {
        let mut x = xta();
        x.insert(fm_entry(0, 0));
        x.insert(fm_entry(1, 1));
        assert_eq!(x.occupancy(), 2);
        assert_eq!(x.iter().count(), 2);
        x.evict_lru(SectorId::new(0));
        assert_eq!(x.occupancy(), 1);
    }

    #[test]
    fn evict_from_empty_set_is_none() {
        let mut x = xta();
        assert!(x.evict_lru(SectorId::new(0)).is_none());
    }
}
