//! Trace-driven interval core model.
//!
//! The paper simulates its 8-core out-of-order processor with the
//! interval-simulation methodology (Genbrugge, Eyerman & Eeckhout, HPCA
//! 2010): cores retire instructions at their full issue width until a
//! long-latency event (an LLC miss) exposes memory latency, and overlapping
//! misses within the reorder-buffer reach hide each other (memory-level
//! parallelism). This crate reproduces that model:
//!
//! * [`Core`] advances a per-core clock: `ceil(instructions / width)` cycles
//!   for compute, plus stalls when outstanding LLC-miss loads exceed the
//!   MSHR count or fall out of the ROB reach.
//! * Stores and writebacks are buffered and never stall the core (they still
//!   consume memory bandwidth, which the DRAM model charges).
//!
//! The event-loop that interleaves cores lives in the `sim` crate; this
//! crate is purely the per-core timing automaton, so it can be unit-tested
//! exhaustively on synthetic miss patterns.
//!
//! # Example
//!
//! ```
//! use cpu::{Core, CoreConfig};
//! use sim_types::Cycle;
//!
//! let mut core = Core::new(0, CoreConfig::paper_default());
//! core.advance_instructions(400); // 400 instrs at width 4 = 100 cycles
//! assert_eq!(core.now(), Cycle::new(100));
//!
//! // An isolated miss overlaps with later compute: no immediate stall.
//! core.issue_llc_miss_load(Cycle::new(200));
//! assert_eq!(core.now(), Cycle::new(100));
//! core.drain();
//! assert_eq!(core.now(), Cycle::new(200));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;

use sim_types::Cycle;

/// Microarchitectural parameters of one core (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Issue/commit width in instructions per cycle (Table 1: 4).
    pub issue_width: u32,
    /// Reorder-buffer reach in instructions: a miss older than this many
    /// retired instructions blocks retirement (typical OoO: 256).
    pub rob_instructions: u64,
    /// Maximum outstanding LLC-miss loads (MSHRs; typical: 16).
    pub mshrs: usize,
}

impl CoreConfig {
    /// The paper's core: 4-wide out-of-order at 3.2 GHz with a 256-entry ROB
    /// and 16 MSHRs (ROB/MSHR values are conventional; Table 1 specifies
    /// only the width and frequency).
    pub fn paper_default() -> Self {
        CoreConfig {
            issue_width: 4,
            rob_instructions: 256,
            mshrs: 16,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn assert_valid(&self) {
        assert!(self.issue_width > 0, "issue width must be non-zero");
        assert!(self.rob_instructions > 0, "ROB must be non-zero");
        assert!(self.mshrs > 0, "MSHR count must be non-zero");
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Timing statistics for one core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// LLC-miss loads issued to memory.
    pub miss_loads: u64,
    /// Stores/writebacks issued (buffered, not stalled on).
    pub stores: u64,
    /// Cycles spent stalled waiting for memory.
    pub stall_cycles: u64,
}

impl CoreStats {
    /// Instructions per cycle given the core's final time.
    pub fn ipc(&self, now: Cycle) -> f64 {
        if now.raw() == 0 {
            0.0
        } else {
            self.instructions as f64 / now.raw() as f64
        }
    }
}

/// One interval-model core.
///
/// The caller feeds it alternating compute intervals
/// ([`Core::advance_instructions`]) and memory events
/// ([`Core::issue_llc_miss_load`], [`Core::note_store`]); the core tracks
/// its own clock.
#[derive(Clone, Debug)]
pub struct Core {
    id: u8,
    cfg: CoreConfig,
    cycle: Cycle,
    stats: CoreStats,
    /// `log2(issue_width)` when the width is a power of two, so the
    /// per-op `ceil(instructions / width)` is a shift instead of a 64-bit
    /// divide (this runs once per memory operation of the whole
    /// simulation; the paper's width of 4 always takes the shift path).
    width_shift: Option<u32>,
    /// Outstanding LLC-miss loads: (completion cycle, instruction count at
    /// issue), oldest first.
    outstanding: VecDeque<(Cycle, u64)>,
}

impl Core {
    /// Creates a core with the given id and configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(id: u8, cfg: CoreConfig) -> Self {
        cfg.assert_valid();
        Core {
            id,
            cfg,
            cycle: Cycle::ZERO,
            stats: CoreStats::default(),
            width_shift: cfg
                .issue_width
                .is_power_of_two()
                .then(|| cfg.issue_width.trailing_zeros()),
            outstanding: VecDeque::with_capacity(cfg.mshrs + 1),
        }
    }

    /// This core's id.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// The core's current clock.
    pub fn now(&self) -> Cycle {
        self.cycle
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.stats.instructions
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Retires `n` instructions at full width, then applies ROB-reach
    /// stalls for outstanding misses that retirement has caught up with.
    ///
    /// Inlined with an empty-window fast return: the epoch-batched machine
    /// loop calls this once per run-ahead L1 hit, and during those bursts
    /// the miss window is usually empty — `settle_window`'s deque-front
    /// probing is pure overhead there.
    #[inline]
    pub fn advance_instructions(&mut self, n: u64) {
        if n > 0 {
            self.stats.instructions += n;
            let width = u64::from(self.cfg.issue_width);
            self.cycle += match self.width_shift {
                Some(s) => (n + width - 1) >> s,
                None => n.div_ceil(width),
            };
        }
        if self.outstanding.is_empty() {
            return; // nothing to retire or stall on: settle is a no-op
        }
        self.settle_window();
    }

    /// Issues a demand load that missed the LLC and completes at `done`.
    ///
    /// If all MSHRs are busy the core stalls until the oldest miss returns.
    pub fn issue_llc_miss_load(&mut self, done: Cycle) {
        self.stats.miss_loads += 1;
        self.retire_completed();
        while self.outstanding.len() >= self.cfg.mshrs {
            let (oldest_done, _) = self.outstanding.pop_front().expect("len checked non-zero");
            self.stall_until(oldest_done);
        }
        self.outstanding.push_back((done, self.stats.instructions));
    }

    /// Notes a store/writeback; buffered, never stalls.
    pub fn note_store(&mut self) {
        self.stats.stores += 1;
    }

    /// Waits for every outstanding miss to complete (end of simulation).
    pub fn drain(&mut self) {
        while let Some((done, _)) = self.outstanding.pop_front() {
            self.stall_until(done);
        }
    }

    /// Drops misses that completed in the past; no time advances.
    fn retire_completed(&mut self) {
        while let Some(&(done, _)) = self.outstanding.front() {
            if done <= self.cycle {
                self.outstanding.pop_front();
            } else {
                break;
            }
        }
    }

    /// Applies ROB-reach stalls: an incomplete miss more than
    /// `rob_instructions` behind the retirement point blocks the core.
    fn settle_window(&mut self) {
        loop {
            self.retire_completed();
            match self.outstanding.front() {
                Some(&(done, at_instr))
                    if self.stats.instructions - at_instr >= self.cfg.rob_instructions =>
                {
                    self.outstanding.pop_front();
                    self.stall_until(done);
                }
                _ => break,
            }
        }
    }

    fn stall_until(&mut self, t: Cycle) {
        if t > self.cycle {
            self.stats.stall_cycles += t - self.cycle;
            self.cycle = t;
        }
    }

    /// [`Core::advance_instructions`] for one op of an optimistic run-ahead
    /// window, with the window's bookkeeping side-buffered into `buf`.
    ///
    /// The core state mutates exactly as the globally ordered loop would —
    /// `ceil(n / width)` is applied **per op**, not to a window sum, because
    /// the rounding differs (`ceil(3/4) + ceil(3/4) = 2` but `ceil(6/4) =
    /// 2` only by luck; `ceil(1/4) * 8 ≠ ceil(8/4)` in general) — while the
    /// side buffer records what the parallel machine loop must commit
    /// globally afterwards: op/instruction totals for statistics credit and
    /// the clock-before-op maximum for the interval-tick horizon.
    #[inline]
    pub fn advance_instructions_buffered(&mut self, n: u64, buf: &mut SideBuffer) {
        buf.record(self.cycle.raw(), n);
        self.advance_instructions(n);
    }
}

/// Side buffer for one optimistic run-ahead window.
///
/// While a core speculates through provably core-local ops on its own
/// thread, everything the rest of the machine will eventually need to know
/// about the window accumulates here instead of touching shared state. The
/// fields are commutative summaries (sums and a max), so committing per-core
/// buffers in any grouping yields byte-identical global state — the property
/// that lets windows execute concurrently without rollback.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SideBuffer {
    /// Core-local ops consumed in this window.
    pub ops: u64,
    /// Instructions advanced through the core in this window.
    pub instructions: u64,
    /// Highest clock-before-op observed (the window's contribution to the
    /// machine's interval-tick horizon).
    pub horizon: u64,
}

impl SideBuffer {
    /// Records one op: the core clock as the op began and the instructions
    /// it retires.
    #[inline]
    pub fn record(&mut self, clock_before: u64, instructions: u64) {
        self.ops += 1;
        self.instructions += instructions;
        self.horizon = self.horizon.max(clock_before);
    }

    /// Folds another window's buffer into this one (order-independent).
    pub fn merge(&mut self, other: SideBuffer) {
        self.ops += other.ops;
        self.instructions += other.instructions;
        self.horizon = self.horizon.max(other.horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> Core {
        Core::new(0, CoreConfig::paper_default())
    }

    #[test]
    fn compute_only_runs_at_full_width() {
        let mut c = core();
        c.advance_instructions(400);
        assert_eq!(c.now(), Cycle::new(100));
        assert_eq!(c.retired(), 400);
        assert_eq!(c.stats().stall_cycles, 0);
        assert!((c.stats().ipc(c.now()) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn width_rounds_up() {
        let mut c = core();
        c.advance_instructions(5); // ceil(5/4) = 2 cycles
        assert_eq!(c.now(), Cycle::new(2));
    }

    #[test]
    fn isolated_miss_overlaps_with_compute() {
        let mut c = core();
        c.advance_instructions(40); // t = 10
        c.issue_llc_miss_load(Cycle::new(50));
        // Plenty of independent work: ROB reach not exceeded within 200 instrs.
        c.advance_instructions(200); // t = 60 > 50: miss fully hidden
        assert_eq!(c.now(), Cycle::new(60));
        assert_eq!(c.stats().stall_cycles, 0);
    }

    #[test]
    fn rob_reach_exposes_long_miss() {
        let mut c = core();
        c.issue_llc_miss_load(Cycle::new(1_000));
        // 256 instructions later the ROB is full behind the miss.
        c.advance_instructions(256);
        assert_eq!(c.now(), Cycle::new(1_000));
        assert!(c.stats().stall_cycles > 0);
    }

    #[test]
    fn below_rob_reach_no_stall() {
        let mut c = core();
        c.issue_llc_miss_load(Cycle::new(1_000));
        c.advance_instructions(255);
        assert_eq!(c.now(), Cycle::new(64)); // ceil(255/4)
        assert_eq!(c.stats().stall_cycles, 0);
    }

    #[test]
    fn mshr_pressure_stalls() {
        let mut c = Core::new(
            0,
            CoreConfig {
                issue_width: 4,
                rob_instructions: 1_000_000,
                mshrs: 2,
            },
        );
        c.issue_llc_miss_load(Cycle::new(100));
        c.issue_llc_miss_load(Cycle::new(200));
        // Third miss with both MSHRs busy: stall until the oldest (100).
        c.issue_llc_miss_load(Cycle::new(300));
        assert_eq!(c.now(), Cycle::new(100));
    }

    #[test]
    fn completed_misses_free_mshrs_without_stall() {
        let mut c = Core::new(
            0,
            CoreConfig {
                issue_width: 4,
                rob_instructions: 1_000_000,
                mshrs: 2,
            },
        );
        c.issue_llc_miss_load(Cycle::new(5));
        c.advance_instructions(400); // t = 100; the miss completed long ago
        c.issue_llc_miss_load(Cycle::new(150));
        c.issue_llc_miss_load(Cycle::new(160));
        assert_eq!(c.stats().stall_cycles, 0);
    }

    #[test]
    fn drain_waits_for_all_outstanding() {
        let mut c = core();
        c.issue_llc_miss_load(Cycle::new(80));
        c.issue_llc_miss_load(Cycle::new(120));
        c.drain();
        assert_eq!(c.now(), Cycle::new(120));
    }

    #[test]
    fn drain_on_idle_core_is_noop() {
        let mut c = core();
        c.drain();
        assert_eq!(c.now(), Cycle::ZERO);
    }

    #[test]
    fn stores_never_stall() {
        let mut c = core();
        for _ in 0..1000 {
            c.note_store();
        }
        assert_eq!(c.now(), Cycle::ZERO);
        assert_eq!(c.stats().stores, 1000);
    }

    #[test]
    fn mlp_hides_parallel_misses() {
        // Two cores: one sees serialized misses (each completes before the
        // next issues), the other sees overlapped misses. Same miss count,
        // overlapped finishes earlier.
        let mk = || {
            Core::new(
                0,
                CoreConfig {
                    issue_width: 4,
                    rob_instructions: 256,
                    mshrs: 16,
                },
            )
        };
        let mut serial = mk();
        let mut t = 0u64;
        for _ in 0..8 {
            t += 100;
            serial.issue_llc_miss_load(Cycle::new(t));
            serial.advance_instructions(256); // forces wait each time
        }
        let serial_time = serial.now();

        let mut overlapped = mk();
        for i in 0..8u64 {
            overlapped.issue_llc_miss_load(Cycle::new(100 + i)); // all in flight
            overlapped.advance_instructions(16);
        }
        overlapped.drain();
        assert!(
            overlapped.now() < serial_time,
            "overlapped {} should beat serialized {}",
            overlapped.now(),
            serial_time
        );
    }

    #[test]
    fn stats_count_miss_loads() {
        let mut c = core();
        c.issue_llc_miss_load(Cycle::new(10));
        c.issue_llc_miss_load(Cycle::new(20));
        assert_eq!(c.stats().miss_loads, 2);
    }

    #[test]
    #[should_panic(expected = "issue width")]
    fn zero_width_rejected() {
        let _ = Core::new(
            0,
            CoreConfig {
                issue_width: 0,
                rob_instructions: 1,
                mshrs: 1,
            },
        );
    }

    /// The buffered advance mutates the core identically to the plain one
    /// while the side buffer captures per-window totals and horizon.
    #[test]
    fn buffered_advance_matches_plain_advance() {
        let mut plain = core();
        let mut buffered = core();
        let mut buf = SideBuffer::default();
        let ops: [u64; 5] = [3, 1, 0, 7, 4];
        for n in ops {
            plain.advance_instructions(n);
            buffered.advance_instructions_buffered(n, &mut buf);
        }
        assert_eq!(buffered.now(), plain.now());
        assert_eq!(buffered.stats(), plain.stats());
        assert_eq!(buf.ops, 5);
        assert_eq!(buf.instructions, 15);
        // Horizon is the clock *before* the last op: 3+1+0+7 instrs at
        // width 4 = ceil(3/4)+ceil(1/4)+0+ceil(7/4) = 1+1+2 = 4 cycles.
        assert_eq!(buf.horizon, 4);
    }

    /// Per-op ceil rounding differs from window-sum rounding; the side
    /// buffer must not tempt callers into summing.
    #[test]
    fn per_op_rounding_is_not_window_sum_rounding() {
        let mut per_op = core();
        let mut buf = SideBuffer::default();
        for _ in 0..4 {
            per_op.advance_instructions_buffered(1, &mut buf);
        }
        let mut summed = core();
        summed.advance_instructions(buf.instructions);
        assert_eq!(per_op.now(), Cycle::new(4)); // 4 × ceil(1/4)
        assert_eq!(summed.now(), Cycle::new(1)); // ceil(4/4)
    }

    #[test]
    fn side_buffer_merge_is_commutative() {
        let mut a = SideBuffer {
            ops: 3,
            instructions: 40,
            horizon: 17,
        };
        let b = SideBuffer {
            ops: 2,
            instructions: 9,
            horizon: 100,
        };
        let mut c = b;
        c.merge(a);
        a.merge(b);
        assert_eq!(a, c);
        assert_eq!(a.ops, 5);
        assert_eq!(a.instructions, 49);
        assert_eq!(a.horizon, 100);
    }

    #[test]
    fn ipc_zero_when_idle() {
        let c = core();
        assert_eq!(c.stats().ipc(c.now()), 0.0);
    }

    #[test]
    fn time_is_monotonic_under_any_event_mix() {
        let mut c = core();
        let mut last = c.now();
        let events: [(u64, Option<u64>); 6] = [
            (10, Some(500)),
            (300, None),
            (5, Some(400)),
            (0, Some(410)),
            (256, None),
            (1, None),
        ];
        for (gap, miss) in events {
            c.advance_instructions(gap);
            assert!(c.now() >= last);
            last = c.now();
            if let Some(done) = miss {
                c.issue_llc_miss_load(Cycle::new(done));
                assert!(c.now() >= last);
                last = c.now();
            }
        }
        c.drain();
        assert!(c.now() >= last);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Core time is monotone and instruction accounting exact under any
        /// interleaving of compute, misses and stores.
        #[test]
        fn time_monotone_accounting_exact(
            events in proptest::collection::vec((0u64..500, proptest::option::of(0u64..5_000), any::<bool>()), 1..200)
        ) {
            let mut core = Core::new(0, CoreConfig::paper_default());
            let mut last = Cycle::ZERO;
            let mut instrs = 0u64;
            for (gap, miss, store) in events {
                core.advance_instructions(gap);
                instrs += gap;
                prop_assert!(core.now() >= last);
                last = core.now();
                if let Some(extra) = miss {
                    core.issue_llc_miss_load(core.now() + extra);
                    prop_assert!(core.now() >= last);
                    last = core.now();
                }
                if store {
                    core.note_store();
                }
            }
            core.drain();
            prop_assert!(core.now() >= last);
            prop_assert_eq!(core.retired(), instrs);
        }

        /// The core is never faster than its issue width allows and never
        /// slower than full serialization of compute + all miss latencies.
        #[test]
        fn time_bounded_by_width_and_serialization(
            events in proptest::collection::vec((1u64..200, 0u64..2_000), 1..100)
        ) {
            let mut core = Core::new(0, CoreConfig::paper_default());
            let mut total_instr = 0u64;
            let mut total_latency = 0u64;
            for (gap, latency) in events {
                core.advance_instructions(gap);
                total_instr += gap;
                core.issue_llc_miss_load(core.now() + latency);
                total_latency += latency;
            }
            core.drain();
            let min_cycles = total_instr / 4; // 4-wide upper bound on speed
            let max_cycles = total_instr + total_latency + events_len_bound();
            prop_assert!(core.now().raw() >= min_cycles);
            prop_assert!(core.now().raw() <= max_cycles + total_instr);
        }
    }

    fn events_len_bound() -> u64 {
        200 * 4 // slack for ceil rounding per event
    }
}
