//! Device configuration: organization, timing and energy parameters.

use core::fmt;

use sim_types::ClockRatio;

/// Errors returned by [`DeviceConfig::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceConfigError {
    /// `channels` must be a non-zero power of two (address interleaving).
    BadChannels(u32),
    /// `banks_per_channel` must be a non-zero power of two.
    BadBanks(u32),
    /// `row_bytes` must be a non-zero power of two.
    BadRowBytes(u64),
    /// `interleave_bytes` must be a non-zero power of two.
    BadInterleave(u64),
    /// `bytes_per_cycle` must be non-zero.
    ZeroBusWidth,
}

impl fmt::Display for DeviceConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DeviceConfigError::BadChannels(c) => {
                write!(f, "channel count {c} is not a non-zero power of two")
            }
            DeviceConfigError::BadBanks(b) => {
                write!(f, "bank count {b} is not a non-zero power of two")
            }
            DeviceConfigError::BadRowBytes(r) => {
                write!(f, "row size {r} is not a non-zero power of two")
            }
            DeviceConfigError::BadInterleave(i) => {
                write!(f, "interleave granule {i} is not a non-zero power of two")
            }
            DeviceConfigError::ZeroBusWidth => f.write_str("bus width must be non-zero"),
        }
    }
}

impl std::error::Error for DeviceConfigError {}

/// Organization, timing and energy of one DRAM device (NM or FM).
///
/// Timing values are in *device* clock cycles; [`DeviceConfig::clock`]
/// converts them to CPU cycles. The presets encode Table 1 of the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceConfig {
    /// Human-readable device name for reports (e.g. `"HBM2"`).
    pub name: &'static str,
    /// Number of independent channels (each with its own data bus).
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Row-buffer size in bytes per bank.
    pub row_bytes: u64,
    /// Consecutive-address interleave granule across channels, in bytes.
    pub interleave_bytes: u64,
    /// Data transferred per device clock cycle per channel, in bytes.
    pub bytes_per_cycle: u32,
    /// Column access latency (device cycles).
    pub t_cas: u64,
    /// RAS-to-CAS delay (device cycles).
    pub t_rcd: u64,
    /// Row precharge time (device cycles).
    pub t_rp: u64,
    /// CPU-clock/device-clock ratio.
    pub clock: ClockRatio,
    /// Read/write + I/O energy in femtojoules per bit (Table 1 lists pJ/bit;
    /// femtojoules keep the arithmetic integral: 6.4 pJ/bit = 6400 fJ/bit).
    pub rw_fj_per_bit: u64,
    /// Activate+precharge energy per row activation, in picojoules
    /// (15 nJ = 15_000 pJ).
    pub act_pre_pj: u64,
}

impl DeviceConfig {
    /// Table 1 near memory: HBM2, 2 GT/s, 8 × 128-bit channels, 8 banks,
    /// 7-7-7, 6.4 pJ/bit, 15 nJ ACT/PRE. CPU at 3.2 GHz → ratio 8/5.
    pub fn hbm2_near_memory() -> Self {
        DeviceConfig {
            name: "HBM2",
            channels: 8,
            banks_per_channel: 8,
            row_bytes: 2048,
            interleave_bytes: 256,
            bytes_per_cycle: 16, // 128-bit interface at the 2 GT/s data rate
            t_cas: 7,
            t_rcd: 7,
            t_rp: 7,
            clock: ClockRatio::new(8, 5), // 3.2 GHz / 2.0 GHz
            rw_fj_per_bit: 6_400,
            act_pre_pj: 15_000,
        }
    }

    /// Table 1 far memory: DDR4-3200, 2 × 64-bit channels, 8 banks,
    /// 22-22-22, 33 pJ/bit, 15 nJ ACT/PRE. I/O clock 1.6 GHz → ratio 2/1.
    pub fn ddr4_far_memory() -> Self {
        DeviceConfig {
            name: "DDR4-3200",
            channels: 2,
            banks_per_channel: 8,
            row_bytes: 2048,
            interleave_bytes: 256,
            bytes_per_cycle: 16, // 64-bit interface, double data rate
            t_cas: 22,
            t_rcd: 22,
            t_rp: 22,
            clock: ClockRatio::new(2, 1), // 3.2 GHz / 1.6 GHz
            rw_fj_per_bit: 33_000,
            act_pre_pj: 15_000,
        }
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`DeviceConfigError`].
    pub fn validate(&self) -> Result<(), DeviceConfigError> {
        if self.channels == 0 || !self.channels.is_power_of_two() {
            return Err(DeviceConfigError::BadChannels(self.channels));
        }
        if self.banks_per_channel == 0 || !self.banks_per_channel.is_power_of_two() {
            return Err(DeviceConfigError::BadBanks(self.banks_per_channel));
        }
        if self.row_bytes == 0 || !self.row_bytes.is_power_of_two() {
            return Err(DeviceConfigError::BadRowBytes(self.row_bytes));
        }
        if self.interleave_bytes == 0 || !self.interleave_bytes.is_power_of_two() {
            return Err(DeviceConfigError::BadInterleave(self.interleave_bytes));
        }
        if self.bytes_per_cycle == 0 {
            return Err(DeviceConfigError::ZeroBusWidth);
        }
        Ok(())
    }

    /// Peak bandwidth in bytes per CPU cycle across all channels (float, for
    /// reporting only).
    pub fn peak_bytes_per_cpu_cycle(&self) -> f64 {
        let per_channel =
            self.bytes_per_cycle as f64 * self.clock.den() as f64 / self.clock.num() as f64;
        per_channel * self.channels as f64
    }

    /// Uncontended row-miss read latency in CPU cycles for a `bytes` burst:
    /// activate + CAS + transfer.
    pub fn idle_miss_latency(&self, bytes: u32) -> u64 {
        self.clock
            .to_cpu(self.t_rcd + self.t_cas + self.transfer_cycles(bytes))
    }

    /// Device cycles the data bus is busy transferring `bytes`.
    pub(crate) fn transfer_cycles(&self, bytes: u32) -> u64 {
        u64::from(bytes).div_ceil(u64::from(self.bytes_per_cycle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        DeviceConfig::hbm2_near_memory().validate().unwrap();
        DeviceConfig::ddr4_far_memory().validate().unwrap();
    }

    #[test]
    fn nm_has_higher_peak_bandwidth_than_fm() {
        let nm = DeviceConfig::hbm2_near_memory().peak_bytes_per_cpu_cycle();
        let fm = DeviceConfig::ddr4_far_memory().peak_bytes_per_cpu_cycle();
        // Paper: 256 GB/s HBM2 vs 51.2 GB/s DDR4 -> 5x.
        assert!(nm / fm > 4.0 && nm / fm < 6.0, "ratio was {}", nm / fm);
    }

    #[test]
    fn nm_idle_latency_lower_than_fm() {
        let nm = DeviceConfig::hbm2_near_memory().idle_miss_latency(64);
        let fm = DeviceConfig::ddr4_far_memory().idle_miss_latency(64);
        assert!(nm < fm, "NM {nm} should be faster than FM {fm}");
        // DDR4: (22+22+4)*2 = 96 CPU cycles = 30 ns at 3.2 GHz.
        assert_eq!(fm, 96);
        // HBM2: ceil((7+7+4)*8/5) = 29 CPU cycles ≈ 9 ns.
        assert_eq!(nm, 29);
    }

    #[test]
    fn validation_catches_each_field() {
        let base = DeviceConfig::hbm2_near_memory();
        let mut c = base.clone();
        c.channels = 3;
        assert_eq!(c.validate(), Err(DeviceConfigError::BadChannels(3)));
        let mut c = base.clone();
        c.banks_per_channel = 0;
        assert_eq!(c.validate(), Err(DeviceConfigError::BadBanks(0)));
        let mut c = base.clone();
        c.row_bytes = 1000;
        assert_eq!(c.validate(), Err(DeviceConfigError::BadRowBytes(1000)));
        let mut c = base.clone();
        c.interleave_bytes = 100;
        assert_eq!(c.validate(), Err(DeviceConfigError::BadInterleave(100)));
        let mut c = base;
        c.bytes_per_cycle = 0;
        assert_eq!(c.validate(), Err(DeviceConfigError::ZeroBusWidth));
    }

    #[test]
    fn transfer_cycles_round_up() {
        let c = DeviceConfig::hbm2_near_memory();
        assert_eq!(c.transfer_cycles(64), 4);
        assert_eq!(c.transfer_cycles(65), 5);
        assert_eq!(c.transfer_cycles(1), 1);
    }

    #[test]
    fn error_messages_mention_the_field() {
        assert!(DeviceConfigError::BadChannels(3)
            .to_string()
            .contains("channel"));
        assert!(DeviceConfigError::ZeroBusWidth.to_string().contains("bus"));
    }
}
