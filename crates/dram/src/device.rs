//! One DRAM device: channels, banks, row buffers, data buses.

use sim_types::{AccessKind, Cycle, TrafficClass};

use crate::config::DeviceConfig;
use crate::energy::EnergyCounter;
use crate::service::{BoundedQueue, ServiceModel, ServiceResult};

/// One access presented to a [`DramDevice`].
///
/// `addr` is a *device byte address*: schemes translate sector locations
/// (`NmLoc`/`FmLoc`) and metadata offsets into this space before calling the
/// device, so that interleaving and row locality behave like hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramAccess {
    /// Device byte address of the first byte touched.
    pub addr: u64,
    /// Burst length in bytes.
    pub bytes: u32,
    /// Read or write (both occupy the bus; energy is charged identically per
    /// Table 1's combined RD/WR+I/O figure).
    pub kind: AccessKind,
    /// Accounting class (demand/fill/writeback/migration/metadata).
    pub class: TrafficClass,
    /// Cycle the access arrives at the device controller.
    pub at: Cycle,
}

/// Per-bank state: which row is open and when the bank is next available.
#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    ready: Cycle,
}

/// Traffic statistics kept by a device, broken down by [`TrafficClass`].
#[derive(Clone, Debug, Default)]
pub struct DeviceStats {
    /// Total accesses served.
    pub accesses: u64,
    /// Accesses that hit the open row buffer.
    pub row_hits: u64,
    /// Row activations performed.
    pub activations: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Bytes moved per traffic class, indexed by [`TrafficClass::index`].
    pub bytes_by_class: [u64; 5],
    /// Admissions that found a service queue full (bounded model only; each
    /// queue level that pushes back counts once).
    pub queue_stalls: u64,
    /// Total cycles requests spent waiting for queue admission.
    pub queue_stall_cycles: u64,
    /// Sum over accesses of the post-issue occupancy of the channel and
    /// bank queues the access flowed through (bounded model only).
    pub queue_occupancy_sum: u64,
    /// Largest single-queue occupancy ever observed.
    pub queue_peak_occupancy: u64,
}

impl DeviceStats {
    /// Total bytes moved across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_by_class.iter().sum()
    }

    /// Bytes moved for one class.
    pub fn bytes(&self, class: TrafficClass) -> u64 {
        self.bytes_by_class[class.index()]
    }

    /// Row-buffer hit rate in [0, 1]; 0 when idle.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }

    /// Mean combined (channel + bank) queue occupancy seen per access;
    /// 0 when idle, and identically 0 under [`ServiceModel::Unbounded`].
    pub fn mean_queue_occupancy(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.queue_occupancy_sum as f64 / self.accesses as f64
        }
    }

    /// Fraction of accesses that suffered at least one queue-admission
    /// stall, in [0, 1]; 0 when idle.
    pub fn stall_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.queue_stalls as f64 / self.accesses as f64
        }
    }

    /// Mean queue-admission delay in cycles per access; 0 when idle.
    pub fn mean_stall_cycles(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.queue_stall_cycles as f64 / self.accesses as f64
        }
    }
}

/// A DRAM device (the NM HBM2 stack or the FM DDR4 DIMMs).
///
/// The device is a timing *calculator*: [`DramDevice::serve`] returns the
/// CPU cycle at which the burst completes, advancing bank and bus state.
/// Under [`ServiceModel::Queued`] a bounded FIFO per channel and per bank
/// front-ends the calculator and charges explicit backpressure delay.
/// Accesses must be presented in the order they reach the controller; the
/// surrounding simulator guarantees this by processing cores
/// smallest-cycle-first.
#[derive(Clone, Debug)]
pub struct DramDevice {
    cfg: DeviceConfig,
    banks: Vec<Bank>,
    bus_free: Vec<Cycle>,
    stats: DeviceStats,
    energy: EnergyCounter,
    model: ServiceModel,
    chan_queues: Vec<BoundedQueue>,
    bank_queues: Vec<BoundedQueue>,
    chan_mask: u64,
    chan_shift: u32,
    t_cas_cpu: u64,
    t_rcd_cpu: u64,
    t_rp_cpu: u64,
}

impl DramDevice {
    /// Builds a device from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; validate configs at the edge
    /// with [`DeviceConfig::validate`] for a recoverable error.
    pub fn new(cfg: DeviceConfig) -> Self {
        cfg.validate().expect("invalid DRAM device configuration");
        let n_banks = (cfg.channels * cfg.banks_per_channel) as usize;
        let banks = vec![Bank::default(); n_banks];
        let bus_free = vec![Cycle::ZERO; cfg.channels as usize];
        let t_cas_cpu = cfg.clock.to_cpu(cfg.t_cas);
        let t_rcd_cpu = cfg.clock.to_cpu(cfg.t_rcd);
        let t_rp_cpu = cfg.clock.to_cpu(cfg.t_rp);
        DramDevice {
            chan_mask: u64::from(cfg.channels) - 1,
            chan_shift: cfg.interleave_bytes.trailing_zeros(),
            banks,
            bus_free,
            stats: DeviceStats::default(),
            energy: EnergyCounter::new(),
            model: ServiceModel::Unbounded,
            chan_queues: vec![BoundedQueue::new(); cfg.channels as usize],
            bank_queues: vec![BoundedQueue::new(); n_banks],
            t_cas_cpu,
            t_rcd_cpu,
            t_rp_cpu,
            cfg,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// The active service model.
    pub fn service_model(&self) -> ServiceModel {
        self.model
    }

    /// Selects the service model. Call before issuing traffic: switching
    /// models mid-run would mix queued and unqueued admission state.
    pub fn set_service_model(&mut self, model: ServiceModel) {
        debug_assert_eq!(
            self.stats.accesses, 0,
            "service model must be chosen before traffic flows"
        );
        self.model = model;
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Accumulated dynamic energy.
    pub fn energy(&self) -> &EnergyCounter {
        &self.energy
    }

    /// Decomposes a device byte address into (channel, bank-index, row).
    fn map(&self, addr: u64) -> (usize, usize, u64) {
        let channel = ((addr >> self.chan_shift) & self.chan_mask) as usize;
        // Remove the channel bits so consecutive granules within a channel
        // are contiguous in bank/row space.
        let high = addr >> (self.chan_shift + self.chan_mask.count_ones());
        let low = addr & ((1 << self.chan_shift) - 1);
        let chan_addr = (high << self.chan_shift) | low;
        let row_global = chan_addr / self.cfg.row_bytes;
        let bank_in_chan = (row_global % u64::from(self.cfg.banks_per_channel)) as usize;
        let row = row_global / u64::from(self.cfg.banks_per_channel);
        let bank = channel * self.cfg.banks_per_channel as usize + bank_in_chan;
        (channel, bank, row)
    }

    /// Serves one access and returns its completion cycle; shorthand for
    /// [`DramDevice::serve`]`.ready`.
    pub fn access(&mut self, a: DramAccess) -> Cycle {
        self.serve(a).ready
    }

    /// Serves one access and returns its completion and admission cycles.
    ///
    /// Under [`ServiceModel::Queued`] the access is first admitted through
    /// the bounded channel queue, then the bounded bank queue; a full queue
    /// delays admission until its oldest in-flight entry drains
    /// (backpressure), and the delay is charged ahead of the array timing.
    /// Under [`ServiceModel::Unbounded`] admission is immediate and the
    /// path below is exactly the pre-service-layer closed form.
    ///
    /// Timing: the access starts when the bank is free and the request has
    /// been admitted; a row hit pays tCAS, a row conflict pays tRP+tRCD+tCAS,
    /// an empty bank pays tRCD+tCAS; data transfer then waits for the channel
    /// data bus and occupies it for the burst duration.
    pub fn serve(&mut self, a: DramAccess) -> ServiceResult {
        debug_assert!(a.bytes > 0, "zero-length DRAM access");
        let (channel, bank_idx, row) = self.map(a.addr);

        let queued = match self.model {
            ServiceModel::Unbounded => a.at,
            ServiceModel::Queued { depth } => {
                let mut t = a.at;
                for q in [
                    &mut self.chan_queues[channel],
                    &mut self.bank_queues[bank_idx],
                ] {
                    match q.admit(t, depth) {
                        Ok(admitted) => t = admitted,
                        Err(bp) => {
                            self.stats.queue_stalls += 1;
                            self.stats.queue_stall_cycles += bp.until - t;
                            t = bp.until;
                        }
                    }
                }
                t
            }
        };

        let bank = &mut self.banks[bank_idx];
        let start = queued.max(bank.ready);
        let (array_latency, activated) = match bank.open_row {
            Some(open) if open == row => (self.t_cas_cpu, false),
            Some(_) => (self.t_rp_cpu + self.t_rcd_cpu + self.t_cas_cpu, true),
            None => (self.t_rcd_cpu + self.t_cas_cpu, true),
        };
        let data_ready = start + array_latency;
        let transfer = self.cfg.clock.to_cpu(self.cfg.transfer_cycles(a.bytes));
        let bus_start = data_ready.max(self.bus_free[channel]);
        let done = bus_start + transfer;

        bank.open_row = Some(row);
        bank.ready = done;
        self.bus_free[channel] = done;

        if let ServiceModel::Queued { .. } = self.model {
            self.chan_queues[channel].push(done);
            self.bank_queues[bank_idx].push(done);
            let chan_occ = self.chan_queues[channel].occupancy() as u64;
            let bank_occ = self.bank_queues[bank_idx].occupancy() as u64;
            self.stats.queue_occupancy_sum += chan_occ + bank_occ;
            self.stats.queue_peak_occupancy =
                self.stats.queue_peak_occupancy.max(chan_occ.max(bank_occ));
        }

        self.stats.accesses += 1;
        if activated {
            self.stats.activations += 1;
            self.energy.add_activation(self.cfg.act_pre_pj);
        } else {
            self.stats.row_hits += 1;
        }
        match a.kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        self.stats.bytes_by_class[a.class.index()] += u64::from(a.bytes);
        self.energy
            .add_burst(u64::from(a.bytes), self.cfg.rw_fj_per_bit);

        ServiceResult {
            ready: done,
            queued,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_at(dev: &mut DramDevice, addr: u64, at: Cycle) -> Cycle {
        dev.access(DramAccess {
            addr,
            bytes: 64,
            kind: AccessKind::Read,
            class: TrafficClass::Demand,
            at,
        })
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut dev = DramDevice::new(DeviceConfig::ddr4_far_memory());
        let t1 = read_at(&mut dev, 0, Cycle::ZERO);
        let t2 = read_at(&mut dev, 64, t1); // same row -> hit
        let miss_latency = t1 - Cycle::ZERO;
        let hit_latency = t2 - t1;
        assert!(
            hit_latency < miss_latency,
            "{hit_latency} !< {miss_latency}"
        );
        assert_eq!(dev.stats().row_hits, 1);
        assert_eq!(dev.stats().activations, 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let cfg = DeviceConfig::ddr4_far_memory();
        let row_stride = cfg.row_bytes * u64::from(cfg.banks_per_channel) * u64::from(cfg.channels);
        let mut dev = DramDevice::new(cfg);
        let t1 = read_at(&mut dev, 0, Cycle::ZERO);
        // Same channel & bank, different row: conflict.
        let t2 = read_at(&mut dev, row_stride, t1);
        let first = t1 - Cycle::ZERO; // empty bank: tRCD+tCAS+transfer
        let conflict = t2 - t1; // tRP+tRCD+tCAS+transfer
        assert!(conflict > first);
    }

    #[test]
    fn different_channels_proceed_in_parallel() {
        let cfg = DeviceConfig::hbm2_near_memory();
        let interleave = cfg.interleave_bytes;
        let mut dev = DramDevice::new(cfg);
        let a = read_at(&mut dev, 0, Cycle::ZERO);
        // Next interleave granule lands on channel 1; issued at time zero it
        // must not queue behind channel 0's access.
        let b = read_at(&mut dev, interleave, Cycle::ZERO);
        assert_eq!(a - Cycle::ZERO, b - Cycle::ZERO);
    }

    #[test]
    fn same_bank_back_to_back_serializes() {
        let mut dev = DramDevice::new(DeviceConfig::ddr4_far_memory());
        let t1 = read_at(&mut dev, 0, Cycle::ZERO);
        // Arrives at cycle 0 but the bank is busy until t1.
        let t2 = read_at(&mut dev, 64, Cycle::ZERO);
        assert!(t2 > t1);
    }

    #[test]
    fn completion_never_precedes_arrival() {
        let mut dev = DramDevice::new(DeviceConfig::hbm2_near_memory());
        let done = read_at(&mut dev, 4096, Cycle::new(1000));
        assert!(done > Cycle::new(1000));
    }

    #[test]
    fn nm_read_faster_than_fm_read_when_idle() {
        let mut nm = DramDevice::new(DeviceConfig::hbm2_near_memory());
        let mut fm = DramDevice::new(DeviceConfig::ddr4_far_memory());
        let n = read_at(&mut nm, 0, Cycle::ZERO) - Cycle::ZERO;
        let f = read_at(&mut fm, 0, Cycle::ZERO) - Cycle::ZERO;
        assert!(n < f);
    }

    #[test]
    fn bandwidth_saturation_fm_slower_than_nm() {
        // Stream 512 KiB through each device; FM (2 narrow channels) must
        // take substantially longer than NM (8 wide channels).
        let mut nm = DramDevice::new(DeviceConfig::hbm2_near_memory());
        let mut fm = DramDevice::new(DeviceConfig::ddr4_far_memory());
        let mut nm_done = Cycle::ZERO;
        let mut fm_done = Cycle::ZERO;
        for i in 0..8192u64 {
            nm_done = read_at(&mut nm, i * 64, Cycle::ZERO).max(nm_done);
            fm_done = read_at(&mut fm, i * 64, Cycle::ZERO).max(fm_done);
        }
        let ratio = (fm_done.raw()) as f64 / (nm_done.raw()) as f64;
        assert!(ratio > 3.0, "FM/NM streaming-time ratio was {ratio}");
    }

    #[test]
    fn stats_track_bytes_by_class() {
        let mut dev = DramDevice::new(DeviceConfig::hbm2_near_memory());
        dev.access(DramAccess {
            addr: 0,
            bytes: 64,
            kind: AccessKind::Read,
            class: TrafficClass::Demand,
            at: Cycle::ZERO,
        });
        dev.access(DramAccess {
            addr: 64,
            bytes: 128,
            kind: AccessKind::Write,
            class: TrafficClass::Migration,
            at: Cycle::ZERO,
        });
        assert_eq!(dev.stats().bytes(TrafficClass::Demand), 64);
        assert_eq!(dev.stats().bytes(TrafficClass::Migration), 128);
        assert_eq!(dev.stats().total_bytes(), 192);
        assert_eq!(dev.stats().reads, 1);
        assert_eq!(dev.stats().writes, 1);
    }

    #[test]
    fn energy_charged_per_burst_and_activation() {
        let mut dev = DramDevice::new(DeviceConfig::hbm2_near_memory());
        read_at(&mut dev, 0, Cycle::ZERO); // activation + 64B
        read_at(&mut dev, 64, Cycle::ZERO); // row hit + 64B
        assert_eq!(dev.energy().activations(), 1);
        // Two 64-byte bursts at 6.4 pJ/bit.
        let expected_rw = 2.0 * 64.0 * 8.0 * 6.4e-9; // mJ
        assert!((dev.energy().rw_mj() - expected_rw).abs() < 1e-12);
    }

    #[test]
    fn unbounded_serve_admits_at_arrival() {
        let mut dev = DramDevice::new(DeviceConfig::hbm2_near_memory());
        let r = dev.serve(DramAccess {
            addr: 0,
            bytes: 64,
            kind: AccessKind::Read,
            class: TrafficClass::Demand,
            at: Cycle::new(42),
        });
        assert_eq!(r.queued, Cycle::new(42));
        assert!(r.ready > r.queued);
        assert_eq!(r.queue_delay(Cycle::new(42)), 0);
    }

    #[test]
    fn queued_depth_one_backpressures_bank_conflicts() {
        let mut dev = DramDevice::new(DeviceConfig::ddr4_far_memory());
        dev.set_service_model(ServiceModel::Queued { depth: 1 });
        let first = dev.serve(DramAccess {
            addr: 0,
            bytes: 64,
            kind: AccessKind::Read,
            class: TrafficClass::Demand,
            at: Cycle::ZERO,
        });
        // Same channel, arrives while the first is still in flight: the
        // depth-1 channel queue pushes back to the first one's drain.
        let second = dev.serve(DramAccess {
            addr: 64,
            bytes: 64,
            kind: AccessKind::Read,
            class: TrafficClass::Demand,
            at: Cycle::ZERO,
        });
        assert_eq!(second.queued, first.ready);
        assert!(dev.stats().queue_stalls >= 1);
        assert_eq!(
            dev.stats().queue_stall_cycles,
            dev.stats().queue_stalls * (first.ready - Cycle::ZERO)
        );
        assert!(dev.stats().stall_rate() > 0.0);
    }

    #[test]
    fn queued_never_beats_unbounded() {
        for depth in [1, 2, 8] {
            let mut free = DramDevice::new(DeviceConfig::ddr4_far_memory());
            let mut queued = DramDevice::new(DeviceConfig::ddr4_far_memory());
            queued.set_service_model(ServiceModel::Queued { depth });
            for i in 0..64u64 {
                let a = DramAccess {
                    addr: (i * 64) % 4096,
                    bytes: 64,
                    kind: AccessKind::Read,
                    class: TrafficClass::Demand,
                    at: Cycle::new(i),
                };
                assert!(queued.serve(a).ready >= free.serve(a).ready);
            }
        }
    }

    #[test]
    fn idle_device_rates_are_zero() {
        let dev = DramDevice::new(DeviceConfig::hbm2_near_memory());
        let s = dev.stats();
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.mean_queue_occupancy(), 0.0);
        assert_eq!(s.stall_rate(), 0.0);
        assert_eq!(s.mean_stall_cycles(), 0.0);
        assert_eq!(s.queue_peak_occupancy, 0);
    }

    #[test]
    fn unbounded_device_keeps_queue_telemetry_zero() {
        let mut dev = DramDevice::new(DeviceConfig::hbm2_near_memory());
        for i in 0..32u64 {
            read_at(&mut dev, i * 64, Cycle::ZERO);
        }
        let s = dev.stats();
        assert_eq!(s.queue_stalls, 0);
        assert_eq!(s.queue_stall_cycles, 0);
        assert_eq!(s.queue_occupancy_sum, 0);
        assert_eq!(s.queue_peak_occupancy, 0);
        assert_eq!(s.mean_queue_occupancy(), 0.0);
        assert_eq!(s.stall_rate(), 0.0);
    }

    #[test]
    fn row_hit_rate_reporting() {
        let mut dev = DramDevice::new(DeviceConfig::ddr4_far_memory());
        assert_eq!(dev.stats().row_hit_rate(), 0.0);
        read_at(&mut dev, 0, Cycle::ZERO);
        read_at(&mut dev, 64, Cycle::ZERO);
        read_at(&mut dev, 128, Cycle::ZERO);
        let r = dev.stats().row_hit_rate();
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid DRAM device configuration")]
    fn invalid_config_panics_on_construction() {
        let mut cfg = DeviceConfig::hbm2_near_memory();
        cfg.channels = 3;
        let _ = DramDevice::new(cfg);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Completion never precedes arrival, for any access sequence on
        /// either device.
        #[test]
        fn completion_follows_arrival(
            ops in proptest::collection::vec((0u64..1u64<<22, 1u32..4096, any::<bool>(), 0u64..10_000), 1..200),
            nm in any::<bool>(),
        ) {
            let cfg = if nm {
                DeviceConfig::hbm2_near_memory()
            } else {
                DeviceConfig::ddr4_far_memory()
            };
            let mut dev = DramDevice::new(cfg);
            let mut t = Cycle::ZERO;
            for (addr, bytes, write, gap) in ops {
                t += gap;
                let done = dev.access(DramAccess {
                    addr,
                    bytes,
                    kind: if write { AccessKind::Write } else { AccessKind::Read },
                    class: TrafficClass::Demand,
                    at: t,
                });
                prop_assert!(done > t, "completion {done:?} must follow arrival {t:?}");
            }
        }

        /// Byte accounting is exact: total bytes equals the sum of burst
        /// lengths, and reads + writes equals accesses.
        #[test]
        fn stats_accounting_is_exact(
            ops in proptest::collection::vec((0u64..1u64<<20, 1u32..512, any::<bool>()), 1..100)
        ) {
            let mut dev = DramDevice::new(DeviceConfig::ddr4_far_memory());
            let mut expect_bytes = 0u64;
            for (addr, bytes, write) in &ops {
                expect_bytes += u64::from(*bytes);
                dev.access(DramAccess {
                    addr: *addr,
                    bytes: *bytes,
                    kind: if *write { AccessKind::Write } else { AccessKind::Read },
                    class: TrafficClass::Migration,
                    at: Cycle::ZERO,
                });
            }
            prop_assert_eq!(dev.stats().total_bytes(), expect_bytes);
            prop_assert_eq!(dev.stats().reads + dev.stats().writes, ops.len() as u64);
            prop_assert_eq!(dev.stats().row_hits + dev.stats().activations, ops.len() as u64);
        }

        /// The service layer under `Unbounded` is a pure refactor: replaying
        /// any access sequence through an independent closed-form oracle
        /// (bank-ready / open-row / bus-free recurrence) matches `serve`
        /// exactly, admission included.
        #[test]
        fn unbounded_serve_matches_closed_form_oracle(
            ops in proptest::collection::vec((0u64..1u64<<22, 1u32..4096, any::<bool>(), 0u64..10_000), 1..200),
            nm in any::<bool>(),
        ) {
            let cfg = if nm {
                DeviceConfig::hbm2_near_memory()
            } else {
                DeviceConfig::ddr4_far_memory()
            };
            let mut dev = DramDevice::new(cfg.clone());
            // Independent oracle state.
            let n_banks = (cfg.channels * cfg.banks_per_channel) as usize;
            let mut open_row: Vec<Option<u64>> = vec![None; n_banks];
            let mut bank_ready = vec![Cycle::ZERO; n_banks];
            let mut bus_free = vec![Cycle::ZERO; cfg.channels as usize];
            let t_cas = cfg.clock.to_cpu(cfg.t_cas);
            let t_rcd = cfg.clock.to_cpu(cfg.t_rcd);
            let t_rp = cfg.clock.to_cpu(cfg.t_rp);
            let chan_shift = cfg.interleave_bytes.trailing_zeros();
            let chan_mask = u64::from(cfg.channels) - 1;

            let mut t = Cycle::ZERO;
            for (addr, bytes, write, gap) in ops {
                t += gap;
                let a = DramAccess {
                    addr,
                    bytes,
                    kind: if write { AccessKind::Write } else { AccessKind::Read },
                    class: TrafficClass::Demand,
                    at: t,
                };
                // Oracle: same decomposition and recurrence as the
                // pre-service-layer calculator.
                let channel = ((addr >> chan_shift) & chan_mask) as usize;
                let high = addr >> (chan_shift + chan_mask.count_ones());
                let low = addr & ((1 << chan_shift) - 1);
                let chan_addr = (high << chan_shift) | low;
                let row_global = chan_addr / cfg.row_bytes;
                let bank = channel * cfg.banks_per_channel as usize
                    + (row_global % u64::from(cfg.banks_per_channel)) as usize;
                let row = row_global / u64::from(cfg.banks_per_channel);
                let start = t.max(bank_ready[bank]);
                let lat = match open_row[bank] {
                    Some(open) if open == row => t_cas,
                    Some(_) => t_rp + t_rcd + t_cas,
                    None => t_rcd + t_cas,
                };
                let transfer = cfg.clock.to_cpu(cfg.transfer_cycles(bytes));
                let expect = (start + lat).max(bus_free[channel]) + transfer;
                open_row[bank] = Some(row);
                bank_ready[bank] = expect;
                bus_free[channel] = expect;

                let got = dev.serve(a);
                prop_assert_eq!(got.ready, expect);
                prop_assert_eq!(got.queued, t, "unbounded admission must be immediate");
            }
            prop_assert_eq!(dev.stats().queue_stalls, 0);
            prop_assert_eq!(dev.stats().queue_occupancy_sum, 0);
        }

        /// Shrinking the service-queue depth never makes any access finish
        /// earlier: for the same access sequence, every completion under
        /// depth `d2 <= d1` is >= the completion under `d1` (and unbounded
        /// lower-bounds both).
        #[test]
        fn smaller_depth_never_finishes_earlier(
            ops in proptest::collection::vec((0u64..1u64<<20, 1u32..1024, any::<bool>(), 0u64..2_000), 1..150),
            depths in (1u32..64, 1u32..64),
            nm in any::<bool>(),
        ) {
            let cfg = if nm {
                DeviceConfig::hbm2_near_memory()
            } else {
                DeviceConfig::ddr4_far_memory()
            };
            let (a, b) = depths;
            let (small, large) = (a.min(b), a.max(b));
            let mut dev_small = DramDevice::new(cfg.clone());
            dev_small.set_service_model(ServiceModel::Queued { depth: small });
            let mut dev_large = DramDevice::new(cfg.clone());
            dev_large.set_service_model(ServiceModel::Queued { depth: large });
            let mut dev_free = DramDevice::new(cfg);

            let mut t = Cycle::ZERO;
            for (addr, bytes, write, gap) in ops {
                t += gap;
                let acc = DramAccess {
                    addr,
                    bytes,
                    kind: if write { AccessKind::Write } else { AccessKind::Read },
                    class: TrafficClass::Demand,
                    at: t,
                };
                let r_small = dev_small.serve(acc);
                let r_large = dev_large.serve(acc);
                let r_free = dev_free.serve(acc);
                prop_assert!(
                    r_small.ready >= r_large.ready,
                    "depth {} finished {:?} before depth {} at {:?}",
                    small, r_small.ready, large, r_large.ready
                );
                prop_assert!(r_large.ready >= r_free.ready);
                prop_assert!(r_small.queued >= r_large.queued);
            }
        }

        /// Row-buffer hits are never slower than the conflict path would be:
        /// a second access to the same row from the same arrival time
        /// completes no later than one to a conflicting row.
        #[test]
        fn row_hit_no_slower_than_conflict(addr in (0u64..1u64<<20).prop_map(|a| a & !63)) {
            let cfg = DeviceConfig::ddr4_far_memory();
            let row_stride = cfg.row_bytes * u64::from(cfg.banks_per_channel) * u64::from(cfg.channels);
            let mk = |conflict: bool| {
                let mut dev = DramDevice::new(DeviceConfig::ddr4_far_memory());
                let t1 = dev.access(DramAccess {
                    addr, bytes: 64, kind: AccessKind::Read,
                    class: TrafficClass::Demand, at: Cycle::ZERO,
                });
                let second = if conflict { addr + row_stride } else { addr ^ 64 };
                dev.access(DramAccess {
                    addr: second, bytes: 64, kind: AccessKind::Read,
                    class: TrafficClass::Demand, at: t1,
                })
            };
            prop_assert!(mk(false) <= mk(true));
        }
    }
}
