//! One DRAM device: channels, banks, row buffers, data buses.

use sim_types::{AccessKind, Cycle, TrafficClass};

use crate::config::DeviceConfig;
use crate::energy::EnergyCounter;

/// One access presented to a [`DramDevice`].
///
/// `addr` is a *device byte address*: schemes translate sector locations
/// (`NmLoc`/`FmLoc`) and metadata offsets into this space before calling the
/// device, so that interleaving and row locality behave like hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramAccess {
    /// Device byte address of the first byte touched.
    pub addr: u64,
    /// Burst length in bytes.
    pub bytes: u32,
    /// Read or write (both occupy the bus; energy is charged identically per
    /// Table 1's combined RD/WR+I/O figure).
    pub kind: AccessKind,
    /// Accounting class (demand/fill/writeback/migration/metadata).
    pub class: TrafficClass,
    /// Cycle the access arrives at the device controller.
    pub at: Cycle,
}

/// Per-bank state: which row is open and when the bank is next available.
#[derive(Clone, Copy, Debug, Default)]
struct Bank {
    open_row: Option<u64>,
    ready: Cycle,
}

/// Traffic statistics kept by a device, broken down by [`TrafficClass`].
#[derive(Clone, Debug, Default)]
pub struct DeviceStats {
    /// Total accesses served.
    pub accesses: u64,
    /// Accesses that hit the open row buffer.
    pub row_hits: u64,
    /// Row activations performed.
    pub activations: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Bytes moved per traffic class, indexed by [`TrafficClass::index`].
    pub bytes_by_class: [u64; 5],
}

impl DeviceStats {
    /// Total bytes moved across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_by_class.iter().sum()
    }

    /// Bytes moved for one class.
    pub fn bytes(&self, class: TrafficClass) -> u64 {
        self.bytes_by_class[class.index()]
    }

    /// Row-buffer hit rate in [0, 1]; 0 when idle.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }
}

/// A DRAM device (the NM HBM2 stack or the FM DDR4 DIMMs).
///
/// The device is a timing *calculator*: [`DramDevice::access`] returns the
/// CPU cycle at which the burst completes, advancing bank and bus state.
/// Accesses must be presented in the order they reach the controller; the
/// surrounding simulator guarantees this by processing cores
/// smallest-cycle-first.
#[derive(Clone, Debug)]
pub struct DramDevice {
    cfg: DeviceConfig,
    banks: Vec<Bank>,
    bus_free: Vec<Cycle>,
    stats: DeviceStats,
    energy: EnergyCounter,
    chan_mask: u64,
    chan_shift: u32,
    t_cas_cpu: u64,
    t_rcd_cpu: u64,
    t_rp_cpu: u64,
}

impl DramDevice {
    /// Builds a device from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; validate configs at the edge
    /// with [`DeviceConfig::validate`] for a recoverable error.
    pub fn new(cfg: DeviceConfig) -> Self {
        cfg.validate().expect("invalid DRAM device configuration");
        let banks = vec![Bank::default(); (cfg.channels * cfg.banks_per_channel) as usize];
        let bus_free = vec![Cycle::ZERO; cfg.channels as usize];
        let t_cas_cpu = cfg.clock.to_cpu(cfg.t_cas);
        let t_rcd_cpu = cfg.clock.to_cpu(cfg.t_rcd);
        let t_rp_cpu = cfg.clock.to_cpu(cfg.t_rp);
        DramDevice {
            chan_mask: u64::from(cfg.channels) - 1,
            chan_shift: cfg.interleave_bytes.trailing_zeros(),
            banks,
            bus_free,
            stats: DeviceStats::default(),
            energy: EnergyCounter::new(),
            t_cas_cpu,
            t_rcd_cpu,
            t_rp_cpu,
            cfg,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Accumulated dynamic energy.
    pub fn energy(&self) -> &EnergyCounter {
        &self.energy
    }

    /// Decomposes a device byte address into (channel, bank-index, row).
    fn map(&self, addr: u64) -> (usize, usize, u64) {
        let channel = ((addr >> self.chan_shift) & self.chan_mask) as usize;
        // Remove the channel bits so consecutive granules within a channel
        // are contiguous in bank/row space.
        let high = addr >> (self.chan_shift + self.chan_mask.count_ones());
        let low = addr & ((1 << self.chan_shift) - 1);
        let chan_addr = (high << self.chan_shift) | low;
        let row_global = chan_addr / self.cfg.row_bytes;
        let bank_in_chan = (row_global % u64::from(self.cfg.banks_per_channel)) as usize;
        let row = row_global / u64::from(self.cfg.banks_per_channel);
        let bank = channel * self.cfg.banks_per_channel as usize + bank_in_chan;
        (channel, bank, row)
    }

    /// Serves one access and returns its completion cycle.
    ///
    /// Timing: the access starts when the bank is free and the request has
    /// arrived; a row hit pays tCAS, a row conflict pays tRP+tRCD+tCAS, an
    /// empty bank pays tRCD+tCAS; data transfer then waits for the channel
    /// data bus and occupies it for the burst duration.
    pub fn access(&mut self, a: DramAccess) -> Cycle {
        debug_assert!(a.bytes > 0, "zero-length DRAM access");
        let (channel, bank_idx, row) = self.map(a.addr);
        let bank = &mut self.banks[bank_idx];

        let start = a.at.max(bank.ready);
        let (array_latency, activated) = match bank.open_row {
            Some(open) if open == row => (self.t_cas_cpu, false),
            Some(_) => (self.t_rp_cpu + self.t_rcd_cpu + self.t_cas_cpu, true),
            None => (self.t_rcd_cpu + self.t_cas_cpu, true),
        };
        let data_ready = start + array_latency;
        let transfer = self.cfg.clock.to_cpu(self.cfg.transfer_cycles(a.bytes));
        let bus_start = data_ready.max(self.bus_free[channel]);
        let done = bus_start + transfer;

        bank.open_row = Some(row);
        bank.ready = done;
        self.bus_free[channel] = done;

        self.stats.accesses += 1;
        if activated {
            self.stats.activations += 1;
            self.energy.add_activation(self.cfg.act_pre_pj);
        } else {
            self.stats.row_hits += 1;
        }
        match a.kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        self.stats.bytes_by_class[a.class.index()] += u64::from(a.bytes);
        self.energy
            .add_burst(u64::from(a.bytes), self.cfg.rw_fj_per_bit);

        done
    }

    /// Serves a multi-line burst (`count` back-to-back accesses of `bytes`
    /// starting at `addr`), returning the completion of the last one.
    /// Used for sector migrations and page fills.
    pub fn burst(
        &mut self,
        addr: u64,
        bytes: u32,
        count: u32,
        kind: AccessKind,
        class: TrafficClass,
        at: Cycle,
    ) -> Cycle {
        let mut done = at;
        for i in 0..count {
            done = self.access(DramAccess {
                addr: addr + u64::from(i) * u64::from(bytes),
                bytes,
                kind,
                class,
                at,
            });
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_at(dev: &mut DramDevice, addr: u64, at: Cycle) -> Cycle {
        dev.access(DramAccess {
            addr,
            bytes: 64,
            kind: AccessKind::Read,
            class: TrafficClass::Demand,
            at,
        })
    }

    #[test]
    fn row_hit_is_faster_than_row_miss() {
        let mut dev = DramDevice::new(DeviceConfig::ddr4_far_memory());
        let t1 = read_at(&mut dev, 0, Cycle::ZERO);
        let t2 = read_at(&mut dev, 64, t1); // same row -> hit
        let miss_latency = t1 - Cycle::ZERO;
        let hit_latency = t2 - t1;
        assert!(
            hit_latency < miss_latency,
            "{hit_latency} !< {miss_latency}"
        );
        assert_eq!(dev.stats().row_hits, 1);
        assert_eq!(dev.stats().activations, 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let cfg = DeviceConfig::ddr4_far_memory();
        let row_stride = cfg.row_bytes * u64::from(cfg.banks_per_channel) * u64::from(cfg.channels);
        let mut dev = DramDevice::new(cfg);
        let t1 = read_at(&mut dev, 0, Cycle::ZERO);
        // Same channel & bank, different row: conflict.
        let t2 = read_at(&mut dev, row_stride, t1);
        let first = t1 - Cycle::ZERO; // empty bank: tRCD+tCAS+transfer
        let conflict = t2 - t1; // tRP+tRCD+tCAS+transfer
        assert!(conflict > first);
    }

    #[test]
    fn different_channels_proceed_in_parallel() {
        let cfg = DeviceConfig::hbm2_near_memory();
        let interleave = cfg.interleave_bytes;
        let mut dev = DramDevice::new(cfg);
        let a = read_at(&mut dev, 0, Cycle::ZERO);
        // Next interleave granule lands on channel 1; issued at time zero it
        // must not queue behind channel 0's access.
        let b = read_at(&mut dev, interleave, Cycle::ZERO);
        assert_eq!(a - Cycle::ZERO, b - Cycle::ZERO);
    }

    #[test]
    fn same_bank_back_to_back_serializes() {
        let mut dev = DramDevice::new(DeviceConfig::ddr4_far_memory());
        let t1 = read_at(&mut dev, 0, Cycle::ZERO);
        // Arrives at cycle 0 but the bank is busy until t1.
        let t2 = read_at(&mut dev, 64, Cycle::ZERO);
        assert!(t2 > t1);
    }

    #[test]
    fn completion_never_precedes_arrival() {
        let mut dev = DramDevice::new(DeviceConfig::hbm2_near_memory());
        let done = read_at(&mut dev, 4096, Cycle::new(1000));
        assert!(done > Cycle::new(1000));
    }

    #[test]
    fn nm_read_faster_than_fm_read_when_idle() {
        let mut nm = DramDevice::new(DeviceConfig::hbm2_near_memory());
        let mut fm = DramDevice::new(DeviceConfig::ddr4_far_memory());
        let n = read_at(&mut nm, 0, Cycle::ZERO) - Cycle::ZERO;
        let f = read_at(&mut fm, 0, Cycle::ZERO) - Cycle::ZERO;
        assert!(n < f);
    }

    #[test]
    fn bandwidth_saturation_fm_slower_than_nm() {
        // Stream 512 KiB through each device; FM (2 narrow channels) must
        // take substantially longer than NM (8 wide channels).
        let mut nm = DramDevice::new(DeviceConfig::hbm2_near_memory());
        let mut fm = DramDevice::new(DeviceConfig::ddr4_far_memory());
        let mut nm_done = Cycle::ZERO;
        let mut fm_done = Cycle::ZERO;
        for i in 0..8192u64 {
            nm_done = read_at(&mut nm, i * 64, Cycle::ZERO).max(nm_done);
            fm_done = read_at(&mut fm, i * 64, Cycle::ZERO).max(fm_done);
        }
        let ratio = (fm_done.raw()) as f64 / (nm_done.raw()) as f64;
        assert!(ratio > 3.0, "FM/NM streaming-time ratio was {ratio}");
    }

    #[test]
    fn stats_track_bytes_by_class() {
        let mut dev = DramDevice::new(DeviceConfig::hbm2_near_memory());
        dev.access(DramAccess {
            addr: 0,
            bytes: 64,
            kind: AccessKind::Read,
            class: TrafficClass::Demand,
            at: Cycle::ZERO,
        });
        dev.access(DramAccess {
            addr: 64,
            bytes: 128,
            kind: AccessKind::Write,
            class: TrafficClass::Migration,
            at: Cycle::ZERO,
        });
        assert_eq!(dev.stats().bytes(TrafficClass::Demand), 64);
        assert_eq!(dev.stats().bytes(TrafficClass::Migration), 128);
        assert_eq!(dev.stats().total_bytes(), 192);
        assert_eq!(dev.stats().reads, 1);
        assert_eq!(dev.stats().writes, 1);
    }

    #[test]
    fn energy_charged_per_burst_and_activation() {
        let mut dev = DramDevice::new(DeviceConfig::hbm2_near_memory());
        read_at(&mut dev, 0, Cycle::ZERO); // activation + 64B
        read_at(&mut dev, 64, Cycle::ZERO); // row hit + 64B
        assert_eq!(dev.energy().activations(), 1);
        // Two 64-byte bursts at 6.4 pJ/bit.
        let expected_rw = 2.0 * 64.0 * 8.0 * 6.4e-9; // mJ
        assert!((dev.energy().rw_mj() - expected_rw).abs() < 1e-12);
    }

    #[test]
    fn burst_helper_moves_all_lines() {
        let mut dev = DramDevice::new(DeviceConfig::ddr4_far_memory());
        let done = dev.burst(
            0,
            256,
            8,
            AccessKind::Write,
            TrafficClass::Migration,
            Cycle::ZERO,
        );
        assert_eq!(dev.stats().accesses, 8);
        assert_eq!(dev.stats().bytes(TrafficClass::Migration), 2048);
        assert!(done > Cycle::ZERO);
    }

    #[test]
    fn row_hit_rate_reporting() {
        let mut dev = DramDevice::new(DeviceConfig::ddr4_far_memory());
        assert_eq!(dev.stats().row_hit_rate(), 0.0);
        read_at(&mut dev, 0, Cycle::ZERO);
        read_at(&mut dev, 64, Cycle::ZERO);
        read_at(&mut dev, 128, Cycle::ZERO);
        let r = dev.stats().row_hit_rate();
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid DRAM device configuration")]
    fn invalid_config_panics_on_construction() {
        let mut cfg = DeviceConfig::hbm2_near_memory();
        cfg.channels = 3;
        let _ = DramDevice::new(cfg);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Completion never precedes arrival, for any access sequence on
        /// either device.
        #[test]
        fn completion_follows_arrival(
            ops in proptest::collection::vec((0u64..1u64<<22, 1u32..4096, any::<bool>(), 0u64..10_000), 1..200),
            nm in any::<bool>(),
        ) {
            let cfg = if nm {
                DeviceConfig::hbm2_near_memory()
            } else {
                DeviceConfig::ddr4_far_memory()
            };
            let mut dev = DramDevice::new(cfg);
            let mut t = Cycle::ZERO;
            for (addr, bytes, write, gap) in ops {
                t += gap;
                let done = dev.access(DramAccess {
                    addr,
                    bytes,
                    kind: if write { AccessKind::Write } else { AccessKind::Read },
                    class: TrafficClass::Demand,
                    at: t,
                });
                prop_assert!(done > t, "completion {done:?} must follow arrival {t:?}");
            }
        }

        /// Byte accounting is exact: total bytes equals the sum of burst
        /// lengths, and reads + writes equals accesses.
        #[test]
        fn stats_accounting_is_exact(
            ops in proptest::collection::vec((0u64..1u64<<20, 1u32..512, any::<bool>()), 1..100)
        ) {
            let mut dev = DramDevice::new(DeviceConfig::ddr4_far_memory());
            let mut expect_bytes = 0u64;
            for (addr, bytes, write) in &ops {
                expect_bytes += u64::from(*bytes);
                dev.access(DramAccess {
                    addr: *addr,
                    bytes: *bytes,
                    kind: if *write { AccessKind::Write } else { AccessKind::Read },
                    class: TrafficClass::Migration,
                    at: Cycle::ZERO,
                });
            }
            prop_assert_eq!(dev.stats().total_bytes(), expect_bytes);
            prop_assert_eq!(dev.stats().reads + dev.stats().writes, ops.len() as u64);
            prop_assert_eq!(dev.stats().row_hits + dev.stats().activations, ops.len() as u64);
        }

        /// Row-buffer hits are never slower than the conflict path would be:
        /// a second access to the same row from the same arrival time
        /// completes no later than one to a conflicting row.
        #[test]
        fn row_hit_no_slower_than_conflict(addr in (0u64..1u64<<20).prop_map(|a| a & !63)) {
            let cfg = DeviceConfig::ddr4_far_memory();
            let row_stride = cfg.row_bytes * u64::from(cfg.banks_per_channel) * u64::from(cfg.channels);
            let mk = |conflict: bool| {
                let mut dev = DramDevice::new(DeviceConfig::ddr4_far_memory());
                let t1 = dev.access(DramAccess {
                    addr, bytes: 64, kind: AccessKind::Read,
                    class: TrafficClass::Demand, at: Cycle::ZERO,
                });
                let second = if conflict { addr + row_stride } else { addr ^ 64 };
                dev.access(DramAccess {
                    addr: second, bytes: 64, kind: AccessKind::Read,
                    class: TrafficClass::Demand, at: t1,
                })
            };
            prop_assert!(mk(false) <= mk(true));
        }
    }
}
