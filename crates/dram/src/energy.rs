//! Dynamic-energy accounting (Figure 18 of the paper).
//!
//! The paper reports *dynamic* memory energy only (static/refresh energy is
//! proportional to runtime and excluded). We mirror that: every data burst
//! charges read/write + I/O energy per bit, and every row activation charges
//! one ACT/PRE pair.

use core::fmt;

/// Accumulates dynamic energy in femtojoules (integer, deterministic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnergyCounter {
    rw_fj: u128,
    act_fj: u128,
    activations: u64,
}

impl EnergyCounter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        EnergyCounter {
            rw_fj: 0,
            act_fj: 0,
            activations: 0,
        }
    }

    /// Charges a data burst of `bytes` at `fj_per_bit`.
    #[inline]
    pub fn add_burst(&mut self, bytes: u64, fj_per_bit: u64) {
        self.rw_fj += u128::from(bytes) * 8 * u128::from(fj_per_bit);
    }

    /// Charges one row activate/precharge pair of `act_pre_pj` picojoules.
    #[inline]
    pub fn add_activation(&mut self, act_pre_pj: u64) {
        self.act_fj += u128::from(act_pre_pj) * 1_000;
        self.activations += 1;
    }

    /// Total dynamic energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        (self.rw_fj + self.act_fj) as f64 * 1e-12
    }

    /// Read/write + I/O component in millijoules.
    pub fn rw_mj(&self) -> f64 {
        self.rw_fj as f64 * 1e-12
    }

    /// Activate/precharge component in millijoules.
    pub fn act_mj(&self) -> f64 {
        self.act_fj as f64 * 1e-12
    }

    /// Number of row activations charged.
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Adds another counter into this one (for NM + FM totals).
    pub fn merge(&mut self, other: &EnergyCounter) {
        self.rw_fj += other.rw_fj;
        self.act_fj += other.act_fj;
        self.activations += other.activations;
    }
}

impl fmt::Display for EnergyCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} mJ (rw {:.3} mJ, act {:.3} mJ, {} activations)",
            self.total_mj(),
            self.rw_mj(),
            self.act_mj(),
            self.activations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_energy_matches_hand_computation() {
        let mut e = EnergyCounter::new();
        // 64 bytes at 6.4 pJ/bit = 64*8*6.4 pJ = 3276.8 pJ.
        e.add_burst(64, 6_400);
        assert!((e.rw_mj() - 3276.8e-9).abs() < 1e-15);
    }

    #[test]
    fn activation_energy_matches_table() {
        let mut e = EnergyCounter::new();
        e.add_activation(15_000); // 15 nJ
        assert!((e.act_mj() - 15e-6).abs() < 1e-12);
        assert_eq!(e.activations(), 1);
    }

    #[test]
    fn totals_are_sums() {
        let mut e = EnergyCounter::new();
        e.add_burst(128, 33_000);
        e.add_activation(15_000);
        assert!((e.total_mj() - (e.rw_mj() + e.act_mj())).abs() < 1e-18);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = EnergyCounter::new();
        a.add_burst(64, 6_400);
        a.add_activation(15_000);
        let mut b = EnergyCounter::new();
        b.add_burst(64, 6_400);
        b.merge(&a);
        assert_eq!(b.activations(), 1);
        assert!((b.rw_mj() - 2.0 * a.rw_mj()).abs() < 1e-18);
    }

    #[test]
    fn display_mentions_units() {
        let mut e = EnergyCounter::new();
        e.add_burst(64, 6_400);
        assert!(e.to_string().contains("mJ"));
    }

    #[test]
    fn fm_bit_energy_exceeds_nm() {
        // Sanity on Table 1: moving a byte in FM costs ~5x NM energy.
        let mut nm = EnergyCounter::new();
        nm.add_burst(64, 6_400);
        let mut fm = EnergyCounter::new();
        fm.add_burst(64, 33_000);
        assert!(fm.rw_mj() > 4.0 * nm.rw_mj());
    }
}
