//! Bank/row/channel-level DRAM timing and energy model.
//!
//! This crate is the reproduction's substitute for DRAMSim2: a deterministic
//! timing calculator that gives every access a completion cycle derived from
//! the device's bank state (open row), bank availability, and data-bus
//! occupancy, using the timing and energy parameters of Table 1 of the
//! Hybrid2 paper:
//!
//! * **Near memory** — HBM2-like: 8 channels × 128 bit @ 2 GT/s,
//!   8 banks/channel, tCAS-tRCD-tRP = 7-7-7 (device cycles),
//!   6.4 pJ/bit read/write+I/O, 15 nJ per ACT/PRE pair.
//! * **Far memory** — DDR4-3200: 2 channels × 64 bit, 8 banks/channel,
//!   tCAS-tRCD-tRP = 22-22-22, 33 pJ/bit, 15 nJ per ACT/PRE pair.
//!
//! The model captures what the paper's evaluation depends on — row-hit vs
//! row-miss latency, bank conflicts, and bandwidth saturation of the narrow
//! FM bus versus the wide NM interface. Requests are processed in arrival
//! order per device (FCFS with an open-page row policy); see `DESIGN.md` §3
//! for the substitution note.
//!
//! All traffic flows through the ticketed service layer ([`service`]):
//! schemes build a [`ServiceRequest`] (a [`DramAccess`] plus target side,
//! issuing-node [`Ticket`] and burst count) and get back a
//! [`ServiceResult`] with both completion and queue-admission cycles. The
//! default [`ServiceModel::Unbounded`] is the closed-form reference —
//! byte-identical to the pre-service-layer calculator — while
//! [`ServiceModel::Queued`] bounds each channel and bank behind a FIFO of
//! configurable depth whose overflow charges explicit [`Backpressure`]
//! delay on top of the CAS/RCD/RP timing.
//!
//! The crate also defines the [`MemoryScheme`] trait implemented by Hybrid2
//! and by every baseline scheme, so that all of them drive the same devices
//! and their traffic/energy is accounted identically.
//!
//! # Example
//!
//! ```
//! use dram::{DramAccess, DramDevice, DeviceConfig};
//! use sim_types::{AccessKind, Cycle, TrafficClass};
//!
//! let mut nm = DramDevice::new(DeviceConfig::hbm2_near_memory());
//! let first = nm.access(DramAccess {
//!     addr: 0,
//!     bytes: 64,
//!     kind: AccessKind::Read,
//!     class: TrafficClass::Demand,
//!     at: Cycle::ZERO,
//! });
//! // A second access to the same row is a row-buffer hit: strictly faster.
//! let second = nm.access(DramAccess {
//!     addr: 64,
//!     bytes: 64,
//!     kind: AccessKind::Read,
//!     class: TrafficClass::Demand,
//!     at: first,
//! });
//! assert!(second - first < first - Cycle::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod device;
mod energy;
mod scheme;
pub mod service;
mod system;

pub use config::{DeviceConfig, DeviceConfigError};
pub use device::{DeviceStats, DramAccess, DramDevice};
pub use energy::EnergyCounter;
pub use scheme::{MemoryScheme, SchemeStats, Served};
pub use service::{
    Backpressure, BoundedQueue, ServiceModel, ServiceRequest, ServiceResult, Ticket,
    DEFAULT_QUEUE_DEPTH,
};
pub use system::DramSystem;
