//! The interface every hybrid-memory management scheme implements.
//!
//! Hybrid2 (`hybrid2-core`) and all five comparison schemes (`baselines`)
//! implement [`MemoryScheme`]; the system runner in `sim` drives whichever
//! scheme it is given against the same [`DramSystem`](crate::DramSystem), so
//! performance, traffic and energy are always accounted identically.

use core::fmt;

use sim_types::{Cycle, MemReq, PAddr};

use crate::system::DramSystem;

/// The outcome of one processor request handed to a scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Served {
    /// Cycle at which the critical data is available. For writes this is the
    /// cycle the write is accepted (writes are buffered and do not stall the
    /// core, but the value is still used for queue modelling).
    pub done: Cycle,
    /// Whether the *demand* access was served from near memory.
    pub from_nm: bool,
}

impl Served {
    /// Convenience constructor.
    pub fn new(done: Cycle, from_nm: bool) -> Self {
        Served { done, from_nm }
    }
}

/// Counters common to every scheme, reported by the harness.
///
/// Not every field is meaningful for every scheme (a cache has no
/// migrations; the FM-only baseline has neither); unused fields stay zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchemeStats {
    /// Processor requests handled (reads + writes).
    pub requests: u64,
    /// Processor read requests.
    pub reads: u64,
    /// Processor write requests.
    pub writes: u64,
    /// Demand requests whose data came from NM (Figure 15).
    pub served_from_nm: u64,
    /// Hits in the scheme's primary lookup structure (XTA / tag array /
    /// page table / remap cache, as applicable).
    pub lookup_hits: u64,
    /// Misses in the scheme's primary lookup structure.
    pub lookup_misses: u64,
    /// Sectors/blocks/pages migrated or filled into NM.
    pub moved_into_nm: u64,
    /// Sectors/blocks/pages moved out of NM to FM (swaps, evictions).
    pub moved_out_of_nm: u64,
    /// Evictions that wrote dirty data back to FM.
    pub dirty_writebacks: u64,
    /// Reads of remap/tag metadata that had to go to DRAM.
    pub metadata_reads: u64,
    /// Writes of remap/tag metadata that had to go to DRAM.
    pub metadata_writes: u64,
    /// Bytes fetched into NM by fills (cache schemes; Figure 1 numerator).
    pub fetched_bytes: u64,
    /// Of the fetched bytes, bytes actually touched before eviction
    /// (Figure 1; maintained by schemes that track usage).
    pub used_bytes: u64,
}

impl SchemeStats {
    /// Fraction of demand requests served from NM, in [0, 1].
    pub fn nm_served_fraction(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.served_from_nm as f64 / self.requests as f64
        }
    }

    /// Hit rate of the primary lookup structure, in [0, 1].
    pub fn lookup_hit_rate(&self) -> f64 {
        let total = self.lookup_hits + self.lookup_misses;
        if total == 0 {
            0.0
        } else {
            self.lookup_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for SchemeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requests {} (NM-served {:.1}%), lookup hit {:.1}%, in/out NM {}/{}",
            self.requests,
            100.0 * self.nm_served_fraction(),
            100.0 * self.lookup_hit_rate(),
            self.moved_into_nm,
            self.moved_out_of_nm,
        )
    }
}

/// A hybrid-memory management scheme: the Hybrid2 DCMC or a baseline.
///
/// Implementations receive each LLC miss / writeback in global arrival order
/// and are responsible for all data placement, movement and metadata
/// accounting through the provided [`DramSystem`].
pub trait MemoryScheme {
    /// Short scheme name as used in the paper's figures (e.g. `"HYBRID2"`).
    fn name(&self) -> &'static str;

    /// Serves one processor request, returning when it completes and where
    /// the demand data lived.
    fn access(&mut self, req: &MemReq, dram: &mut DramSystem) -> Served;

    /// Periodic housekeeping (interval-based migration decisions). Called by
    /// the runner every [`MemoryScheme::tick_period`] cycles of simulated
    /// time; default is never.
    fn on_tick(&mut self, _now: Cycle, _dram: &mut DramSystem) {}

    /// End-of-run hook: fold any residual state into [`MemoryScheme::stats`]
    /// (e.g. usage of lines still resident in a cache). Default: nothing.
    fn on_finish(&mut self) {}

    /// OS hint: the byte range `[addr, addr + bytes)` holds no live data
    /// (freed or never-allocated memory). Schemes that exploit free space —
    /// Hybrid2's §3.8 extension, Chameleon's motivation — may skip copying
    /// such data during swaps. Default: ignored.
    fn os_hint_unused(&mut self, _addr: PAddr, _bytes: u64) {}

    /// OS hint: the byte range `[addr, addr + bytes)` is (again) live.
    /// Default: ignored.
    fn os_hint_used(&mut self, _addr: PAddr, _bytes: u64) {}

    /// Interval between [`MemoryScheme::on_tick`] calls in CPU cycles;
    /// `None` disables ticking.
    fn tick_period(&self) -> Option<u64> {
        None
    }

    /// Bytes of main memory visible to software under this scheme. Caches
    /// deny the NM capacity to the system; migration schemes do not.
    fn flat_capacity_bytes(&self) -> u64;

    /// Scheme-level statistics.
    fn stats(&self) -> &SchemeStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nm_served_fraction_handles_zero() {
        let s = SchemeStats::default();
        assert_eq!(s.nm_served_fraction(), 0.0);
        assert_eq!(s.lookup_hit_rate(), 0.0);
    }

    #[test]
    fn fractions_compute() {
        let s = SchemeStats {
            requests: 10,
            served_from_nm: 4,
            lookup_hits: 3,
            lookup_misses: 1,
            ..SchemeStats::default()
        };
        assert!((s.nm_served_fraction() - 0.4).abs() < 1e-12);
        assert!((s.lookup_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let s = SchemeStats::default();
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn served_constructor() {
        let s = Served::new(Cycle::new(5), true);
        assert_eq!(s.done, Cycle::new(5));
        assert!(s.from_nm);
    }
}
