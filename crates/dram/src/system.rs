//! The two-device memory system: near memory + far memory.

use sim_types::MemSide;

use crate::config::DeviceConfig;
use crate::device::{DramAccess, DramDevice};
use crate::energy::EnergyCounter;
use crate::service::{ServiceModel, ServiceRequest, ServiceResult};

/// Near memory and far memory bundled together, as handed to schemes.
#[derive(Clone, Debug)]
pub struct DramSystem {
    nm: DramDevice,
    fm: DramDevice,
}

impl DramSystem {
    /// Builds a system from two device configurations.
    pub fn new(nm: DeviceConfig, fm: DeviceConfig) -> Self {
        DramSystem {
            nm: DramDevice::new(nm),
            fm: DramDevice::new(fm),
        }
    }

    /// The paper's Table 1 system: HBM2 near memory, DDR4-3200 far memory,
    /// [`ServiceModel::Unbounded`] service (the closed-form reference).
    pub fn paper_default() -> Self {
        Self::new(
            DeviceConfig::hbm2_near_memory(),
            DeviceConfig::ddr4_far_memory(),
        )
    }

    /// Selects the service model on both devices (builder form).
    #[must_use]
    pub fn with_service(mut self, model: ServiceModel) -> Self {
        self.nm.set_service_model(model);
        self.fm.set_service_model(model);
        self
    }

    /// The active service model (identical on both sides).
    pub fn service_model(&self) -> ServiceModel {
        debug_assert_eq!(self.nm.service_model(), self.fm.service_model());
        self.nm.service_model()
    }

    /// Submits one ticketed request, returning its completion (`ready`) and
    /// queue-admission (`queued`) cycles.
    ///
    /// A request with `count > 1` is served as `count` back-to-back accesses
    /// at stride `access.bytes`, all arriving at `access.at` (sector moves,
    /// page fills); `ready` is the completion of the last access and
    /// `queued` the admission of the first.
    pub fn submit(&mut self, req: ServiceRequest) -> ServiceResult {
        let ServiceRequest {
            side,
            ticket: _,
            count,
            access,
        } = req;
        let dev = self.device_mut(side);
        let mut out = ServiceResult {
            ready: access.at,
            queued: access.at,
        };
        for i in 0..count {
            let r = dev.serve(DramAccess {
                addr: access.addr + u64::from(i) * u64::from(access.bytes),
                ..access
            });
            out.ready = r.ready;
            if i == 0 {
                out.queued = r.queued;
            }
        }
        out
    }

    /// The device on `side`.
    pub fn device(&self, side: MemSide) -> &DramDevice {
        match side {
            MemSide::Nm => &self.nm,
            MemSide::Fm => &self.fm,
        }
    }

    /// Mutable access to the device on `side`.
    pub fn device_mut(&mut self, side: MemSide) -> &mut DramDevice {
        match side {
            MemSide::Nm => &mut self.nm,
            MemSide::Fm => &mut self.fm,
        }
    }

    /// Combined NM+FM dynamic energy.
    pub fn total_energy(&self) -> EnergyCounter {
        let mut e = EnergyCounter::new();
        e.merge(self.nm.energy());
        e.merge(self.fm.energy());
        e
    }

    /// Total bytes moved on `side`.
    pub fn traffic_bytes(&self, side: MemSide) -> u64 {
        self.device(side).stats().total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Ticket;
    use sim_types::{AccessKind, Cycle, TrafficClass};

    fn req(side: MemSide, addr: u64, kind: AccessKind, class: TrafficClass) -> ServiceRequest {
        ServiceRequest::new(
            side,
            Ticket::CONTROLLER,
            DramAccess {
                addr,
                bytes: 64,
                kind,
                class,
                at: Cycle::ZERO,
            },
        )
    }

    #[test]
    fn sides_route_to_distinct_devices() {
        let mut sys = DramSystem::paper_default();
        sys.submit(req(MemSide::Nm, 0, AccessKind::Read, TrafficClass::Demand));
        assert_eq!(sys.device(MemSide::Nm).stats().accesses, 1);
        assert_eq!(sys.device(MemSide::Fm).stats().accesses, 0);
        sys.submit(req(
            MemSide::Fm,
            0,
            AccessKind::Write,
            TrafficClass::Writeback,
        ));
        assert_eq!(sys.device(MemSide::Fm).stats().writes, 1);
    }

    #[test]
    fn counted_submit_moves_all_lines() {
        let mut sys = DramSystem::paper_default();
        let r = sys.submit(
            ServiceRequest::new(
                MemSide::Fm,
                Ticket::CONTROLLER,
                DramAccess {
                    addr: 0,
                    bytes: 256,
                    kind: AccessKind::Read,
                    class: TrafficClass::Migration,
                    at: Cycle::ZERO,
                },
            )
            .with_count(8),
        );
        assert_eq!(sys.traffic_bytes(MemSide::Fm), 2048);
        assert_eq!(sys.traffic_bytes(MemSide::Nm), 0);
        assert_eq!(sys.device(MemSide::Fm).stats().accesses, 8);
        assert!(r.ready > Cycle::ZERO);
        assert_eq!(r.queued, Cycle::ZERO);
    }

    #[test]
    fn total_energy_merges_both_sides() {
        let mut sys = DramSystem::paper_default();
        sys.submit(req(MemSide::Nm, 0, AccessKind::Read, TrafficClass::Demand));
        sys.submit(req(MemSide::Fm, 0, AccessKind::Read, TrafficClass::Demand));
        let total = sys.total_energy();
        assert!(total.total_mj() > sys.device(MemSide::Nm).energy().total_mj());
        assert_eq!(total.activations(), 2);
    }

    #[test]
    fn with_service_applies_to_both_sides() {
        let model = ServiceModel::Queued { depth: 4 };
        let sys = DramSystem::paper_default().with_service(model);
        assert_eq!(sys.service_model(), model);
        assert_eq!(sys.device(MemSide::Nm).service_model(), model);
        assert_eq!(sys.device(MemSide::Fm).service_model(), model);
        assert_eq!(
            DramSystem::paper_default().service_model(),
            ServiceModel::Unbounded
        );
    }
}
