//! The two-device memory system: near memory + far memory.

use sim_types::{AccessKind, Cycle, MemSide, TrafficClass};

use crate::config::DeviceConfig;
use crate::device::{DramAccess, DramDevice};
use crate::energy::EnergyCounter;

/// Near memory and far memory bundled together, as handed to schemes.
#[derive(Clone, Debug)]
pub struct DramSystem {
    nm: DramDevice,
    fm: DramDevice,
}

impl DramSystem {
    /// Builds a system from two device configurations.
    pub fn new(nm: DeviceConfig, fm: DeviceConfig) -> Self {
        DramSystem {
            nm: DramDevice::new(nm),
            fm: DramDevice::new(fm),
        }
    }

    /// The paper's Table 1 system: HBM2 near memory, DDR4-3200 far memory.
    pub fn paper_default() -> Self {
        Self::new(
            DeviceConfig::hbm2_near_memory(),
            DeviceConfig::ddr4_far_memory(),
        )
    }

    /// Serves one access on the chosen side, returning its completion cycle.
    pub fn access(
        &mut self,
        side: MemSide,
        addr: u64,
        bytes: u32,
        kind: AccessKind,
        class: TrafficClass,
        at: Cycle,
    ) -> Cycle {
        self.device_mut(side).access(DramAccess {
            addr,
            bytes,
            kind,
            class,
            at,
        })
    }

    /// Serves `count` back-to-back line accesses on one side (sector moves).
    #[allow(clippy::too_many_arguments)]
    pub fn burst(
        &mut self,
        side: MemSide,
        addr: u64,
        bytes: u32,
        count: u32,
        kind: AccessKind,
        class: TrafficClass,
        at: Cycle,
    ) -> Cycle {
        self.device_mut(side)
            .burst(addr, bytes, count, kind, class, at)
    }

    /// The device on `side`.
    pub fn device(&self, side: MemSide) -> &DramDevice {
        match side {
            MemSide::Nm => &self.nm,
            MemSide::Fm => &self.fm,
        }
    }

    /// Mutable access to the device on `side`.
    pub fn device_mut(&mut self, side: MemSide) -> &mut DramDevice {
        match side {
            MemSide::Nm => &mut self.nm,
            MemSide::Fm => &mut self.fm,
        }
    }

    /// Combined NM+FM dynamic energy.
    pub fn total_energy(&self) -> EnergyCounter {
        let mut e = EnergyCounter::new();
        e.merge(self.nm.energy());
        e.merge(self.fm.energy());
        e
    }

    /// Total bytes moved on `side`.
    pub fn traffic_bytes(&self, side: MemSide) -> u64 {
        self.device(side).stats().total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sides_route_to_distinct_devices() {
        let mut sys = DramSystem::paper_default();
        sys.access(
            MemSide::Nm,
            0,
            64,
            AccessKind::Read,
            TrafficClass::Demand,
            Cycle::ZERO,
        );
        assert_eq!(sys.device(MemSide::Nm).stats().accesses, 1);
        assert_eq!(sys.device(MemSide::Fm).stats().accesses, 0);
        sys.access(
            MemSide::Fm,
            0,
            64,
            AccessKind::Write,
            TrafficClass::Writeback,
            Cycle::ZERO,
        );
        assert_eq!(sys.device(MemSide::Fm).stats().writes, 1);
    }

    #[test]
    fn traffic_helper_matches_device_stats() {
        let mut sys = DramSystem::paper_default();
        sys.burst(
            MemSide::Fm,
            0,
            256,
            8,
            AccessKind::Read,
            TrafficClass::Migration,
            Cycle::ZERO,
        );
        assert_eq!(sys.traffic_bytes(MemSide::Fm), 2048);
        assert_eq!(sys.traffic_bytes(MemSide::Nm), 0);
    }

    #[test]
    fn total_energy_merges_both_sides() {
        let mut sys = DramSystem::paper_default();
        sys.access(
            MemSide::Nm,
            0,
            64,
            AccessKind::Read,
            TrafficClass::Demand,
            Cycle::ZERO,
        );
        sys.access(
            MemSide::Fm,
            0,
            64,
            AccessKind::Read,
            TrafficClass::Demand,
            Cycle::ZERO,
        );
        let total = sys.total_energy();
        assert!(total.total_mj() > sys.device(MemSide::Nm).energy().total_mj());
        assert_eq!(total.activations(), 2);
    }
}
