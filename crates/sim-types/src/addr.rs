//! Address newtypes.
//!
//! The Hybrid2 controller juggles three distinct address spaces:
//!
//! * the *virtual* space seen by each workload thread ([`VAddr`]),
//! * the *processor physical* space produced by page allocation ([`PAddr`]),
//!   which is what the remap tables are indexed with, and
//! * *device locations*: a sector slot inside near memory ([`NmLoc`]) or far
//!   memory ([`FmLoc`]).
//!
//! Mixing these up is the classic bug in migration-scheme code, so each gets
//! its own type. All are thin wrappers around `u64` with explicit
//! constructors and accessors.

use core::fmt;

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident, $ctor_doc:expr, $raw_doc:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            #[doc = $ctor_doc]
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            #[doc = $raw_doc]
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<$name> for u64 {
            fn from(a: $name) -> u64 {
                a.0
            }
        }
    };
}

addr_newtype!(
    /// A byte address in a workload's virtual address space, before page
    /// allocation assigns it a physical home.
    VAddr,
    "Creates a virtual address from its raw byte value.",
    "Returns the raw byte value of this virtual address."
);

addr_newtype!(
    /// A byte address in the *processor physical* address space — the space
    /// the OS-visible flat memory is numbered in and the space the remap
    /// table is indexed with. For cache-based schemes this is simply the far
    /// memory address space.
    PAddr,
    "Creates a processor physical address from its raw byte value.",
    "Returns the raw byte value of this physical address."
);

addr_newtype!(
    /// The index of a *sector* (the paper's migration/caching granule, 2 KB
    /// by default) within the processor physical address space:
    /// `PAddr >> log2(sector_size)`.
    SectorId,
    "Creates a sector id from its raw index.",
    "Returns the raw index of this sector."
);

addr_newtype!(
    /// The index of an OS page (4 KB) within a virtual or physical space.
    PageId,
    "Creates a page id from its raw index.",
    "Returns the raw index of this page."
);

addr_newtype!(
    /// A sector-granular slot inside **near memory** (the 3D-stacked DRAM).
    /// Because of the XTA's indirection, any sector of the physical space may
    /// live in any `NmLoc`.
    NmLoc,
    "Creates a near-memory location from its raw sector-slot index.",
    "Returns the raw sector-slot index of this near-memory location."
);

addr_newtype!(
    /// A sector-granular slot inside **far memory** (the off-chip DDR4).
    FmLoc,
    "Creates a far-memory location from its raw sector-slot index.",
    "Returns the raw sector-slot index of this far-memory location."
);

impl PAddr {
    /// Returns the physical address `bytes` after `self`.
    #[inline]
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Self(self.0 + bytes)
    }
}

impl SectorId {
    /// Returns the raw index as `usize` for table indexing.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the index does not fit a `usize`
    /// (impossible on 64-bit targets).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NmLoc {
    /// Returns the raw slot index as `usize` for table indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FmLoc {
    /// Returns the raw slot index as `usize` for table indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PageId {
    /// Returns the raw page index as `usize` for table indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtypes_round_trip_raw_values() {
        assert_eq!(PAddr::new(42).raw(), 42);
        assert_eq!(VAddr::new(7).raw(), 7);
        assert_eq!(SectorId::new(3).raw(), 3);
        assert_eq!(NmLoc::new(9).raw(), 9);
        assert_eq!(FmLoc::new(11).raw(), 11);
        assert_eq!(PageId::new(5).raw(), 5);
    }

    #[test]
    fn debug_formats_are_nonempty_and_distinct() {
        let d = format!("{:?}", PAddr::new(0x10));
        assert!(d.contains("PAddr"));
        assert!(d.contains("0x10"));
        let d = format!("{:?}", NmLoc::new(0x10));
        assert!(d.contains("NmLoc"));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(PAddr::new(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", FmLoc::new(255)), "ff");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(PAddr::new(1) < PAddr::new(2));
        assert!(NmLoc::new(10) > NmLoc::new(9));
    }

    #[test]
    fn paddr_offset_adds_bytes() {
        assert_eq!(PAddr::new(0x1000).offset(0x40), PAddr::new(0x1040));
    }

    #[test]
    fn u64_conversion_matches_raw() {
        let a = SectorId::new(77);
        let raw: u64 = a.into();
        assert_eq!(raw, 77);
    }

    #[test]
    fn index_accessors_return_usize() {
        assert_eq!(SectorId::new(4).index(), 4usize);
        assert_eq!(NmLoc::new(4).index(), 4usize);
        assert_eq!(FmLoc::new(4).index(), 4usize);
        assert_eq!(PageId::new(4).index(), 4usize);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(PAddr::default().raw(), 0);
        assert_eq!(FmLoc::default().raw(), 0);
    }
}
