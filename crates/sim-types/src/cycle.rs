//! Time-keeping in CPU clock cycles.
//!
//! The whole simulator is clocked in cycles of the 3.2 GHz cores (Table 1 of
//! the paper). DRAM devices run on their own clocks; [`ClockRatio`] converts
//! device-cycle counts to CPU cycles with integer arithmetic so simulations
//! stay deterministic across platforms.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in CPU clock cycles since boot.
///
/// `Cycle` is ordered and supports adding a `u64` duration; subtracting two
/// `Cycle`s yields the `u64` duration between them (saturating at zero via
/// [`Cycle::saturating_since`] when the order is unknown).
///
/// ```
/// use sim_types::Cycle;
/// let a = Cycle::ZERO + 100;
/// let b = a + 20;
/// assert_eq!(b - a, 20);
/// assert_eq!(a.max(b), b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle timestamp from a raw cycle count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `self - earlier`, or 0 if `earlier` is actually later.
    #[inline]
    #[must_use]
    pub const fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Converts this timestamp to seconds given a core frequency in Hz.
    ///
    /// Only used for reporting (e.g. translating the paper's 50 µs migration
    /// intervals); simulation logic never touches floating point time.
    #[inline]
    pub fn as_secs_f64(self, freq_hz: u64) -> f64 {
        self.0 as f64 / freq_hz as f64
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    /// Duration between two timestamps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Cycle::saturating_since`] when ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative cycle duration");
        self.0 - rhs.0
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cycle({})", self.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Integer conversion factor from a device clock to the CPU clock.
///
/// The CPU runs at 3.2 GHz; HBM2 at 2 GHz (ratio 8/5) and the DDR4-3200 I/O
/// clock at 1.6 GHz (ratio 2/1). Converting `n` device cycles to CPU cycles
/// rounds **up**, which is the conservative choice for latency modelling.
///
/// ```
/// use sim_types::ClockRatio;
/// let hbm = ClockRatio::new(8, 5); // 3.2 GHz / 2.0 GHz
/// assert_eq!(hbm.to_cpu(5), 8);
/// assert_eq!(hbm.to_cpu(7), 12); // ceil(7 * 8 / 5)
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct ClockRatio {
    num: u64,
    den: u64,
}

impl ClockRatio {
    /// Creates a ratio `num/den` = CPU frequency / device frequency.
    ///
    /// # Panics
    ///
    /// Panics if either term is zero.
    pub const fn new(num: u64, den: u64) -> Self {
        assert!(num > 0 && den > 0, "clock ratio terms must be non-zero");
        ClockRatio { num, den }
    }

    /// A 1:1 ratio (device clocked at CPU speed).
    pub const UNIT: ClockRatio = ClockRatio { num: 1, den: 1 };

    /// Converts a device-cycle count to CPU cycles, rounding up.
    #[inline]
    pub const fn to_cpu(self, device_cycles: u64) -> u64 {
        (device_cycles * self.num).div_ceil(self.den)
    }

    /// The numerator (CPU-side) of the ratio.
    #[inline]
    pub const fn num(self) -> u64 {
        self.num
    }

    /// The denominator (device-side) of the ratio.
    #[inline]
    pub const fn den(self) -> u64 {
        self.den
    }
}

impl Default for ClockRatio {
    fn default() -> Self {
        Self::UNIT
    }
}

impl fmt::Display for ClockRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_are_inverse() {
        let a = Cycle::new(1000);
        assert_eq!((a + 25) - a, 25);
    }

    #[test]
    fn saturating_since_clamps_at_zero() {
        let a = Cycle::new(10);
        let b = Cycle::new(20);
        assert_eq!(b.saturating_since(a), 10);
        assert_eq!(a.saturating_since(b), 0);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = Cycle::ZERO;
        t += 5;
        t += 7;
        assert_eq!(t.raw(), 12);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(Cycle::new(3) < Cycle::new(4));
        assert_eq!(Cycle::new(3).max(Cycle::new(4)), Cycle::new(4));
    }

    #[test]
    fn ratio_converts_exact_multiples() {
        let r = ClockRatio::new(2, 1); // DDR4-3200 I/O clock vs 3.2 GHz CPU
        assert_eq!(r.to_cpu(22), 44); // tCAS=22 device cycles
    }

    #[test]
    fn ratio_rounds_up() {
        let r = ClockRatio::new(8, 5); // HBM2 2 GHz vs 3.2 GHz CPU
        assert_eq!(r.to_cpu(7), 12); // 11.2 -> 12
        assert_eq!(r.to_cpu(0), 0);
    }

    #[test]
    fn unit_ratio_is_identity() {
        assert_eq!(ClockRatio::UNIT.to_cpu(123), 123);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_ratio_panics() {
        let _ = ClockRatio::new(0, 1);
    }

    #[test]
    fn seconds_conversion_for_reporting() {
        // 50 us at 3.2 GHz = 160_000 cycles.
        let t = Cycle::new(160_000);
        let s = t.as_secs_f64(3_200_000_000);
        assert!((s - 50e-6).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cycle::new(7).to_string(), "7");
        assert_eq!(ClockRatio::new(8, 5).to_string(), "8/5");
    }
}
