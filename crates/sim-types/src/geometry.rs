//! Line/sector size arithmetic.
//!
//! Hybrid2 moves data at two granularities: *cache lines* (fetched into the
//! DRAM cache, 64–512 B in the design-space exploration) and *sectors* (the
//! migration/tag granule, 2–4 KB). [`Geometry`] captures one such pair and
//! provides the bit-twiddling used throughout the workspace.

use core::fmt;

use crate::{PAddr, SectorId};

/// Errors returned when constructing an invalid [`Geometry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeometryError {
    /// The line size was zero or not a power of two.
    BadLineSize(u64),
    /// The sector size was zero or not a power of two.
    BadSectorSize(u64),
    /// The sector size was smaller than the line size.
    SectorSmallerThanLine {
        /// Offending line size in bytes.
        line: u64,
        /// Offending sector size in bytes.
        sector: u64,
    },
    /// A sector holds more lines than the per-entry bit-vectors support (64).
    TooManyLinesPerSector(u64),
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GeometryError::BadLineSize(s) => {
                write!(f, "line size {s} is not a non-zero power of two")
            }
            GeometryError::BadSectorSize(s) => {
                write!(f, "sector size {s} is not a non-zero power of two")
            }
            GeometryError::SectorSmallerThanLine { line, sector } => {
                write!(f, "sector size {sector} is smaller than line size {line}")
            }
            GeometryError::TooManyLinesPerSector(n) => {
                write!(
                    f,
                    "{n} lines per sector exceeds the 64-line bit-vector limit"
                )
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// A (line size, sector size) pair with power-of-two arithmetic helpers.
///
/// ```
/// use sim_types::{Geometry, PAddr};
/// let g = Geometry::new(256, 2048)?;
/// assert_eq!(g.lines_per_sector(), 8);
/// let a = PAddr::new(0x1234);
/// assert_eq!(g.sector_of(a).raw(), 0x2);
/// assert_eq!(g.line_within_sector(a), 2); // 0x234 / 0x100
/// # Ok::<(), sim_types::GeometryError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    line_size: u64,
    sector_size: u64,
    line_shift: u32,
    sector_shift: u32,
}

impl Geometry {
    /// Creates a geometry from a line size and sector size, both in bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] if either size is not a non-zero power of
    /// two, if the sector is smaller than the line, or if a sector would hold
    /// more than 64 lines (the valid/dirty bit-vector width used by the XTA).
    pub const fn new(line_size: u64, sector_size: u64) -> Result<Self, GeometryError> {
        if line_size == 0 || !line_size.is_power_of_two() {
            return Err(GeometryError::BadLineSize(line_size));
        }
        if sector_size == 0 || !sector_size.is_power_of_two() {
            return Err(GeometryError::BadSectorSize(sector_size));
        }
        if sector_size < line_size {
            return Err(GeometryError::SectorSmallerThanLine {
                line: line_size,
                sector: sector_size,
            });
        }
        let lines = sector_size / line_size;
        if lines > 64 {
            return Err(GeometryError::TooManyLinesPerSector(lines));
        }
        Ok(Geometry {
            line_size,
            sector_size,
            line_shift: line_size.trailing_zeros(),
            sector_shift: sector_size.trailing_zeros(),
        })
    }

    /// The paper's chosen configuration: 256 B lines in 2 KB sectors.
    ///
    /// # Panics
    ///
    /// Never panics; the constants are valid.
    pub fn paper_default() -> Self {
        match Self::new(256, 2048) {
            Ok(g) => g,
            Err(_) => unreachable!(),
        }
    }

    /// Line size in bytes.
    #[inline]
    pub const fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Sector size in bytes.
    #[inline]
    pub const fn sector_size(&self) -> u64 {
        self.sector_size
    }

    /// Number of cache lines per sector (`Nall` in the paper's cost model).
    #[inline]
    pub const fn lines_per_sector(&self) -> u32 {
        (self.sector_size / self.line_size) as u32
    }

    /// The sector containing physical address `addr`.
    #[inline]
    pub const fn sector_of(&self, addr: PAddr) -> SectorId {
        SectorId::new(addr.raw() >> self.sector_shift)
    }

    /// The line slot (0-based) of `addr` within its sector.
    #[inline]
    pub const fn line_within_sector(&self, addr: PAddr) -> u32 {
        ((addr.raw() >> self.line_shift) & ((1 << (self.sector_shift - self.line_shift)) - 1))
            as u32
    }

    /// The first physical address of sector `sector`.
    #[inline]
    pub const fn sector_base(&self, sector: SectorId) -> PAddr {
        PAddr::new(sector.raw() << self.sector_shift)
    }

    /// The physical address of line slot `line` within sector `sector`.
    #[inline]
    pub const fn line_addr(&self, sector: SectorId, line: u32) -> PAddr {
        PAddr::new((sector.raw() << self.sector_shift) + ((line as u64) << self.line_shift))
    }

    /// The global line index of `addr` (`addr / line_size`).
    #[inline]
    pub const fn line_of(&self, addr: PAddr) -> u64 {
        addr.raw() >> self.line_shift
    }

    /// Number of sectors needed to cover `bytes` of memory, rounding up.
    #[inline]
    pub const fn sectors_in(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.sector_size)
    }

    /// `log2(line_size)`.
    #[inline]
    pub const fn line_shift(&self) -> u32 {
        self.line_shift
    }

    /// `log2(sector_size)`.
    #[inline]
    pub const fn sector_shift(&self) -> u32 {
        self.sector_shift
    }
}

impl fmt::Debug for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Geometry {{ line: {} B, sector: {} B ({} lines) }}",
            self.line_size,
            self.sector_size,
            self.lines_per_sector()
        )
    }
}

impl Default for Geometry {
    /// The paper's best configuration (256 B lines, 2 KB sectors).
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_256b_in_2kb() {
        let g = Geometry::paper_default();
        assert_eq!(g.line_size(), 256);
        assert_eq!(g.sector_size(), 2048);
        assert_eq!(g.lines_per_sector(), 8);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(
            Geometry::new(100, 2048),
            Err(GeometryError::BadLineSize(100))
        );
        assert_eq!(
            Geometry::new(64, 3000),
            Err(GeometryError::BadSectorSize(3000))
        );
        assert_eq!(Geometry::new(0, 2048), Err(GeometryError::BadLineSize(0)));
    }

    #[test]
    fn rejects_sector_smaller_than_line() {
        assert_eq!(
            Geometry::new(4096, 2048),
            Err(GeometryError::SectorSmallerThanLine {
                line: 4096,
                sector: 2048
            })
        );
    }

    #[test]
    fn rejects_too_many_lines() {
        // 64 B lines in 8 KB sectors = 128 lines > 64.
        assert_eq!(
            Geometry::new(64, 8192),
            Err(GeometryError::TooManyLinesPerSector(128))
        );
        // Exactly 64 is fine (64 B in 4 KB).
        assert!(Geometry::new(64, 4096).is_ok());
    }

    #[test]
    fn sector_and_line_decomposition() {
        let g = Geometry::new(256, 2048).unwrap();
        let a = PAddr::new(3 * 2048 + 5 * 256 + 17);
        assert_eq!(g.sector_of(a).raw(), 3);
        assert_eq!(g.line_within_sector(a), 5);
        assert_eq!(g.sector_base(SectorId::new(3)).raw(), 3 * 2048);
        assert_eq!(g.line_addr(SectorId::new(3), 5).raw(), 3 * 2048 + 5 * 256);
    }

    #[test]
    fn line_of_is_global_index() {
        let g = Geometry::new(64, 2048).unwrap();
        assert_eq!(g.line_of(PAddr::new(640)), 10);
    }

    #[test]
    fn sectors_in_rounds_up() {
        let g = Geometry::paper_default();
        assert_eq!(g.sectors_in(0), 0);
        assert_eq!(g.sectors_in(1), 1);
        assert_eq!(g.sectors_in(2048), 1);
        assert_eq!(g.sectors_in(2049), 2);
    }

    #[test]
    fn equal_line_and_sector_is_one_line() {
        let g = Geometry::new(2048, 2048).unwrap();
        assert_eq!(g.lines_per_sector(), 1);
        assert_eq!(g.line_within_sector(PAddr::new(2047)), 0);
    }

    #[test]
    fn error_display_is_meaningful() {
        let e = Geometry::new(0, 2048).unwrap_err();
        assert!(e.to_string().contains("power of two"));
    }

    #[test]
    fn round_trip_line_addr() {
        let g = Geometry::new(128, 4096).unwrap();
        for line in 0..g.lines_per_sector() {
            let a = g.line_addr(SectorId::new(9), line);
            assert_eq!(g.sector_of(a).raw(), 9);
            assert_eq!(g.line_within_sector(a), line);
        }
    }
}
