//! Shared vocabulary types for the Hybrid2 (HPCA 2020) reproduction.
//!
//! Every other crate in the workspace builds on the primitives defined here:
//!
//! * [`Cycle`] — a point in time measured in CPU clock cycles, with the
//!   [`ClockRatio`] helper to convert device-clock cycle counts (HBM, DDR4)
//!   into CPU cycles without floating point.
//! * Address newtypes ([`PAddr`], [`VAddr`], [`SectorId`], [`NmLoc`],
//!   [`FmLoc`], [`PageId`]) that make it a type error to confuse processor
//!   physical addresses with device-internal sector locations — the exact
//!   confusion the paper's remap tables exist to manage.
//! * [`Geometry`] — line/sector/page size arithmetic used by the sectored
//!   DRAM cache and all migration schemes.
//! * [`MemReq`] / [`AccessKind`] / [`TrafficClass`] — the request vocabulary
//!   spoken between the CPU model, the memory schemes and the DRAM model.
//! * [`stats`] — geometric means and the min/max/geomean triples the paper
//!   reports, plus fixed-point percentage formatting.
//! * [`rng::SplitMix64`] — a tiny deterministic RNG so simulations are
//!   reproducible byte-for-byte across runs and platforms.
//!
//! # Example
//!
//! ```
//! use sim_types::{Cycle, Geometry, PAddr};
//!
//! let geom = Geometry::new(256, 2048)?;
//! let addr = PAddr::new(0x1_2345);
//! assert_eq!(geom.sector_of(addr).index(), 0x1_2345 >> 11);
//! assert_eq!(geom.lines_per_sector(), 8);
//!
//! let t = Cycle::ZERO + 10;
//! assert_eq!(t.raw(), 10);
//! # Ok::<(), sim_types::GeometryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod cycle;
mod geometry;
mod request;
pub mod rng;
pub mod stats;
mod trace;

pub use addr::{FmLoc, NmLoc, PAddr, PageId, SectorId, VAddr};
pub use cycle::{ClockRatio, Cycle};
pub use geometry::{Geometry, GeometryError};
pub use request::{AccessKind, MemReq, MemSide, TrafficClass};
pub use trace::{TraceOp, TraceSource, VecTrace};
