//! The request vocabulary spoken between CPU model, memory schemes and DRAM.

use core::fmt;

use crate::{Cycle, PAddr};

/// Whether a memory operation reads or writes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A demand load (or instruction fetch); its latency stalls the core.
    Read,
    /// A store or a cache writeback; buffered, does not stall the core.
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Write`].
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        })
    }
}

/// Which physical memory device an access targets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemSide {
    /// Near memory: the 3D-stacked HBM2.
    Nm,
    /// Far memory: the off-chip DDR4.
    Fm,
}

impl fmt::Display for MemSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemSide::Nm => "NM",
            MemSide::Fm => "FM",
        })
    }
}

/// Why a DRAM access happens; used to break traffic and energy down the way
/// Figures 16/17 of the paper do.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TrafficClass {
    /// Processor demand data (the access the core is waiting on).
    Demand,
    /// A cache-fill companion access (e.g. writing a fetched line into NM).
    Fill,
    /// Dirty data written back on eviction.
    Writeback,
    /// Sector movement performed by a migration mechanism (swap traffic).
    Migration,
    /// Remap-table / inverted-remap / free-stack / tag metadata.
    Metadata,
}

impl TrafficClass {
    /// All classes, in reporting order.
    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::Demand,
        TrafficClass::Fill,
        TrafficClass::Writeback,
        TrafficClass::Migration,
        TrafficClass::Metadata,
    ];

    /// Stable index for per-class accounting arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            TrafficClass::Demand => 0,
            TrafficClass::Fill => 1,
            TrafficClass::Writeback => 2,
            TrafficClass::Migration => 3,
            TrafficClass::Metadata => 4,
        }
    }

    /// Short label used by the text reports.
    pub const fn label(self) -> &'static str {
        match self {
            TrafficClass::Demand => "demand",
            TrafficClass::Fill => "fill",
            TrafficClass::Writeback => "writeback",
            TrafficClass::Migration => "migration",
            TrafficClass::Metadata => "metadata",
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One last-level-cache miss (or writeback) presented to a memory scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemReq {
    /// Processor physical address of the first byte of the missing line.
    pub addr: PAddr,
    /// Read (demand miss) or write (LLC writeback).
    pub kind: AccessKind,
    /// Line size in bytes as seen by the LLC (64 B in the paper's system).
    pub bytes: u32,
    /// Cycle at which the request reaches the memory controller.
    pub at: Cycle,
    /// Issuing core, for per-core statistics.
    pub core: u8,
}

impl MemReq {
    /// Convenience constructor for a demand read.
    pub fn read(addr: PAddr, bytes: u32, at: Cycle) -> Self {
        MemReq {
            addr,
            kind: AccessKind::Read,
            bytes,
            at,
            core: 0,
        }
    }

    /// Convenience constructor for a writeback.
    pub fn write(addr: PAddr, bytes: u32, at: Cycle) -> Self {
        MemReq {
            addr,
            kind: AccessKind::Write,
            bytes,
            at,
            core: 0,
        }
    }

    /// Returns the same request attributed to `core`.
    #[must_use]
    pub fn on_core(mut self, core: u8) -> Self {
        self.core = core;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_class_indices_are_dense_and_unique() {
        let mut seen = [false; TrafficClass::ALL.len()];
        for c in TrafficClass::ALL {
            assert!(!seen[c.index()], "duplicate index for {c}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<_> = TrafficClass::ALL.iter().map(|c| c.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn request_constructors_set_kind() {
        let r = MemReq::read(PAddr::new(64), 64, Cycle::ZERO);
        assert_eq!(r.kind, AccessKind::Read);
        assert!(!r.kind.is_write());
        let w = MemReq::write(PAddr::new(64), 64, Cycle::ZERO).on_core(3);
        assert!(w.kind.is_write());
        assert_eq!(w.core, 3);
    }

    #[test]
    fn displays_are_stable() {
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(MemSide::Nm.to_string(), "NM");
        assert_eq!(TrafficClass::Migration.to_string(), "migration");
    }
}
