//! Deterministic pseudo-random number generation.
//!
//! Simulations must be reproducible byte-for-byte: the same seed must give
//! the same trace, placement and statistics on every platform and in every
//! run. [`SplitMix64`] is a tiny, well-understood generator (Steele et al.,
//! OOPSLA 2014) that we use everywhere randomness is needed inside the
//! simulator itself. Workload *generation* additionally uses the `rand`
//! crate in `workloads`, seeded from this type.

/// A 64-bit SplitMix generator.
///
/// ```
/// use sim_types::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// let x = a.gen_range(10);
/// assert!(x < 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed, including 0, is fine.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// Uses the widening-multiply technique (Lemire); slightly biased for
    /// astronomically large bounds, which is irrelevant at simulator scale.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be non-zero");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns `true` with probability `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[inline]
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.gen_range(den) < num
    }

    /// Returns a uniform `f64` in `[0, 1)`. Used only for workload shaping,
    /// never for timing decisions.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent child generator; handy for giving each core or
    /// each workload phase its own stream.
    #[must_use]
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_value_from_reference_implementation() {
        // First output of SplitMix64 with seed 0 is 0xE220A8397B1DCDAF.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut g = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(g.gen_range(17) < 17);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut g = SplitMix64::new(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[g.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn gen_range_zero_bound_panics() {
        SplitMix64::new(0).gen_range(0);
    }

    #[test]
    fn chance_extremes() {
        let mut g = SplitMix64::new(3);
        for _ in 0..100 {
            assert!(g.chance(1, 1));
            assert!(!g.chance(0, 5));
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = SplitMix64::new(11);
        for _ in 0..1000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = SplitMix64::new(42);
        let mut child = parent.fork();
        // Child continues deterministically and differs from parent's stream.
        let c: Vec<u64> = (0..4).map(|_| child.next_u64()).collect();
        let p: Vec<u64> = (0..4).map(|_| parent.next_u64()).collect();
        assert_ne!(c, p);
    }

    #[test]
    fn rough_uniformity() {
        let mut g = SplitMix64::new(2024);
        let mut buckets = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            buckets[g.gen_range(10) as usize] += 1;
        }
        for &b in &buckets {
            let expected = n / 10;
            assert!(
                (b as i64 - expected as i64).unsigned_abs() < expected as u64 / 10,
                "bucket count {b} too far from {expected}"
            );
        }
    }
}
