//! Statistics helpers used by the evaluation harness.
//!
//! The paper reports *geometric means* of per-benchmark speedups, grouped by
//! MPKI class, and min/max/geomean triples (Figure 2). These helpers keep
//! that arithmetic in one tested place.

use core::fmt;

/// Geometric mean of a sequence of positive values.
///
/// Returns `None` for an empty sequence or if any value is non-positive
/// (a non-positive speedup is always a harness bug worth surfacing).
///
/// ```
/// use sim_types::stats::geomean;
/// let g = geomean([1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// assert!(geomean([]).is_none());
/// ```
pub fn geomean<I>(values: I) -> Option<f64>
where
    I: IntoIterator<Item = f64>,
{
    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    for v in values {
        if v <= 0.0 || !v.is_finite() {
            return None;
        }
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / n as f64).exp())
    }
}

/// The min / max / geometric-mean triple the paper's Figure 2 reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Geometric mean of all values.
    pub geomean: f64,
    /// Number of samples summarized.
    pub count: usize,
}

impl Summary {
    /// Summarizes a non-empty sequence of positive values.
    ///
    /// Returns `None` on an empty sequence or non-positive values.
    pub fn of<I>(values: I) -> Option<Summary>
    where
        I: IntoIterator<Item = f64>,
    {
        let vals: Vec<f64> = values.into_iter().collect();
        let gm = geomean(vals.iter().copied())?;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in &vals {
            min = min.min(v);
            max = max.max(v);
        }
        Some(Summary {
            min,
            max,
            geomean: gm,
            count: vals.len(),
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {:.2} / max {:.2} / geomean {:.3} (n={})",
            self.min, self.max, self.geomean, self.count
        )
    }
}

/// Arithmetic mean; `None` when empty.
pub fn mean<I>(values: I) -> Option<f64>
where
    I: IntoIterator<Item = f64>,
{
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Formats a fraction `num/den` as a percentage string with one decimal,
/// returning `"-"` when the denominator is zero.
///
/// ```
/// use sim_types::stats::percent;
/// assert_eq!(percent(1, 4), "25.0%");
/// assert_eq!(percent(3, 0), "-");
/// ```
pub fn percent(num: u64, den: u64) -> String {
    if den == 0 {
        "-".to_owned()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

/// Fraction `num/den` as `f64`, or 0.0 when the denominator is zero.
#[inline]
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Formats a byte count with binary-prefix units for reports
/// (`1536` → `"1.5 KiB"`).
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean([2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        let g = geomean([1.0, 1.0, 1.0]).unwrap();
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_rejects_empty_and_nonpositive() {
        assert!(geomean([]).is_none());
        assert!(geomean([1.0, 0.0]).is_none());
        assert!(geomean([1.0, -2.0]).is_none());
        assert!(geomean([f64::NAN]).is_none());
    }

    #[test]
    fn summary_triple() {
        let s = Summary::of([1.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.geomean - 2.0).abs() < 1e-12);
        assert_eq!(s.count, 3);
        assert!(s.to_string().contains("geomean"));
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of([]).is_none());
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean([1.0, 3.0]), Some(2.0));
        assert!(mean([]).is_none());
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0, 10), "0.0%");
        assert_eq!(percent(10, 10), "100.0%");
        assert_eq!(percent(1, 3), "33.3%");
        assert_eq!(percent(1, 0), "-");
    }

    #[test]
    fn ratio_zero_denominator() {
        assert_eq!(ratio(5, 0), 0.0);
        assert!((ratio(1, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(1536), "1.5 KiB");
        assert_eq!(human_bytes(64 * 1024 * 1024), "64.0 MiB");
        assert_eq!(human_bytes(16 * 1024 * 1024 * 1024), "16.0 GiB");
    }

    #[test]
    fn geomean_is_scale_invariant() {
        let base: Vec<f64> = vec![1.2, 3.4, 0.9, 2.2];
        let scaled: Vec<f64> = base.iter().map(|v| v * 10.0).collect();
        let g1 = geomean(base).unwrap();
        let g2 = geomean(scaled).unwrap();
        assert!((g2 / g1 - 10.0).abs() < 1e-9);
    }
}
