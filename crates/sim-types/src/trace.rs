//! The trace vocabulary: what a workload feeds a core.
//!
//! The paper drives its simulator with Pin-captured instruction traces; we
//! drive ours with synthesized ones (see `DESIGN.md` §3). Either way a trace
//! is a sequence of [`TraceOp`]s: "execute `gap` non-memory instructions,
//! then perform this memory access".

use crate::{AccessKind, VAddr};

/// One step of a workload trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Number of non-memory instructions retired before this access.
    pub gap: u32,
    /// Virtual address of the access.
    pub addr: VAddr,
    /// Load or store.
    pub kind: AccessKind,
}

impl TraceOp {
    /// Convenience constructor for a load.
    pub fn load(gap: u32, addr: VAddr) -> Self {
        TraceOp {
            gap,
            addr,
            kind: AccessKind::Read,
        }
    }

    /// Convenience constructor for a store.
    pub fn store(gap: u32, addr: VAddr) -> Self {
        TraceOp {
            gap,
            addr,
            kind: AccessKind::Write,
        }
    }

    /// Instructions this op accounts for (the gap plus the access itself).
    pub fn instructions(&self) -> u64 {
        u64::from(self.gap) + 1
    }
}

/// A (possibly infinite) stream of trace operations for one hardware thread.
///
/// Generators in the `workloads` crate implement this; the core model pulls
/// from it. Streams are deterministic: two sources built with the same seed
/// yield identical sequences.
pub trait TraceSource {
    /// Produces the next operation, or `None` if the trace is exhausted.
    fn next_op(&mut self) -> Option<TraceOp>;
}

/// A trivial source backed by a vector, used in tests and examples.
#[derive(Clone, Debug)]
pub struct VecTrace {
    ops: std::vec::IntoIter<TraceOp>,
}

impl VecTrace {
    /// Wraps a vector of operations.
    pub fn new(ops: Vec<TraceOp>) -> Self {
        VecTrace {
            ops: ops.into_iter(),
        }
    }
}

impl TraceSource for VecTrace {
    fn next_op(&mut self) -> Option<TraceOp> {
        self.ops.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let l = TraceOp::load(3, VAddr::new(64));
        assert_eq!(l.kind, AccessKind::Read);
        assert_eq!(l.instructions(), 4);
        let s = TraceOp::store(0, VAddr::new(0));
        assert_eq!(s.kind, AccessKind::Write);
        assert_eq!(s.instructions(), 1);
    }

    #[test]
    fn vec_trace_yields_in_order_then_none() {
        let mut t = VecTrace::new(vec![
            TraceOp::load(1, VAddr::new(0)),
            TraceOp::store(2, VAddr::new(64)),
        ]);
        assert_eq!(t.next_op().unwrap().gap, 1);
        assert_eq!(t.next_op().unwrap().gap, 2);
        assert!(t.next_op().is_none());
        assert!(t.next_op().is_none());
    }
}
