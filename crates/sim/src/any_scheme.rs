//! Devirtualized scheme dispatch for the per-op hot path.
//!
//! [`Machine::run`](crate::Machine::run) calls `scheme.access` up to twice
//! per memory operation; through a `Box<dyn MemoryScheme>` every one of
//! those calls is an indirect branch the optimiser cannot see through.
//! [`AnyScheme`] closes the set of schemes into an enum so the calls
//! dispatch on a jump table and inline into the event loop. The
//! [`MemoryScheme`] trait itself stays — external code can still implement
//! it and the enum itself implements it — but nothing on the simulator's
//! per-op path pays for virtual dispatch anymore.

use baselines::{Chameleon, Dfc, FmOnly, IdealCache, Lgm, MemPod, Tagless};
use dram::{DramSystem, MemoryScheme, SchemeStats, Served};
use hybrid2_core::Dcmc;
use sim_types::{Cycle, MemReq, PAddr};

/// Every concrete memory-management scheme of the evaluation, as one
/// statically-dispatched value.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // lives once per Machine, not per op
pub enum AnyScheme {
    /// The FM-only normalization baseline.
    FmOnly(FmOnly),
    /// MemPod (HPCA'17).
    MemPod(MemPod),
    /// Chameleon (MICRO'18).
    Chameleon(Chameleon),
    /// LGM (IPDPS'19).
    Lgm(Lgm),
    /// Tagless DRAM cache (ISCA'15).
    Tagless(Tagless),
    /// Decoupled Fused Cache (TACO'19).
    Dfc(Dfc),
    /// Zero-overhead ideal cache (§2.3 motivation).
    Ideal(IdealCache),
    /// Hybrid2's DCMC — the paper's contribution.
    Hybrid2(Dcmc),
}

macro_rules! forward {
    ($self:expr, $s:pat => $body:expr) => {
        match $self {
            AnyScheme::FmOnly($s) => $body,
            AnyScheme::MemPod($s) => $body,
            AnyScheme::Chameleon($s) => $body,
            AnyScheme::Lgm($s) => $body,
            AnyScheme::Tagless($s) => $body,
            AnyScheme::Dfc($s) => $body,
            AnyScheme::Ideal($s) => $body,
            AnyScheme::Hybrid2($s) => $body,
        }
    };
}

impl AnyScheme {
    /// Short scheme name as used in the paper's figures.
    #[inline]
    pub fn name(&self) -> &'static str {
        forward!(self, s => s.name())
    }

    /// Serves one processor request (see [`MemoryScheme::access`]).
    #[inline]
    pub fn access(&mut self, req: &MemReq, dram: &mut DramSystem) -> Served {
        forward!(self, s => s.access(req, dram))
    }

    /// Periodic housekeeping (see [`MemoryScheme::on_tick`]).
    #[inline]
    pub fn on_tick(&mut self, now: Cycle, dram: &mut DramSystem) {
        forward!(self, s => s.on_tick(now, dram))
    }

    /// End-of-run hook (see [`MemoryScheme::on_finish`]).
    #[inline]
    pub fn on_finish(&mut self) {
        forward!(self, s => s.on_finish())
    }

    /// OS hint: range holds no live data (see
    /// [`MemoryScheme::os_hint_unused`]).
    #[inline]
    pub fn os_hint_unused(&mut self, addr: PAddr, bytes: u64) {
        forward!(self, s => s.os_hint_unused(addr, bytes))
    }

    /// OS hint: range is (again) live (see [`MemoryScheme::os_hint_used`]).
    #[inline]
    pub fn os_hint_used(&mut self, addr: PAddr, bytes: u64) {
        forward!(self, s => s.os_hint_used(addr, bytes))
    }

    /// Interval between [`AnyScheme::on_tick`] calls, if any.
    #[inline]
    pub fn tick_period(&self) -> Option<u64> {
        forward!(self, s => s.tick_period())
    }

    /// Bytes of main memory visible to software under this scheme.
    #[inline]
    pub fn flat_capacity_bytes(&self) -> u64 {
        forward!(self, s => s.flat_capacity_bytes())
    }

    /// Scheme-level statistics.
    #[inline]
    pub fn stats(&self) -> &SchemeStats {
        forward!(self, s => s.stats())
    }
}

/// The enum is itself a [`MemoryScheme`], so generic code written against
/// the trait (and tests exercising trait objects) keeps working.
impl MemoryScheme for AnyScheme {
    fn name(&self) -> &'static str {
        AnyScheme::name(self)
    }

    fn access(&mut self, req: &MemReq, dram: &mut DramSystem) -> Served {
        AnyScheme::access(self, req, dram)
    }

    fn on_tick(&mut self, now: Cycle, dram: &mut DramSystem) {
        AnyScheme::on_tick(self, now, dram)
    }

    fn on_finish(&mut self) {
        AnyScheme::on_finish(self)
    }

    fn os_hint_unused(&mut self, addr: PAddr, bytes: u64) {
        AnyScheme::os_hint_unused(self, addr, bytes)
    }

    fn os_hint_used(&mut self, addr: PAddr, bytes: u64) {
        AnyScheme::os_hint_used(self, addr, bytes)
    }

    fn tick_period(&self) -> Option<u64> {
        AnyScheme::tick_period(self)
    }

    fn flat_capacity_bytes(&self) -> u64 {
        AnyScheme::flat_capacity_bytes(self)
    }

    fn stats(&self) -> &SchemeStats {
        AnyScheme::stats(self)
    }
}

macro_rules! from_impl {
    ($($ty:ty => $variant:ident),+ $(,)?) => {
        $(impl From<$ty> for AnyScheme {
            fn from(s: $ty) -> Self {
                AnyScheme::$variant(s)
            }
        })+
    };
}

from_impl! {
    FmOnly => FmOnly,
    MemPod => MemPod,
    Chameleon => Chameleon,
    Lgm => Lgm,
    Tagless => Tagless,
    Dfc => Dfc,
    IdealCache => Ideal,
    Dcmc => Hybrid2,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_and_trait_agree() {
        let mut s = AnyScheme::from(FmOnly::new(1 << 24));
        assert_eq!(s.name(), "BASELINE");
        assert_eq!(s.flat_capacity_bytes(), 1 << 24);
        assert_eq!(s.tick_period(), None);
        let dyn_scheme: &mut dyn MemoryScheme = &mut s;
        assert_eq!(dyn_scheme.name(), "BASELINE");
        assert_eq!(dyn_scheme.flat_capacity_bytes(), 1 << 24);
    }

    #[test]
    fn access_forwards() {
        use sim_types::{Cycle, MemReq, PAddr};
        let mut s = AnyScheme::from(FmOnly::new(1 << 24));
        let mut dram = DramSystem::paper_default();
        let served = s.access(&MemReq::read(PAddr::new(0x40), 64, Cycle::ZERO), &mut dram);
        assert!(served.done > Cycle::ZERO);
        assert!(!served.from_nm);
        assert_eq!(s.stats().requests, 1);
    }
}
