//! Command-line entry point for reproducing the paper's evaluation.
//!
//! ```text
//! cargo run -p sim --release --bin reproduce -- --exp fig12 [options]
//! cargo run -p sim --release --bin reproduce -- scenario <name|all> [options]
//! cargo run -p sim --release --bin reproduce -- merge <file>... [--out FILE]
//! cargo run -p sim --release --bin reproduce -- query <dir|file>... [filters]
//! cargo run -p sim --release --bin reproduce -- serve <grid> [options]
//! cargo run -p sim --release --bin reproduce -- worker <host:port> [options]
//!
//! options:
//!   --exp <id>        experiment id (fig01..fig18, table2, abl-budget,
//!                     abl-stack, evalsuite, all)          [default: evalsuite]
//!   --scale <den>     capacity divisor vs the paper's system [default: 64]
//!   --instrs <n>      instructions per core per run       [default: 300000]
//!   --smoke           run the 3-benchmark smoke set instead of all 30
//!   --seed <n>        RNG seed                            [default: 2020]
//!   --threads <n>     worker threads                      [default: #cpus]
//!   --batch <n>       ops-per-pick cap of the epoch-batched machine loop;
//!                     1 = per-op reference scheduling. Results are
//!                     byte-identical for every value (CI `cmp`s batched
//!                     vs `--batch 1` output)          [default: 4096]
//!   --machine-threads <n>  scoped worker threads stepping each machine's
//!                     cores concurrently (optimistic run-ahead windows);
//!                     1 = today's single-threaded schedule. Results are
//!                     byte-identical for every value (CI `cmp`s
//!                     `--machine-threads 2/4` vs the reference) [default: 1]
//!   --service <model> memory-service model: unbounded (closed-form
//!                     reference) or queued[:depth] (bounded per-channel/
//!                     per-bank service queues with backpressure; depth
//!                     defaults to 8). Unlike --batch/--machine-threads
//!                     this knob CHANGES results — queued latencies grow
//!                     under contention             [default: unbounded]
//!   --shard <K/N>     run only slice K of an N-way split of the grid and
//!                     emit the machine-readable shard cells instead of the
//!                     rendered reports (evalsuite / scenario grids only)
//!   --runlog <dir>    append one structured run record per simulated grid
//!                     cell to <dir> (evalsuite / scenario grids only);
//!                     query the accumulated records with `reproduce query`
//!   --out <file>      write output to <file> instead of stdout
//!   --list            list experiment ids and exit
//!
//! scenario subcommand (phased / multi-program workloads):
//!   scenario <name|all>   run one named scenario or the whole catalog
//!   --ratio <1gb|2gb|4gb> NM:FM ratio                     [default: 1gb]
//!   --spec <file>         use the catalog compiled from a declarative
//!                         `.scn` spec file instead of the built-ins
//!                         (see README "Declarative scenarios"); spec
//!                         errors report file:line:col and exit 2
//!   --generate <n>        use a generated catalog of <n> scenarios
//!                         (pure function of <n> and --seed; the first
//!                         100 outputs at seed 2020 are pinned in CI)
//!   --list                list the active scenario catalog and exit
//!   (--scale/--instrs/--seed/--threads/--batch/--machine-threads/
//!   --service/--shard/--runlog/--out
//!   apply as above)
//!
//! merge subcommand (reassemble a sharded run):
//!   merge <file>...   merge shard files back into the full grid and print
//!                     the reports a monolithic run would print — byte-
//!                     identical output, enforced in CI with `cmp`
//!
//! query subcommand (aggregate accumulated run records):
//!   query <dir|file>...   read run-record files (or whole run directories)
//!   --scheme <tok>        keep one scheme (baseline, hybrid2, mempod, …)
//!   --workload <name>     keep one workload/scenario by name
//!   --ratio <1gb|2gb|4gb> keep one NM:FM ratio
//!   --since-record <n>    keep records with global id >= n
//!   --service <model>     keep one service model (unbounded, queued:8, …);
//!                         exact match, depth included
//!   (--out applies as above)
//!
//! serve subcommand (fault-tolerant cluster dispatcher, see `sim::cluster`):
//!   serve <grid>          dispatch a grid (scenario:<name|all>, eval:smoke,
//!                         eval:full, generated:<count>:<seed>:<name|all>
//!                         or specfile:<path>:<name|all>) as leased shard
//!                         slices to workers
//!   --shards <n>          how many slices to deal              [default: 4]
//!   --workers-expected <k> informational worker count for logs [default: 1]
//!   --deadline-secs <s>   per-lease deadline; also the no-progress
//!                         threshold for in-process takeover   [default: 60]
//!   --listen <addr>       listen address              [default: 127.0.0.1:0]
//!   --addr-file <file>    write the bound address here (ephemeral ports)
//!   (--ratio/--scale/--instrs/--seed/--threads/--batch/
//!   --machine-threads/--service/--runlog/--out
//!   apply as above; output is byte-identical to the monolithic run)
//!
//! worker subcommand (one cluster worker process):
//!   worker <host:port>    lease slices from a dispatcher until `done`
//!   --threads <n>         this worker's simulation threads  [default: #cpus]
//!   --fault-stall-secs <s> fault injection: stall before the first slice
//!   --fault-duplicate     fault injection: deliver every result twice
//! ```
//!
//! Exit status: 0 on success, 1 on runtime failure (I/O, inconsistent
//! shard files, corrupt run records), 2 on a usage error (unknown
//! flag/subcommand/id, malformed filter value). Argument handling never
//! panics; sizing *values* are not semantically validated, so an extreme
//! `--scale` can still trip the simulator's own structural asserts
//! (`ScaledSystem::new`) once the run starts.

use sim::experiments::{evalsuite_reports, main_matrix_timed, run_by_id, ALL_EXPERIMENTS};
use sim::shard::{self, ShardSpec};
use sim::{cluster, runlog, scenario, EvalConfig, GridId, NmRatio, ServiceModel};

/// One-screen usage summary printed alongside every usage error.
const USAGE: &str = "\
usage: reproduce [--exp <id>] [--scale N] [--instrs N] [--seed N] [--threads N]
                 [--batch N] [--machine-threads N] [--service MODEL] [--smoke]
                 [--shard K/N] [--runlog DIR] [--out FILE] [--list]
       reproduce scenario <name|all> [--spec FILE | --generate N]
                 [--ratio 1gb|2gb|4gb] [--scale N]
                 [--instrs N] [--seed N] [--threads N] [--batch N]
                 [--machine-threads N] [--service MODEL] [--shard K/N]
                 [--runlog DIR] [--out FILE] [--list]
       reproduce merge <file>... [--out FILE]
       reproduce query <dir|file>... [--scheme TOK] [--workload NAME]
                 [--ratio 1gb|2gb|4gb] [--service MODEL] [--since-record N]
                 [--out FILE]
       reproduce serve <scenario:<name|all>|eval:smoke|eval:full
                 |generated:<count>:<seed>:<name|all>
                 |specfile:<path>:<name|all>>
                 [--shards N] [--workers-expected K] [--deadline-secs S]
                 [--listen ADDR] [--addr-file FILE] [--ratio 1gb|2gb|4gb]
                 [--scale N] [--instrs N] [--seed N] [--threads N]
                 [--batch N] [--machine-threads N] [--service MODEL]
                 [--runlog DIR] [--out FILE]
       reproduce worker <host:port> [--threads N] [--fault-stall-secs S]
                 [--fault-duplicate]

run `reproduce --list` for experiment ids, `reproduce scenario --list`
for the scenario catalog; see the module docs for flag semantics.
MODEL is unbounded (the closed-form reference, default) or
queued[:depth] (bounded per-channel/per-bank service queues).";

/// A fully parsed command line.
#[derive(Debug, PartialEq)]
enum Command {
    /// The default experiment path (`--exp …`).
    Eval {
        exp: String,
        cfg: EvalConfig,
        smoke: bool,
        shard: Option<ShardSpec>,
        runlog: Option<String>,
        out: Option<String>,
        list: bool,
    },
    /// `scenario <name|all> …`.
    Scenario {
        selector: Option<String>,
        /// `--spec FILE`: compile the catalog from a `.scn` file.
        spec: Option<String>,
        /// `--generate N`: generate the catalog from `(N, cfg.seed)`.
        generate: Option<usize>,
        ratio: NmRatio,
        cfg: EvalConfig,
        shard: Option<ShardSpec>,
        runlog: Option<String>,
        out: Option<String>,
        list: bool,
    },
    /// `merge <file>… [--out FILE]`.
    Merge {
        files: Vec<String>,
        out: Option<String>,
    },
    /// `query <dir|file>… [filters] [--out FILE]`.
    Query {
        inputs: Vec<String>,
        query: runlog::Query,
        out: Option<String>,
    },
    /// `serve <grid> …` — the cluster dispatcher.
    Serve {
        sc: cluster::ServeConfig,
        out: Option<String>,
    },
    /// `worker <host:port> …` — one cluster worker.
    Worker { wc: cluster::WorkerConfig },
}

/// The value of flag `args[i]`, parsed, or a usage error naming the flag.
fn flag_value<T: std::str::FromStr>(args: &[String], i: usize, name: &str) -> Result<T, String> {
    args.get(i + 1)
        .ok_or_else(|| format!("{name} needs a value"))?
        .parse()
        .map_err(|_| format!("{name} needs an integer value, got {:?}", args[i + 1]))
}

/// Consumes one of the sizing flags shared by every run subcommand
/// (`--scale/--instrs/--seed/--threads/--batch/--machine-threads/
/// --service`) at `args[i]`, returning the next index, or `None` if
/// `args[i]` is some other argument.
fn parse_sizing_flag(
    cfg: &mut EvalConfig,
    args: &[String],
    i: usize,
) -> Result<Option<usize>, String> {
    match args[i].as_str() {
        "--scale" => cfg.scale_den = flag_value(args, i, "--scale")?,
        "--instrs" => cfg.instrs_per_core = flag_value(args, i, "--instrs")?,
        "--seed" => cfg.seed = flag_value(args, i, "--seed")?,
        "--threads" => cfg.threads = flag_value(args, i, "--threads")?,
        "--batch" => {
            cfg.batch = flag_value(args, i, "--batch")?;
            if cfg.batch == 0 {
                return Err("--batch must be at least 1 (1 = per-op reference scheduling)".into());
            }
        }
        "--machine-threads" => {
            cfg.machine_threads = flag_value(args, i, "--machine-threads")?;
            if cfg.machine_threads == 0 {
                return Err(
                    "--machine-threads must be at least 1 (1 = single-threaded stepping)".into(),
                );
            }
        }
        "--service" => {
            let v = args.get(i + 1).ok_or("--service needs a value")?;
            cfg.service = ServiceModel::parse(v).ok_or_else(|| {
                format!("--service needs unbounded or queued[:depth] (depth >= 1), got {v:?}")
            })?;
        }
        _ => return Ok(None),
    }
    Ok(Some(i + 2))
}

/// Consumes a `--shard K/N`, `--runlog DIR` or `--out FILE` flag at
/// `args[i]`, shared by the two run subcommands.
fn parse_output_flag(
    shard: &mut Option<ShardSpec>,
    runlog_dir: &mut Option<String>,
    out: &mut Option<String>,
    args: &[String],
    i: usize,
) -> Result<Option<usize>, String> {
    match args[i].as_str() {
        "--shard" => {
            let v = args.get(i + 1).ok_or("--shard needs a value (K/N)")?;
            *shard = Some(ShardSpec::parse(v)?);
        }
        "--runlog" => {
            let v = args.get(i + 1).ok_or("--runlog needs a directory path")?;
            *runlog_dir = Some(v.clone());
        }
        "--out" => {
            let v = args.get(i + 1).ok_or("--out needs a file path")?;
            *out = Some(v.clone());
        }
        _ => return Ok(None),
    }
    Ok(Some(i + 2))
}

/// Parses `reproduce scenario …`; `args` excludes the leading token.
fn parse_scenario(args: &[String]) -> Result<Command, String> {
    let mut cfg = EvalConfig::default_eval();
    let mut ratio = NmRatio::OneGb;
    let mut selector: Option<String> = None;
    let mut spec: Option<String> = None;
    let mut generate: Option<usize> = None;
    let mut sh = None;
    let mut rl = None;
    let mut out = None;
    let mut list = false;

    let mut i = 0;
    while i < args.len() {
        if let Some(next) = parse_sizing_flag(&mut cfg, args, i)? {
            i = next;
            continue;
        }
        if let Some(next) = parse_output_flag(&mut sh, &mut rl, &mut out, args, i)? {
            i = next;
            continue;
        }
        match args[i].as_str() {
            "--ratio" => {
                let v = args.get(i + 1).ok_or("--ratio needs a value")?;
                ratio = shard::parse_ratio_token(v)?;
                i += 2;
            }
            "--spec" => {
                let v = args.get(i + 1).ok_or("--spec needs a .scn file path")?;
                spec = Some(v.clone());
                i += 2;
            }
            "--generate" => {
                let n: usize = flag_value(args, i, "--generate")?;
                if n == 0 {
                    return Err("--generate must be at least 1 scenario".to_owned());
                }
                generate = Some(n);
                i += 2;
            }
            "--list" => {
                list = true;
                i += 1;
            }
            name if !name.starts_with('-') && selector.is_none() => {
                selector = Some(name.to_owned());
                i += 1;
            }
            other => return Err(format!("unknown scenario argument {other:?}")),
        }
    }
    if spec.is_some() && generate.is_some() {
        return Err("--spec and --generate are mutually exclusive".to_owned());
    }
    if selector.is_none() && !list {
        return Err("scenario needs a selector (<name|all>) or --list".to_owned());
    }
    // Resolve the active catalog now so malformed `.scn` files and unknown
    // names are usage errors (exit 2), same as unknown experiment ids —
    // the run path never sees a bad selector. Spec-file errors carry
    // file:line:col positions from the compiler.
    let cat = load_catalog(&spec, generate, cfg.seed)?;
    if let Some(sel) = &selector {
        if scenario::select(&cat, sel).is_none() {
            let hint = cat
                .nearest(sel)
                .map(|near| format!(" (did you mean {near:?}?)"))
                .unwrap_or_default();
            return Err(format!(
                "unknown scenario {sel:?}{hint}; run `reproduce scenario --list` for the catalog"
            ));
        }
    }
    Ok(Command::Scenario {
        selector,
        spec,
        generate,
        ratio,
        cfg,
        shard: sh,
        runlog: rl,
        out,
        list,
    })
}

/// The catalog a `scenario` invocation runs against: compiled from a
/// `--spec` file, generated from `(--generate N, --seed)`, or a copy of
/// the built-ins.
fn load_catalog(
    spec: &Option<String>,
    generate: Option<usize>,
    seed: u64,
) -> Result<workloads::Catalog, String> {
    match (spec, generate) {
        (Some(path), _) => {
            workloads::Catalog::from_scn_file(std::path::Path::new(path)).map_err(|e| e.to_string())
        }
        (None, Some(n)) => Ok(workloads::Catalog::generate(n, seed)),
        (None, None) => Ok(workloads::scenarios::builtin().clone()),
    }
}

/// The value of flag `args[i]` as a positive, finite duration in seconds
/// (fractions allowed), or a usage error naming the flag.
fn flag_secs(args: &[String], i: usize, name: &str) -> Result<std::time::Duration, String> {
    let v = args
        .get(i + 1)
        .ok_or_else(|| format!("{name} needs a value in seconds"))?;
    let secs: f64 = v
        .parse()
        .map_err(|_| format!("{name} needs a number of seconds, got {v:?}"))?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err(format!("{name} must be a positive number of seconds"));
    }
    Ok(std::time::Duration::from_secs_f64(secs))
}

/// Parses `reproduce serve …`; `args` excludes the leading token.
fn parse_serve(args: &[String]) -> Result<Command, String> {
    let mut cfg = EvalConfig::default_eval();
    let mut ratio = NmRatio::OneGb;
    let mut grid: Option<GridId> = None;
    let mut shards = 4usize;
    let mut workers_expected = 1usize;
    let mut deadline = std::time::Duration::from_secs(60);
    let mut listen = "127.0.0.1:0".to_owned();
    let mut addr_file = None;
    let mut rl = None;
    let mut out = None;
    let mut unused_shard = None;

    let mut i = 0;
    while i < args.len() {
        if let Some(next) = parse_sizing_flag(&mut cfg, args, i)? {
            i = next;
            continue;
        }
        match args[i].as_str() {
            "--shards" => {
                shards = flag_value(args, i, "--shards")?;
                if shards == 0 {
                    return Err("--shards must be at least 1".to_owned());
                }
                i += 2;
            }
            "--workers-expected" => {
                workers_expected = flag_value(args, i, "--workers-expected")?;
                i += 2;
            }
            "--deadline-secs" => {
                deadline = flag_secs(args, i, "--deadline-secs")?;
                i += 2;
            }
            "--listen" => {
                listen = args
                    .get(i + 1)
                    .ok_or("--listen needs an address (host:port)")?
                    .clone();
                i += 2;
            }
            "--addr-file" => {
                addr_file = Some(
                    args.get(i + 1)
                        .ok_or("--addr-file needs a file path")?
                        .clone(),
                );
                i += 2;
            }
            "--ratio" => {
                let v = args.get(i + 1).ok_or("--ratio needs a value")?;
                ratio = shard::parse_ratio_token(v)?;
                i += 2;
            }
            _ => {
                if let Some(next) =
                    parse_output_flag(&mut unused_shard, &mut rl, &mut out, args, i)?
                {
                    if unused_shard.is_some() {
                        return Err("--shard does not apply to serve (use --shards N)".to_owned());
                    }
                    i = next;
                    continue;
                }
                match args[i].as_str() {
                    tok if !tok.starts_with('-') && grid.is_none() => {
                        grid = Some(cluster::parse_grid_token(tok)?);
                        i += 1;
                    }
                    other => return Err(format!("unknown serve argument {other:?}")),
                }
            }
        }
    }
    let grid = grid.ok_or(
        "serve needs a grid (scenario:<name|all>, eval:smoke, eval:full, \
         generated:<count>:<seed>:<name|all> or specfile:<path>:<name|all>)",
    )?;
    // Bad grids — unknown scenario names, unreadable or malformed spec
    // files — are usage errors (exit 2), same as the scenario
    // subcommand's own selector validation.
    shard::validate_grid(&grid)?;
    Ok(Command::Serve {
        sc: cluster::ServeConfig {
            grid,
            ratio,
            cfg,
            shards,
            workers_expected,
            deadline,
            listen,
            addr_file,
            runlog: rl,
        },
        out,
    })
}

/// Parses `reproduce worker …`; `args` excludes the leading token.
fn parse_worker(args: &[String]) -> Result<Command, String> {
    let mut addr: Option<String> = None;
    let mut threads = EvalConfig::default_eval().threads;
    let mut fault_stall = None;
    let mut fault_duplicate = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                threads = flag_value(args, i, "--threads")?;
                i += 2;
            }
            "--fault-stall-secs" => {
                fault_stall = Some(flag_secs(args, i, "--fault-stall-secs")?);
                i += 2;
            }
            "--fault-duplicate" => {
                fault_duplicate = true;
                i += 1;
            }
            tok if !tok.starts_with('-') && addr.is_none() => {
                addr = Some(tok.to_owned());
                i += 1;
            }
            other => return Err(format!("unknown worker argument {other:?}")),
        }
    }
    let addr = addr.ok_or("worker needs a dispatcher address (host:port)")?;
    if !addr.contains(':') {
        return Err(format!("worker address {addr:?} is not host:port"));
    }
    Ok(Command::Worker {
        wc: cluster::WorkerConfig {
            addr,
            threads,
            fault_stall,
            fault_duplicate,
        },
    })
}

/// Parses `reproduce query …`; `args` excludes the leading token.
fn parse_query(args: &[String]) -> Result<Command, String> {
    let mut inputs = Vec::new();
    let mut query = runlog::Query::default();
    let mut out = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scheme" => {
                let v = args.get(i + 1).ok_or("--scheme needs a scheme token")?;
                query.scheme = Some(shard::parse_kind_token(v)?);
                i += 2;
            }
            "--workload" => {
                let v = args.get(i + 1).ok_or("--workload needs a name")?;
                query.workload = Some(v.clone());
                i += 2;
            }
            "--ratio" => {
                let v = args.get(i + 1).ok_or("--ratio needs a value")?;
                query.ratio = Some(shard::parse_ratio_token(v)?);
                i += 2;
            }
            "--since-record" => {
                query.since_record = Some(flag_value(args, i, "--since-record")?);
                i += 2;
            }
            "--service" => {
                let v = args.get(i + 1).ok_or("--service needs a value")?;
                query.service = Some(ServiceModel::parse(v).ok_or_else(|| {
                    format!("--service needs unbounded or queued[:depth], got {v:?}")
                })?);
                i += 2;
            }
            "--out" => {
                let v = args.get(i + 1).ok_or("--out needs a file path")?;
                out = Some(v.clone());
                i += 2;
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown query argument {flag:?}"));
            }
            input => {
                inputs.push(input.to_owned());
                i += 1;
            }
        }
    }
    if inputs.is_empty() {
        return Err("query needs at least one run directory or record file".to_owned());
    }
    Ok(Command::Query { inputs, query, out })
}

/// Parses `reproduce merge …`; `args` excludes the leading token.
fn parse_merge(args: &[String]) -> Result<Command, String> {
    let mut files = Vec::new();
    let mut out = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                let v = args.get(i + 1).ok_or("--out needs a file path")?;
                out = Some(v.clone());
                i += 2;
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown merge argument {flag:?}"));
            }
            file => {
                files.push(file.to_owned());
                i += 1;
            }
        }
    }
    if files.is_empty() {
        return Err("merge needs at least one shard file".to_owned());
    }
    Ok(Command::Merge { files, out })
}

/// Parses the default experiment path (no subcommand).
fn parse_eval(args: &[String]) -> Result<Command, String> {
    let mut exp = "evalsuite".to_owned();
    let mut cfg = EvalConfig::default_eval();
    let mut smoke = false;
    let mut sh = None;
    let mut rl = None;
    let mut out = None;
    let mut list = false;

    let mut i = 0;
    while i < args.len() {
        if let Some(next) = parse_sizing_flag(&mut cfg, args, i)? {
            i = next;
            continue;
        }
        if let Some(next) = parse_output_flag(&mut sh, &mut rl, &mut out, args, i)? {
            i = next;
            continue;
        }
        match args[i].as_str() {
            "--exp" => {
                exp = args.get(i + 1).ok_or("--exp needs a value")?.clone();
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--list" => {
                list = true;
                i += 1;
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?} (subcommands: scenario, merge)"
                ))
            }
        }
    }
    if !list && !ALL_EXPERIMENTS.contains(&exp.as_str()) {
        return Err(format!(
            "unknown experiment {exp:?}; run `reproduce --list` for ids"
        ));
    }
    if sh.is_some() && exp != "evalsuite" {
        return Err(format!(
            "--shard only applies to the evalsuite matrix (or the scenario grid), not {exp:?}"
        ));
    }
    if rl.is_some() && exp != "evalsuite" {
        return Err(format!(
            "--runlog only applies to the evalsuite matrix (or the scenario grid), not {exp:?}"
        ));
    }
    Ok(Command::Eval {
        exp,
        cfg,
        smoke,
        shard: sh,
        runlog: rl,
        out,
        list,
    })
}

/// Parses a complete command line (without the program name).
fn parse_command(args: &[String]) -> Result<Command, String> {
    match args.first().map(String::as_str) {
        Some("scenario") => parse_scenario(&args[1..]),
        Some("merge") => parse_merge(&args[1..]),
        Some("query") => parse_query(&args[1..]),
        Some("serve") => parse_serve(&args[1..]),
        Some("worker") => parse_worker(&args[1..]),
        _ => parse_eval(args),
    }
}

/// Latched once stdout's reader has gone away (EPIPE). Subsequent stdout
/// writes become silent no-ops instead of repeating the error — and,
/// crucially, instead of exiting on the spot: a subcommand that still has
/// durable side effects queued after its stdout emit (`--runlog` record
/// appends follow the report emit in every run subcommand) must complete
/// them before the process exits 0. The old `process::exit(0)` here
/// skipped those appends whenever `reproduce … --runlog d | head` closed
/// the pipe early, silently losing the run's records.
static STDOUT_PIPE_CLOSED: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Writes `text` to `--out` (or stdout), mapping I/O failures to an error
/// string — except a broken pipe on stdout, which is a reader's choice,
/// not a failure (`reproduce query … | head` must never panic like a bare
/// `print!` would): it latches [`STDOUT_PIPE_CLOSED`] and reports success,
/// so the command finishes its remaining work and exits 0 normally.
fn emit(out: &Option<String>, text: &str) -> Result<(), String> {
    use std::io::Write;
    use std::sync::atomic::Ordering;
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("cannot write {path:?}: {e}")),
        None => {
            if STDOUT_PIPE_CLOSED.load(Ordering::Relaxed) {
                return Ok(());
            }
            let mut stdout = std::io::stdout().lock();
            let r = stdout
                .write_all(text.as_bytes())
                .and_then(|()| stdout.flush());
            match r {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {
                    STDOUT_PIPE_CLOSED.store(true, Ordering::Relaxed);
                    Ok(())
                }
                Err(e) => Err(format!("cannot write to stdout: {e}")),
            }
        }
    }
}

/// The run-record `source` tag of a grid.
fn grid_source(grid: &GridId) -> String {
    match grid {
        GridId::Scenario { selector } => format!("scenario:{selector}"),
        GridId::Eval { smoke } => {
            format!("evalsuite:{}", if *smoke { "smoke" } else { "full" })
        }
        GridId::SpecFile { path, selector } => format!("specfile:{path}:{selector}"),
        GridId::Generated {
            count,
            seed,
            selector,
        } => format!("generated:{count}:{seed}:{selector}"),
    }
}

/// Appends one run record per cell to `--runlog DIR`, if requested.
fn record_cells_to(
    runlog_dir: &Option<String>,
    source: &str,
    ratio: NmRatio,
    cfg: &EvalConfig,
    cells: &[(shard::CellKey, sim::RunResult, f64)],
) -> Result<(), String> {
    let Some(dir) = runlog_dir else {
        return Ok(());
    };
    let mut log = runlog::RunLog::create(std::path::Path::new(dir), source)?;
    runlog::record_cells(&mut log, source, ratio, cfg, cells)?;
    eprintln!(
        "recorded {} run record(s) to {}",
        cells.len(),
        log.path().display()
    );
    Ok(())
}

/// Appends one run record per matrix slot to `--runlog DIR`, if requested.
fn record_matrix_to(
    runlog_dir: &Option<String>,
    source: &str,
    m: &sim::Matrix,
    secs: &[f64],
    cfg: &EvalConfig,
) -> Result<(), String> {
    let Some(dir) = runlog_dir else {
        return Ok(());
    };
    let mut log = runlog::RunLog::create(std::path::Path::new(dir), source)?;
    runlog::record_matrix(&mut log, source, m, secs, cfg)?;
    eprintln!(
        "recorded {} run record(s) to {}",
        secs.len(),
        log.path().display()
    );
    Ok(())
}

/// Runs one shard of `grid` and emits the interchange file.
fn run_shard_cmd(
    grid: &GridId,
    ratio: NmRatio,
    cfg: &EvalConfig,
    sh: ShardSpec,
    runlog_dir: &Option<String>,
    out: &Option<String>,
) -> Result<(), String> {
    eprintln!(
        "running shard {sh} at 1/{} scale, {} instrs/core, NM {}, {} threads",
        cfg.scale_den,
        cfg.instrs_per_core,
        shard::ratio_token(ratio),
        cfg.threads
    );
    let started = std::time::Instant::now();
    let run = shard::run_shard(grid, ratio, cfg, sh)?;
    emit(out, &run.encoded)?;
    record_cells_to(runlog_dir, &grid_source(grid), ratio, cfg, &run.cells)?;
    eprintln!("done in {:.1}s", started.elapsed().as_secs_f64());
    Ok(())
}

/// Runs `reproduce query <inputs…>`: reads run-record files (or whole run
/// directories), filters and renders the aggregate reports.
fn run_query_cmd(
    inputs: &[String],
    query: &runlog::Query,
    out: &Option<String>,
) -> Result<(), String> {
    let mut files: Vec<(String, String)> = Vec::new();
    for input in inputs {
        let meta = std::fs::metadata(input).map_err(|e| format!("cannot read {input:?}: {e}"))?;
        if meta.is_dir() {
            files.extend(runlog::dir_inputs(std::path::Path::new(input))?);
        } else {
            let contents = std::fs::read_to_string(input)
                .map_err(|e| format!("cannot read {input:?}: {e}"))?;
            files.push((input.clone(), contents));
        }
    }
    let store = runlog::read_store(&files)?;
    let mut text = String::new();
    for report in runlog::run_query(&store, query) {
        text.push_str(&report.render());
        text.push('\n');
    }
    emit(out, &text)
}

/// Runs `reproduce merge <files…>`.
fn run_merge(files: &[String], out: &Option<String>) -> Result<(), String> {
    let mut inputs = Vec::with_capacity(files.len());
    for path in files {
        let contents =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        inputs.push((path.clone(), contents));
    }
    let merged = shard::merge(&inputs)?;
    eprintln!(
        "merged {} shard file(s): {:?} at 1/{} scale, {} instrs/core, NM {}",
        inputs.len(),
        merged.grid,
        merged.scale_den,
        merged.instrs_per_core,
        shard::ratio_token(merged.ratio)
    );
    let mut text = String::new();
    for report in shard::reports(&merged.grid, &merged.matrix) {
        text.push_str(&report.render());
        text.push('\n');
    }
    emit(out, &text)
}

/// Runs `reproduce scenario …` after parsing.
#[allow(clippy::too_many_arguments)]
fn run_scenario(
    selector: &Option<String>,
    spec: &Option<String>,
    generate: Option<usize>,
    ratio: NmRatio,
    cfg: &EvalConfig,
    sh: Option<ShardSpec>,
    runlog_dir: &Option<String>,
    out: &Option<String>,
    list: bool,
) -> Result<(), String> {
    let cat = load_catalog(spec, generate, cfg.seed)?;
    if list {
        return emit(
            out,
            &format!("{}\n", scenario::catalog_report(&cat).render()),
        );
    }
    let selector = selector.as_deref().expect("parse guarantees a selector");
    let scens = scenario::select(&cat, selector).expect("parse validated the selector");
    let grid = match (spec, generate) {
        (Some(path), _) => GridId::SpecFile {
            path: path.clone(),
            selector: selector.to_owned(),
        },
        (None, Some(count)) => GridId::Generated {
            count,
            seed: cfg.seed,
            selector: selector.to_owned(),
        },
        (None, None) => GridId::Scenario {
            selector: selector.to_owned(),
        },
    };
    if let Some(sh) = sh {
        return run_shard_cmd(&grid, ratio, cfg, sh, runlog_dir, out);
    }
    eprintln!(
        "running {} scenario(s) at 1/{} scale, {} instrs/core, NM {}, {} threads",
        scens.len(),
        cfg.scale_den,
        cfg.instrs_per_core,
        ratio.label(),
        cfg.threads
    );
    let started = std::time::Instant::now();
    let (m, secs) = scenario::run_grid_timed(&scens, ratio, cfg);
    let mut text = String::new();
    for report in scenario::grid_reports(&m) {
        text.push_str(&report.render());
        text.push('\n');
    }
    emit(out, &text)?;
    record_matrix_to(runlog_dir, &grid_source(&grid), &m, &secs, cfg)?;
    eprintln!("done in {:.1}s", started.elapsed().as_secs_f64());
    Ok(())
}

/// Runs the default experiment path after parsing.
fn run_eval(
    exp: &str,
    cfg: &EvalConfig,
    smoke: bool,
    sh: Option<ShardSpec>,
    runlog_dir: &Option<String>,
    out: &Option<String>,
    list: bool,
) -> Result<(), String> {
    if list {
        let mut text = String::new();
        for id in ALL_EXPERIMENTS {
            text.push_str(id);
            text.push('\n');
        }
        return emit(out, &text);
    }
    let grid = GridId::Eval { smoke };
    if let Some(sh) = sh {
        return run_shard_cmd(&grid, NmRatio::OneGb, cfg, sh, runlog_dir, out);
    }
    eprintln!(
        "running {exp} at 1/{} scale, {} instrs/core, {} workloads, {} threads",
        cfg.scale_den,
        cfg.instrs_per_core,
        if smoke { 3 } else { 30 },
        cfg.threads
    );
    let started = std::time::Instant::now();
    let mut text = String::new();
    // `--runlog` implies the timed evalsuite matrix path (parse rejects it
    // for any other experiment); the reports are identical to run_by_id's
    // — both call evalsuite_reports on the same deterministic matrix.
    if runlog_dir.is_some() {
        let (m, secs) = main_matrix_timed(NmRatio::OneGb, cfg, smoke);
        for report in evalsuite_reports(&m) {
            text.push_str(&report.render());
            text.push('\n');
        }
        emit(out, &text)?;
        record_matrix_to(runlog_dir, &grid_source(&grid), &m, &secs, cfg)?;
    } else {
        for report in run_by_id(exp, cfg, smoke) {
            text.push_str(&report.render());
            text.push('\n');
        }
        emit(out, &text)?;
    }
    eprintln!("done in {:.1}s", started.elapsed().as_secs_f64());
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_command(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let outcome = match &cmd {
        Command::Eval {
            exp,
            cfg,
            smoke,
            shard,
            runlog,
            out,
            list,
        } => run_eval(exp, cfg, *smoke, *shard, runlog, out, *list),
        Command::Scenario {
            selector,
            spec,
            generate,
            ratio,
            cfg,
            shard,
            runlog,
            out,
            list,
        } => run_scenario(
            selector, spec, *generate, *ratio, cfg, *shard, runlog, out, *list,
        ),
        Command::Merge { files, out } => run_merge(files, out),
        Command::Query { inputs, query, out } => run_query_cmd(inputs, query, out),
        Command::Serve { sc, out } => cluster::serve(sc).and_then(|text| emit(out, &text)),
        Command::Worker { wc } => cluster::worker(wc),
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        parse_command(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn default_is_evalsuite() {
        match parse(&[]).unwrap() {
            Command::Eval { exp, shard, .. } => {
                assert_eq!(exp, "evalsuite");
                assert!(shard.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_flags_are_usage_errors_not_panics() {
        for args in [
            &["--bogus"][..],
            &["--exp", "fig12", "--frobnicate"][..],
            &["scenario", "all", "--bogus"][..],
            &["merge", "a.tsv", "--bogus"][..],
            &["query", "rundir", "--bogus"][..],
        ] {
            let e = parse(args).unwrap_err();
            assert!(e.contains("unknown"), "{args:?} -> {e}");
        }
    }

    #[test]
    fn missing_and_malformed_flag_values_are_errors() {
        assert!(parse(&["--scale"]).unwrap_err().contains("--scale"));
        assert!(parse(&["--instrs", "many"])
            .unwrap_err()
            .contains("--instrs"));
        assert!(parse(&["scenario", "all", "--ratio"])
            .unwrap_err()
            .contains("--ratio"));
        assert!(parse(&["scenario", "all", "--ratio", "8gb"])
            .unwrap_err()
            .contains("8gb"));
        assert!(parse(&["--shard"]).unwrap_err().contains("--shard"));
        assert!(parse(&["--out"]).unwrap_err().contains("--out"));
    }

    #[test]
    fn unknown_experiment_is_an_error() {
        assert!(parse(&["--exp", "fig99"]).unwrap_err().contains("fig99"));
    }

    #[test]
    fn shard_specs_validate() {
        for bad in ["0/4", "5/4", "x/y", "3", "1/0"] {
            assert!(parse(&["--shard", bad]).is_err(), "{bad:?}");
        }
        match parse(&["--exp", "evalsuite", "--shard", "2/4"]).unwrap() {
            Command::Eval { shard, .. } => {
                assert_eq!(shard, Some(ShardSpec { index: 2, count: 4 }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shard_rejected_for_non_matrix_experiments() {
        let e = parse(&["--exp", "fig12", "--shard", "1/2"]).unwrap_err();
        assert!(e.contains("evalsuite"), "{e}");
    }

    #[test]
    fn runlog_parses_on_grid_paths_and_rejects_elsewhere() {
        match parse(&["--exp", "evalsuite", "--runlog", "rundir"]).unwrap() {
            Command::Eval { runlog, .. } => assert_eq!(runlog.as_deref(), Some("rundir")),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&["scenario", "all", "--runlog", "rundir", "--shard", "1/2"]).unwrap() {
            Command::Scenario { runlog, shard, .. } => {
                assert_eq!(runlog.as_deref(), Some("rundir"));
                assert!(shard.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Usage errors (exit 2): non-grid experiment, missing value.
        let e = parse(&["--exp", "fig12", "--runlog", "rundir"]).unwrap_err();
        assert!(e.contains("evalsuite"), "{e}");
        assert!(parse(&["--runlog"]).unwrap_err().contains("--runlog"));
    }

    #[test]
    fn query_flags_parse_and_bad_values_are_usage_errors() {
        match parse(&[
            "query",
            "rundir",
            "extra.runlog.tsv",
            "--scheme",
            "hybrid2",
            "--workload",
            "stream-chase",
            "--ratio",
            "2gb",
            "--since-record",
            "56",
            "--service",
            "queued:8",
            "--out",
            "q.txt",
        ])
        .unwrap()
        {
            Command::Query { inputs, query, out } => {
                assert_eq!(inputs, vec!["rundir", "extra.runlog.tsv"]);
                assert_eq!(query.scheme, Some(sim::SchemeKind::Hybrid2));
                assert_eq!(query.workload.as_deref(), Some("stream-chase"));
                assert_eq!(query.ratio, Some(NmRatio::TwoGb));
                assert_eq!(query.since_record, Some(56));
                assert_eq!(query.service, Some(ServiceModel::Queued { depth: 8 }));
                assert_eq!(out.as_deref(), Some("q.txt"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Absent service filter means "any model".
        match parse(&["query", "rundir"]).unwrap() {
            Command::Query { query, .. } => assert_eq!(query.service, None),
            other => panic!("unexpected {other:?}"),
        }
        // Bad values are usage errors (exit 2), never panics.
        assert!(parse(&["query"]).unwrap_err().contains("at least one"));
        let e = parse(&["query", "rundir", "--scheme", "quantum-cache"]).unwrap_err();
        assert!(e.contains("quantum-cache"), "{e}");
        let e = parse(&["query", "rundir", "--service", "bogus"]).unwrap_err();
        assert!(e.contains("--service"), "{e}");
        let e = parse(&["query", "rundir", "--ratio", "8gb"]).unwrap_err();
        assert!(e.contains("8gb"), "{e}");
        let e = parse(&["query", "rundir", "--since-record", "many"]).unwrap_err();
        assert!(e.contains("--since-record"), "{e}");
        assert!(parse(&["query", "rundir", "--scheme"])
            .unwrap_err()
            .contains("--scheme"));
    }

    #[test]
    fn emit_surfaces_io_errors_with_the_path() {
        let out = Some("/nonexistent-dir-for-sure/x.txt".to_owned());
        let e = emit(&out, "text").unwrap_err();
        assert!(e.contains("/nonexistent-dir-for-sure/x.txt"), "{e}");
    }

    #[test]
    fn scenario_needs_selector_unless_listing() {
        assert!(parse(&["scenario"]).is_err());
        assert!(parse(&["scenario", "--list"]).is_ok());
        // Unknown names are usage errors (exit 2), like unknown --exp ids.
        let e = parse(&["scenario", "not-a-scenario"]).unwrap_err();
        assert!(e.contains("unknown scenario"), "{e}");
        match parse(&[
            "scenario", "quad-mix", "--ratio", "4gb", "--shard", "1/2", "--out", "x.tsv",
        ])
        .unwrap()
        {
            Command::Scenario {
                selector,
                ratio,
                shard,
                out,
                ..
            } => {
                assert_eq!(selector.as_deref(), Some("quad-mix"));
                assert_eq!(ratio, NmRatio::FourGb);
                assert_eq!(shard, Some(ShardSpec { index: 1, count: 2 }));
                assert_eq!(out.as_deref(), Some("x.tsv"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn merge_needs_files() {
        assert!(parse(&["merge"]).unwrap_err().contains("at least one"));
        match parse(&["merge", "a.tsv", "b.tsv", "--out", "m.txt"]).unwrap() {
            Command::Merge { files, out } => {
                assert_eq!(files, vec!["a.tsv", "b.tsv"]);
                assert_eq!(out.as_deref(), Some("m.txt"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_flag_parses_and_validates() {
        match parse(&["--batch", "64"]).unwrap() {
            Command::Eval { cfg, .. } => assert_eq!(cfg.batch, 64),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&["scenario", "all", "--batch", "1"]).unwrap() {
            Command::Scenario { cfg, .. } => assert_eq!(cfg.batch, 1),
            other => panic!("unexpected {other:?}"),
        }
        // Default when the flag is absent.
        match parse(&[]).unwrap() {
            Command::Eval { cfg, .. } => assert_eq!(cfg.batch, sim::DEFAULT_BATCH),
            other => panic!("unexpected {other:?}"),
        }
        // Bad values are usage errors (exit 2), never panics.
        assert!(parse(&["--batch"]).unwrap_err().contains("--batch"));
        assert!(parse(&["--batch", "many"]).unwrap_err().contains("--batch"));
        assert!(parse(&["--batch", "0"]).unwrap_err().contains("at least 1"));
        assert!(parse(&["scenario", "all", "--batch", "0"])
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn machine_threads_flag_parses_and_validates() {
        match parse(&["--machine-threads", "4"]).unwrap() {
            Command::Eval { cfg, .. } => assert_eq!(cfg.machine_threads, 4),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&["scenario", "all", "--machine-threads", "2"]).unwrap() {
            Command::Scenario { cfg, .. } => assert_eq!(cfg.machine_threads, 2),
            other => panic!("unexpected {other:?}"),
        }
        // Default when the flag is absent: single-threaded stepping.
        match parse(&[]).unwrap() {
            Command::Eval { cfg, .. } => assert_eq!(cfg.machine_threads, 1),
            other => panic!("unexpected {other:?}"),
        }
        // Bad values are usage errors (exit 2), never panics.
        assert!(parse(&["--machine-threads"])
            .unwrap_err()
            .contains("--machine-threads"));
        assert!(parse(&["--machine-threads", "many"])
            .unwrap_err()
            .contains("--machine-threads"));
        assert!(parse(&["--machine-threads", "0"])
            .unwrap_err()
            .contains("at least 1"));
        assert!(parse(&["scenario", "all", "--machine-threads", "0"])
            .unwrap_err()
            .contains("at least 1"));
    }

    #[test]
    fn service_flag_parses_and_validates() {
        match parse(&["--service", "queued:4"]).unwrap() {
            Command::Eval { cfg, .. } => {
                assert_eq!(cfg.service, ServiceModel::Queued { depth: 4 })
            }
            other => panic!("unexpected {other:?}"),
        }
        // Bare `queued` takes the default depth.
        match parse(&["scenario", "all", "--service", "queued"]).unwrap() {
            Command::Scenario { cfg, .. } => {
                assert_eq!(
                    cfg.service,
                    ServiceModel::Queued {
                        depth: sim::DEFAULT_QUEUE_DEPTH
                    }
                )
            }
            other => panic!("unexpected {other:?}"),
        }
        // Default when the flag is absent: the closed-form reference.
        match parse(&[]).unwrap() {
            Command::Eval { cfg, .. } => assert_eq!(cfg.service, ServiceModel::Unbounded),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&["--service", "unbounded"]).unwrap() {
            Command::Eval { cfg, .. } => assert_eq!(cfg.service, ServiceModel::Unbounded),
            other => panic!("unexpected {other:?}"),
        }
        // Bad values are usage errors (exit 2), never panics.
        assert!(parse(&["--service"]).unwrap_err().contains("--service"));
        assert!(parse(&["--service", "warp"])
            .unwrap_err()
            .contains("--service"));
        assert!(parse(&["--service", "queued:0"])
            .unwrap_err()
            .contains("depth"));
        assert!(parse(&["scenario", "all", "--service", "queued:"])
            .unwrap_err()
            .contains("--service"));
    }

    #[test]
    fn serve_flags_parse_and_validate() {
        match parse(&[
            "serve",
            "scenario:stream-chase",
            "--shards",
            "4",
            "--workers-expected",
            "3",
            "--deadline-secs",
            "0.5",
            "--listen",
            "127.0.0.1:0",
            "--addr-file",
            "addr.txt",
            "--ratio",
            "2gb",
            "--scale",
            "1024",
            "--runlog",
            "rundir",
            "--out",
            "cluster.txt",
        ])
        .unwrap()
        {
            Command::Serve { sc, out } => {
                assert_eq!(
                    sc.grid,
                    GridId::Scenario {
                        selector: "stream-chase".to_owned()
                    }
                );
                assert_eq!(sc.shards, 4);
                assert_eq!(sc.workers_expected, 3);
                assert_eq!(sc.deadline, std::time::Duration::from_millis(500));
                assert_eq!(sc.listen, "127.0.0.1:0");
                assert_eq!(sc.addr_file.as_deref(), Some("addr.txt"));
                assert_eq!(sc.ratio, NmRatio::TwoGb);
                assert_eq!(sc.cfg.scale_den, 1024);
                assert_eq!(sc.runlog.as_deref(), Some("rundir"));
                assert_eq!(out.as_deref(), Some("cluster.txt"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Usage errors (exit 2), never panics.
        assert!(parse(&["serve"]).unwrap_err().contains("grid"));
        let e = parse(&["serve", "grid:x"]).unwrap_err();
        assert!(e.contains("grid:x"), "{e}");
        let e = parse(&["serve", "scenario:not-a-scenario"]).unwrap_err();
        assert!(e.contains("unknown scenario"), "{e}");
        let e = parse(&["serve", "eval:smoke", "--shards", "0"]).unwrap_err();
        assert!(e.contains("--shards"), "{e}");
        let e = parse(&["serve", "eval:smoke", "--deadline-secs", "-1"]).unwrap_err();
        assert!(e.contains("--deadline-secs"), "{e}");
        let e = parse(&["serve", "eval:smoke", "--deadline-secs", "soon"]).unwrap_err();
        assert!(e.contains("soon"), "{e}");
        let e = parse(&["serve", "eval:smoke", "--shard", "1/2"]).unwrap_err();
        assert!(e.contains("--shards N"), "{e}");
        assert!(parse(&["serve", "eval:smoke", "--bogus"])
            .unwrap_err()
            .contains("unknown serve argument"));
    }

    #[test]
    fn worker_flags_parse_and_validate() {
        match parse(&[
            "worker",
            "127.0.0.1:9999",
            "--threads",
            "2",
            "--fault-stall-secs",
            "1.5",
            "--fault-duplicate",
        ])
        .unwrap()
        {
            Command::Worker { wc } => {
                assert_eq!(wc.addr, "127.0.0.1:9999");
                assert_eq!(wc.threads, 2);
                assert_eq!(wc.fault_stall, Some(std::time::Duration::from_millis(1500)));
                assert!(wc.fault_duplicate);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&["worker", "localhost:7"]).unwrap() {
            Command::Worker { wc } => {
                assert!(wc.fault_stall.is_none());
                assert!(!wc.fault_duplicate);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Usage errors (exit 2), never panics.
        assert!(parse(&["worker"]).unwrap_err().contains("address"));
        let e = parse(&["worker", "no-port"]).unwrap_err();
        assert!(e.contains("host:port"), "{e}");
        assert!(parse(&["worker", "h:1", "--bogus"])
            .unwrap_err()
            .contains("unknown worker argument"));
        assert!(parse(&["worker", "h:1", "--fault-stall-secs"])
            .unwrap_err()
            .contains("--fault-stall-secs"));
    }

    #[test]
    fn sizing_flags_apply_everywhere() {
        match parse(&[
            "--scale",
            "512",
            "--instrs",
            "1000",
            "--seed",
            "9",
            "--threads",
            "2",
        ])
        .unwrap()
        {
            Command::Eval { cfg, .. } => {
                assert_eq!(cfg.scale_den, 512);
                assert_eq!(cfg.instrs_per_core, 1000);
                assert_eq!(cfg.seed, 9);
                assert_eq!(cfg.threads, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
