//! Command-line entry point for reproducing the paper's evaluation.
//!
//! ```text
//! cargo run -p sim --release --bin reproduce -- --exp fig12 [options]
//!
//! options:
//!   --exp <id>        experiment id (fig01..fig18, table2, abl-budget,
//!                     abl-stack, evalsuite, all)          [default: evalsuite]
//!   --scale <den>     capacity divisor vs the paper's system [default: 64]
//!   --instrs <n>      instructions per core per run       [default: 300000]
//!   --smoke           run the 3-benchmark smoke set instead of all 30
//!   --seed <n>        RNG seed                            [default: 2020]
//!   --threads <n>     worker threads                      [default: #cpus]
//!   --list            list experiment ids and exit
//! ```

use sim::experiments::{run_by_id, ALL_EXPERIMENTS};
use sim::EvalConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp = "evalsuite".to_owned();
    let mut cfg = EvalConfig::default_eval();
    let mut smoke = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                exp = args.get(i + 1).expect("--exp needs a value").clone();
                i += 2;
            }
            "--scale" => {
                cfg.scale_den = args
                    .get(i + 1)
                    .expect("--scale needs a value")
                    .parse()
                    .expect("--scale must be an integer");
                i += 2;
            }
            "--instrs" => {
                cfg.instrs_per_core = args
                    .get(i + 1)
                    .expect("--instrs needs a value")
                    .parse()
                    .expect("--instrs must be an integer");
                i += 2;
            }
            "--seed" => {
                cfg.seed = args
                    .get(i + 1)
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
                i += 2;
            }
            "--threads" => {
                cfg.threads = args
                    .get(i + 1)
                    .expect("--threads needs a value")
                    .parse()
                    .expect("--threads must be an integer");
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--list" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}; see the module docs for usage");
                std::process::exit(2);
            }
        }
    }

    if !ALL_EXPERIMENTS.contains(&exp.as_str()) {
        eprintln!("unknown experiment {exp:?}; known ids:");
        for id in ALL_EXPERIMENTS {
            eprintln!("  {id}");
        }
        std::process::exit(2);
    }

    eprintln!(
        "running {exp} at 1/{} scale, {} instrs/core, {} workloads, {} threads",
        cfg.scale_den,
        cfg.instrs_per_core,
        if smoke { 3 } else { 30 },
        cfg.threads
    );
    let started = std::time::Instant::now();
    for report in run_by_id(&exp, &cfg, smoke) {
        println!("{}", report.render());
    }
    eprintln!("done in {:.1}s", started.elapsed().as_secs_f64());
}
