//! Command-line entry point for reproducing the paper's evaluation.
//!
//! ```text
//! cargo run -p sim --release --bin reproduce -- --exp fig12 [options]
//! cargo run -p sim --release --bin reproduce -- scenario <name|all> [options]
//!
//! options:
//!   --exp <id>        experiment id (fig01..fig18, table2, abl-budget,
//!                     abl-stack, evalsuite, all)          [default: evalsuite]
//!   --scale <den>     capacity divisor vs the paper's system [default: 64]
//!   --instrs <n>      instructions per core per run       [default: 300000]
//!   --smoke           run the 3-benchmark smoke set instead of all 30
//!   --seed <n>        RNG seed                            [default: 2020]
//!   --threads <n>     worker threads                      [default: #cpus]
//!   --list            list experiment ids and exit
//!
//! scenario subcommand (phased / multi-program workloads):
//!   scenario <name|all>   run one named scenario or the whole catalog
//!   --ratio <1gb|2gb|4gb> NM:FM ratio                     [default: 1gb]
//!   --list                list the scenario catalog and exit
//!   (--scale/--instrs/--seed/--threads apply as above)
//! ```

use sim::experiments::{run_by_id, ALL_EXPERIMENTS};
use sim::{scenario, EvalConfig, NmRatio};

/// The integer value of flag `args[i]`, or a panic in the flag's name.
fn flag_value<T: std::str::FromStr>(args: &[String], i: usize, name: &str) -> T {
    args.get(i + 1)
        .unwrap_or_else(|| panic!("{name} needs a value"))
        .parse()
        .unwrap_or_else(|_| panic!("{name} must be an integer"))
}

/// Consumes one of the sizing flags shared by every subcommand
/// (`--scale/--instrs/--seed/--threads`) at `args[i]`, returning the next
/// index, or `None` if `args[i]` is some other argument.
fn parse_sizing_flag(cfg: &mut EvalConfig, args: &[String], i: usize) -> Option<usize> {
    match args[i].as_str() {
        "--scale" => cfg.scale_den = flag_value(args, i, "--scale"),
        "--instrs" => cfg.instrs_per_core = flag_value(args, i, "--instrs"),
        "--seed" => cfg.seed = flag_value(args, i, "--seed"),
        "--threads" => cfg.threads = flag_value(args, i, "--threads"),
        _ => return None,
    }
    Some(i + 2)
}

/// Parses and runs `reproduce scenario …`; `args` excludes the leading
/// `"scenario"` token.
fn scenario_main(args: &[String]) -> ! {
    let mut cfg = EvalConfig::default_eval();
    let mut ratio = NmRatio::OneGb;
    let mut selector: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        if let Some(next) = parse_sizing_flag(&mut cfg, args, i) {
            i = next;
            continue;
        }
        match args[i].as_str() {
            "--ratio" => {
                let v = args.get(i + 1).expect("--ratio needs a value");
                ratio = match v.as_str() {
                    "1gb" => NmRatio::OneGb,
                    "2gb" => NmRatio::TwoGb,
                    "4gb" => NmRatio::FourGb,
                    other => {
                        eprintln!("unknown ratio {other:?}; use 1gb, 2gb or 4gb");
                        std::process::exit(2);
                    }
                };
                i += 2;
            }
            "--list" => {
                println!("{}", scenario::catalog_report().render());
                std::process::exit(0);
            }
            name if !name.starts_with('-') && selector.is_none() => {
                selector = Some(name.to_owned());
                i += 1;
            }
            other => {
                eprintln!("unknown scenario argument {other:?}; see the module docs for usage");
                std::process::exit(2);
            }
        }
    }

    let selector = selector.unwrap_or_else(|| {
        eprintln!("usage: reproduce scenario <name|all> [--ratio 1gb|2gb|4gb] …");
        std::process::exit(2);
    });
    let Some(scens) = scenario::select(&selector) else {
        eprintln!("unknown scenario {selector:?}; catalog:");
        eprintln!("{}", scenario::catalog_report().render());
        std::process::exit(2);
    };
    eprintln!(
        "running {} scenario(s) at 1/{} scale, {} instrs/core, NM {}, {} threads",
        scens.len(),
        cfg.scale_den,
        cfg.instrs_per_core,
        ratio.label(),
        cfg.threads
    );
    let started = std::time::Instant::now();
    let m = scenario::run_grid(&scens, ratio, &cfg);
    for report in scenario::grid_reports(&m) {
        println!("{}", report.render());
    }
    eprintln!("done in {:.1}s", started.elapsed().as_secs_f64());
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "scenario") {
        scenario_main(&args[1..]);
    }
    let mut exp = "evalsuite".to_owned();
    let mut cfg = EvalConfig::default_eval();
    let mut smoke = false;

    let mut i = 0;
    while i < args.len() {
        if let Some(next) = parse_sizing_flag(&mut cfg, &args, i) {
            i = next;
            continue;
        }
        match args[i].as_str() {
            "--exp" => {
                exp = args.get(i + 1).expect("--exp needs a value").clone();
                i += 2;
            }
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--list" => {
                for id in ALL_EXPERIMENTS {
                    println!("{id}");
                }
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}; see the module docs for usage");
                std::process::exit(2);
            }
        }
    }

    if !ALL_EXPERIMENTS.contains(&exp.as_str()) {
        eprintln!("unknown experiment {exp:?}; known ids:");
        for id in ALL_EXPERIMENTS {
            eprintln!("  {id}");
        }
        std::process::exit(2);
    }

    eprintln!(
        "running {exp} at 1/{} scale, {} instrs/core, {} workloads, {} threads",
        cfg.scale_den,
        cfg.instrs_per_core,
        if smoke { 3 } else { 30 },
        cfg.threads
    );
    let started = std::time::Instant::now();
    for report in run_by_id(&exp, &cfg, smoke) {
        println!("{}", report.render());
    }
    eprintln!("done in {:.1}s", started.elapsed().as_secs_f64());
}
