//! Fault-tolerant cluster dispatcher on the shard layer.
//!
//! PR 4 made cross-process grid runs byte-identical (`--shard K/N` slices
//! plus a strict `reproduce merge`); this module adds the missing control
//! plane: a dispatcher (`reproduce serve`) that deals those slices to
//! worker processes (`reproduce worker`) over plain std TCP and keeps the
//! run *correct* when workers die, hang or straggle.
//!
//! The design is lease-based, in the cyclotron ticketed-service spirit —
//! every unit of in-flight work is explicit, bounded and observable:
//!
//! * Each shard slice is dealt as a **lease** with an absolute per-lease
//!   deadline and heartbeat tracking. A lease whose deadline passes, whose
//!   heartbeats stop, or whose connection drops returns its slice to the
//!   pending pool and it is re-dealt.
//! * Re-dealing is safe because completion is **first-result-wins**: the
//!   first accepted payload marks a slice done, later results for the same
//!   slice (a straggler finishing after a re-deal, a duplicate send) are
//!   acknowledged as duplicates and discarded, never double-counted.
//! * Every accepted payload is validated against the lease's job
//!   ([`crate::shard`]'s `check_slice`) before it can enter the run, and
//!   the assembled matrix still passes through [`shard::merge`] — the same
//!   byte-identity gate a file-based merge uses. Cluster output is
//!   `cmp`-identical to a monolithic run by construction.
//! * The dispatcher **never hangs**: if a slice stays pending for a full
//!   deadline with no accepted result anywhere in between (all workers
//!   dead, none ever connected, or the last one stalled), the dispatcher
//!   runs the slice in-process and the run completes degraded rather than
//!   waiting forever.
//! * Workers reconnect with capped exponential backoff ([`Backoff`]) and
//!   give up after a fixed attempt budget — a vanished dispatcher leaves
//!   no zombie workers.
//!
//! The wire protocol (`hybrid2-cluster-v1`) is line-oriented and versioned
//! like every other format in this repo. Floats never ride the protocol in
//! decimal: result payloads are verbatim shard interchange files, which
//! carry IEEE-754 bit patterns. Client → server: `hello`, `next`,
//! `heartbeat`, `result` (a header line followed by a byte-counted
//! payload). Server → client: `welcome`, `lease`, `wait`, `done`,
//! `ok`/`error` acknowledgements.
//!
//! Fault injection for tests is built into the worker (`--fault-stall-secs`
//! stalls before the first leased slice; `--fault-duplicate` sends every
//! result twice), so the integration suite can deterministically exercise
//! re-deal, deadline expiry and duplicate-discard paths.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use crate::machine::RunResult;
use crate::runlog;
use crate::runner::{EvalConfig, SchemeKind};
use crate::scale::NmRatio;
use crate::shard::{self, GridId, ShardSpec};

/// Protocol version token exchanged in `hello`/`welcome`; bumped on any
/// wire-format change.
pub const PROTO_VERSION: &str = "hybrid2-cluster-v2";

/// Socket read timeout used as the poll granularity of every blocking
/// read — each tick re-checks the shutdown flag, so no thread can sit in
/// a read forever.
const READ_POLL: Duration = Duration::from_millis(500);

/// Monitor/accept loop tick.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// How long a worker sleeps after a `wait` reply before asking again.
const WAIT_RETRY: Duration = Duration::from_millis(300);

/// How often a worker heartbeats while simulating a lease.
const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(1000);

/// Granularity of the heartbeat thread's sleep (so it notices the lease
/// finishing promptly).
const HEARTBEAT_STEP: Duration = Duration::from_millis(100);

/// A lease whose last heartbeat is older than this is considered dead
/// even before its absolute deadline (covers workers that vanish without
/// closing the connection).
const HEARTBEAT_TIMEOUT: Duration = Duration::from_secs(5);

/// Overall cap on reading one result payload.
const PAYLOAD_TIMEOUT: Duration = Duration::from_secs(30);

/// Overall cap on a worker waiting for any single server reply.
const WORKER_REPLY_LIMIT: Duration = Duration::from_secs(30);

/// Largest result payload the dispatcher accepts (a shard file is a few
/// KB; this cap only bounds a corrupt or malicious length header).
const MAX_PAYLOAD_BYTES: u64 = 64 << 20;

/// Stable CLI/wire token of a grid: `scenario:<selector>`, `eval:smoke`,
/// `eval:full`, `generated:<count>:<seed>:<selector>` or
/// `specfile:<path>:<selector>` (the selector follows the *last* colon,
/// so paths containing colons survive the round trip).
pub fn grid_token(grid: &GridId) -> String {
    match grid {
        GridId::Scenario { selector } => format!("scenario:{selector}"),
        GridId::Eval { smoke: true } => "eval:smoke".to_owned(),
        GridId::Eval { smoke: false } => "eval:full".to_owned(),
        GridId::SpecFile { path, selector } => format!("specfile:{path}:{selector}"),
        GridId::Generated {
            count,
            seed,
            selector,
        } => format!("generated:{count}:{seed}:{selector}"),
    }
}

/// True for a selector token safe to embed in grid tokens and shard
/// headers (non-empty, no whitespace or separators).
fn clean_token(sel: &str) -> bool {
    !sel.is_empty() && !sel.contains(['\t', '\n', '\r', ' '])
}

/// Parses a [`grid_token`] back to the grid id. (Whether a scenario
/// selector actually exists is checked when the grid is resolved.)
pub fn parse_grid_token(s: &str) -> Result<GridId, String> {
    let err = || {
        format!(
            "unknown grid {s:?}; use scenario:<name|all>, eval:smoke, eval:full, \
             generated:<count>:<seed>:<name|all> or specfile:<path>:<name|all>"
        )
    };
    match s.split_once(':') {
        Some(("scenario", sel)) if clean_token(sel) => Ok(GridId::Scenario {
            selector: sel.to_owned(),
        }),
        Some(("eval", "smoke")) => Ok(GridId::Eval { smoke: true }),
        Some(("eval", "full")) => Ok(GridId::Eval { smoke: false }),
        Some(("generated", rest)) => {
            let mut it = rest.split(':');
            let (Some(count), Some(seed), Some(sel), None) =
                (it.next(), it.next(), it.next(), it.next())
            else {
                return Err(err());
            };
            if !clean_token(sel) {
                return Err(err());
            }
            Ok(GridId::Generated {
                count: count.parse().map_err(|_| err())?,
                seed: seed.parse().map_err(|_| err())?,
                selector: sel.to_owned(),
            })
        }
        Some(("specfile", rest)) => {
            // The selector follows the last colon; the path keeps any
            // colons of its own.
            let (path, sel) = rest.rsplit_once(':').ok_or_else(err)?;
            if path.is_empty() || path.contains(['\t', '\n', '\r']) || !clean_token(sel) {
                return Err(err());
            }
            Ok(GridId::SpecFile {
                path: path.to_owned(),
                selector: sel.to_owned(),
            })
        }
        _ => Err(err()),
    }
}

/// Capped exponential backoff with a fixed attempt budget, used by the
/// worker's reconnect loop. `next()` yields the delay before each retry
/// and `None` once the budget is exhausted — the worker then exits with
/// an error instead of retrying forever.
#[derive(Debug, Default)]
pub struct Backoff {
    attempt: u32,
}

impl Backoff {
    /// Delay before the first retry.
    pub const BASE: Duration = Duration::from_millis(50);
    /// Ceiling on any single delay.
    pub const CAP: Duration = Duration::from_secs(2);
    /// Retry budget; exhausting it is terminal.
    pub const MAX_ATTEMPTS: u32 = 8;

    /// A fresh backoff at attempt zero.
    pub fn new() -> Backoff {
        Backoff::default()
    }

    /// The delay to sleep before the next retry, or `None` once the
    /// attempt budget is spent. Doubles from [`Backoff::BASE`], capped at
    /// [`Backoff::CAP`].
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= Self::MAX_ATTEMPTS {
            return None;
        }
        let delay = Self::BASE
            .saturating_mul(1u32 << self.attempt.min(16))
            .min(Self::CAP);
        self.attempt += 1;
        Some(delay)
    }

    /// Resets the budget after a successful (re)connection.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// One dispatched job, as carried on a `lease` line: which slice of which
/// grid, plus every result-affecting sizing knob. Thread count stays
/// worker-local (it never affects results).
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct LeaseJob {
    /// Unique lease id (per dispatcher run).
    pub lease: u64,
    /// The slice to simulate.
    pub spec: ShardSpec,
    /// The grid being sliced.
    pub grid: GridId,
    /// NM:FM ratio.
    pub ratio: NmRatio,
    /// Capacity divisor.
    pub scale_den: u64,
    /// Instructions per core.
    pub instrs_per_core: u64,
    /// RNG seed.
    pub seed: u64,
    /// Epoch-batch knob (byte-identical for every value; carried so the
    /// whole cluster schedules the same way).
    pub batch: u64,
    /// Memory-service model (result-affecting: a queued slice is a
    /// different experiment from an unbounded one).
    pub service: dram::ServiceModel,
}

/// Encodes a `lease` line.
pub(crate) fn encode_lease(
    lease: u64,
    spec: ShardSpec,
    grid: &GridId,
    ratio: NmRatio,
    cfg: &EvalConfig,
) -> String {
    format!(
        "lease\t{lease}\t{spec}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        grid_token(grid),
        shard::ratio_token(ratio),
        cfg.scale_den,
        cfg.instrs_per_core,
        cfg.seed,
        cfg.batch,
        cfg.service.token()
    )
}

/// Parses a `lease` line back to the job.
pub(crate) fn parse_lease(line: &str) -> Result<LeaseJob, String> {
    let cols: Vec<&str> = line.split('\t').collect();
    let [tag, lease, spec, grid, ratio, scale, instrs, seed, batch, service] = cols.as_slice()
    else {
        return Err(format!("malformed lease line {line:?}"));
    };
    if *tag != "lease" {
        return Err(format!("malformed lease line {line:?}"));
    }
    Ok(LeaseJob {
        lease: shard::parse_u64(lease, "lease id")?,
        spec: ShardSpec::parse(spec)?,
        grid: parse_grid_token(grid)?,
        ratio: shard::parse_ratio_token(ratio)?,
        scale_den: shard::parse_u64(scale, "scale")?,
        instrs_per_core: shard::parse_u64(instrs, "instrs")?,
        seed: shard::parse_u64(seed, "seed")?,
        batch: shard::parse_u64(batch, "batch")?,
        service: dram::ServiceModel::parse(service)
            .ok_or_else(|| format!("unknown service model {service:?}"))?,
    })
}

/// State of one shard slice inside the dispatcher.
#[derive(Debug)]
enum Slice {
    /// Waiting to be dealt (or re-dealt). `since` is when it last entered
    /// this state.
    Pending { since: Instant },
    /// Dealt to some worker under `lease`.
    Leased {
        lease: u64,
        dealt_at: Instant,
        last_heartbeat: Instant,
    },
    /// Completed; the payload is a verbatim shard interchange file.
    Done { payload: String, wall_secs: f64 },
}

/// What a lease's dealt-at/slice lookup needs to remember. Entries are
/// never removed — a straggler's result for a long-expired lease must
/// still resolve to its slice so first-result-wins can adjudicate it.
#[derive(Clone, Copy, Debug)]
struct LeaseInfo {
    slice0: usize,
    dealt_at: Instant,
}

/// Verdict of [`Dispatch::complete`].
#[derive(Debug, PartialEq)]
pub(crate) enum Completion {
    /// First result for the slice: accepted. `wall_secs` is this lease's
    /// deal → result wall clock.
    Accepted { slice0: usize, wall_secs: f64 },
    /// The slice was already done: discarded, not double-counted.
    Duplicate { slice0: usize },
    /// No such lease was ever dealt (protocol violation).
    UnknownLease,
}

/// One slice's lease telemetry: the accepted lease's wall-clock seconds
/// and how many times the slice had to be re-dealt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct SliceTelemetry {
    pub wall_secs: f64,
    pub redeals: u64,
}

/// An expired lease, as reported by [`Dispatch::expire`].
#[derive(Debug)]
pub(crate) struct Expired {
    pub lease: u64,
    pub slice0: usize,
    /// `"deadline"` or `"heartbeat"`.
    pub reason: &'static str,
}

/// The dispatcher's pure state machine: slices, leases, deadlines and
/// dedup. Every method takes `now` explicitly so unit tests can drive
/// time without sleeping; all I/O lives in [`serve`].
pub(crate) struct Dispatch {
    deadline: Duration,
    hb_timeout: Duration,
    count: usize,
    slices: Vec<Slice>,
    /// Per-slice re-deal count (deals beyond the first).
    redeals: Vec<u64>,
    ever_dealt: Vec<bool>,
    leases: BTreeMap<u64, LeaseInfo>,
    next_lease: u64,
    /// Last time any result was accepted (creation time before that);
    /// the in-process takeover clock, so a run that *is* progressing is
    /// never preempted.
    last_progress: Instant,
}

impl Dispatch {
    /// A dispatcher for `count` slices, all pending as of `now`.
    pub(crate) fn new(
        count: usize,
        deadline: Duration,
        hb_timeout: Duration,
        now: Instant,
    ) -> Dispatch {
        Dispatch {
            deadline,
            hb_timeout,
            count,
            slices: (0..count).map(|_| Slice::Pending { since: now }).collect(),
            redeals: vec![0; count],
            ever_dealt: vec![false; count],
            leases: BTreeMap::new(),
            next_lease: 1,
            last_progress: now,
        }
    }

    fn spec_of(&self, slice0: usize) -> ShardSpec {
        ShardSpec {
            index: slice0 + 1,
            count: self.count,
        }
    }

    /// Deals the first pending slice, if any.
    pub(crate) fn deal(&mut self, now: Instant) -> Option<(u64, ShardSpec)> {
        let slice0 = self
            .slices
            .iter()
            .position(|s| matches!(s, Slice::Pending { .. }))?;
        Some(self.deal_slice(slice0, now))
    }

    /// Deals a specific pending slice (the in-process takeover path).
    pub(crate) fn deal_slice(&mut self, slice0: usize, now: Instant) -> (u64, ShardSpec) {
        debug_assert!(matches!(self.slices[slice0], Slice::Pending { .. }));
        let lease = self.next_lease;
        self.next_lease += 1;
        self.slices[slice0] = Slice::Leased {
            lease,
            dealt_at: now,
            last_heartbeat: now,
        };
        self.leases.insert(
            lease,
            LeaseInfo {
                slice0,
                dealt_at: now,
            },
        );
        if self.ever_dealt[slice0] {
            self.redeals[slice0] += 1;
        } else {
            self.ever_dealt[slice0] = true;
        }
        (lease, self.spec_of(slice0))
    }

    /// Records a heartbeat for `lease`, if it still holds its slice.
    pub(crate) fn heartbeat(&mut self, lease: u64, now: Instant) {
        let Some(&LeaseInfo { slice0, .. }) = self.leases.get(&lease) else {
            return;
        };
        if let Slice::Leased {
            lease: holder,
            ref mut last_heartbeat,
            ..
        } = self.slices[slice0]
        {
            if holder == lease {
                *last_heartbeat = now;
            }
        }
    }

    /// The slice a lease covers, if the lease was ever dealt.
    pub(crate) fn lease_spec(&self, lease: u64) -> Option<ShardSpec> {
        self.leases
            .get(&lease)
            .map(|info| self.spec_of(info.slice0))
    }

    /// Adjudicates a result for `lease`: the first result a slice sees is
    /// accepted (even from a lease that has since expired — first
    /// completed wins), anything after that is a duplicate.
    pub(crate) fn complete(&mut self, lease: u64, payload: String, now: Instant) -> Completion {
        let Some(&LeaseInfo { slice0, dealt_at }) = self.leases.get(&lease) else {
            return Completion::UnknownLease;
        };
        if matches!(self.slices[slice0], Slice::Done { .. }) {
            return Completion::Duplicate { slice0 };
        }
        let wall_secs = now.saturating_duration_since(dealt_at).as_secs_f64();
        self.slices[slice0] = Slice::Done { payload, wall_secs };
        self.last_progress = now;
        Completion::Accepted { slice0, wall_secs }
    }

    /// Returns a lease's slice to the pending pool, but only if that
    /// lease still holds it — a handler cleaning up after a lost
    /// connection must not free a slice that was already re-dealt.
    pub(crate) fn release_lease(&mut self, lease: u64, now: Instant) -> Option<usize> {
        let &LeaseInfo { slice0, .. } = self.leases.get(&lease)?;
        match self.slices[slice0] {
            Slice::Leased { lease: holder, .. } if holder == lease => {
                self.slices[slice0] = Slice::Pending { since: now };
                Some(slice0)
            }
            _ => None,
        }
    }

    /// Expires leases past their absolute deadline or whose heartbeats
    /// stopped, returning the slices to the pending pool.
    pub(crate) fn expire(&mut self, now: Instant) -> Vec<Expired> {
        let mut out = Vec::new();
        for (slice0, s) in self.slices.iter_mut().enumerate() {
            if let Slice::Leased {
                lease,
                dealt_at,
                last_heartbeat,
            } = *s
            {
                let reason = if now.saturating_duration_since(dealt_at) >= self.deadline {
                    Some("deadline")
                } else if now.saturating_duration_since(last_heartbeat) >= self.hb_timeout {
                    Some("heartbeat")
                } else {
                    None
                };
                if let Some(reason) = reason {
                    *s = Slice::Pending { since: now };
                    out.push(Expired {
                        lease,
                        slice0,
                        reason,
                    });
                }
            }
        }
        out
    }

    /// The first slice that has sat pending for a full deadline while the
    /// run made no progress at all — the in-process takeover trigger.
    /// Covers zero-workers-ever, all-workers-lost, and a stalled worker
    /// holding the last slice (its lease expires first, then this fires).
    pub(crate) fn overdue_pending(&self, now: Instant) -> Option<usize> {
        self.slices.iter().position(|s| match s {
            Slice::Pending { since } => {
                let anchor = (*since).max(self.last_progress);
                now.saturating_duration_since(anchor) >= self.deadline
            }
            _ => false,
        })
    }

    /// True once every slice is done.
    pub(crate) fn all_done(&self) -> bool {
        self.slices.iter().all(|s| matches!(s, Slice::Done { .. }))
    }

    /// Total re-deals across all slices.
    pub(crate) fn total_redeals(&self) -> u64 {
        self.redeals.iter().sum()
    }

    /// Per-slice lease telemetry, in slice order.
    pub(crate) fn telemetry(&self) -> Vec<SliceTelemetry> {
        self.slices
            .iter()
            .zip(&self.redeals)
            .map(|(s, &redeals)| SliceTelemetry {
                wall_secs: match s {
                    Slice::Done { wall_secs, .. } => *wall_secs,
                    _ => 0.0,
                },
                redeals,
            })
            .collect()
    }

    /// Consumes the dispatcher into `(name, payload)` pairs for
    /// [`shard::merge`], in slice order.
    pub(crate) fn into_payloads(self) -> Result<Vec<(String, String)>, String> {
        let count = self.count;
        self.slices
            .into_iter()
            .enumerate()
            .map(|(slice0, s)| match s {
                Slice::Done { payload, .. } => Ok((format!("slice-{}", slice0 + 1), payload)),
                _ => Err(format!("slice {}/{count} never completed", slice0 + 1)),
            })
            .collect()
    }
}

/// Everything `reproduce serve` needs: the job, the split, the failure
/// policy and where to listen.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeConfig {
    /// The grid to run.
    pub grid: GridId,
    /// NM:FM ratio.
    pub ratio: NmRatio,
    /// Sizing knobs (threads applies to the dispatcher's own in-process
    /// takeover runs; workers choose their own).
    pub cfg: EvalConfig,
    /// How many slices to split the grid into.
    pub shards: usize,
    /// How many workers the operator expects to join. Informational: the
    /// dispatcher logs progress against it but never waits for it — the
    /// deadline/takeover machinery alone guarantees completion.
    pub workers_expected: usize,
    /// Per-lease deadline; also the no-progress threshold after which a
    /// pending slice is run in-process.
    pub deadline: Duration,
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub listen: String,
    /// If set, the bound address is written here (tests and scripts poll
    /// it to learn the ephemeral port).
    pub addr_file: Option<String>,
    /// If set, append one run record per grid cell (source
    /// `cluster:<grid>`) with per-lease wall-clock and re-deal telemetry.
    pub runlog: Option<String>,
}

/// Shared state between the accept loop, connection handlers and the
/// monitor thread.
struct ServeCtx {
    grid: GridId,
    ratio: NmRatio,
    cfg: EvalConfig,
    shards: usize,
    workers_expected: usize,
    state: Mutex<Dispatch>,
    done: AtomicBool,
    connected: AtomicUsize,
    duplicates: AtomicU64,
    fatal: Mutex<Option<String>>,
}

/// Poison-tolerant lock: a panicking handler thread must not wedge the
/// dispatcher (the state machine is valid between any two method calls).
fn lock(m: &Mutex<Dispatch>) -> MutexGuard<'_, Dispatch> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `true` for the error kinds a socket read timeout surfaces as.
fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Outcome of one polled line read.
enum Read1 {
    /// A complete line (without the newline).
    Line(String),
    /// The peer closed the connection.
    Closed,
    /// The stop flag was raised (or the overall limit passed) first.
    Stop,
}

/// Reads one `\n`-terminated line, polling the socket at [`READ_POLL`]
/// granularity so `stop` (and `limit`, if given) are honored even while
/// the peer is silent. Partial lines survive across polls — `read_line`
/// appends whatever arrived before a timeout.
fn read_line_poll(
    reader: &mut impl BufRead,
    stop: &AtomicBool,
    limit: Option<Duration>,
) -> Result<Read1, String> {
    let start = Instant::now();
    let mut line = String::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(Read1::Stop);
        }
        if limit.is_some_and(|l| start.elapsed() >= l) {
            return Ok(Read1::Stop);
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(Read1::Closed),
            Ok(_) => {
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                return Ok(Read1::Line(line));
            }
            Err(e) if would_block(&e) => continue,
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
}

/// Reads exactly `buf.len()` payload bytes under the same polling
/// discipline, with an overall [`PAYLOAD_TIMEOUT`].
fn read_exact_poll(
    reader: &mut impl Read,
    buf: &mut [u8],
    stop: &AtomicBool,
) -> Result<(), String> {
    let start = Instant::now();
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::Relaxed) {
            return Err("shutting down mid-payload".to_owned());
        }
        if start.elapsed() >= PAYLOAD_TIMEOUT {
            return Err(format!(
                "timed out reading payload ({filled} of {} bytes)",
                buf.len()
            ));
        }
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err("connection closed mid-payload".to_owned()),
            Ok(n) => filled += n,
            Err(e) if would_block(&e) => continue,
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
    Ok(())
}

/// Writes one line (adding the newline) in a single `write_all`.
fn write_line(w: &mut impl Write, line: &str) -> Result<(), String> {
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    w.write_all(&buf).map_err(|e| format!("cannot send: {e}"))
}

/// Runs the dispatcher: listens, deals leases, re-deals on expiry/loss,
/// takes over stalled slices in-process, merge-gates the assembled matrix
/// and returns the rendered reports (byte-identical to a monolithic run).
pub fn serve(sc: &ServeConfig) -> Result<String, String> {
    if sc.shards == 0 {
        return Err("--shards must be at least 1".to_owned());
    }
    if sc.deadline.is_zero() {
        return Err("--deadline-secs must be positive".to_owned());
    }
    // Validate the grid before binding anything.
    shard::resolve(&sc.grid)?;

    let listener = TcpListener::bind(&sc.listen)
        .map_err(|e| format!("cannot listen on {}: {e}", sc.listen))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set the listener nonblocking: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot read the bound address: {e}"))?;
    if let Some(f) = &sc.addr_file {
        std::fs::write(f, format!("{addr}\n")).map_err(|e| format!("cannot write {f:?}: {e}"))?;
    }
    eprintln!(
        "dispatcher: serving {} as {} slice(s) on {addr}; expecting {} worker(s), lease deadline \
         {:.1}s",
        grid_token(&sc.grid),
        sc.shards,
        sc.workers_expected,
        sc.deadline.as_secs_f64()
    );

    let ctx = ServeCtx {
        grid: sc.grid.clone(),
        ratio: sc.ratio,
        cfg: sc.cfg,
        shards: sc.shards,
        workers_expected: sc.workers_expected,
        state: Mutex::new(Dispatch::new(
            sc.shards,
            sc.deadline,
            HEARTBEAT_TIMEOUT,
            Instant::now(),
        )),
        done: AtomicBool::new(false),
        connected: AtomicUsize::new(0),
        duplicates: AtomicU64::new(0),
        fatal: Mutex::new(None),
    };

    thread::scope(|s| {
        s.spawn(|| monitor(&ctx));
        loop {
            if ctx.done.load(Ordering::Relaxed) {
                break;
            }
            match listener.accept() {
                Ok((stream, peer)) => {
                    let peer = peer.to_string();
                    s.spawn(|| handle_conn(&ctx, stream, peer));
                }
                Err(e) if would_block(&e) => thread::sleep(POLL_INTERVAL),
                Err(e) => {
                    eprintln!("dispatcher: accept failed: {e}");
                    thread::sleep(POLL_INTERVAL);
                }
            }
        }
    });

    let ServeCtx {
        state,
        fatal,
        duplicates,
        ..
    } = ctx;
    if let Some(e) = fatal.into_inner().unwrap_or_else(PoisonError::into_inner) {
        return Err(e);
    }
    let dispatch = state.into_inner().unwrap_or_else(PoisonError::into_inner);
    let total_redeals = dispatch.total_redeals();
    let telemetry = dispatch.telemetry();
    let payloads = dispatch.into_payloads()?;
    // The same strict gate a file-based `reproduce merge` applies: headers
    // must agree, the partition must be exact, floats ride as bit
    // patterns. Byte-identity to a monolithic run follows.
    let merged = shard::merge(&payloads)?;
    let mut text = String::new();
    for report in shard::reports(&sc.grid, &merged.matrix) {
        text.push_str(&report.render());
        text.push('\n');
    }
    eprintln!(
        "dispatcher: cluster run complete: {} slice(s), {} re-deal(s), {} duplicate(s) discarded",
        sc.shards,
        total_redeals,
        duplicates.load(Ordering::Relaxed)
    );
    if let Some(dir) = &sc.runlog {
        record_cluster(dir, sc, &merged, &telemetry)?;
    }
    Ok(text)
}

/// The monitor thread: expires dead/stalled leases and, when a slice has
/// sat pending for a full deadline with no progress anywhere, runs it
/// in-process — the no-hang guarantee.
fn monitor(ctx: &ServeCtx) {
    loop {
        let now = Instant::now();
        let takeover = {
            let mut d = lock(&ctx.state);
            if d.all_done() {
                ctx.done.store(true, Ordering::Relaxed);
                return;
            }
            for x in d.expire(now) {
                eprintln!(
                    "dispatcher: lease {} (slice {}/{}) expired ({}); re-dealing",
                    x.lease,
                    x.slice0 + 1,
                    ctx.shards,
                    x.reason
                );
            }
            d.overdue_pending(now)
                .map(|slice0| d.deal_slice(slice0, now))
        };
        match takeover {
            Some((lease, spec)) => {
                eprintln!(
                    "dispatcher: no worker produced slice {spec} within the deadline; running it \
                     in-process"
                );
                match shard::run_shard(&ctx.grid, ctx.ratio, &ctx.cfg, spec) {
                    Ok(run) => {
                        let c = lock(&ctx.state).complete(lease, run.encoded, Instant::now());
                        match c {
                            Completion::Accepted { .. } => {
                                eprintln!("dispatcher: slice {spec} completed in-process");
                            }
                            _ => {
                                // A straggler beat us while we simulated.
                                ctx.duplicates.fetch_add(1, Ordering::Relaxed);
                                eprintln!(
                                    "dispatcher: duplicate in-process result for slice {spec} \
                                     discarded"
                                );
                            }
                        }
                    }
                    Err(e) => {
                        *ctx.fatal.lock().unwrap_or_else(PoisonError::into_inner) =
                            Some(format!("in-process run of slice {spec} failed: {e}"));
                        ctx.done.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            }
            None => thread::sleep(POLL_INTERVAL),
        }
    }
}

/// One worker connection: logs, serves the protocol, and on an abnormal
/// exit returns every lease this connection still holds to the pool.
fn handle_conn(ctx: &ServeCtx, stream: TcpStream, peer: String) {
    let mut name = peer.clone();
    let mut dealt: Vec<u64> = Vec::new();
    if let Err(e) = serve_worker_conn(ctx, stream, &mut name, &mut dealt) {
        eprintln!("dispatcher: worker {name} lost ({e})");
        let now = Instant::now();
        let mut d = lock(&ctx.state);
        for lease in dealt {
            if let Some(slice0) = d.release_lease(lease, now) {
                eprintln!(
                    "dispatcher: re-dealing slice {}/{} after losing worker {name}",
                    slice0 + 1,
                    ctx.shards
                );
            }
        }
    }
}

/// The protocol loop of one worker connection. `Ok(())` is a clean end
/// (run complete or dispatcher shutdown); `Err` is an abnormal loss whose
/// leases the caller must release.
fn serve_worker_conn(
    ctx: &ServeCtx,
    stream: TcpStream,
    name: &mut String,
    dealt: &mut Vec<u64>,
) -> Result<(), String> {
    stream
        .set_read_timeout(Some(READ_POLL))
        .map_err(|e| format!("cannot set a read timeout: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone the stream: {e}"))?;
    let mut reader = BufReader::new(stream);

    let hello = match read_line_poll(&mut reader, &ctx.done, None)? {
        Read1::Line(l) => l,
        Read1::Closed => return Err("closed before hello".to_owned()),
        Read1::Stop => return Ok(()),
    };
    let cols: Vec<&str> = hello.split('\t').collect();
    match cols.as_slice() {
        ["hello", ver, n] if *ver == PROTO_VERSION => *name = (*n).to_owned(),
        ["hello", ver, _] => {
            let _ = write_line(
                &mut writer,
                &format!("error\tprotocol version {ver} unsupported (want {PROTO_VERSION})"),
            );
            return Err(format!("protocol version mismatch ({ver})"));
        }
        _ => {
            let _ = write_line(&mut writer, "error\tmalformed hello");
            return Err(format!("malformed hello {hello:?}"));
        }
    }
    write_line(&mut writer, &format!("welcome\t{PROTO_VERSION}"))?;
    let n = ctx.connected.fetch_add(1, Ordering::Relaxed) + 1;
    eprintln!(
        "dispatcher: worker {name} connected ({n} of {} expected)",
        ctx.workers_expected
    );

    loop {
        let line = match read_line_poll(&mut reader, &ctx.done, None)? {
            Read1::Line(l) => l,
            Read1::Closed => return Err("connection closed".to_owned()),
            Read1::Stop => return Ok(()),
        };
        let cols: Vec<&str> = line.split('\t').collect();
        match cols.as_slice() {
            ["next"] => {
                let now = Instant::now();
                let lease = {
                    let mut d = lock(&ctx.state);
                    if d.all_done() {
                        None
                    } else {
                        match d.deal(now) {
                            Some((lease, spec)) => Some(Some((lease, spec))),
                            None => Some(None),
                        }
                    }
                };
                match lease {
                    None => {
                        write_line(&mut writer, "done")?;
                        return Ok(());
                    }
                    Some(Some((lease, spec))) => {
                        dealt.push(lease);
                        eprintln!("dispatcher: lease {lease}: slice {spec} dealt to {name}");
                        write_line(
                            &mut writer,
                            &encode_lease(lease, spec, &ctx.grid, ctx.ratio, &ctx.cfg),
                        )?;
                    }
                    Some(None) => write_line(&mut writer, "wait")?,
                }
            }
            ["heartbeat", lease] => {
                let lease = shard::parse_u64(lease, "heartbeat lease id")?;
                lock(&ctx.state).heartbeat(lease, Instant::now());
            }
            ["result", lease, len] => {
                let lease = shard::parse_u64(lease, "result lease id")?;
                let len = shard::parse_u64(len, "result payload length")?;
                if len > MAX_PAYLOAD_BYTES {
                    let _ = write_line(&mut writer, "error\tpayload too large");
                    return Err(format!("payload of {len} bytes exceeds the cap"));
                }
                let mut buf = vec![0u8; len as usize];
                read_exact_poll(&mut reader, &mut buf, &ctx.done)?;
                let payload =
                    String::from_utf8(buf).map_err(|_| "payload is not valid UTF-8".to_owned())?;
                let spec = lock(&ctx.state).lease_spec(lease);
                let Some(spec) = spec else {
                    let _ = write_line(&mut writer, &format!("error\tunknown lease {lease}"));
                    return Err(format!("result for unknown lease {lease}"));
                };
                if let Err(e) = shard::check_slice(&payload, &ctx.grid, ctx.ratio, &ctx.cfg, spec) {
                    // A bad payload must neither enter the run nor strand
                    // the slice: reject it and free the lease for re-deal.
                    let freed = lock(&ctx.state).release_lease(lease, Instant::now());
                    if freed.is_some() {
                        eprintln!(
                            "dispatcher: rejecting bad payload for slice {spec} from {name} \
                             ({e}); re-dealing"
                        );
                    }
                    let _ = write_line(&mut writer, &format!("error\tbad payload: {e}"));
                    return Err(format!("bad payload for lease {lease}: {e}"));
                }
                match lock(&ctx.state).complete(lease, payload, Instant::now()) {
                    Completion::Accepted { slice0, wall_secs } => {
                        eprintln!(
                            "dispatcher: slice {}/{} completed by {name} in {wall_secs:.2}s",
                            slice0 + 1,
                            ctx.shards
                        );
                        write_line(&mut writer, "ok\taccepted")?;
                    }
                    Completion::Duplicate { slice0 } => {
                        ctx.duplicates.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "dispatcher: duplicate result for slice {}/{} from {name} discarded",
                            slice0 + 1,
                            ctx.shards
                        );
                        write_line(&mut writer, "ok\tduplicate")?;
                    }
                    Completion::UnknownLease => {
                        let _ = write_line(&mut writer, &format!("error\tunknown lease {lease}"));
                        return Err(format!("result for unknown lease {lease}"));
                    }
                }
            }
            _ => {
                let _ = write_line(&mut writer, "error\tmalformed request");
                return Err(format!("malformed request {line:?}"));
            }
        }
    }
}

/// Appends one run record per grid cell of a completed cluster run, with
/// the accepted lease's wall clock and the slice's re-deal count attached
/// (source `cluster:<grid>`).
///
/// The dispatcher times leases, not cells, but a lease's wall clock and
/// the mem-op counts of its cells are both known, so per-cell throughput
/// is apportioned: each cell gets the slice's aggregate rate
/// (`slice mem-ops / lease wall`) as `mem_ops_per_sec`, carried by a
/// `wall_secs` share proportional to the cell's mem-ops (the shares sum
/// back to the lease wall). Cells whose slice has no accepted wall
/// reading — or no mem-ops at all — keep zeros rather than inheriting a
/// nanosecond-clamped fiction; `reproduce query`'s `samples` column keeps
/// those visible. Before this apportionment every cluster record carried
/// `mem_ops_per_sec = 0.0` and silently vanished from query geomeans
/// while still being counted in `records`.
fn record_cluster(
    dir: &str,
    sc: &ServeConfig,
    merged: &shard::Merged,
    telemetry: &[SliceTelemetry],
) -> Result<(), String> {
    let (kinds, specs) = shard::resolve(&sc.grid)?;
    let n = specs.len();
    let total = (kinds.len() + 1) * n;
    let mut per_slot = vec![
        SliceTelemetry {
            wall_secs: 0.0,
            redeals: 0
        };
        total
    ];
    let mut slot_slice: Vec<Option<usize>> = vec![None; total];
    for (i, t) in telemetry.iter().enumerate() {
        let spec = ShardSpec {
            index: i + 1,
            count: telemetry.len(),
        };
        for key in shard::shard_cell_keys(&kinds, &specs, spec) {
            per_slot[key.slot] = *t;
            slot_slice[key.slot] = Some(i);
        }
    }
    let m = &merged.matrix;
    let mut cells: Vec<(SchemeKind, usize, &RunResult)> = Vec::with_capacity(total);
    for (w, r) in m.baseline.iter().enumerate() {
        cells.push((SchemeKind::Baseline, w, r));
    }
    for (si, row) in m.schemes.iter().enumerate() {
        for (w, r) in row.runs.iter().enumerate() {
            cells.push((row.kind, (si + 1) * n + w, r));
        }
    }
    let mut slice_ops = vec![0u64; telemetry.len()];
    for (_, slot, r) in &cells {
        if let Some(s) = slot_slice[*slot] {
            slice_ops[s] += r.mem_ops;
        }
    }

    let source = format!("cluster:{}", grid_token(&sc.grid));
    let mut log = runlog::RunLog::create(Path::new(dir), &source)?;
    for (kind, slot, r) in cells {
        let t = per_slot[slot];
        let wall = match slot_slice[slot] {
            Some(s) if t.wall_secs > 0.0 && slice_ops[s] > 0 => {
                t.wall_secs * (r.mem_ops as f64 / slice_ops[s] as f64)
            }
            _ => 0.0,
        };
        let mut rec = runlog::RunRecord::new(&source, kind, sc.ratio, &sc.cfg, r, wall)
            .with_lease(t.wall_secs, t.redeals);
        if wall <= 0.0 {
            rec.mem_ops_per_sec = 0.0;
        }
        log.append(&rec)?;
    }
    eprintln!("recorded {total} run record(s) to {}", log.path().display());
    Ok(())
}

/// Everything `reproduce worker` needs.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerConfig {
    /// Dispatcher address (`host:port`).
    pub addr: String,
    /// Worker threads for this worker's own simulations (never affects
    /// results).
    pub threads: usize,
    /// Fault injection: stall this long before simulating the first
    /// leased slice (drives the lease past its deadline in tests).
    pub fault_stall: Option<Duration>,
    /// Fault injection: send every result twice, deterministically
    /// exercising the dispatcher's duplicate-discard path.
    pub fault_duplicate: bool,
}

/// Runs the worker loop: connect (with capped-backoff retry), lease,
/// simulate (heartbeating), deliver, repeat — until the dispatcher says
/// `done` or the retry budget is exhausted.
pub fn worker(wc: &WorkerConfig) -> Result<(), String> {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    let name = format!("w-{}-{:08x}", std::process::id(), nanos as u32);
    let mut backoff = Backoff::new();
    let mut stalled = false;
    loop {
        match worker_session(wc, &name, &mut stalled, &mut backoff) {
            Ok(()) => return Ok(()),
            Err(e) => match backoff.next_delay() {
                Some(delay) => {
                    eprintln!(
                        "{name}: session with {} failed ({e}); retrying in {}ms",
                        wc.addr,
                        delay.as_millis()
                    );
                    thread::sleep(delay);
                }
                None => {
                    return Err(format!(
                        "{name}: giving up on {} after {} attempts: {e}",
                        wc.addr,
                        Backoff::MAX_ATTEMPTS
                    ))
                }
            },
        }
    }
}

/// Sends one request line through the shared writer.
fn send_line(writer: &Mutex<TcpStream>, line: &str) -> Result<(), String> {
    let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
    write_line(&mut *w, line)
}

/// Sends a `result` header plus the byte-counted payload in one locked
/// write, so heartbeats can never splice into the middle.
fn send_result(writer: &Mutex<TcpStream>, lease: u64, payload: &str) -> Result<(), String> {
    let mut buf = Vec::with_capacity(payload.len() + 64);
    buf.extend_from_slice(format!("result\t{lease}\t{}\n", payload.len()).as_bytes());
    buf.extend_from_slice(payload.as_bytes());
    let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
    w.write_all(&buf).map_err(|e| format!("cannot send: {e}"))
}

/// Reads one server reply with the worker's overall limit.
fn read_reply(reader: &mut impl BufRead) -> Result<String, String> {
    static NEVER: AtomicBool = AtomicBool::new(false);
    match read_line_poll(reader, &NEVER, Some(WORKER_REPLY_LIMIT))? {
        Read1::Line(l) => Ok(l),
        Read1::Closed => Err("dispatcher closed the connection".to_owned()),
        Read1::Stop => Err("dispatcher unresponsive".to_owned()),
    }
}

/// One connected session: hello/welcome, then lease-simulate-deliver
/// until `done`. Any I/O failure returns `Err` and the caller reconnects
/// under backoff.
fn worker_session(
    wc: &WorkerConfig,
    name: &str,
    stalled: &mut bool,
    backoff: &mut Backoff,
) -> Result<(), String> {
    let stream =
        TcpStream::connect(&wc.addr).map_err(|e| format!("cannot connect to {}: {e}", wc.addr))?;
    stream
        .set_read_timeout(Some(READ_POLL))
        .map_err(|e| format!("cannot set a read timeout: {e}"))?;
    let _ = stream.set_nodelay(true);
    let writer = Mutex::new(
        stream
            .try_clone()
            .map_err(|e| format!("cannot clone the stream: {e}"))?,
    );
    let mut reader = BufReader::new(stream);

    send_line(&writer, &format!("hello\t{PROTO_VERSION}\t{name}"))?;
    let welcome = read_reply(&mut reader)?;
    match welcome.split('\t').collect::<Vec<_>>().as_slice() {
        ["welcome", ver] if *ver == PROTO_VERSION => {}
        ["error", msg] => return Err(format!("dispatcher rejected hello: {msg}")),
        _ => return Err(format!("unexpected greeting {welcome:?}")),
    }
    // The dispatcher is alive: a fresh failure later deserves a fresh
    // retry budget.
    backoff.reset();

    loop {
        send_line(&writer, "next")?;
        let reply = read_reply(&mut reader)?;
        let cols: Vec<&str> = reply.split('\t').collect();
        match cols.as_slice() {
            ["done"] => {
                eprintln!("{name}: dispatcher reports the run complete");
                return Ok(());
            }
            ["wait"] => thread::sleep(WAIT_RETRY),
            ["lease", ..] => {
                let job = parse_lease(&reply)?;
                eprintln!(
                    "{name}: leased slice {} of {}",
                    job.spec,
                    grid_token(&job.grid)
                );
                if let Some(stall) = wc.fault_stall {
                    if !*stalled {
                        *stalled = true;
                        eprintln!(
                            "{name}: fault injection: stalling {:.1}s",
                            stall.as_secs_f64()
                        );
                        thread::sleep(stall);
                    }
                }
                let run = run_lease(wc, &job, &writer)?;
                send_result(&writer, job.lease, &run)?;
                let ack = read_reply(&mut reader)?;
                check_ack(name, &job, &ack)?;
                if wc.fault_duplicate {
                    eprintln!("{name}: fault injection: sending the result twice");
                    send_result(&writer, job.lease, &run)?;
                    let ack = read_reply(&mut reader)?;
                    check_ack(name, &job, &ack)?;
                }
            }
            ["error", msg] => return Err(format!("dispatcher error: {msg}")),
            _ => return Err(format!("unexpected reply {reply:?}")),
        }
    }
}

/// Interprets a result acknowledgement.
fn check_ack(name: &str, job: &LeaseJob, ack: &str) -> Result<(), String> {
    match ack.split('\t').collect::<Vec<_>>().as_slice() {
        ["ok", verdict] => {
            eprintln!("{name}: slice {} result {verdict}", job.spec);
            Ok(())
        }
        ["error", msg] => Err(format!("result for slice {} rejected: {msg}", job.spec)),
        _ => Err(format!("unexpected acknowledgement {ack:?}")),
    }
}

/// Simulates one leased slice while a sidecar thread heartbeats the
/// lease, returning the encoded shard payload.
fn run_lease(
    wc: &WorkerConfig,
    job: &LeaseJob,
    writer: &Mutex<TcpStream>,
) -> Result<String, String> {
    let cfg = EvalConfig {
        scale_den: job.scale_den,
        instrs_per_core: job.instrs_per_core,
        seed: job.seed,
        threads: wc.threads,
        batch: job.batch as usize,
        // Machine-level stepping is a local scheduling choice, not part
        // of the leased work description (results are identical).
        machine_threads: 1,
        service: job.service,
    };
    let stop = AtomicBool::new(false);
    let run = thread::scope(|s| {
        s.spawn(|| {
            let mut since_beat = Duration::ZERO;
            loop {
                thread::sleep(HEARTBEAT_STEP);
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                since_beat += HEARTBEAT_STEP;
                if since_beat >= HEARTBEAT_INTERVAL {
                    since_beat = Duration::ZERO;
                    // A failed heartbeat is not fatal here: the main
                    // thread notices the broken session at delivery.
                    let _ = send_line(writer, &format!("heartbeat\t{}", job.lease));
                }
            }
        });
        let run = shard::run_shard(&job.grid, job.ratio, &cfg, job.spec);
        stop.store(true, Ordering::Relaxed);
        run
    })?;
    Ok(run.encoded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Instant {
        // A fixed origin far enough in the past that saturating
        // subtraction never clips the offsets used in tests.
        static ORIGIN: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
        *ORIGIN.get_or_init(Instant::now) + Duration::from_millis(ms)
    }

    fn dispatch(count: usize, deadline_ms: u64, hb_ms: u64) -> Dispatch {
        Dispatch::new(
            count,
            Duration::from_millis(deadline_ms),
            Duration::from_millis(hb_ms),
            t(0),
        )
    }

    #[test]
    fn grid_tokens_round_trip() {
        for grid in [
            GridId::Scenario {
                selector: "all".to_owned(),
            },
            GridId::Scenario {
                selector: "stream-chase".to_owned(),
            },
            GridId::Eval { smoke: true },
            GridId::Eval { smoke: false },
        ] {
            assert_eq!(parse_grid_token(&grid_token(&grid)).unwrap(), grid);
        }
        for bad in [
            "",
            "eval",
            "eval:tiny",
            "scenario:",
            "scenario:a b",
            "grid:x",
        ] {
            assert!(parse_grid_token(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn lease_lines_round_trip() {
        let cfg = EvalConfig {
            scale_den: 1024,
            instrs_per_core: 60_000,
            seed: 7,
            threads: 3,
            ..EvalConfig::smoke()
        };
        let grid = GridId::Scenario {
            selector: "stream-chase".to_owned(),
        };
        let spec = ShardSpec { index: 2, count: 4 };
        let line = encode_lease(17, spec, &grid, NmRatio::TwoGb, &cfg);
        let job = parse_lease(&line).unwrap();
        assert_eq!(job.lease, 17);
        assert_eq!(job.spec, spec);
        assert_eq!(job.grid, grid);
        assert_eq!(job.ratio, NmRatio::TwoGb);
        assert_eq!(job.scale_den, 1024);
        assert_eq!(job.instrs_per_core, 60_000);
        assert_eq!(job.seed, 7);
        assert_eq!(job.batch, cfg.batch as u64);
        assert_eq!(job.service, cfg.service);

        let mut queued = cfg;
        queued.service = dram::ServiceModel::Queued { depth: 4 };
        let line = encode_lease(18, spec, &grid, NmRatio::TwoGb, &queued);
        assert_eq!(
            parse_lease(&line).unwrap().service,
            dram::ServiceModel::Queued { depth: 4 }
        );
        for bad in [
            "",
            "lease\t1",
            "lease\tx\t1/2\tscenario:all\t1gb\t64\t1\t1\t1",
            "result\t1\t2",
        ] {
            assert!(parse_lease(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn backoff_caps_and_exhausts() {
        let mut b = Backoff::new();
        let mut delays = Vec::new();
        while let Some(d) = b.next_delay() {
            delays.push(d);
        }
        assert_eq!(delays.len() as u32, Backoff::MAX_ATTEMPTS);
        assert_eq!(delays[0], Backoff::BASE);
        assert!(delays.windows(2).all(|p| p[0] <= p[1]), "{delays:?}");
        assert!(delays.iter().all(|d| *d <= Backoff::CAP), "{delays:?}");
        assert_eq!(*delays.last().unwrap(), Backoff::CAP);
        assert!(b.next_delay().is_none(), "budget must stay exhausted");
        b.reset();
        assert_eq!(b.next_delay(), Some(Backoff::BASE));
    }

    #[test]
    fn deal_covers_each_slice_exactly_once() {
        let mut d = dispatch(3, 1000, 5000);
        let mut specs = Vec::new();
        while let Some((_, spec)) = d.deal(t(1)) {
            specs.push(spec.index);
        }
        assert_eq!(specs, vec![1, 2, 3]);
        assert!(d.deal(t(2)).is_none(), "nothing pending to deal");
        assert!(!d.all_done());
    }

    #[test]
    fn expire_redeals_on_deadline_even_with_heartbeats() {
        let mut d = dispatch(1, 1000, 5000);
        let (lease, _) = d.deal(t(0)).unwrap();
        // Heartbeats keep flowing, but the absolute deadline still fires:
        // a stalled-but-chatty worker cannot hold a slice forever.
        d.heartbeat(lease, t(900));
        assert!(d.expire(t(999)).is_empty());
        let ex = d.expire(t(1000));
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].reason, "deadline");
        // The slice is pending again and a re-deal counts.
        let (lease2, _) = d.deal(t(1001)).unwrap();
        assert_ne!(lease, lease2);
        assert_eq!(d.total_redeals(), 1);
    }

    #[test]
    fn expire_redeals_on_heartbeat_loss_before_the_deadline() {
        let mut d = dispatch(1, 60_000, 5000);
        let (lease, _) = d.deal(t(0)).unwrap();
        d.heartbeat(lease, t(1000));
        assert!(d.expire(t(5999)).is_empty(), "heartbeat at 1s holds to 6s");
        let ex = d.expire(t(6000));
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].reason, "heartbeat");
    }

    #[test]
    fn first_result_wins_and_duplicates_are_discarded() {
        let mut d = dispatch(1, 1000, 5000);
        let (lease1, _) = d.deal(t(0)).unwrap();
        // Deadline passes, the slice is re-dealt...
        assert_eq!(d.expire(t(1000)).len(), 1);
        let (lease2, _) = d.deal(t(1100)).unwrap();
        // ...but the original straggler finishes first: accepted, with
        // the wall clock measured from *its* deal.
        match d.complete(lease1, "payload-a".to_owned(), t(1500)) {
            Completion::Accepted { slice0, wall_secs } => {
                assert_eq!(slice0, 0);
                assert!((wall_secs - 1.5).abs() < 1e-9, "{wall_secs}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The re-dealt lease's result is a duplicate — discarded, not
        // double-counted, and the stored payload stays the winner's.
        assert_eq!(
            d.complete(lease2, "payload-b".to_owned(), t(1600)),
            Completion::Duplicate { slice0: 0 }
        );
        assert!(d.all_done());
        assert_eq!(d.total_redeals(), 1);
        let payloads = d.into_payloads().unwrap();
        assert_eq!(
            payloads,
            vec![("slice-1".to_owned(), "payload-a".to_owned())]
        );
    }

    #[test]
    fn unknown_lease_is_rejected() {
        let mut d = dispatch(1, 1000, 5000);
        assert_eq!(
            d.complete(42, "x".to_owned(), t(1)),
            Completion::UnknownLease
        );
        assert!(d.lease_spec(42).is_none());
    }

    #[test]
    fn release_frees_only_the_current_holder() {
        let mut d = dispatch(2, 10_000, 5000);
        let (lease1, _) = d.deal(t(0)).unwrap();
        let (lease2, _) = d.deal(t(0)).unwrap();
        // Losing the connection behind lease1 frees its slice...
        assert_eq!(d.release_lease(lease1, t(100)), Some(0));
        let (lease3, spec3) = d.deal(t(200)).unwrap();
        assert_eq!(spec3.index, 1, "the freed slice is re-dealt first");
        // ...but a late release of the *stale* lease must not free the
        // re-dealt slice out from under lease3.
        assert_eq!(d.release_lease(lease1, t(300)), None);
        assert!(d.lease_spec(lease3).is_some());
        // Releasing a completed slice is likewise a no-op.
        let Completion::Accepted { .. } = d.complete(lease2, "p".to_owned(), t(400)) else {
            panic!("first result must be accepted");
        };
        assert_eq!(d.release_lease(lease2, t(500)), None);
        assert_eq!(d.total_redeals(), 1);
    }

    #[test]
    fn takeover_fires_only_without_progress() {
        let mut d = dispatch(2, 1000, 5000);
        // Nothing dealt, no progress: both slices become overdue a full
        // deadline after creation — the zero-workers-ever case.
        assert_eq!(d.overdue_pending(t(999)), None);
        assert_eq!(d.overdue_pending(t(1000)), Some(0));
        // Dealing slice 1 and accepting its result counts as progress,
        // pushing slice 2's takeover out by a fresh deadline.
        let (lease, _) = d.deal(t(1000)).unwrap();
        let Completion::Accepted { .. } = d.complete(lease, "p".to_owned(), t(1500)) else {
            panic!("first result must be accepted");
        };
        assert_eq!(d.overdue_pending(t(2499)), None);
        assert_eq!(d.overdue_pending(t(2500)), Some(1));
        // A takeover deal occupies the slice like any lease.
        let (_, spec) = d.deal_slice(1, t(2500));
        assert_eq!(spec.index, 2);
        assert_eq!(d.overdue_pending(t(9999)), None);
    }

    #[test]
    fn telemetry_reports_wall_and_redeals_per_slice() {
        let mut d = dispatch(2, 1000, 5000);
        let (lease1, _) = d.deal(t(0)).unwrap();
        let (lease2, _) = d.deal(t(0)).unwrap();
        assert_eq!(d.expire(t(1000)).len(), 2);
        let (lease3, _) = d.deal(t(1100)).unwrap();
        let Completion::Accepted { .. } = d.complete(lease3, "a".to_owned(), t(1400)) else {
            panic!("accepted");
        };
        let Completion::Accepted { .. } = d.complete(lease2, "b".to_owned(), t(2000)) else {
            panic!("late first result for slice 2 still wins");
        };
        assert_eq!(
            d.complete(lease1, "c".to_owned(), t(2100)),
            Completion::Duplicate { slice0: 0 }
        );
        let tele = d.telemetry();
        assert_eq!(tele.len(), 2);
        // Slice 1: re-dealt once, accepted lease took 0.3s.
        assert_eq!(tele[0].redeals, 1);
        assert!(
            (tele[0].wall_secs - 0.3).abs() < 1e-9,
            "{}",
            tele[0].wall_secs
        );
        // Slice 2: expired but never dealt a second time (no re-deal),
        // won by its original lease dealt at t=0 and completed at t=2.0.
        assert_eq!(tele[1].redeals, 0);
        assert!(
            (tele[1].wall_secs - 2.0).abs() < 1e-9,
            "{}",
            tele[1].wall_secs
        );
    }

    #[test]
    fn into_payloads_names_the_incomplete_slice() {
        let mut d = dispatch(3, 1000, 5000);
        let (lease, _) = d.deal(t(0)).unwrap();
        let Completion::Accepted { .. } = d.complete(lease, "p".to_owned(), t(1)) else {
            panic!("accepted");
        };
        let e = d.into_payloads().unwrap_err();
        assert!(e.contains("2/3"), "{e}");
    }

    #[test]
    fn serve_rejects_degenerate_configs() {
        let sc = ServeConfig {
            grid: GridId::Scenario {
                selector: "stream-chase".to_owned(),
            },
            ratio: NmRatio::OneGb,
            cfg: EvalConfig::smoke(),
            shards: 0,
            workers_expected: 1,
            deadline: Duration::from_secs(1),
            listen: "127.0.0.1:0".to_owned(),
            addr_file: None,
            runlog: None,
        };
        assert!(serve(&sc).unwrap_err().contains("--shards"));
        let zero_deadline = ServeConfig {
            shards: 1,
            deadline: Duration::ZERO,
            ..sc.clone()
        };
        assert!(serve(&zero_deadline)
            .unwrap_err()
            .contains("--deadline-secs"));
        let bad_grid = ServeConfig {
            shards: 1,
            grid: GridId::Scenario {
                selector: "no-such-scenario".to_owned(),
            },
            ..sc
        };
        assert!(serve(&bad_grid).unwrap_err().contains("no-such-scenario"));
    }
}
