//! Ablation studies beyond the paper's figures (DESIGN.md §5).
//!
//! * **Budget reset period** — §3.7.3 fixes the FM-access budget reset at
//!   100 K cycles; this sweep shows the sensitivity (too short starves
//!   migration, too long lets bursts overshoot).
//! * **Free-stack on-chip window** — §3.3 keeps the top of the
//!   Free-FM-Stack on-chip; this sweep measures the metadata traffic a
//!   purely in-NM stack would add.
//! * **§3.8 free-space hints** — the paper's extension sketch: with
//!   Chameleon-style OS hints, swap-outs of dead data skip their copies.

use dram::DramSystem;
use hybrid2_core::{Dcmc, Hybrid2Config, Variant};
use mem_cache::Hierarchy;
use sim_types::Geometry;
use workloads::Workload;

use crate::machine::{Machine, RunResult};
use crate::report::{f2, Report};
use crate::runner::EvalConfig;
use crate::scale::{NmRatio, ScaledSystem};

use super::workload_set;

fn run_custom(cfg: &EvalConfig, h2: Hybrid2Config, spec: &workloads::WorkloadSpec) -> RunResult {
    run_custom_hinted(cfg, h2, spec, false)
}

fn run_custom_hinted(
    cfg: &EvalConfig,
    h2: Hybrid2Config,
    spec: &workloads::WorkloadSpec,
    os_hints: bool,
) -> RunResult {
    let sys = ScaledSystem::new(NmRatio::OneGb, cfg.scale_den);
    let dcmc = Dcmc::new(h2).expect("ablation config is valid");
    let workload = Workload::build(spec, 8, cfg.scale_den, cfg.seed);
    let mut machine = Machine::new(
        8,
        Hierarchy::new(sys.hierarchy()),
        dcmc.into(),
        DramSystem::paper_default(),
        workload,
        cfg.seed,
    );
    if os_hints {
        machine = machine.with_os_hints();
    }
    machine.run_batched(cfg.instrs_per_core, cfg.batch)
}

fn base_config(cfg: &EvalConfig) -> Hybrid2Config {
    let sys = ScaledSystem::new(NmRatio::OneGb, cfg.scale_den);
    let mut h2 = Hybrid2Config::paper_default();
    h2.geometry = Geometry::paper_default();
    h2.nm_bytes = sys.nm_bytes;
    h2.fm_bytes = sys.fm_bytes;
    h2.cache_bytes = sys.cache_bytes;
    h2.variant = Variant::Full;
    h2
}

/// Sweeps the §3.7.3 budget reset period.
pub fn ablation_budget_period(cfg: &EvalConfig, smoke: bool) -> Vec<Report> {
    let specs = workload_set(smoke);
    let mut report = Report::new(
        "Ablation — FM-access budget reset period (§3.7.3; paper: 100 K cycles)",
        vec![
            "reset period (cycles)",
            "avg migrations/run",
            "avg cycles (norm to 100K)",
        ],
    );
    let mut results: Vec<(u64, f64, f64)> = Vec::new();
    for period in [10_000u64, 100_000, 1_000_000] {
        let mut h2 = base_config(cfg);
        h2.budget_reset_period = period;
        let mut migs = 0.0;
        let mut cycles = 0.0;
        for spec in &specs {
            let r = run_custom(cfg, h2, spec);
            migs += r.stats.moved_into_nm as f64;
            cycles += r.cycles as f64;
        }
        results.push((
            period,
            migs / specs.len() as f64,
            cycles / specs.len() as f64,
        ));
    }
    let ref_cycles = results
        .iter()
        .find(|r| r.0 == 100_000)
        .map(|r| r.2)
        .unwrap_or(1.0);
    for (period, migs, cycles) in results {
        report.push_row(vec![period.to_string(), f2(migs), f2(cycles / ref_cycles)]);
    }
    report.push_note("longer periods admit more migration bandwidth per phase");
    vec![report]
}

/// Sweeps the §3.3 on-chip window of the Free-FM-Stack.
pub fn ablation_stack_window(cfg: &EvalConfig, smoke: bool) -> Vec<Report> {
    let specs = workload_set(smoke);
    let mut report = Report::new(
        "Ablation — Free-FM-Stack on-chip window (§3.3; paper keeps the top entries on-chip)",
        vec![
            "on-chip entries",
            "metadata writes/run",
            "NM metadata bytes/run",
        ],
    );
    for window in [0usize, 64, 4096] {
        let mut h2 = base_config(cfg);
        h2.free_stack_onchip = window;
        let mut meta_writes = 0u64;
        let mut meta_bytes = 0u64;
        for spec in &specs {
            let sys_run = run_custom(cfg, h2, spec);
            meta_writes += sys_run.stats.metadata_writes;
            meta_bytes += sys_run.nm_traffic / specs.len().max(1) as u64;
        }
        report.push_row(vec![
            window.to_string(),
            (meta_writes / specs.len() as u64).to_string(),
            (meta_bytes / specs.len() as u64).to_string(),
        ]);
    }
    report.push_note("window 0 spills every push/pop to NM; 64 suffices in practice");
    vec![report]
}

/// §3.8: Hybrid2 with and without OS free-space hints. With hints, the
/// untouched portion of the flat space is known-dead, so Figure-8 swap-outs
/// skip their copies — exactly the saving the paper sketches (and the one
/// Chameleon demonstrated).
pub fn ablation_free_hints(cfg: &EvalConfig, smoke: bool) -> Vec<Report> {
    let specs = workload_set(smoke);
    let mut report = Report::new(
        "Ablation — §3.8 OS free-space hints (Hybrid2 extension)",
        vec![
            "benchmark",
            "speedup w/o hints",
            "speedup w/ hints",
            "FM migration bytes w/o",
            "FM migration bytes w/",
        ],
    );
    for spec in &specs {
        let h2 = base_config(cfg);
        let plain = run_custom_hinted(cfg, h2, spec, false);
        let hinted = run_custom_hinted(cfg, h2, spec, true);
        let base = {
            use crate::runner::{run_one, SchemeKind};
            run_one(SchemeKind::Baseline, spec, NmRatio::OneGb, cfg)
        };
        report.push_row(vec![
            spec.name.to_owned(),
            f2(base.cycles as f64 / plain.cycles as f64),
            f2(base.cycles as f64 / hinted.cycles as f64),
            plain.stats.moved_out_of_nm.to_string(),
            hinted.stats.moved_out_of_nm.to_string(),
        ]);
    }
    report.push_note("hints never hurt; swap-out volume is logical (copies are skipped)");
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_sweep_runs_and_orders_migrations() {
        let cfg = EvalConfig {
            scale_den: 256,
            instrs_per_core: 15_000,
            seed: 41,
            threads: 2,
            ..EvalConfig::smoke()
        };
        let reports = ablation_budget_period(&cfg, true);
        assert_eq!(reports[0].rows.len(), 3);
    }

    #[test]
    fn free_hints_never_slow_things_down() {
        let cfg = EvalConfig {
            scale_den: 1024,
            instrs_per_core: 50_000,
            seed: 47,
            threads: 2,
            ..EvalConfig::smoke()
        };
        let spec = workloads::catalog::by_name("lbm").unwrap();
        let h2 = base_config(&cfg);
        let plain = run_custom_hinted(&cfg, h2, spec, false);
        let hinted = run_custom_hinted(&cfg, h2, spec, true);
        assert!(
            hinted.cycles as f64 <= plain.cycles as f64 * 1.05,
            "hints must not hurt: {} vs {}",
            hinted.cycles,
            plain.cycles
        );
    }

    #[test]
    fn stack_window_zero_increases_metadata_writes() {
        let cfg = EvalConfig {
            scale_den: 256,
            instrs_per_core: 15_000,
            seed: 43,
            threads: 2,
            ..EvalConfig::smoke()
        };
        let reports = ablation_stack_window(&cfg, true);
        let rows = &reports[0].rows;
        let w0: u64 = rows[0][1].parse().unwrap();
        let w64: u64 = rows[1][1].parse().unwrap();
        assert!(
            w0 >= w64,
            "a zero-entry window cannot produce fewer metadata writes"
        );
    }
}
