//! Figure 1 — fetched-but-unused data vs DRAM-cache line size.
//!
//! Paper series (1 GB cache, average over all benchmarks):
//! 64 B → 0%, 128 B → 6%, 256 B → 10%, 512 B → 15%, 1 KB → 19%,
//! 2 KB → 22%, 4 KB → 26%.

use sim_types::stats::mean;

use crate::report::{f2, Report};
use crate::runner::{run_one, EvalConfig, SchemeKind};
use crate::NmRatio;

use super::workload_set;

/// Line sizes swept by the figure.
pub const LINE_SIZES: [u64; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

/// Runs the sweep and reports the average wasted-data percentage per line
/// size.
pub fn fig01_wasted_data(cfg: &EvalConfig, smoke: bool) -> Vec<Report> {
    let specs = workload_set(smoke);
    let mut report = Report::new(
        "Figure 1 — % of fetched DRAM-cache data never used, by line size (IDEAL cache, 1 GB NM)",
        vec!["line size (B)", "wasted data (avg %)", "paper (%)"],
    );
    let paper = [0.0, 6.0, 10.0, 15.0, 19.0, 22.0, 26.0];
    for (i, &line) in LINE_SIZES.iter().enumerate() {
        let wasted: Vec<f64> = specs
            .iter()
            .map(|spec| {
                let r = run_one(SchemeKind::IdealLine(line), spec, NmRatio::OneGb, cfg);
                if r.stats.fetched_bytes == 0 {
                    0.0
                } else {
                    100.0 * (r.stats.fetched_bytes.saturating_sub(r.stats.used_bytes)) as f64
                        / r.stats.fetched_bytes as f64
                }
            })
            .collect();
        let avg = mean(wasted).unwrap_or(0.0);
        report.push_row(vec![line.to_string(), f2(avg), f2(paper[i])]);
    }
    report.push_note("shape check: waste must grow monotonically with line size");
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waste_grows_with_line_size() {
        let cfg = EvalConfig {
            scale_den: 256,
            instrs_per_core: 12_000,
            seed: 11,
            threads: 2,
            ..EvalConfig::smoke()
        };
        let reports = fig01_wasted_data(&cfg, true);
        let rows = &reports[0].rows;
        assert_eq!(rows.len(), LINE_SIZES.len());
        let first: f64 = rows.first().unwrap()[1].parse().unwrap();
        let last: f64 = rows.last().unwrap()[1].parse().unwrap();
        assert!(
            last > first,
            "4 KB lines must waste more than 64 B lines ({first} vs {last})"
        );
    }
}
