//! Figure 2 — motivation study: min/max/geomean speedup of migration
//! schemes and caches (1 GB NM) over the no-NM baseline.
//!
//! Paper geomeans: MPOD 1.32, CHA 1.37, LGM 1.43, Tagless 1.42,
//! DFC(128 B–4 KB) 1.09–1.44, IDEAL(64 B–4 KB) 1.31–1.61.

use sim_types::stats::Summary;

use crate::report::{f2, Report};
use crate::{Matrix, NmRatio, SchemeKind};

use super::workload_set;
use crate::runner::EvalConfig;

/// DFC line sizes in the figure.
pub const DFC_LINES: [u64; 6] = [128, 256, 512, 1024, 2048, 4096];
/// IDEAL line sizes in the figure.
pub const IDEAL_LINES: [u64; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

/// Runs the motivation study.
pub fn fig02_motivation(cfg: &EvalConfig, smoke: bool) -> Vec<Report> {
    let mut kinds = vec![
        SchemeKind::MemPod,
        SchemeKind::Chameleon,
        SchemeKind::Lgm,
        SchemeKind::Tagless,
    ];
    kinds.extend(DFC_LINES.iter().map(|&l| SchemeKind::DfcLine(l)));
    kinds.extend(IDEAL_LINES.iter().map(|&l| SchemeKind::IdealLine(l)));

    let specs = workload_set(smoke);
    let m = Matrix::run(&kinds, &specs, NmRatio::OneGb, cfg);

    let mut report = Report::new(
        "Figure 2 — min / max / geomean speedup over no-NM baseline (1 GB NM)",
        vec!["scheme", "min", "max", "geomean"],
    );
    for s in 0..m.schemes.len() {
        let speedups: Vec<f64> = (0..m.workloads.len()).map(|w| m.speedup(s, w)).collect();
        let sum = Summary::of(speedups).expect("non-empty workload set");
        report.push_row(vec![
            m.schemes[s].label.clone(),
            f2(sum.min),
            f2(sum.max),
            f2(sum.geomean),
        ]);
    }
    report.push_note(
        "shape checks: large-line caches show the lowest minima (over-fetch); \
         IDEAL dominates realistic caches at equal line size",
    );
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motivation_shapes_hold_at_smoke_scale() {
        let cfg = EvalConfig {
            scale_den: 256,
            instrs_per_core: 12_000,
            seed: 13,
            threads: 4,
            ..EvalConfig::smoke()
        };
        let reports = fig02_motivation(&cfg, true);
        let rows = &reports[0].rows;
        // 4 migration schemes + 6 DFC points + 7 IDEAL points.
        assert_eq!(rows.len(), 17);
        let geo = |label: &str| -> f64 {
            rows.iter()
                .find(|r| r[0] == label)
                .unwrap_or_else(|| panic!("{label} missing"))[3]
                .parse()
                .unwrap()
        };
        // IDEAL at 256 B must beat the realistic DFC at 256 B: the only
        // difference is the tag overhead.
        assert!(geo("IDEAL-256") >= geo("DFC-256"));
    }
}
