//! Figure 11 — Hybrid2 design-space exploration.
//!
//! Cache size {64, 128 MB} × sector {2, 4 KB} × line {64–512 B}, all
//! 16-way, keeping only configurations whose XTA fits the 512 KB on-chip
//! budget (§5.1). Paper outcome: 64 MB / 2 KB sectors / 256 B lines wins
//! (geomean 1.54 at 1 GB NM).

use hybrid2_core::Hybrid2Config;
use sim_types::Geometry;

use crate::report::{f2, Report};
use crate::{Matrix, NmRatio, SchemeKind};

use super::workload_set;
use crate::runner::EvalConfig;

/// Enumerates the design points that fit the 512 KB XTA budget at paper
/// scale, as (cache bytes at paper scale, sector, line).
pub fn design_points() -> Vec<(u64, u64, u64)> {
    let mut points = Vec::new();
    for cache_mb in [64u64, 128] {
        for sector in [2048u64, 4096] {
            for line in [64u64, 128, 256, 512] {
                let mut cfg = Hybrid2Config::paper_default();
                cfg.cache_bytes = cache_mb << 20;
                cfg.geometry = match Geometry::new(line, sector) {
                    Ok(g) => g,
                    Err(_) => continue,
                };
                if cfg.validate().is_err() {
                    continue;
                }
                if cfg.xta_size_bytes() <= 512 * 1024 {
                    points.push((cache_mb << 20, sector, line));
                }
            }
        }
    }
    points
}

/// Runs the exploration at 1 GB NM.
pub fn fig11_design_space(cfg: &EvalConfig, smoke: bool) -> Vec<Report> {
    let points = design_points();
    let kinds: Vec<SchemeKind> = points
        .iter()
        .map(
            |&(cache_bytes_paper, sector, line)| SchemeKind::Hybrid2Config {
                cache_bytes_paper,
                sector,
                line,
            },
        )
        .collect();
    let specs = workload_set(smoke);
    let m = Matrix::run(&kinds, &specs, NmRatio::OneGb, cfg);

    let mut report = Report::new(
        "Figure 11 — Hybrid2 design space (geomean speedup, 1 GB NM, XTA <= 512 KB)",
        vec!["cache/sector/line", "geomean speedup"],
    );
    let mut best = (String::new(), 0.0f64);
    for s in 0..m.schemes.len() {
        let g = m.class_geomean(s, None, Matrix::speedup);
        if g > best.1 {
            best = (m.schemes[s].label.clone(), g);
        }
        report.push_row(vec![m.schemes[s].label.clone(), f2(g)]);
    }
    report.push_note(format!("best configuration: {} ({:.2})", best.0, best.1));
    report.push_note("paper best: 64MB/2K/256B at 1.54");
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_best_point_is_in_the_design_space() {
        let points = design_points();
        assert!(
            points.contains(&(64 << 20, 2048, 256)),
            "64MB/2K/256B must fit the XTA budget; points: {points:?}"
        );
        // The sweep is non-trivial but the budget excludes some points.
        assert!(points.len() >= 6);
        assert!(points.len() < 16, "the 512 KB budget must bite");
    }

    #[test]
    fn finer_lines_inflate_the_xta_out_of_budget() {
        // 128 MB cache with 64 B lines in 2 KB sectors cannot fit 512 KB.
        let points = design_points();
        assert!(!points.contains(&(128 << 20, 2048, 64)));
    }
}
