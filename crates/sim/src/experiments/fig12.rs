//! Figure 12 — geomean speedup by MPKI class at NM = 1, 2 and 4 GB.
//!
//! Paper "All" geomeans (1 GB): MPOD 1.318, CHA 1.371, LGM 1.429,
//! TAGLESS 1.417, DFC 1.547, HYBRID2 1.542 — Hybrid2 beats every migration
//! scheme and sits within a hair of the best cache.

use crate::report::{f3, Report};
use crate::{Matrix, NmRatio};

use super::main_matrix;
use crate::runner::EvalConfig;

/// Runs the three-ratio comparison (Figures 12a/b/c).
pub fn fig12_speedup_by_ratio(cfg: &EvalConfig, smoke: bool) -> Vec<Report> {
    let mut reports = Vec::new();
    for (i, ratio) in NmRatio::ALL.iter().enumerate() {
        let m = main_matrix(*ratio, cfg, smoke);
        reports.push(render(&m, i));
    }
    reports
}

fn render(m: &Matrix, sub: usize) -> Report {
    let letter = ["a", "b", "c"][sub];
    let mut report = Report::new(
        format!(
            "Figure 12{letter} — geomean speedup over baseline, NM = {}",
            m.ratio.label()
        ),
        vec!["scheme", "High", "Medium", "Low", "All"],
    );
    for s in m.class_summaries(Matrix::speedup) {
        report.push_row(vec![
            s.label,
            f3(s.high),
            f3(s.medium),
            f3(s.low),
            f3(s.all),
        ]);
    }
    report.push_note(format!(
        "migration schemes offer {:.1}% more main memory than caches at this ratio",
        m.ratio.capacity_gain_pct()
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchemeKind;
    use workloads::catalog;

    /// The headline directional result at smoke scale: Hybrid2 beats the
    /// migration schemes on the high-MPKI streaming workload.
    #[test]
    fn hybrid2_beats_migration_on_high_mpki() {
        let cfg = EvalConfig {
            scale_den: 256,
            instrs_per_core: 20_000,
            seed: 17,
            threads: 4,
            ..EvalConfig::smoke()
        };
        let specs = [catalog::by_name("lbm").unwrap().clone()];
        let m = Matrix::run(
            &[SchemeKind::MemPod, SchemeKind::Lgm, SchemeKind::Hybrid2],
            &specs,
            NmRatio::OneGb,
            &cfg,
        );
        let h2 = m.scheme_index("HYBRID2").unwrap();
        let mpod = m.scheme_index("MPOD").unwrap();
        let lgm = m.scheme_index("LGM").unwrap();
        assert!(
            m.speedup(h2, 0) > m.speedup(mpod, 0),
            "HYBRID2 {:.2} vs MPOD {:.2}",
            m.speedup(h2, 0),
            m.speedup(mpod, 0)
        );
        assert!(
            m.speedup(h2, 0) > m.speedup(lgm, 0) * 0.95,
            "HYBRID2 {:.2} vs LGM {:.2}",
            m.speedup(h2, 0),
            m.speedup(lgm, 0)
        );
    }
}
