//! Figure 13 — per-benchmark speedup at the 1:16 ratio.
//!
//! The paper's headline texture: Hybrid2 consistently strong on high-MPKI
//! large-footprint benchmarks; Tagless collapsing to ~1/5 of baseline on
//! omnetpp/deepsjeng (4 KB over-fetch); nobody beating baseline on dc.B.

use crate::report::{f2, Report};
use crate::Matrix;

/// Formats the per-benchmark speedup table from a 1:16 matrix.
pub fn fig13_per_benchmark(m: &Matrix) -> Report {
    let mut header = vec!["benchmark".to_owned(), "class".to_owned()];
    header.extend(m.schemes.iter().map(|s| s.label.clone()));
    let mut report = Report {
        title: format!(
            "Figure 13 — per-benchmark speedup over baseline, NM = {}",
            m.ratio.label()
        ),
        header,
        rows: Vec::new(),
        notes: Vec::new(),
    };
    for (w, spec) in m.workloads.iter().enumerate() {
        let mut row = vec![spec.name.to_owned(), spec.class.to_string()];
        row.extend((0..m.schemes.len()).map(|s| f2(m.speedup(s, w))));
        report.rows.push(row);
    }
    report.push_note("paper: TAGLESS degrades omnetpp/deepsjeng to ~0.2x (over-fetch)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::EvalConfig;
    use crate::{NmRatio, SchemeKind};
    use workloads::catalog;

    /// The paper's sharpest qualitative claim: page-granular caching
    /// (Tagless) collapses on low-spatial-locality workloads while Hybrid2
    /// does not degrade significantly.
    #[test]
    fn tagless_overfetch_hurts_pointer_chasing() {
        let cfg = EvalConfig {
            scale_den: 256,
            instrs_per_core: 25_000,
            seed: 23,
            threads: 4,
            ..EvalConfig::smoke()
        };
        let specs = [catalog::by_name("omnetpp").unwrap().clone()];
        let m = Matrix::run(
            &[SchemeKind::Tagless, SchemeKind::Hybrid2],
            &specs,
            NmRatio::OneGb,
            &cfg,
        );
        let tagless = m.scheme_index("TAGLESS").unwrap();
        let h2 = m.scheme_index("HYBRID2").unwrap();
        assert!(
            m.speedup(tagless, 0) < 0.9,
            "Tagless should sink below baseline on omnetpp, got {:.2}",
            m.speedup(tagless, 0)
        );
        assert!(
            m.speedup(h2, 0) > m.speedup(tagless, 0),
            "Hybrid2 must not collapse like Tagless"
        );
        let report = fig13_per_benchmark(&m);
        assert_eq!(report.rows.len(), 1);
        assert!(report.render().contains("omnetpp"));
    }
}
