//! Figure 14 — Hybrid2 performance-factor breakdown.
//!
//! Paper geomeans (1 GB NM): Cache-Only 1.43, Migr-All 1.41,
//! Migr-None 1.39, No-Remap 1.58, HYBRID2 1.54 — the selective migration
//! policy beats both extremes, and the metadata machinery costs only ~2.5%
//! versus free remapping.

use hybrid2_core::Variant;

use crate::report::{f3, Report};
use crate::{Matrix, NmRatio, SchemeKind};

use super::workload_set;
use crate::runner::EvalConfig;

/// Runs the ablation at 1 GB NM.
pub fn fig14_breakdown(cfg: &EvalConfig, smoke: bool) -> Vec<Report> {
    let kinds: Vec<SchemeKind> = Variant::ALL
        .iter()
        .map(|&v| SchemeKind::Hybrid2Variant(v))
        .collect();
    let specs = workload_set(smoke);
    let m = Matrix::run(&kinds, &specs, NmRatio::OneGb, cfg);

    let mut report = Report::new(
        "Figure 14 — Hybrid2 performance factors (geomean speedup, 1 GB NM)",
        vec!["variant", "geomean speedup"],
    );
    for s in 0..m.schemes.len() {
        report.push_row(vec![
            m.schemes[s].label.clone(),
            f3(m.class_geomean(s, None, Matrix::speedup)),
        ]);
    }
    report.push_note(
        "paper: Cache-Only 1.43, Migr-All 1.41, Migr-None 1.39, No-Remap 1.58, HYBRID2 1.54",
    );
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::catalog;

    #[test]
    fn full_policy_between_none_and_noremap() {
        let cfg = EvalConfig {
            scale_den: 256,
            instrs_per_core: 25_000,
            seed: 29,
            threads: 4,
            ..EvalConfig::smoke()
        };
        // A capacity-pressured streaming workload where migration matters.
        let specs = [catalog::by_name("lbm").unwrap().clone()];
        let kinds: Vec<SchemeKind> = Variant::ALL
            .iter()
            .map(|&v| SchemeKind::Hybrid2Variant(v))
            .collect();
        let m = Matrix::run(&kinds, &specs, NmRatio::OneGb, &cfg);
        let sp = |label: &str| {
            let i = m.scheme_index(label).unwrap();
            m.speedup(i, 0)
        };
        // No-Remap is Full minus metadata costs: it can only be faster.
        assert!(
            sp("No-Remap") >= sp("HYBRID2") * 0.999,
            "No-Remap {:.3} must not trail HYBRID2 {:.3}",
            sp("No-Remap"),
            sp("HYBRID2")
        );
        // All variants produce sane, positive speedups.
        for v in hybrid2_core::Variant::ALL {
            assert!(sp(v.label()) > 0.5, "{} broke", v.label());
        }
    }
}
