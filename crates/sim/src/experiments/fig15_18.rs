//! Figures 15–18 — NM service rate, FM traffic, NM traffic and dynamic
//! energy, all by MPKI class at the 1:16 ratio, derived from the shared
//! six-scheme matrix.
//!
//! Paper "All" values for orientation:
//! * Fig 15 (served from NM): MPOD 40%, CHA 69%, LGM 54%, TAGLESS 90%,
//!   DFC 85%, HYBRID2 84%.
//! * Fig 16 (FM traffic, normalized): MPOD 0.81, CHA 0.82, LGM 0.59,
//!   TAGLESS 0.53, DFC 0.40, HYBRID2 0.67.
//! * Fig 17 (NM traffic, normalized): MPOD 0.91, CHA 1.47, LGM 0.92,
//!   TAGLESS 1.72, DFC 1.60, HYBRID2 1.69.
//! * Fig 18 (dynamic energy, normalized): MPOD 1.33, CHA 1.73, LGM 1.27,
//!   TAGLESS 1.59, DFC 1.48, HYBRID2 1.69.

use crate::report::{f3, pct, Report};
use crate::Matrix;

fn by_class(
    m: &Matrix,
    title: String,
    metric: fn(&Matrix, usize, usize) -> f64,
    as_pct: bool,
) -> Report {
    let mut report = Report::new(title, vec!["scheme", "High", "Medium", "Low", "All"]);
    for s in m.class_summaries(metric) {
        let fmt = |v: f64| if as_pct { pct(v) } else { f3(v) };
        report.push_row(vec![
            s.label,
            fmt(s.high),
            fmt(s.medium),
            fmt(s.low),
            fmt(s.all),
        ]);
    }
    report
}

/// Figure 15 — fraction of processor requests served from NM.
pub fn fig15_nm_served(m: &Matrix) -> Report {
    let mut r = by_class(
        m,
        format!(
            "Figure 15 — requests served from NM, NM = {}",
            m.ratio.label()
        ),
        Matrix::nm_served,
        true,
    );
    r.push_note("paper All: MPOD 40%, CHA 69%, LGM 54%, TAGLESS 90%, DFC 85%, HYBRID2 84%");
    r
}

/// Figure 16 — FM traffic normalized to the baseline.
pub fn fig16_fm_traffic(m: &Matrix) -> Report {
    let mut r = by_class(
        m,
        format!(
            "Figure 16 — FM traffic normalized to baseline, NM = {}",
            m.ratio.label()
        ),
        Matrix::fm_traffic_norm,
        false,
    );
    r.push_note("paper All: MPOD 0.81, CHA 0.82, LGM 0.59, TAGLESS 0.53, DFC 0.40, HYBRID2 0.67");
    r
}

/// Figure 17 — NM traffic normalized to the baseline's (FM) traffic.
pub fn fig17_nm_traffic(m: &Matrix) -> Report {
    let mut r = by_class(
        m,
        format!(
            "Figure 17 — NM traffic normalized to baseline, NM = {}",
            m.ratio.label()
        ),
        Matrix::nm_traffic_norm,
        false,
    );
    r.push_note("paper All: MPOD 0.91, CHA 1.47, LGM 0.92, TAGLESS 1.72, DFC 1.60, HYBRID2 1.69");
    r
}

/// Figure 18 — dynamic memory energy normalized to the baseline.
pub fn fig18_energy(m: &Matrix) -> Report {
    let mut r = by_class(
        m,
        format!(
            "Figure 18 — dynamic memory energy normalized to baseline, NM = {}",
            m.ratio.label()
        ),
        Matrix::energy_norm,
        false,
    );
    r.push_note("paper All: MPOD 1.33, CHA 1.73, LGM 1.27, TAGLESS 1.59, DFC 1.48, HYBRID2 1.69");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::EvalConfig;
    use crate::{NmRatio, SchemeKind};
    use workloads::catalog;

    #[test]
    fn service_and_traffic_shapes() {
        let cfg = EvalConfig {
            scale_den: 256,
            instrs_per_core: 25_000,
            seed: 31,
            threads: 4,
            ..EvalConfig::smoke()
        };
        let specs = [catalog::by_name("lbm").unwrap().clone()];
        let m = Matrix::run(
            &[SchemeKind::MemPod, SchemeKind::Tagless, SchemeKind::Hybrid2],
            &specs,
            NmRatio::OneGb,
            &cfg,
        );
        let mpod = m.scheme_index("MPOD").unwrap();
        let tagless = m.scheme_index("TAGLESS").unwrap();
        let h2 = m.scheme_index("HYBRID2").unwrap();
        // Caches adapt instantly; interval-based MemPod lags (paper: 90% vs
        // 40%). Hybrid2's small cache also reacts fast.
        assert!(m.nm_served(tagless, 0) > m.nm_served(mpod, 0));
        assert!(m.nm_served(h2, 0) > m.nm_served(mpod, 0));
        // Every scheme with NM reduces FM traffic on a reused stream;
        // caches cut it hardest.
        assert!(m.fm_traffic_norm(tagless, 0) < 1.0);
        // The four reports render.
        for rep in [
            fig15_nm_served(&m),
            fig16_fm_traffic(&m),
            fig17_nm_traffic(&m),
            fig18_energy(&m),
        ] {
            assert_eq!(rep.rows.len(), 3);
            assert!(!rep.render().is_empty());
        }
    }
}
