//! One experiment per table/figure of the paper's evaluation (§5), plus
//! the extra ablations promised in `DESIGN.md`.
//!
//! Every experiment is a pure function of an [`EvalConfig`] and a workload
//! set, returning printable [`Report`]s; the `reproduce` binary and the
//! criterion benches are thin wrappers. `EXPERIMENTS.md` records paper-vs-
//! measured values for each.

mod ablations;
mod fig01;
mod fig02;
mod fig11;
mod fig12;
mod fig13;
mod fig14;
mod fig15_18;
mod table2;

pub use ablations::{ablation_budget_period, ablation_free_hints, ablation_stack_window};
pub use fig01::fig01_wasted_data;
pub use fig02::fig02_motivation;
pub use fig11::{design_points as fig11_design_points, fig11_design_space};
pub use fig12::fig12_speedup_by_ratio;
pub use fig13::fig13_per_benchmark;
pub use fig14::fig14_breakdown;
pub use fig15_18::{fig15_nm_served, fig16_fm_traffic, fig17_nm_traffic, fig18_energy};
pub use table2::table2_characterization;

use crate::report::Report;
use crate::runner::EvalConfig;
use crate::{Matrix, NmRatio, SchemeKind};
use workloads::{catalog, WorkloadSpec};

/// The workload set an experiment runs on.
pub fn workload_set(smoke: bool) -> Vec<WorkloadSpec> {
    if smoke {
        catalog::smoke_set().map(Clone::clone).to_vec()
    } else {
        catalog::all().to_vec()
    }
}

/// Runs the main six-scheme matrix at one ratio (shared by Figures 12, 13,
/// 15, 16, 17 and 18).
pub fn main_matrix(ratio: NmRatio, cfg: &EvalConfig, smoke: bool) -> Matrix {
    main_matrix_timed(ratio, cfg, smoke).0
}

/// [`main_matrix`] plus per-cell wall-clock seconds in slot order — the
/// telemetry the `--runlog` run records carry.
pub fn main_matrix_timed(ratio: NmRatio, cfg: &EvalConfig, smoke: bool) -> (Matrix, Vec<f64>) {
    Matrix::run_timed(&SchemeKind::MAIN, &workload_set(smoke), ratio, cfg)
}

/// The `evalsuite` report set (Figures 13 and 15–18) derived from one
/// already-computed matrix. Shared by [`run_by_id`] and the shard-merge
/// path, so a merged sharded run renders byte-identically to a monolithic
/// `--exp evalsuite` run.
pub fn evalsuite_reports(m: &Matrix) -> Vec<Report> {
    vec![
        fig13_per_benchmark(m),
        fig15_nm_served(m),
        fig16_fm_traffic(m),
        fig17_nm_traffic(m),
        fig18_energy(m),
    ]
}

/// Experiment identifiers accepted by the `reproduce` binary.
pub const ALL_EXPERIMENTS: [&str; 16] = [
    "fig01",
    "fig02",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "table2",
    "abl-budget",
    "abl-stack",
    "abl-free",
    "all",
    "evalsuite",
];

/// Dispatches an experiment by id. `evalsuite` runs the shared 1:16 matrix
/// once and derives Figures 13 and 15–18 from it (the cheap way to get the
/// whole single-ratio story).
///
/// # Panics
///
/// Panics on an unknown id (the CLI validates first).
pub fn run_by_id(id: &str, cfg: &EvalConfig, smoke: bool) -> Vec<Report> {
    match id {
        "fig01" => fig01_wasted_data(cfg, smoke),
        "fig02" => fig02_motivation(cfg, smoke),
        "fig11" => fig11_design_space(cfg, smoke),
        "fig12" => fig12_speedup_by_ratio(cfg, smoke),
        "fig13" => {
            let m = main_matrix(NmRatio::OneGb, cfg, smoke);
            vec![fig13_per_benchmark(&m)]
        }
        "fig14" => fig14_breakdown(cfg, smoke),
        "fig15" => {
            let m = main_matrix(NmRatio::OneGb, cfg, smoke);
            vec![fig15_nm_served(&m)]
        }
        "fig16" => {
            let m = main_matrix(NmRatio::OneGb, cfg, smoke);
            vec![fig16_fm_traffic(&m)]
        }
        "fig17" => {
            let m = main_matrix(NmRatio::OneGb, cfg, smoke);
            vec![fig17_nm_traffic(&m)]
        }
        "fig18" => {
            let m = main_matrix(NmRatio::OneGb, cfg, smoke);
            vec![fig18_energy(&m)]
        }
        "table2" => table2_characterization(cfg, smoke),
        "abl-budget" => ablation_budget_period(cfg, smoke),
        "abl-stack" => ablation_stack_window(cfg, smoke),
        "abl-free" => ablation_free_hints(cfg, smoke),
        "evalsuite" => evalsuite_reports(&main_matrix(NmRatio::OneGb, cfg, smoke)),
        "all" => {
            let mut out = Vec::new();
            for id in [
                "table2",
                "fig01",
                "fig02",
                "fig11",
                "fig12",
                "fig14",
                "evalsuite",
                "abl-budget",
                "abl-stack",
                "abl-free",
            ] {
                out.extend(run_by_id(id, cfg, smoke));
            }
            out
        }
        other => panic!("unknown experiment id {other:?}; known: {ALL_EXPERIMENTS:?}"),
    }
}
