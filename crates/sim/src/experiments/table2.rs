//! Table 2 — benchmark characterization (measured vs paper).
//!
//! Runs every workload on the no-NM baseline system and reports the
//! measured MPKI, footprint and traffic next to the paper's published
//! numbers. Footprint and traffic are extrapolated back to paper scale
//! (× `scale_den`, and traffic normalized to the paper's 8 × 1 B simulated
//! instructions) so magnitudes are comparable.

use crate::report::{f2, Report};
use crate::runner::{run_one, EvalConfig, SchemeKind};
use crate::NmRatio;
use workloads::MpkiClass;

use super::workload_set;

/// Runs the characterization.
pub fn table2_characterization(cfg: &EvalConfig, smoke: bool) -> Vec<Report> {
    let specs = workload_set(smoke);
    let mut report = Report::new(
        "Table 2 — benchmark characteristics (measured at scale vs paper)",
        vec![
            "benchmark",
            "kind",
            "class",
            "MPKI paper",
            "MPKI measured",
            "class measured",
            "footprint paper (GB)",
            "footprint extrap (GB)",
            "traffic paper (GB)",
            "traffic extrap (GB)",
        ],
    );
    for spec in &specs {
        let r = run_one(SchemeKind::Baseline, spec, NmRatio::OneGb, cfg);
        let gb = |b: f64| b / (1u64 << 30) as f64;
        let footprint_extrap = gb(r.footprint as f64 * cfg.scale_den as f64);
        // Paper traffic covers 8 cores x 1e9 instructions; extrapolate from
        // what we simulated, and undo the footprint scaling's effect on
        // line-granular traffic by scale alone (traffic is instruction-
        // proportional, not capacity-proportional).
        let traffic_measured = (r.fm_traffic + r.nm_traffic) as f64;
        let traffic_extrap = gb(traffic_measured * 8.0e9 / r.instructions as f64);
        report.push_row(vec![
            spec.name.to_owned(),
            spec.kind.to_string(),
            spec.class.to_string(),
            f2(spec.paper.mpki),
            f2(r.mpki),
            MpkiClass::of_mpki(r.mpki).to_string(),
            f2(spec.paper.footprint_gb),
            f2(footprint_extrap),
            f2(spec.paper.traffic_gb),
            f2(traffic_extrap),
        ]);
    }
    report.push_note("measured MPKI should land in the paper's class for most workloads");
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_set_lands_in_expected_classes() {
        let cfg = EvalConfig {
            scale_den: 256,
            instrs_per_core: 40_000,
            seed: 37,
            threads: 2,
            ..EvalConfig::smoke()
        };
        let reports = table2_characterization(&cfg, true);
        let rows = &reports[0].rows;
        assert_eq!(rows.len(), 3);
        // lbm (High) must measure much more intense than xalanc (Low).
        let mpki = |name: &str| -> f64 {
            rows.iter().find(|r| r[0] == name).unwrap()[4]
                .parse()
                .unwrap()
        };
        assert!(
            mpki("lbm") > 5.0 * mpki("xalanc").max(0.01),
            "lbm {} vs xalanc {}",
            mpki("lbm"),
            mpki("xalanc")
        );
        assert!(mpki("lbm") > 15.0, "lbm must measure high-MPKI");
    }
}
