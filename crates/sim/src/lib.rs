//! Full-system simulator and experiment harness for the Hybrid2
//! reproduction.
//!
//! This crate wires the substrates together — synthetic workloads
//! (`workloads`), interval cores (`cpu`), the L1/L2/LLC filter
//! (`mem-cache`), a memory-management scheme (`hybrid2-core` or
//! `baselines`) and the DRAM devices (`dram`) — into a [`Machine`] that
//! replays a workload deterministically, and provides one experiment module
//! per table/figure of the paper's evaluation (see `experiments`).
//!
//! The headline entry points:
//!
//! * [`SchemeKind`] + [`ScaledSystem`] — describe *what* to simulate.
//! * [`run_one`] — simulate one (scheme, workload) pair to a [`RunResult`].
//! * [`Matrix`] — the full scheme × workload grid with speedups and
//!   normalized traffic/energy, computed in parallel.
//! * [`experiments`] — `fig01` … `fig18`, `table2` and the extra ablations,
//!   each returning a printable [`report::Report`].
//! * [`scenario`] — the phased / multi-program scenario grid behind the
//!   `reproduce scenario` subcommand.
//! * [`shard`] — process-level `--shard K/N` slicing of the grids and the
//!   `reproduce merge` reassembly, byte-identical to a monolithic run.
//! * [`cluster`] — the fault-tolerant dispatcher/worker pair behind
//!   `reproduce serve` and `reproduce worker`: leased shard slices over
//!   TCP with deadlines, heartbeats, straggler re-deal and in-process
//!   degradation, merge-gated to the same byte-identity contract.
//! * [`runlog`] — append-only, versioned run records (one per simulated
//!   grid cell, float-bit exact) and the query store behind
//!   `reproduce query`.
//!
//! # Example
//!
//! ```no_run
//! use sim::{run_one, EvalConfig, NmRatio, SchemeKind};
//! use workloads::catalog;
//!
//! let cfg = EvalConfig::smoke();
//! let spec = catalog::by_name("lbm").unwrap();
//! let base = run_one(SchemeKind::Baseline, spec, NmRatio::OneGb, &cfg);
//! let h2 = run_one(SchemeKind::Hybrid2, spec, NmRatio::OneGb, &cfg);
//! println!("speedup: {:.2}", base.cycles as f64 / h2.cycles as f64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod any_scheme;
pub mod cluster;
pub mod experiments;
mod machine;
mod matrix;
mod page_alloc;
pub mod report;
pub mod runlog;
mod runner;
mod scale;
pub mod scenario;
pub mod shard;

pub use any_scheme::AnyScheme;
pub use dram::{ServiceModel, DEFAULT_QUEUE_DEPTH};
pub use machine::{Machine, RunResult, DEFAULT_BATCH};
pub use matrix::{ClassSummary, Matrix};
pub use page_alloc::PageAllocator;
pub use runner::{build_scheme, run_one, run_one_timed, scheme_label, EvalConfig, SchemeKind};
pub use scale::{NmRatio, ScaledSystem};
pub use shard::{GridId, Merged, ShardSpec};
