//! The full-system event loop.

use cpu::{Core, CoreConfig};
use dram::{DramSystem, MemoryScheme, SchemeStats};
use mem_cache::Hierarchy;
use sim_types::{Cycle, MemReq, MemSide, TraceSource, TrafficClass};
use workloads::Workload;

use crate::page_alloc::PageAllocator;

/// Everything measured by one simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Scheme name as used in the paper's figures.
    pub scheme: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// Total simulated cycles (slowest core, after drain).
    pub cycles: u64,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Measured LLC misses per kilo-instruction.
    pub mpki: f64,
    /// Fraction of processor memory requests served from NM, in [0, 1].
    pub nm_served: f64,
    /// Bytes moved on the FM interface (all traffic classes).
    pub fm_traffic: u64,
    /// Bytes moved on the NM interface (all traffic classes).
    pub nm_traffic: u64,
    /// Dynamic memory energy in millijoules.
    pub energy_mj: f64,
    /// Measured footprint in bytes (distinct pages touched).
    pub footprint: u64,
    /// The scheme's own counters.
    pub stats: SchemeStats,
}

impl RunResult {
    /// Instructions per cycle across the whole machine.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// A complete simulated system: 8 interval cores + cache hierarchy +
/// memory scheme + DRAM devices + page allocator + workload.
pub struct Machine {
    cores: Vec<Core>,
    hierarchy: Hierarchy,
    scheme: Box<dyn MemoryScheme>,
    dram: DramSystem,
    pages: PageAllocator,
    workload: Workload,
    next_tick: u64,
    os_hints: bool,
}

impl Machine {
    /// Assembles a machine. The page allocator must cover the scheme's
    /// flat capacity (callers build it from
    /// [`MemoryScheme::flat_capacity_bytes`]).
    pub fn new(
        cores: usize,
        hierarchy: Hierarchy,
        scheme: Box<dyn MemoryScheme>,
        dram: DramSystem,
        workload: Workload,
        seed: u64,
    ) -> Self {
        let pages = PageAllocator::new(scheme.flat_capacity_bytes(), seed ^ 0x9E37);
        let tick = scheme.tick_period().unwrap_or(u64::MAX);
        Machine {
            cores: (0..cores)
                .map(|i| Core::new(i as u8, CoreConfig::paper_default()))
                .collect(),
            hierarchy,
            scheme,
            dram,
            pages,
            workload,
            next_tick: tick,
            os_hints: false,
        }
    }

    /// Enables §3.8-style OS free-space hints: the whole flat space starts
    /// hinted *unused*, and each first-touched page is hinted *used* as the
    /// allocator hands it out (the information ISA-Alloc/ISA-Free would
    /// carry in Chameleon's design).
    #[must_use]
    pub fn with_os_hints(mut self) -> Self {
        self.os_hints = true;
        let cap = self.scheme.flat_capacity_bytes();
        self.scheme.os_hint_unused(sim_types::PAddr::new(0), cap);
        self
    }

    /// Runs until every core has retired `instrs_per_core` instructions,
    /// then drains outstanding misses and reports.
    pub fn run(&mut self, instrs_per_core: u64) -> RunResult {
        let n = self.cores.len();
        loop {
            // Pick the earliest unfinished core (deterministic tie-break by
            // index) — this keeps DRAM arrival order causal.
            let mut best: Option<usize> = None;
            for i in 0..n {
                if self.cores[i].retired() >= instrs_per_core {
                    continue;
                }
                match best {
                    None => best = Some(i),
                    Some(b) if self.cores[i].now() < self.cores[b].now() => best = Some(i),
                    _ => {}
                }
            }
            let Some(i) = best else { break };

            // Interval housekeeping (migration schemes).
            let now = self.cores[i].now().raw();
            while now >= self.next_tick {
                let t = Cycle::new(self.next_tick);
                self.scheme.on_tick(t, &mut self.dram);
                self.next_tick += self.scheme.tick_period().unwrap_or(u64::MAX);
            }

            let Some(op) = self.workload.source_mut(i).next_op() else {
                // Trace exhausted (generators are unbounded, but a VecTrace
                // in tests may end): finish this core.
                let remaining = instrs_per_core - self.cores[i].retired();
                self.cores[i].advance_instructions(remaining);
                continue;
            };
            self.cores[i].advance_instructions(op.instructions());

            // MP workloads isolate address spaces per core; MT share one.
            let space = if self.workload.shared_address_space() {
                0
            } else {
                i as u8
            };
            let (paddr, fresh_page) = self.pages.translate_tracking(space, op.addr);
            if self.os_hints && fresh_page {
                let page_base = sim_types::PAddr::new(paddr.raw() & !4095);
                self.scheme.os_hint_used(page_base, 4096);
            }
            let out = self.hierarchy.access(i, paddr, op.kind);

            if let Some(wb) = out.writeback {
                // Dirty LLC victim: buffered write to memory.
                let req = MemReq::write(wb, 64, self.cores[i].now()).on_core(i as u8);
                self.scheme.access(&req, &mut self.dram);
            }
            if let Some(miss) = out.llc_miss {
                let at = self.cores[i].now() + out.latency;
                let req = MemReq {
                    addr: miss,
                    kind: op.kind,
                    bytes: 64,
                    at,
                    core: i as u8,
                };
                let served = self.scheme.access(&req, &mut self.dram);
                if op.kind.is_write() {
                    self.cores[i].note_store();
                } else {
                    self.cores[i].issue_llc_miss_load(served.done);
                }
            }
        }
        for c in &mut self.cores {
            c.drain();
        }
        self.scheme.on_finish();
        self.result()
    }

    fn result(&self) -> RunResult {
        let cycles = self.cores.iter().map(|c| c.now().raw()).max().unwrap_or(0);
        let instructions: u64 = self.cores.iter().map(|c| c.retired()).sum();
        let hstats = self.hierarchy.stats();
        RunResult {
            scheme: self.scheme.name(),
            workload: self.workload.spec().name,
            cycles,
            instructions,
            mpki: hstats.mpki(instructions),
            nm_served: self.scheme.stats().nm_served_fraction(),
            fm_traffic: self.dram.traffic_bytes(MemSide::Fm),
            nm_traffic: self.dram.traffic_bytes(MemSide::Nm),
            energy_mj: self.dram.total_energy().total_mj(),
            footprint: self.pages.footprint_bytes(),
            stats: self.scheme.stats().clone(),
        }
    }

    /// NM traffic attributable to metadata, for the §5.2.1 claim (4.1% of
    /// NM traffic).
    pub fn nm_metadata_fraction(&self) -> f64 {
        let total = self.dram.traffic_bytes(MemSide::Nm);
        if total == 0 {
            return 0.0;
        }
        let meta = self
            .dram
            .device(MemSide::Nm)
            .stats()
            .bytes(TrafficClass::Metadata);
        meta as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::FmOnly;
    use mem_cache::HierarchyConfig;
    use workloads::catalog;

    fn machine(seed: u64) -> Machine {
        let spec = catalog::by_name("lbm").unwrap();
        let wl = Workload::build(spec, 2, 1024, seed);
        Machine::new(
            2,
            Hierarchy::new(HierarchyConfig::scaled(2, 1, 64)),
            Box::new(FmOnly::new(1 << 28)),
            DramSystem::paper_default(),
            wl,
            seed,
        )
    }

    #[test]
    fn runs_to_instruction_target() {
        let mut m = machine(1);
        let r = m.run(20_000);
        assert!(r.instructions >= 40_000);
        assert!(r.cycles > 0);
        assert!(r.ipc() > 0.0 && r.ipc() <= 8.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let r1 = machine(7).run(10_000);
        let r2 = machine(7).run(10_000);
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.fm_traffic, r2.fm_traffic);
        assert_eq!(r1.instructions, r2.instructions);
    }

    #[test]
    fn different_seeds_differ() {
        let r1 = machine(1).run(10_000);
        let r2 = machine(2).run(10_000);
        assert_ne!(r1.cycles, r2.cycles);
    }

    #[test]
    fn streaming_workload_reaches_memory() {
        let mut m = machine(3);
        let r = m.run(20_000);
        assert!(r.mpki > 1.0, "lbm is a high-MPKI stream, got {}", r.mpki);
        assert!(r.fm_traffic > 0);
        assert_eq!(r.nm_traffic, 0, "FM-only system never touches NM");
        assert!(r.energy_mj > 0.0);
        assert!(r.footprint > 0);
    }
}
