//! The full-system event loop.

use cpu::{Core, CoreConfig};
use dram::{DramSystem, SchemeStats};
use mem_cache::Hierarchy;
use sim_types::{Cycle, MemReq, MemSide, TraceSource, TrafficClass};
use workloads::Workload;

use crate::any_scheme::AnyScheme;
use crate::page_alloc::PageAllocator;

/// Everything measured by one simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Scheme name as used in the paper's figures.
    pub scheme: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// Total simulated cycles (slowest core, after drain).
    pub cycles: u64,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Memory operations replayed from the traces (L1 accesses) — the
    /// per-op inner loop's iteration count, used to express simulator
    /// throughput as mem-ops/sec.
    pub mem_ops: u64,
    /// Measured LLC misses per kilo-instruction.
    pub mpki: f64,
    /// Fraction of processor memory requests served from NM, in [0, 1].
    pub nm_served: f64,
    /// Bytes moved on the FM interface (all traffic classes).
    pub fm_traffic: u64,
    /// Bytes moved on the NM interface (all traffic classes).
    pub nm_traffic: u64,
    /// Dynamic memory energy in millijoules.
    pub energy_mj: f64,
    /// Measured footprint in bytes (distinct pages touched).
    pub footprint: u64,
    /// The scheme's own counters.
    pub stats: SchemeStats,
}

impl RunResult {
    /// Instructions per cycle across the whole machine.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// A complete simulated system: 8 interval cores + cache hierarchy +
/// memory scheme + DRAM devices + page allocator + workload.
pub struct Machine {
    cores: Vec<Core>,
    hierarchy: Hierarchy,
    scheme: AnyScheme,
    dram: DramSystem,
    pages: PageAllocator,
    workload: Workload,
    next_tick: u64,
    os_hints: bool,
}

impl Machine {
    /// Assembles a machine. The scheme arrives as an [`AnyScheme`]
    /// (anything concrete converts with `.into()`), so the two
    /// `scheme.access` calls per memory op dispatch statically. The page
    /// allocator covers the scheme's flat capacity.
    pub fn new(
        cores: usize,
        hierarchy: Hierarchy,
        scheme: AnyScheme,
        dram: DramSystem,
        workload: Workload,
        seed: u64,
    ) -> Self {
        let pages = PageAllocator::new(scheme.flat_capacity_bytes(), seed ^ 0x9E37);
        let tick = scheme.tick_period().unwrap_or(u64::MAX);
        Machine {
            cores: (0..cores)
                .map(|i| Core::new(i as u8, CoreConfig::paper_default()))
                .collect(),
            hierarchy,
            scheme,
            dram,
            pages,
            workload,
            next_tick: tick,
            os_hints: false,
        }
    }

    /// Enables §3.8-style OS free-space hints: the whole flat space starts
    /// hinted *unused*, and each first-touched page is hinted *used* as the
    /// allocator hands it out (the information ISA-Alloc/ISA-Free would
    /// carry in Chameleon's design).
    #[must_use]
    pub fn with_os_hints(mut self) -> Self {
        self.os_hints = true;
        let cap = self.scheme.flat_capacity_bytes();
        self.scheme.os_hint_unused(sim_types::PAddr::new(0), cap);
        self
    }

    /// Runs until every core has retired `instrs_per_core` instructions,
    /// then drains outstanding misses and reports.
    pub fn run(&mut self, instrs_per_core: u64) -> RunResult {
        // Earliest unfinished core first (deterministic tie-break by
        // index) — this keeps DRAM arrival order causal. Core clocks are
        // mirrored into a compact array of `now << shift | index` keys
        // (u64::MAX = finished), so the per-op earliest-core pick is a
        // branchless min-reduction over a few contiguous words — the
        // winning index rides along in the low bits — instead of a
        // pointer-chasing scan through the Core structs (a binary heap
        // loses here too: at 8 cores its sift branches cost more than
        // the whole scan). Min over these keys picks the lowest index
        // among time ties, exactly like the scan it replaces.
        let shared_space = self.workload.shared_address_space();
        let idx_bits = self.cores.len().next_power_of_two().trailing_zeros().max(1);
        let pack = |now: u64, i: usize| -> u64 {
            assert!(
                now >> (64 - idx_bits) == 0,
                "simulated time overflows the packed scheduler key"
            );
            (now << idx_bits) | i as u64
        };
        let mut keys: Vec<u64> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if c.retired() < instrs_per_core {
                    pack(c.now().raw(), i)
                } else {
                    u64::MAX
                }
            })
            .collect();
        loop {
            let best = keys.iter().copied().fold(u64::MAX, u64::min);
            if best == u64::MAX {
                break;
            }
            let i = (best & ((1 << idx_bits) - 1)) as usize;

            // Interval housekeeping (migration schemes).
            let now = self.cores[i].now().raw();
            while now >= self.next_tick {
                let t = Cycle::new(self.next_tick);
                self.scheme.on_tick(t, &mut self.dram);
                self.next_tick += self.scheme.tick_period().unwrap_or(u64::MAX);
            }

            let Some(op) = self.workload.source_mut(i).next_op() else {
                // Trace exhausted (generators are unbounded, but a VecTrace
                // in tests may end): finish this core.
                let remaining = instrs_per_core - self.cores[i].retired();
                self.cores[i].advance_instructions(remaining);
                keys[i] = u64::MAX;
                continue;
            };
            self.cores[i].advance_instructions(op.instructions());

            let space = if shared_space { 0 } else { i as u8 };
            let (paddr, fresh_page) = self.pages.translate_tracking(space, op.addr);
            if self.os_hints && fresh_page {
                let page_base = sim_types::PAddr::new(paddr.raw() & !4095);
                self.scheme.os_hint_used(page_base, 4096);
            }
            let out = self.hierarchy.access(i, paddr, op.kind);

            if let Some(wb) = out.writeback {
                // Dirty LLC victim: buffered write to memory.
                let req = MemReq::write(wb, 64, self.cores[i].now()).on_core(i as u8);
                self.scheme.access(&req, &mut self.dram);
            }
            if let Some(miss) = out.llc_miss {
                let at = self.cores[i].now() + out.latency;
                let req = MemReq {
                    addr: miss,
                    kind: op.kind,
                    bytes: 64,
                    at,
                    core: i as u8,
                };
                let served = self.scheme.access(&req, &mut self.dram);
                if op.kind.is_write() {
                    self.cores[i].note_store();
                } else {
                    self.cores[i].issue_llc_miss_load(served.done);
                }
            }

            keys[i] = if self.cores[i].retired() < instrs_per_core {
                pack(self.cores[i].now().raw(), i)
            } else {
                u64::MAX
            };
        }
        for c in &mut self.cores {
            c.drain();
        }
        self.scheme.on_finish();
        self.result()
    }

    fn result(&self) -> RunResult {
        let cycles = self.cores.iter().map(|c| c.now().raw()).max().unwrap_or(0);
        let instructions: u64 = self.cores.iter().map(|c| c.retired()).sum();
        let hstats = self.hierarchy.stats();
        RunResult {
            scheme: self.scheme.name(),
            workload: self.workload.spec().name,
            cycles,
            instructions,
            mem_ops: hstats.l1.accesses,
            mpki: hstats.mpki(instructions),
            nm_served: self.scheme.stats().nm_served_fraction(),
            fm_traffic: self.dram.traffic_bytes(MemSide::Fm),
            nm_traffic: self.dram.traffic_bytes(MemSide::Nm),
            energy_mj: self.dram.total_energy().total_mj(),
            footprint: self.pages.footprint_bytes(),
            stats: self.scheme.stats().clone(),
        }
    }

    /// NM traffic attributable to metadata, for the §5.2.1 claim (4.1% of
    /// NM traffic).
    pub fn nm_metadata_fraction(&self) -> f64 {
        let total = self.dram.traffic_bytes(MemSide::Nm);
        if total == 0 {
            return 0.0;
        }
        let meta = self
            .dram
            .device(MemSide::Nm)
            .stats()
            .bytes(TrafficClass::Metadata);
        meta as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::FmOnly;
    use mem_cache::HierarchyConfig;
    use workloads::catalog;

    fn machine(seed: u64) -> Machine {
        let spec = catalog::by_name("lbm").unwrap();
        let wl = Workload::build(spec, 2, 1024, seed);
        Machine::new(
            2,
            Hierarchy::new(HierarchyConfig::scaled(2, 1, 64)),
            FmOnly::new(1 << 28).into(),
            DramSystem::paper_default(),
            wl,
            seed,
        )
    }

    #[test]
    fn runs_to_instruction_target() {
        let mut m = machine(1);
        let r = m.run(20_000);
        assert!(r.instructions >= 40_000);
        assert!(r.cycles > 0);
        assert!(r.ipc() > 0.0 && r.ipc() <= 8.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let r1 = machine(7).run(10_000);
        let r2 = machine(7).run(10_000);
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.fm_traffic, r2.fm_traffic);
        assert_eq!(r1.instructions, r2.instructions);
    }

    #[test]
    fn different_seeds_differ() {
        let r1 = machine(1).run(10_000);
        let r2 = machine(2).run(10_000);
        assert_ne!(r1.cycles, r2.cycles);
    }

    #[test]
    fn streaming_workload_reaches_memory() {
        let mut m = machine(3);
        let r = m.run(20_000);
        assert!(r.mpki > 1.0, "lbm is a high-MPKI stream, got {}", r.mpki);
        assert!(r.fm_traffic > 0);
        assert_eq!(r.nm_traffic, 0, "FM-only system never touches NM");
        assert!(r.energy_mj > 0.0);
        assert!(r.footprint > 0);
    }
}
