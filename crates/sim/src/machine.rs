//! The full-system event loop.

use std::sync::{mpsc, RwLock};

use cpu::{Core, CoreConfig, SideBuffer};
use dram::{DramSystem, SchemeStats};
use mem_cache::{Hierarchy, SetAssocCache};
use sim_types::{Cycle, MemReq, MemSide, TraceOp, TraceSource, TrafficClass};
use workloads::{TraceGen, Workload};

use crate::any_scheme::AnyScheme;
use crate::page_alloc::PageAllocator;

/// Default ops-per-pick cap of the epoch-batched [`Machine::run`] loop.
///
/// The cap is a serviceability knob, not a semantic one: any batch size
/// produces byte-identical results (`--batch 1` degenerates to the per-op
/// reference schedule), and run-ahead epochs end early at the first shared
/// interaction anyway, so a generous cap simply lets long private-hit
/// bursts amortize the scheduler re-pick.
pub const DEFAULT_BATCH: usize = 4096;

/// Packs one core's scheduler pick key: `now << idx_bits | index`, with
/// `u64::MAX` reserved as the "finished" sentinel.
///
/// Two silent-corruption hazards guard loudly here (the same discipline
/// `Dcmc::on_tick` applies to tick monotonicity). A clock within `idx_bits`
/// of the top bit would shift high bits out and wrap the pick order, so the
/// shift headroom is asserted. Subtler: a clock that *fits* can still pack
/// to the all-ones word — `now = 2^61 - 1` with `idx_bits = 3` and index 7
/// passes the headroom check yet collides with the finished sentinel, which
/// would silently drop a live core from the schedule — so the sentinel
/// collision is asserted too.
///
/// # Panics
///
/// Panics if `now` has fewer than `idx_bits` bits of headroom, or if the
/// packed key equals the finished sentinel.
#[inline]
fn scheduler_key(now: u64, index: usize, idx_bits: u32) -> u64 {
    assert!(
        now >> (64 - idx_bits) == 0,
        "simulated time overflows the packed scheduler key"
    );
    let key = (now << idx_bits) | index as u64;
    assert!(
        key != u64::MAX,
        "scheduler key collides with the finished sentinel"
    );
    key
}

/// Everything measured by one simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Scheme name as used in the paper's figures.
    pub scheme: &'static str,
    /// Workload name.
    pub workload: String,
    /// Total simulated cycles (slowest core, after drain).
    pub cycles: u64,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Memory operations replayed from the traces (L1 accesses) — the
    /// per-op inner loop's iteration count, used to express simulator
    /// throughput as mem-ops/sec.
    pub mem_ops: u64,
    /// Measured LLC misses per kilo-instruction.
    pub mpki: f64,
    /// Fraction of processor memory requests served from NM, in [0, 1].
    pub nm_served: f64,
    /// Bytes moved on the FM interface (all traffic classes).
    pub fm_traffic: u64,
    /// Bytes moved on the NM interface (all traffic classes).
    pub nm_traffic: u64,
    /// Dynamic memory energy in millijoules.
    pub energy_mj: f64,
    /// Measured footprint in bytes (distinct pages touched).
    pub footprint: u64,
    /// Mean NM service-queue occupancy observed at admission (0 under the
    /// unbounded model, which never materialises queues).
    pub nm_queue_mean: f64,
    /// Peak NM service-queue occupancy observed at admission.
    pub nm_queue_max: u64,
    /// Mean FM service-queue occupancy observed at admission.
    pub fm_queue_mean: f64,
    /// Peak FM service-queue occupancy observed at admission.
    pub fm_queue_max: u64,
    /// The scheme's own counters.
    pub stats: SchemeStats,
}

impl RunResult {
    /// Instructions per cycle across the whole machine.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// A complete simulated system: 8 interval cores + cache hierarchy +
/// memory scheme + DRAM devices + page allocator + workload.
pub struct Machine {
    cores: Vec<Core>,
    hierarchy: Hierarchy,
    scheme: AnyScheme,
    dram: DramSystem,
    pages: PageAllocator,
    workload: Workload,
    next_tick: u64,
    os_hints: bool,
}

impl Machine {
    /// Assembles a machine. The scheme arrives as an [`AnyScheme`]
    /// (anything concrete converts with `.into()`), so the two
    /// `scheme.access` calls per memory op dispatch statically. The page
    /// allocator covers the scheme's flat capacity.
    pub fn new(
        cores: usize,
        hierarchy: Hierarchy,
        scheme: AnyScheme,
        dram: DramSystem,
        workload: Workload,
        seed: u64,
    ) -> Self {
        let pages = PageAllocator::new(scheme.flat_capacity_bytes(), seed ^ 0x9E37);
        let tick = scheme.tick_period().unwrap_or(u64::MAX);
        Machine {
            cores: (0..cores)
                .map(|i| Core::new(i as u8, CoreConfig::paper_default()))
                .collect(),
            hierarchy,
            scheme,
            dram,
            pages,
            workload,
            next_tick: tick,
            os_hints: false,
        }
    }

    /// Enables §3.8-style OS free-space hints: the whole flat space starts
    /// hinted *unused*, and each first-touched page is hinted *used* as the
    /// allocator hands it out (the information ISA-Alloc/ISA-Free would
    /// carry in Chameleon's design).
    #[must_use]
    pub fn with_os_hints(mut self) -> Self {
        self.os_hints = true;
        let cap = self.scheme.flat_capacity_bytes();
        self.scheme.os_hint_unused(sim_types::PAddr::new(0), cap);
        self
    }

    /// Runs until every core has retired `instrs_per_core` instructions,
    /// then drains outstanding misses and reports. Equivalent to
    /// [`Machine::run_batched`] at [`DEFAULT_BATCH`]; results are
    /// byte-identical to [`Machine::run_reference`] for every batch size.
    pub fn run(&mut self, instrs_per_core: u64) -> RunResult {
        self.run_batched(instrs_per_core, DEFAULT_BATCH)
    }

    /// The epoch-batched event loop.
    ///
    /// The per-op reference schedule ([`Machine::run_reference`]) re-picks
    /// the globally earliest core (packed `now << bits | index` key,
    /// deterministic index tie-break) before *every* memory op. This loop
    /// picks once per *epoch*: the chosen core first executes ops under
    /// full reference semantics while it remains globally earliest (its
    /// packed key no larger than the frozen second-smallest key — other
    /// cores' keys cannot change while it runs), then *runs ahead* through
    /// ops that are provably core-local: an already-mapped page (reads of
    /// the page table commute with other cores' first touches) whose line
    /// hits the private L1 (no L2/LLC/scheme/DRAM interaction). The epoch
    /// ends at the first op that would touch a shared structure — a
    /// first-touch allocation, anything reaching L2 or beyond — which is
    /// stashed and replayed once the core is globally earliest again, or
    /// after `batch` ops.
    ///
    /// Shared interactions therefore execute in exactly the reference
    /// order: a core arrives at its next shared op with the same clock the
    /// reference would show (run-ahead ops advance nothing but its own
    /// state), and the pick compares the same packed keys. Interval ticks
    /// fire only while a core is globally earliest, plus a trailing
    /// catch-up to the highest clock any executed op observed — the same
    /// `on_tick` sequence, in the same position relative to every shared
    /// access, as the reference (L1 hits commute with ticks: neither reads
    /// the other's state). All of this is pinned by the differential tests
    /// in `tests/batched_differential.rs` at float-bit granularity.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn run_batched(&mut self, instrs_per_core: u64, batch: usize) -> RunResult {
        assert!(batch > 0, "batch must be at least 1 (1 = per-op reference)");
        let shared_space = self.workload.shared_address_space();
        let ncores = self.cores.len();
        let idx_bits = ncores.next_power_of_two().trailing_zeros().max(1);
        let pack = |now: u64, i: usize| scheduler_key(now, i, idx_bits);
        let mut keys: Vec<u64> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if c.retired() < instrs_per_core {
                    pack(c.now().raw(), i)
                } else {
                    u64::MAX
                }
            })
            .collect();
        // Per-core op decoded during run-ahead but found to need a shared
        // structure: it executes when the core is next globally earliest.
        let mut pending: Vec<Option<TraceOp>> = vec![None; ncores];
        // Highest clock-before-op any executed op (or trace-exhaustion
        // check) observed — the reference fires ticks up to exactly this
        // horizon, so the trailing catch-up below uses it.
        let mut tick_horizon: u64 = 0;
        {
            let Machine {
                cores,
                hierarchy,
                scheme,
                dram,
                pages,
                workload,
                next_tick,
                os_hints,
            } = &mut *self;
            let os_hints = *os_hints;

            'epoch: loop {
                // One min-reduction per epoch: the earliest key wins the
                // pick; the runner-up is the global-ordering horizon the
                // winner must not cross with shared work. `other` stays
                // valid for the whole epoch because only keys[i] can move.
                let mut best = u64::MAX;
                let mut other = u64::MAX;
                for &k in &keys {
                    if k < best {
                        other = best;
                        best = k;
                    } else if k < other {
                        other = k;
                    }
                }
                if best == u64::MAX {
                    break;
                }
                let i = (best & ((1 << idx_bits) - 1)) as usize;
                let mut left = batch;

                // Phase 1 — globally earliest: full reference semantics
                // (interval ticks, first touches, hierarchy, scheme, DRAM).
                loop {
                    let now = cores[i].now().raw();
                    if pack(now, i) > other {
                        break; // lost the lead: only local work may follow
                    }
                    tick_horizon = tick_horizon.max(now);
                    while now >= *next_tick {
                        let t = Cycle::new(*next_tick);
                        scheme.on_tick(t, dram);
                        *next_tick += scheme.tick_period().unwrap_or(u64::MAX);
                    }

                    let op = match pending[i].take() {
                        Some(op) => op,
                        None => match workload.source_mut(i).next_op() {
                            Some(op) => op,
                            None => {
                                // Trace exhausted (generators are unbounded,
                                // but a VecTrace in tests may end).
                                let remaining = instrs_per_core - cores[i].retired();
                                cores[i].advance_instructions(remaining);
                                keys[i] = u64::MAX;
                                continue 'epoch;
                            }
                        },
                    };
                    cores[i].advance_instructions(op.instructions());

                    let space = if shared_space { 0 } else { i as u8 };
                    let (paddr, fresh_page) = pages.translate_tracking(space, op.addr);
                    if os_hints && fresh_page {
                        let page_base = sim_types::PAddr::new(paddr.raw() & !4095);
                        scheme.os_hint_used(page_base, 4096);
                    }
                    let out = hierarchy.access(i, paddr, op.kind);

                    if let Some(wb) = out.writeback {
                        // Dirty LLC victim: buffered write to memory.
                        let req = MemReq::write(wb, 64, cores[i].now()).on_core(i as u8);
                        scheme.access(&req, dram);
                    }
                    if let Some(miss) = out.llc_miss {
                        let at = cores[i].now() + out.latency;
                        let req = MemReq {
                            addr: miss,
                            kind: op.kind,
                            bytes: 64,
                            at,
                            core: i as u8,
                        };
                        let served = scheme.access(&req, dram);
                        if op.kind.is_write() {
                            cores[i].note_store();
                        } else {
                            cores[i].issue_llc_miss_load(served.done);
                        }
                    }

                    if cores[i].retired() >= instrs_per_core {
                        keys[i] = u64::MAX;
                        continue 'epoch;
                    }
                    left -= 1;
                    if left == 0 {
                        keys[i] = pack(cores[i].now().raw(), i);
                        continue 'epoch;
                    }
                }

                // Phase 2 — run-ahead: past the horizon, so only provably
                // core-local ops may execute (mapped page + private L1
                // hit). No tick housekeeping here: a run-ahead core firing
                // a tick would reorder it against other cores' pending
                // shared ops; L1 hits commute with ticks, so deferring
                // them to the next phase-1 pick is exact.
                debug_assert!(pending[i].is_none(), "pending op survived phase 1");
                loop {
                    let now = cores[i].now().raw();
                    let Some(op) = workload.source_mut(i).next_op() else {
                        tick_horizon = tick_horizon.max(now);
                        let remaining = instrs_per_core - cores[i].retired();
                        cores[i].advance_instructions(remaining);
                        keys[i] = u64::MAX;
                        continue 'epoch;
                    };
                    let space = if shared_space { 0 } else { i as u8 };
                    let local = pages
                        .lookup(space, op.addr)
                        .is_some_and(|paddr| hierarchy.l1_access_fast(i, paddr, op.kind));
                    if !local {
                        // Would touch a shared structure: stash it for the
                        // next pick. The key stays the clock *before* the
                        // op — its arrival key in the reference schedule.
                        pending[i] = Some(op);
                        keys[i] = pack(now, i);
                        continue 'epoch;
                    }
                    tick_horizon = tick_horizon.max(now);
                    cores[i].advance_instructions(op.instructions());
                    if cores[i].retired() >= instrs_per_core {
                        keys[i] = u64::MAX;
                        continue 'epoch;
                    }
                    left -= 1;
                    if left == 0 {
                        keys[i] = pack(cores[i].now().raw(), i);
                        continue 'epoch;
                    }
                }
            }

            // Trailing tick catch-up: the reference runs tick housekeeping
            // at every per-op pick, so it fires every tick up to the
            // highest clock-before-op seen; run-ahead skipped some of
            // those picks. All shared accesses are done, and every
            // remaining tick is later than each of them was, so firing
            // the stragglers here preserves the reference interleaving.
            while tick_horizon >= *next_tick {
                let t = Cycle::new(*next_tick);
                scheme.on_tick(t, dram);
                *next_tick += scheme.tick_period().unwrap_or(u64::MAX);
            }
        }
        for c in &mut self.cores {
            c.drain();
        }
        self.scheme.on_finish();
        self.result()
    }

    /// The optimistic parallel event loop: [`Machine::run_batched`]'s
    /// run-ahead windows executed concurrently on `threads` scoped worker
    /// threads, byte-identical to [`Machine::run_reference`] by
    /// construction for every thread count.
    ///
    /// `threads == 1` (the default everywhere) *is* the batched loop —
    /// this method delegates — so existing schedules are untouched.
    ///
    /// # Schedule
    ///
    /// The loop alternates two phases:
    ///
    /// * **Drain** — while the globally earliest core (same packed-key pick
    ///   as the reference) holds a stashed shared op, that op executes
    ///   sequentially on this thread under full reference semantics:
    ///   interval ticks at its clock, first-touch translation, the full
    ///   hierarchy walk, scheme and DRAM. Shared interactions therefore
    ///   happen in exactly the reference order, one at a time.
    /// * **Speculate** — once the earliest core has no decoded op, every
    ///   unfinished, pending-free core's run-ahead window executes
    ///   *concurrently*: each worker owns that core's `Core`, private-L1
    ///   bank and trace source outright (ownership round-trips through
    ///   channels each round; no locks on the hot path) and speculates
    ///   through provably core-local ops — already-mapped pages (read-only
    ///   lookups against the frozen page table) whose lines hit the private
    ///   L1 — into a per-core [`SideBuffer`]. The first op needing a shared
    ///   structure is stashed as pending and ends the window.
    ///
    /// # Why no rollback is ever needed
    ///
    /// Speculated ops touch only state no other core can observe: the
    /// core's own clock/stats and its private L1 bank. Page-table reads
    /// commute with drains because the table is append-only (a page seen
    /// mapped stays mapped; a page seen unmapped merely stashes the op
    /// conservatively — it replays through the full path at its exact
    /// reference position). L1 hits commute with interval ticks and with
    /// other cores' shared ops, and their statistics credit is a
    /// commutative sum deferred to one
    /// [`Hierarchy::credit_speculated_l1_hits`] call. Windows are merged in
    /// core order regardless of completion order, so the arrival schedule
    /// of worker results is unobservable. `tests/batched_differential.rs`
    /// pins all of this to the reference at float-bit granularity for every
    /// `--machine-threads` value.
    ///
    /// Whether a round runs on the workers or inline on this thread is
    /// gated by the previous round's yield (channel round-trips only pay
    /// off when windows are long); the gate is itself deterministic, and
    /// either path produces identical bytes.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `threads` is zero.
    pub fn run_parallel(
        &mut self,
        instrs_per_core: u64,
        batch: usize,
        threads: usize,
    ) -> RunResult {
        self.run_parallel_telemetry(instrs_per_core, batch, threads)
            .0
    }

    /// [`Machine::run_parallel`] plus the deterministic schedule telemetry
    /// (identical for every `threads >= 2`; zeros when the call delegates
    /// to the batched loop at `threads == 1`).
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `threads` is zero.
    pub fn run_parallel_telemetry(
        &mut self,
        instrs_per_core: u64,
        batch: usize,
        threads: usize,
    ) -> (RunResult, ParallelTelemetry) {
        assert!(threads > 0, "machine threads must be at least 1");
        assert!(batch > 0, "batch must be at least 1 (1 = per-op reference)");
        let ncores = self.cores.len();
        let threads = threads.min(ncores);
        if threads <= 1 {
            return (
                self.run_batched(instrs_per_core, batch),
                ParallelTelemetry::default(),
            );
        }

        let shared_space = self.workload.shared_address_space();
        let os_hints = self.os_hints;
        let idx_bits = ncores.next_power_of_two().trailing_zeros().max(1);

        // Per-core ownership bundles the rounds hand to workers. The page
        // table moves behind a local RwLock: workers hold read guards for
        // the duration of a window, the drain phase takes the write guard
        // per first-touch translation; the phases strictly alternate, so
        // the lock is never contended — it exists to prove the sharing
        // safe, not to arbitrate it.
        let mut slots: Vec<Option<Slot>> = {
            let cores = std::mem::take(&mut self.cores);
            let banks = self.hierarchy.detach_l1();
            let sources = self.workload.detach_sources();
            cores
                .into_iter()
                .zip(banks)
                .zip(sources)
                .map(|((core, l1), src)| Some(Slot { core, l1, src }))
                .collect()
        };
        let pages_lock = RwLock::new(std::mem::replace(
            &mut self.pages,
            PageAllocator::new(4096, 0),
        ));

        let mut keys: Vec<u64> = slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let c = &s.as_ref().expect("slot populated").core;
                if c.retired() < instrs_per_core {
                    scheduler_key(c.now().raw(), i, idx_bits)
                } else {
                    u64::MAX
                }
            })
            .collect();
        let mut pending: Vec<Option<TraceOp>> = vec![None; ncores];
        let mut tick_horizon: u64 = 0;
        // All windows merged: `ops` is the deferred L1-hit credit,
        // `horizon` joins the trailing tick catch-up.
        let mut spec = SideBuffer::default();
        let mut telemetry = ParallelTelemetry::default();

        // Dispatch a round to the workers only when the previous round
        // speculated enough ops to amortize the channel round-trip;
        // below that, speculate inline. A pure scheduling decision —
        // both paths produce identical bytes — that lets low-locality
        // workloads (tiny windows) degrade to batched-loop speed
        // instead of drowning in synchronization. Deterministic, since
        // window yields are.
        const INLINE_THRESHOLD: u64 = 512;
        let mut last_yield = u64::MAX; // optimistic: first round goes wide

        std::thread::scope(|s| {
            let pages_ref = &pages_lock;
            let (done_tx, done_rx) = mpsc::channel::<SpecDone>();
            let mut task_txs: Vec<mpsc::Sender<SpecTask>> = Vec::with_capacity(threads);
            for _ in 0..threads {
                let (tx, rx) = mpsc::channel::<SpecTask>();
                let done_tx = done_tx.clone();
                s.spawn(move || {
                    for SpecTask { idx, slot } in rx {
                        let pages = pages_ref.read().expect("page table lock poisoned");
                        let done =
                            speculate(slot, idx, &pages, shared_space, instrs_per_core, batch);
                        drop(pages);
                        if done_tx.send(done).is_err() {
                            break;
                        }
                    }
                });
                task_txs.push(tx);
            }
            drop(done_tx);

            let Machine {
                hierarchy,
                scheme,
                dram,
                next_tick,
                ..
            } = &mut *self;

            loop {
                // The same earliest-core pick as the reference schedule.
                let best = keys.iter().copied().fold(u64::MAX, u64::min);
                if best == u64::MAX {
                    break;
                }
                let i = (best & ((1 << idx_bits) - 1)) as usize;

                if let Some(op) = pending[i].take() {
                    // Drain: the earliest core's stashed shared op, under
                    // full reference semantics at its reference position.
                    let slot = slots[i].as_mut().expect("slot home during drain");
                    let now = slot.core.now().raw();
                    tick_horizon = tick_horizon.max(now);
                    while now >= *next_tick {
                        let t = Cycle::new(*next_tick);
                        scheme.on_tick(t, dram);
                        *next_tick += scheme.tick_period().unwrap_or(u64::MAX);
                    }
                    slot.core.advance_instructions(op.instructions());

                    let space = if shared_space { 0 } else { i as u8 };
                    let (paddr, fresh_page) = {
                        let mut pages = pages_ref.write().expect("page table lock poisoned");
                        pages.translate_tracking(space, op.addr)
                    };
                    if os_hints && fresh_page {
                        let page_base = sim_types::PAddr::new(paddr.raw() & !4095);
                        scheme.os_hint_used(page_base, 4096);
                    }
                    let out = hierarchy.access_detached(&mut slot.l1, i, paddr, op.kind);

                    if let Some(wb) = out.writeback {
                        // Dirty LLC victim: buffered write to memory.
                        let req = MemReq::write(wb, 64, slot.core.now()).on_core(i as u8);
                        scheme.access(&req, dram);
                    }
                    if let Some(miss) = out.llc_miss {
                        let at = slot.core.now() + out.latency;
                        let req = MemReq {
                            addr: miss,
                            kind: op.kind,
                            bytes: 64,
                            at,
                            core: i as u8,
                        };
                        let served = scheme.access(&req, dram);
                        if op.kind.is_write() {
                            slot.core.note_store();
                        } else {
                            slot.core.issue_llc_miss_load(served.done);
                        }
                    }
                    telemetry.drained_ops += 1;
                    keys[i] = if slot.core.retired() >= instrs_per_core {
                        u64::MAX
                    } else {
                        scheduler_key(slot.core.now().raw(), i, idx_bits)
                    };
                    continue;
                }

                // The earliest core has no decoded op: run a speculation
                // round over every unfinished, pending-free core (the
                // earliest included — it is pending-free by the branch
                // above). Each makes at least one op of progress, so the
                // loop terminates.
                let eligible: Vec<usize> = (0..ncores)
                    .filter(|&j| keys[j] != u64::MAX && pending[j].is_none())
                    .collect();
                telemetry.rounds += 1;
                let mut results: Vec<Option<SpecDone>> = (0..ncores).map(|_| None).collect();
                if last_yield >= INLINE_THRESHOLD && eligible.len() > 1 {
                    telemetry.dispatched_rounds += 1;
                    for (n, &j) in eligible.iter().enumerate() {
                        let slot = slots[j].take().expect("slot double-dispatched");
                        task_txs[n % threads]
                            .send(SpecTask { idx: j, slot })
                            .expect("speculation worker died");
                    }
                    for _ in 0..eligible.len() {
                        let done = done_rx.recv().expect("speculation worker died");
                        let idx = done.idx;
                        results[idx] = Some(done);
                    }
                } else {
                    telemetry.inline_rounds += 1;
                    let pages = pages_ref.read().expect("page table lock poisoned");
                    for &j in &eligible {
                        let slot = slots[j].take().expect("slot double-dispatched");
                        results[j] = Some(speculate(
                            slot,
                            j,
                            &pages,
                            shared_space,
                            instrs_per_core,
                            batch,
                        ));
                    }
                }
                // Merge in core order: worker completion order is
                // unobservable, so results are deterministic.
                let mut round_yield = 0u64;
                for j in eligible {
                    let done = results[j].take().expect("result for eligible core");
                    round_yield += done.buf.ops;
                    spec.merge(done.buf);
                    pending[j] = done.pending;
                    keys[j] = if done.finished {
                        u64::MAX
                    } else {
                        scheduler_key(done.slot.core.now().raw(), j, idx_bits)
                    };
                    slots[j] = Some(done.slot);
                }
                last_yield = round_yield;
            }
            // task_txs drops here; workers see closed channels and exit,
            // and the scope joins them before returning.
        });

        // Reinstall the detached state, credit the deferred L1 hits, and
        // finish exactly like the batched loop.
        let mut cores = Vec::with_capacity(ncores);
        let mut banks = Vec::with_capacity(ncores);
        let mut sources = Vec::with_capacity(ncores);
        for slot in &mut slots {
            let Slot { core, l1, src } = slot.take().expect("slot home at teardown");
            cores.push(core);
            banks.push(l1);
            sources.push(src);
        }
        self.cores = cores;
        self.hierarchy.attach_l1(banks);
        self.workload.attach_sources(sources);
        self.pages = pages_lock.into_inner().expect("page table lock poisoned");
        self.hierarchy.credit_speculated_l1_hits(spec.ops);
        telemetry.speculated_ops = spec.ops;

        tick_horizon = tick_horizon.max(spec.horizon);
        while tick_horizon >= self.next_tick {
            let t = Cycle::new(self.next_tick);
            self.scheme.on_tick(t, &mut self.dram);
            self.next_tick += self.scheme.tick_period().unwrap_or(u64::MAX);
        }
        for c in &mut self.cores {
            c.drain();
        }
        self.scheme.on_finish();
        (self.result(), telemetry)
    }

    /// The per-op reference event loop — PR 2's hot path, kept verbatim as
    /// the semantic oracle for [`Machine::run_batched`]. Every op re-picks
    /// the earliest unfinished core; `tests/batched_differential.rs` holds
    /// the batched loop to this, field by field, at float-bit granularity.
    pub fn run_reference(&mut self, instrs_per_core: u64) -> RunResult {
        // Earliest unfinished core first (deterministic tie-break by
        // index) — this keeps DRAM arrival order causal. Core clocks are
        // mirrored into a compact array of `now << shift | index` keys
        // (u64::MAX = finished), so the per-op earliest-core pick is a
        // branchless min-reduction over a few contiguous words — the
        // winning index rides along in the low bits — instead of a
        // pointer-chasing scan through the Core structs (a binary heap
        // loses here too: at 8 cores its sift branches cost more than
        // the whole scan). Min over these keys picks the lowest index
        // among time ties, exactly like the scan it replaces.
        let shared_space = self.workload.shared_address_space();
        let idx_bits = self.cores.len().next_power_of_two().trailing_zeros().max(1);
        let pack = |now: u64, i: usize| scheduler_key(now, i, idx_bits);
        let mut keys: Vec<u64> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if c.retired() < instrs_per_core {
                    pack(c.now().raw(), i)
                } else {
                    u64::MAX
                }
            })
            .collect();
        loop {
            let best = keys.iter().copied().fold(u64::MAX, u64::min);
            if best == u64::MAX {
                break;
            }
            let i = (best & ((1 << idx_bits) - 1)) as usize;

            // Interval housekeeping (migration schemes).
            let now = self.cores[i].now().raw();
            while now >= self.next_tick {
                let t = Cycle::new(self.next_tick);
                self.scheme.on_tick(t, &mut self.dram);
                self.next_tick += self.scheme.tick_period().unwrap_or(u64::MAX);
            }

            let Some(op) = self.workload.source_mut(i).next_op() else {
                // Trace exhausted (generators are unbounded, but a VecTrace
                // in tests may end): finish this core.
                let remaining = instrs_per_core - self.cores[i].retired();
                self.cores[i].advance_instructions(remaining);
                keys[i] = u64::MAX;
                continue;
            };
            self.cores[i].advance_instructions(op.instructions());

            let space = if shared_space { 0 } else { i as u8 };
            let (paddr, fresh_page) = self.pages.translate_tracking(space, op.addr);
            if self.os_hints && fresh_page {
                let page_base = sim_types::PAddr::new(paddr.raw() & !4095);
                self.scheme.os_hint_used(page_base, 4096);
            }
            let out = self.hierarchy.access(i, paddr, op.kind);

            if let Some(wb) = out.writeback {
                // Dirty LLC victim: buffered write to memory.
                let req = MemReq::write(wb, 64, self.cores[i].now()).on_core(i as u8);
                self.scheme.access(&req, &mut self.dram);
            }
            if let Some(miss) = out.llc_miss {
                let at = self.cores[i].now() + out.latency;
                let req = MemReq {
                    addr: miss,
                    kind: op.kind,
                    bytes: 64,
                    at,
                    core: i as u8,
                };
                let served = self.scheme.access(&req, &mut self.dram);
                if op.kind.is_write() {
                    self.cores[i].note_store();
                } else {
                    self.cores[i].issue_llc_miss_load(served.done);
                }
            }

            keys[i] = if self.cores[i].retired() < instrs_per_core {
                pack(self.cores[i].now().raw(), i)
            } else {
                u64::MAX
            };
        }
        for c in &mut self.cores {
            c.drain();
        }
        self.scheme.on_finish();
        self.result()
    }

    fn result(&self) -> RunResult {
        let cycles = self.cores.iter().map(|c| c.now().raw()).max().unwrap_or(0);
        let instructions: u64 = self.cores.iter().map(|c| c.retired()).sum();
        let hstats = self.hierarchy.stats();
        RunResult {
            scheme: self.scheme.name(),
            workload: self.workload.spec().name.clone(),
            cycles,
            instructions,
            mem_ops: hstats.l1.accesses,
            mpki: hstats.mpki(instructions),
            nm_served: self.scheme.stats().nm_served_fraction(),
            fm_traffic: self.dram.traffic_bytes(MemSide::Fm),
            nm_traffic: self.dram.traffic_bytes(MemSide::Nm),
            energy_mj: self.dram.total_energy().total_mj(),
            footprint: self.pages.footprint_bytes(),
            nm_queue_mean: self.dram.device(MemSide::Nm).stats().mean_queue_occupancy(),
            nm_queue_max: self.dram.device(MemSide::Nm).stats().queue_peak_occupancy,
            fm_queue_mean: self.dram.device(MemSide::Fm).stats().mean_queue_occupancy(),
            fm_queue_max: self.dram.device(MemSide::Fm).stats().queue_peak_occupancy,
            stats: self.scheme.stats().clone(),
        }
    }

    /// Digest of the full first-touch page mapping (see
    /// [`PageAllocator::table_digest`]): equal digests across batch sizes
    /// certify that epoch batching preserved allocation order exactly.
    pub fn page_table_digest(&self) -> u64 {
        self.pages.table_digest()
    }

    /// NM traffic attributable to metadata, for the §5.2.1 claim (4.1% of
    /// NM traffic).
    pub fn nm_metadata_fraction(&self) -> f64 {
        let total = self.dram.traffic_bytes(MemSide::Nm);
        if total == 0 {
            return 0.0;
        }
        let meta = self
            .dram
            .device(MemSide::Nm)
            .stats()
            .bytes(TrafficClass::Metadata);
        meta as f64 / total as f64
    }
}

/// One core's exclusively owned state, handed to a speculation worker for
/// the duration of a run-ahead window: the interval core, its private-L1
/// bank (detached from the [`Hierarchy`]) and its trace source. Everything
/// a window may touch travels in the slot; everything shared stays behind.
struct Slot {
    core: Core,
    l1: SetAssocCache,
    src: TraceGen,
}

/// A speculation-round work item: core `idx`'s slot, moving to a worker.
struct SpecTask {
    idx: usize,
    slot: Slot,
}

/// A completed run-ahead window coming back from a worker.
struct SpecDone {
    idx: usize,
    slot: Slot,
    /// The first op that needed a shared structure, stashed for the drain
    /// phase to execute at its exact reference position.
    pending: Option<TraceOp>,
    /// The core hit its instruction target (or exhausted its trace).
    finished: bool,
    /// The window's side-buffered accounting (ops, instructions, horizon).
    buf: SideBuffer,
}

/// One optimistic run-ahead window — the parallel counterpart of
/// [`Machine::run_batched`]'s phase 2, op for op: consume provably
/// core-local ops (mapped page, private-L1 hit) until the first shared
/// interaction, the instruction target, trace exhaustion, or the batch
/// budget. Reads the shared page table only through `lookup` and mutates
/// only the slot's own state plus the side buffer.
fn speculate(
    mut slot: Slot,
    idx: usize,
    pages: &PageAllocator,
    shared_space: bool,
    instrs_per_core: u64,
    budget: usize,
) -> SpecDone {
    let mut buf = SideBuffer::default();
    let mut pending = None;
    let mut finished = false;
    let mut left = budget;
    let space = if shared_space { 0 } else { idx as u8 };
    loop {
        let now = slot.core.now().raw();
        let Some(op) = slot.src.next_op() else {
            // Trace exhausted (generators are unbounded, but a VecTrace in
            // tests may end). The exhaustion check observes the clock, so
            // it joins the tick horizon like any other pick.
            buf.horizon = buf.horizon.max(now);
            let remaining = instrs_per_core - slot.core.retired();
            slot.core.advance_instructions(remaining);
            finished = true;
            break;
        };
        let local = pages
            .lookup(space, op.addr)
            .is_some_and(|paddr| slot.l1.access_if_hit(paddr.raw(), op.kind.is_write()));
        if !local {
            // Would touch a shared structure: end the window. The core's
            // clock still reads "before the op" — its arrival key in the
            // reference schedule.
            pending = Some(op);
            break;
        }
        slot.core
            .advance_instructions_buffered(op.instructions(), &mut buf);
        if slot.core.retired() >= instrs_per_core {
            finished = true;
            break;
        }
        left -= 1;
        if left == 0 {
            break;
        }
    }
    SpecDone {
        idx,
        slot,
        pending,
        finished,
        buf,
    }
}

/// Deterministic accounting of one [`Machine::run_parallel`] schedule.
///
/// Every field is a function of (workload, seed, batch, instruction
/// target) alone — the worker count and completion order are unobservable —
/// so the telemetry doubles as a cross-host fingerprint: two machines
/// disagreeing here are not running the same schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParallelTelemetry {
    /// Speculation rounds executed.
    pub rounds: u64,
    /// Rounds dispatched to worker threads.
    pub dispatched_rounds: u64,
    /// Rounds speculated inline on the stepping thread (yield gate).
    pub inline_rounds: u64,
    /// Ops consumed inside run-ahead windows (the concurrent fraction).
    pub speculated_ops: u64,
    /// Ops executed sequentially in the drain phase (shared interactions).
    pub drained_ops: u64,
}

impl ParallelTelemetry {
    /// Fraction of memory ops consumed inside run-ahead windows — the
    /// parallelizable fraction an Amdahl projection starts from.
    pub fn speculated_fraction(&self) -> f64 {
        let total = self.speculated_ops + self.drained_ops;
        if total == 0 {
            0.0
        } else {
            self.speculated_ops as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::FmOnly;
    use mem_cache::HierarchyConfig;
    use workloads::catalog;

    fn machine(seed: u64) -> Machine {
        let spec = catalog::by_name("lbm").unwrap();
        let wl = Workload::build(spec, 2, 1024, seed);
        Machine::new(
            2,
            Hierarchy::new(HierarchyConfig::scaled(2, 1, 64)),
            FmOnly::new(1 << 28).into(),
            DramSystem::paper_default(),
            wl,
            seed,
        )
    }

    #[test]
    fn runs_to_instruction_target() {
        let mut m = machine(1);
        let r = m.run(20_000);
        assert!(r.instructions >= 40_000);
        assert!(r.cycles > 0);
        assert!(r.ipc() > 0.0 && r.ipc() <= 8.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let r1 = machine(7).run(10_000);
        let r2 = machine(7).run(10_000);
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.fm_traffic, r2.fm_traffic);
        assert_eq!(r1.instructions, r2.instructions);
    }

    #[test]
    fn different_seeds_differ() {
        let r1 = machine(1).run(10_000);
        let r2 = machine(2).run(10_000);
        assert_ne!(r1.cycles, r2.cycles);
    }

    #[test]
    fn batch_one_equals_reference_loop() {
        let r1 = machine(5).run_reference(10_000);
        let r2 = machine(5).run_batched(10_000, 1);
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.instructions, r2.instructions);
        assert_eq!(r1.mem_ops, r2.mem_ops);
        assert_eq!(r1.fm_traffic, r2.fm_traffic);
        assert_eq!(r1.mpki.to_bits(), r2.mpki.to_bits());
        assert_eq!(r1.energy_mj.to_bits(), r2.energy_mj.to_bits());
    }

    #[test]
    fn batched_default_matches_reference() {
        let r1 = machine(9).run_reference(15_000);
        let mut m2 = machine(9);
        let r2 = m2.run_batched(15_000, DEFAULT_BATCH);
        let mut m3 = machine(9);
        let r3 = m3.run_batched(15_000, 3);
        for r in [&r2, &r3] {
            assert_eq!(r1.cycles, r.cycles);
            assert_eq!(r1.instructions, r.instructions);
            assert_eq!(r1.mem_ops, r.mem_ops);
            assert_eq!(r1.fm_traffic, r.fm_traffic);
            assert_eq!(r1.footprint, r.footprint);
        }
        // First-touch allocation order preserved exactly, not just counts.
        assert_eq!(m2.page_table_digest(), m3.page_table_digest());
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn zero_batch_rejected() {
        machine(1).run_batched(1_000, 0);
    }

    #[test]
    fn parallel_matches_reference_bit_for_bit() {
        let r1 = machine(11).run_reference(15_000);
        for threads in [2, 3, 4] {
            let mut m = machine(11);
            let r = m.run_parallel(15_000, DEFAULT_BATCH, threads);
            assert_eq!(r1.cycles, r.cycles, "threads={threads}");
            assert_eq!(r1.instructions, r.instructions, "threads={threads}");
            assert_eq!(r1.mem_ops, r.mem_ops, "threads={threads}");
            assert_eq!(r1.fm_traffic, r.fm_traffic, "threads={threads}");
            assert_eq!(r1.footprint, r.footprint, "threads={threads}");
            assert_eq!(r1.mpki.to_bits(), r.mpki.to_bits(), "threads={threads}");
            assert_eq!(
                r1.energy_mj.to_bits(),
                r.energy_mj.to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_preserves_first_touch_order() {
        let mut a = machine(13);
        let _ = a.run_reference(12_000);
        let mut b = machine(13);
        let _ = b.run_parallel(12_000, DEFAULT_BATCH, 2);
        assert_eq!(a.page_table_digest(), b.page_table_digest());
    }

    #[test]
    fn parallel_one_thread_is_the_batched_loop() {
        let r1 = machine(4).run_batched(10_000, DEFAULT_BATCH);
        let mut m = machine(4);
        let (r2, t) = m.run_parallel_telemetry(10_000, DEFAULT_BATCH, 1);
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.mem_ops, r2.mem_ops);
        assert_eq!(t, ParallelTelemetry::default());
    }

    #[test]
    fn parallel_telemetry_is_schedule_determined() {
        let mut a = machine(6);
        let (ra, ta) = a.run_parallel_telemetry(10_000, DEFAULT_BATCH, 2);
        let mut b = machine(6);
        let (rb, tb) = b.run_parallel_telemetry(10_000, DEFAULT_BATCH, 4);
        assert_eq!(ta, tb, "worker count must be unobservable");
        assert_eq!(ra.cycles, rb.cycles);
        assert_eq!(ta.rounds, ta.dispatched_rounds + ta.inline_rounds);
        assert_eq!(ra.mem_ops, ta.speculated_ops + ta.drained_ops);
        assert!(ta.speculated_fraction() > 0.0);
        assert!(ta.speculated_fraction() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "machine threads must be at least 1")]
    fn zero_machine_threads_rejected() {
        machine(1).run_parallel(1_000, DEFAULT_BATCH, 0);
    }

    #[test]
    fn scheduler_key_orders_near_overflow_clocks() {
        // 2^61 - 2 is the largest clock with 3 bits of headroom that
        // cannot collide with the sentinel at any index.
        let near = (1u64 << 61) - 2;
        let k1 = scheduler_key(near - 1, 7, 3);
        let k2 = scheduler_key(near, 0, 3);
        let k3 = scheduler_key(near, 7, 3);
        assert!(k1 < k2 && k2 < k3);
        assert_ne!(k3, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "overflows the packed scheduler key")]
    fn scheduler_key_overflow_is_loud() {
        let _ = scheduler_key(1u64 << 61, 0, 3);
    }

    #[test]
    #[should_panic(expected = "collides with the finished sentinel")]
    fn scheduler_key_sentinel_collision_is_loud() {
        // Passes the shift-headroom check — the clock fits in 61 bits —
        // yet packs to the all-ones word the scheduler reads as
        // "finished", which would silently drop a live core.
        let _ = scheduler_key((1u64 << 61) - 1, 7, 3);
    }

    #[test]
    fn streaming_workload_reaches_memory() {
        let mut m = machine(3);
        let r = m.run(20_000);
        assert!(r.mpki > 1.0, "lbm is a high-MPKI stream, got {}", r.mpki);
        assert!(r.fm_traffic > 0);
        assert_eq!(r.nm_traffic, 0, "FM-only system never touches NM");
        assert!(r.energy_mj > 0.0);
        assert!(r.footprint > 0);
    }
}
