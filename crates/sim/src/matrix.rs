//! The scheme × workload evaluation grid, run in parallel on a
//! work-stealing scheduler.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

use sim_types::stats::geomean;
use workloads::{MpkiClass, WorkloadSpec};

use crate::machine::RunResult;
use crate::runner::{run_one, scheme_label, EvalConfig, SchemeKind};
use crate::scale::NmRatio;

/// Results of one scheme across all workloads of a matrix.
#[derive(Clone, Debug)]
pub struct SchemeRow {
    /// The scheme simulated.
    pub kind: SchemeKind,
    /// Legend label.
    pub label: String,
    /// One result per workload, in workload order.
    pub runs: Vec<RunResult>,
}

/// Per-MPKI-class geometric means for one scheme (the shape of Figures
/// 12/15/16/17/18).
#[derive(Clone, Debug)]
pub struct ClassSummary {
    /// Legend label.
    pub label: String,
    /// Geomean over the high-MPKI group.
    pub high: f64,
    /// Geomean over the medium-MPKI group.
    pub medium: f64,
    /// Geomean over the low-MPKI group.
    pub low: f64,
    /// Geomean over all workloads.
    pub all: f64,
}

/// The full evaluation grid for one NM:FM ratio: every scheme and the
/// baseline over every workload, plus derived metrics.
#[derive(Clone, Debug)]
pub struct Matrix {
    /// The NM:FM ratio simulated.
    pub ratio: NmRatio,
    /// Workloads, in catalog order.
    pub workloads: Vec<WorkloadSpec>,
    /// Baseline (no-NM) results per workload.
    pub baseline: Vec<RunResult>,
    /// Per-scheme results.
    pub schemes: Vec<SchemeRow>,
}

/// Relative cost weight of one (scheme, workload-class) grid cell, used to
/// order jobs longest-processing-time-first. The absolute scale is
/// irrelevant — only the ordering matters — and the weights are heuristic:
/// high-MPKI workloads drive more ops through the scheme, and migration
/// schemes pay remap lookups plus interval ticks on top of the shared
/// pipeline. Mis-estimation costs only tail latency, never correctness
/// (every cell is a pure function of its inputs).
fn job_cost(kind: SchemeKind, spec: &WorkloadSpec) -> u64 {
    let scheme = match kind {
        SchemeKind::Baseline => 2,
        SchemeKind::Tagless | SchemeKind::IdealLine(_) => 3,
        SchemeKind::Dfc | SchemeKind::DfcLine(_) => 3,
        SchemeKind::MemPod | SchemeKind::Lgm => 4,
        SchemeKind::Chameleon => 5,
        SchemeKind::Hybrid2 | SchemeKind::Hybrid2Variant(_) | SchemeKind::Hybrid2Config { .. } => 4,
    };
    let class = match spec.class {
        MpkiClass::High => 3,
        MpkiClass::Medium => 2,
        MpkiClass::Low => 1,
    };
    scheme * class
}

/// One grid cell: `slot` is its position in the result layout (baseline
/// rows first, then each scheme in `kinds` order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Job {
    pub(crate) slot: usize,
    pub(crate) w: usize,
    pub(crate) kind: SchemeKind,
}

/// The grid's job list in slot order: baseline rows first, then each
/// scheme in `kinds` order — the layout [`Matrix::assemble`] expects.
fn slot_jobs(kinds: &[SchemeKind], specs: &[WorkloadSpec]) -> Vec<Job> {
    let mut jobs: Vec<Job> = Vec::new();
    for (w, _) in specs.iter().enumerate() {
        jobs.push(Job {
            slot: w,
            w,
            kind: SchemeKind::Baseline,
        });
    }
    for (s, &kind) in kinds.iter().enumerate() {
        for (w, _) in specs.iter().enumerate() {
            jobs.push(Job {
                slot: (s + 1) * specs.len() + w,
                w,
                kind,
            });
        }
    }
    jobs
}

/// The job list in LPT (longest-processing-time-first) dispatch order,
/// descending cost with slot order breaking ties, so scheduling stays
/// deterministic.
fn lpt_jobs(kinds: &[SchemeKind], specs: &[WorkloadSpec]) -> Vec<Job> {
    let mut jobs = slot_jobs(kinds, specs);
    sort_lpt(&mut jobs, specs);
    jobs
}

/// The LPT dispatch ordering (descending cost, slot tiebreak) — the one
/// comparator behind both the process-level shard deal ([`shard_jobs`])
/// and the in-process dispatch ([`run_jobs`]), so the two can never
/// drift apart.
fn lpt_order(a: &Job, b: &Job, specs: &[WorkloadSpec]) -> std::cmp::Ordering {
    job_cost(b.kind, &specs[b.w])
        .cmp(&job_cost(a.kind, &specs[a.w]))
        .then(a.slot.cmp(&b.slot))
}

/// Sorts `jobs` into LPT dispatch order.
fn sort_lpt(jobs: &mut [Job], specs: &[WorkloadSpec]) {
    jobs.sort_by(|a, b| lpt_order(a, b, specs));
}

/// The jobs of shard `index0` (0-based) of an `count`-way split of the
/// grid, in slot order.
///
/// Assignment deals the LPT-sorted job list round-robin across the
/// `count` shards, so every shard receives its share of heavy *and* light
/// cells — the same balancing the in-process scheduler uses, applied at
/// process granularity. The dealing depends only on `(kinds, specs,
/// count)`, so the partition is deterministic: shards are pairwise
/// disjoint, their union is the whole grid, and each shard lists its
/// cells in ascending slot order.
pub(crate) fn shard_jobs(
    kinds: &[SchemeKind],
    specs: &[WorkloadSpec],
    index0: usize,
    count: usize,
) -> Vec<Job> {
    assert!(
        count > 0 && index0 < count,
        "shard {index0}/{count} out of range"
    );
    let lpt = lpt_jobs(kinds, specs);
    let mut mine: Vec<Job> = lpt
        .into_iter()
        .enumerate()
        .filter(|(i, _)| i % count == index0)
        .map(|(_, j)| j)
        .collect();
    mine.sort_by_key(|j| j.slot);
    mine
}

/// Per-worker deque of a work-stealing scheduler in the chase-lev shape:
/// the owner pops from the front of its own deque (where its costliest
/// LPT-assigned jobs sit), thieves steal from the back (the victim's
/// cheapest remaining work). Lock-free chase-lev needs a raw circular
/// buffer, which `#![forbid(unsafe_code)]` rules out, so each deque is a
/// `Mutex<VecDeque>` — at grid granularity (each job is a whole
/// simulation, milliseconds to seconds) the lock is nanoseconds of noise.
struct StealQueue {
    jobs: Mutex<VecDeque<usize>>,
}

impl StealQueue {
    fn new(jobs: VecDeque<usize>) -> Self {
        StealQueue {
            jobs: Mutex::new(jobs),
        }
    }

    /// Owner path: take my next (costliest) job index.
    fn pop_own(&self) -> Option<usize> {
        self.jobs.lock().expect("queue lock poisoned").pop_front()
    }

    /// Thief path: take the victim's last (cheapest) job index.
    fn steal(&self) -> Option<usize> {
        self.jobs.lock().expect("queue lock poisoned").pop_back()
    }
}

/// Runs `jobs` (any subset of a grid, in any order) on `cfg.threads`
/// work-stealing workers; `out[i]` is `jobs[i]`'s result. Dispatch order
/// is LPT (descending cost, slot tiebreak) dealt round-robin across the
/// worker deques, so every deque starts with its share of heavy jobs up
/// front and light ones at the back — owners chew the heavy front,
/// thieves nibble the light back. Every cell is a pure function of
/// (scheme, workload, ratio, cfg) and lands in its own [`OnceLock`] slot,
/// so steal order and thread interleaving affect wall-clock only.
fn run_jobs(
    jobs: &[Job],
    specs: &[WorkloadSpec],
    ratio: NmRatio,
    cfg: &EvalConfig,
) -> Vec<(RunResult, f64)> {
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| lpt_order(&jobs[a], &jobs[b], specs));
    let results: Vec<OnceLock<(RunResult, f64)>> = jobs.iter().map(|_| OnceLock::new()).collect();
    let workers = cfg.threads.max(1).min(jobs.len().max(1));
    let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
    for (i, &ji) in order.iter().enumerate() {
        queues[i % workers].push_back(ji);
    }
    let queues: Vec<StealQueue> = queues.into_iter().map(StealQueue::new).collect();
    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let results = &results;
            scope.spawn(move || loop {
                // Own deque first; then sweep the other deques as a
                // thief. New jobs are never produced, so finding every
                // deque empty means the grid is fully claimed.
                let ji = queues[me].pop_own().or_else(|| {
                    (1..workers)
                        .map(|d| (me + d) % workers)
                        .find_map(|v| queues[v].steal())
                });
                let Some(ji) = ji else {
                    break;
                };
                let Job { w, kind, .. } = jobs[ji];
                // Per-cell wall clock is run-record telemetry; it never
                // influences results or scheduling.
                let started = std::time::Instant::now();
                let r = run_one(kind, &specs[w], ratio, cfg);
                let secs = started.elapsed().as_secs_f64();
                results[ji]
                    .set((r, secs))
                    .unwrap_or_else(|_| panic!("job {ji} written twice"));
            });
        }
    });
    results
        .into_iter()
        .map(|cell| cell.into_inner().expect("every job ran"))
        .collect()
}

impl Matrix {
    /// Runs the grid on `cfg.threads` work-stealing workers. Deterministic
    /// output: every cell is a pure function of (scheme, workload, ratio,
    /// cfg) and lands in its own [`OnceLock`] slot, so steal order and
    /// thread interleaving affect wall-clock only — the assembled `Matrix`
    /// is byte-identical to [`Matrix::run_sequential`].
    pub fn run(
        kinds: &[SchemeKind],
        specs: &[WorkloadSpec],
        ratio: NmRatio,
        cfg: &EvalConfig,
    ) -> Matrix {
        Matrix::run_timed(kinds, specs, ratio, cfg).0
    }

    /// [`Matrix::run`] plus per-cell wall-clock seconds in slot order
    /// (baseline rows first, then each scheme row) — the telemetry the
    /// `sim::runlog` run records carry. The matrix itself is identical to
    /// [`Matrix::run`]'s; only the timings vary run to run.
    pub fn run_timed(
        kinds: &[SchemeKind],
        specs: &[WorkloadSpec],
        ratio: NmRatio,
        cfg: &EvalConfig,
    ) -> (Matrix, Vec<f64>) {
        let jobs = slot_jobs(kinds, specs);
        let timed = run_jobs(&jobs, specs, ratio, cfg);
        let (flat, secs): (Vec<RunResult>, Vec<f64>) = timed.into_iter().unzip();
        (Matrix::assemble(kinds, specs, ratio, flat), secs)
    }

    /// Runs only the grid cells of shard `index0` (0-based) of a
    /// `count`-way split (see [`shard_jobs`]) on the same work-stealing
    /// scheduler, returning `(job, result, wall-clock secs)` triples in
    /// slot order. The `sim::shard` module encodes these to the shard
    /// interchange format (dropping the timing — byte-identity); merging
    /// every shard of a split reassembles the exact [`Matrix`] that
    /// [`Matrix::run`] computes monolithically.
    pub(crate) fn run_shard(
        kinds: &[SchemeKind],
        specs: &[WorkloadSpec],
        ratio: NmRatio,
        cfg: &EvalConfig,
        index0: usize,
        count: usize,
    ) -> Vec<(Job, RunResult, f64)> {
        let jobs = shard_jobs(kinds, specs, index0, count);
        let results = run_jobs(&jobs, specs, ratio, cfg);
        jobs.into_iter()
            .zip(results)
            .map(|(job, (r, secs))| (job, r, secs))
            .collect()
    }

    /// Single-threaded reference scheduler: runs the same job list in slot
    /// order on the calling thread. Exists so differential tests can pin
    /// the work-stealing scheduler's output against an implementation with
    /// no scheduling freedom at all.
    pub fn run_sequential(
        kinds: &[SchemeKind],
        specs: &[WorkloadSpec],
        ratio: NmRatio,
        cfg: &EvalConfig,
    ) -> Matrix {
        let flat: Vec<RunResult> = slot_jobs(kinds, specs)
            .iter()
            .map(|j| run_one(j.kind, &specs[j.w], ratio, cfg))
            .collect();
        Matrix::assemble(kinds, specs, ratio, flat)
    }

    /// Splits the flat slot-ordered result vector into baseline + scheme
    /// rows. `sim::shard`'s merge path feeds this the reassembled cells of
    /// a sharded run, which is why it is crate-visible.
    pub(crate) fn assemble(
        kinds: &[SchemeKind],
        specs: &[WorkloadSpec],
        ratio: NmRatio,
        mut flat: Vec<RunResult>,
    ) -> Matrix {
        let baseline: Vec<RunResult> = flat.drain(..specs.len()).collect();
        let mut schemes = Vec::with_capacity(kinds.len());
        for &kind in kinds {
            let runs: Vec<RunResult> = flat.drain(..specs.len()).collect();
            schemes.push(SchemeRow {
                kind,
                label: scheme_label(kind),
                runs,
            });
        }
        Matrix {
            ratio,
            workloads: specs.to_vec(),
            baseline,
            schemes,
        }
    }

    /// Speedup of scheme `s` on workload `w` over the baseline.
    pub fn speedup(&self, s: usize, w: usize) -> f64 {
        self.baseline[w].cycles as f64 / self.schemes[s].runs[w].cycles.max(1) as f64
    }

    /// FM traffic normalized to the baseline's total traffic (Figure 16).
    pub fn fm_traffic_norm(&self, s: usize, w: usize) -> f64 {
        self.schemes[s].runs[w].fm_traffic as f64 / self.baseline[w].fm_traffic.max(1) as f64
    }

    /// NM traffic normalized to the baseline's total (FM) traffic
    /// (Figure 17).
    pub fn nm_traffic_norm(&self, s: usize, w: usize) -> f64 {
        self.schemes[s].runs[w].nm_traffic as f64 / self.baseline[w].fm_traffic.max(1) as f64
    }

    /// Dynamic memory energy normalized to the baseline (Figure 18).
    pub fn energy_norm(&self, s: usize, w: usize) -> f64 {
        self.schemes[s].runs[w].energy_mj / self.baseline[w].energy_mj.max(1e-12)
    }

    /// Fraction of requests served from NM (Figure 15).
    pub fn nm_served(&self, s: usize, w: usize) -> f64 {
        self.schemes[s].runs[w].nm_served
    }

    /// Geomean of `metric(s, w)` over the workloads of `class`
    /// (`None` = all 30).
    pub fn class_geomean<F>(&self, s: usize, class: Option<MpkiClass>, metric: F) -> f64
    where
        F: Fn(&Matrix, usize, usize) -> f64,
    {
        let vals = self
            .workloads
            .iter()
            .enumerate()
            .filter(|(_, spec)| class.is_none_or(|c| spec.class == c))
            .map(|(w, _)| metric(self, s, w).max(1e-9));
        geomean(vals).unwrap_or(0.0)
    }

    /// The Figure-12-shaped summary (High/Medium/Low/All geomeans) of a
    /// metric for every scheme.
    pub fn class_summaries<F>(&self, metric: F) -> Vec<ClassSummary>
    where
        F: Fn(&Matrix, usize, usize) -> f64 + Copy,
    {
        (0..self.schemes.len())
            .map(|s| ClassSummary {
                label: self.schemes[s].label.clone(),
                high: self.class_geomean(s, Some(MpkiClass::High), metric),
                medium: self.class_geomean(s, Some(MpkiClass::Medium), metric),
                low: self.class_geomean(s, Some(MpkiClass::Low), metric),
                all: self.class_geomean(s, None, metric),
            })
            .collect()
    }

    /// Index of the scheme labelled `label`, if present.
    pub fn scheme_index(&self, label: &str) -> Option<usize> {
        self.schemes.iter().position(|s| s.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::catalog;

    #[test]
    fn matrix_smoke_two_schemes_two_workloads() {
        let cfg = EvalConfig {
            scale_den: 256,
            instrs_per_core: 15_000,
            seed: 3,
            threads: 4,
            ..EvalConfig::smoke()
        };
        let specs = [
            catalog::by_name("lbm").unwrap().clone(),
            catalog::by_name("xalanc").unwrap().clone(),
        ];
        let m = Matrix::run(
            &[SchemeKind::Hybrid2, SchemeKind::Tagless],
            &specs,
            NmRatio::OneGb,
            &cfg,
        );
        assert_eq!(m.baseline.len(), 2);
        assert_eq!(m.schemes.len(), 2);
        for s in 0..2 {
            for w in 0..2 {
                let sp = m.speedup(s, w);
                assert!(sp > 0.1 && sp < 20.0, "speedup {sp}");
            }
        }
        // Streaming lbm should speed up clearly on the high-bandwidth NM.
        let h2 = m.scheme_index("HYBRID2").unwrap();
        assert!(m.speedup(h2, 0) > 1.0);
        // Metrics are well-defined.
        assert!(m.nm_served(h2, 0) > 0.0);
        assert!(m.energy_norm(h2, 0) > 0.0);
    }

    #[test]
    fn shard_jobs_partition_the_grid_exactly() {
        let specs = [
            catalog::by_name("lbm").unwrap().clone(),
            catalog::by_name("mcf").unwrap().clone(),
            catalog::by_name("xalanc").unwrap().clone(),
        ];
        let kinds = [SchemeKind::Hybrid2, SchemeKind::Tagless, SchemeKind::Lgm];
        let total = (kinds.len() + 1) * specs.len();
        for count in [1, 2, 3, 5, total, total + 3] {
            let mut seen = vec![false; total];
            for index0 in 0..count {
                let shard = shard_jobs(&kinds, &specs, index0, count);
                // Slot order within a shard, no duplicates across shards.
                assert!(shard.windows(2).all(|p| p[0].slot < p[1].slot));
                for j in shard {
                    assert!(!seen[j.slot], "slot {} assigned twice", j.slot);
                    seen[j.slot] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "not covering for count={count}");
        }
    }

    #[test]
    fn zero_op_baseline_cells_never_produce_nan() {
        // A corrupt or degenerate baseline (zero cycles/traffic/energy)
        // must yield finite normalized metrics — NaN/inf in a speedup or
        // norm would poison golden digests and floor comparisons.
        let zero = RunResult {
            scheme: "BASELINE",
            workload: "lbm".into(),
            cycles: 0,
            instructions: 0,
            mem_ops: 0,
            mpki: 0.0,
            nm_served: 0.0,
            fm_traffic: 0,
            nm_traffic: 0,
            energy_mj: 0.0,
            footprint: 0,
            nm_queue_mean: 0.0,
            nm_queue_max: 0,
            fm_queue_mean: 0.0,
            fm_queue_max: 0,
            stats: Default::default(),
        };
        let specs = [catalog::by_name("lbm").unwrap().clone()];
        let m = Matrix::assemble(
            &[SchemeKind::Hybrid2],
            &specs,
            NmRatio::OneGb,
            vec![zero.clone(), zero],
        );
        for v in [
            m.speedup(0, 0),
            m.fm_traffic_norm(0, 0),
            m.nm_traffic_norm(0, 0),
            m.energy_norm(0, 0),
            m.class_geomean(0, None, Matrix::speedup),
        ] {
            assert!(v.is_finite(), "normalized metric must stay finite: {v}");
        }
    }

    #[test]
    fn run_timed_returns_one_sample_per_slot() {
        let cfg = EvalConfig {
            scale_den: 1024,
            instrs_per_core: 5_000,
            seed: 5,
            threads: 2,
            ..EvalConfig::smoke()
        };
        let specs = [catalog::by_name("lbm").unwrap().clone()];
        let (m, secs) = Matrix::run_timed(&[SchemeKind::Tagless], &specs, NmRatio::OneGb, &cfg);
        assert_eq!(secs.len(), (m.schemes.len() + 1) * m.workloads.len());
        assert!(secs.iter().all(|s| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn matrix_is_deterministic_despite_threads() {
        let cfg = EvalConfig {
            scale_den: 256,
            instrs_per_core: 8_000,
            seed: 5,
            threads: 3,
            ..EvalConfig::smoke()
        };
        let specs = [catalog::by_name("mcf").unwrap().clone()];
        let a = Matrix::run(&[SchemeKind::Lgm], &specs, NmRatio::OneGb, &cfg);
        let b = Matrix::run(&[SchemeKind::Lgm], &specs, NmRatio::OneGb, &cfg);
        assert_eq!(a.schemes[0].runs[0].cycles, b.schemes[0].runs[0].cycles);
        assert_eq!(a.baseline[0].cycles, b.baseline[0].cycles);
    }
}
