//! Random, capacity-proportional page allocation (§4 of the paper).
//!
//! "Through all of our experiments the memory pages are allocated randomly
//! in the HBM or DDR4 proportionally to their capacity." We realize this by
//! allocating each first-touched virtual page a uniformly random free
//! physical page of the scheme's flat space — since the flat space is the
//! concatenation of NM-backed and FM-backed sectors, uniform sampling is
//! exactly capacity-proportional placement. Multi-programmed workloads get
//! one address space per core; multi-threaded workloads share space 0.
//!
//! The `(space, vpage) → frame` map is consulted once per memory op on
//! [`Machine::run`](crate::Machine::run)'s hot path, so it is an
//! open-addressing table with a multiply-xor hash rather than a SipHash
//! `HashMap` — same mapping (frame choice comes from [`SplitMix64`], never
//! from table order), a fraction of the lookup cost.

use sim_types::rng::SplitMix64;
use sim_types::{PAddr, VAddr};

const PAGE: u64 = 4096;

/// Slot sentinel: no key. A real packed key never equals this (it would
/// need space 0xFF *and* an all-ones 56-bit virtual page number).
const EMPTY: u64 = u64::MAX;

/// Finalizer-style multiply-xor hash: one multiplication by an odd
/// constant (the golden-ratio multiplier) to smear low-entropy vpage bits
/// across the word, one xor-shift to fold the well-mixed high half down
/// into the index bits.
#[inline]
fn hash(key: u64) -> u64 {
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^ (h >> 32)
}

/// Open-addressed, linear-probing `(space, vpage) → frame` table.
///
/// Keys are packed as `space << 56 | vpage`; capacity is a power of two
/// grown at ~70% load. Deletion is never needed (pages are not freed), so
/// probing needs no tombstones.
#[derive(Clone, Debug)]
struct FrameTable {
    keys: Vec<u64>,
    frames: Vec<u64>,
    len: usize,
    mask: u64,
}

impl FrameTable {
    fn new() -> Self {
        const INITIAL_SLOTS: usize = 1024;
        FrameTable {
            keys: vec![EMPTY; INITIAL_SLOTS],
            frames: vec![0; INITIAL_SLOTS],
            len: 0,
            mask: INITIAL_SLOTS as u64 - 1,
        }
    }

    #[inline]
    fn pack(space: u8, vpage: u64) -> u64 {
        debug_assert!(vpage < 1 << 56, "virtual page number overflows packing");
        (u64::from(space) << 56) | vpage
    }

    /// Looks `key` up; on absence returns the slot index where it belongs.
    #[inline]
    fn probe(&self, key: u64) -> Result<u64, usize> {
        let mut i = hash(key) & self.mask;
        loop {
            let k = self.keys[i as usize];
            if k == key {
                return Ok(self.frames[i as usize]);
            }
            if k == EMPTY {
                return Err(i as usize);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts a key known to be absent, at the slot `probe` reported.
    fn insert_at(&mut self, slot: usize, key: u64, frame: u64) {
        self.keys[slot] = key;
        self.frames[slot] = frame;
        self.len += 1;
        // Grow at 70% load so probe chains stay short.
        if self.len as u64 * 10 >= (self.mask + 1) * 7 {
            self.grow();
        }
    }

    fn grow(&mut self) {
        let new_slots = (self.keys.len() * 2).max(1024);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_slots]);
        let old_frames = std::mem::replace(&mut self.frames, vec![0; new_slots]);
        self.mask = new_slots as u64 - 1;
        for (k, f) in old_keys.into_iter().zip(old_frames) {
            if k == EMPTY {
                continue;
            }
            let mut i = hash(k) & self.mask;
            while self.keys[i as usize] != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.keys[i as usize] = k;
            self.frames[i as usize] = f;
        }
    }

    #[cfg(test)]
    fn iter_frames(&self) -> impl Iterator<Item = u64> + '_ {
        self.keys
            .iter()
            .zip(&self.frames)
            .filter(|(&k, _)| k != EMPTY)
            .map(|(_, &f)| f)
    }
}

/// Lazy random page table over a fixed physical capacity.
#[derive(Clone, Debug)]
pub struct PageAllocator {
    map: FrameTable,
    free: Vec<u64>,
    rng: SplitMix64,
    capacity_pages: u64,
}

impl PageAllocator {
    /// Creates an allocator over `capacity_bytes` of physical memory.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds no full page.
    pub fn new(capacity_bytes: u64, seed: u64) -> Self {
        let capacity_pages = capacity_bytes / PAGE;
        assert!(capacity_pages > 0, "capacity below one page");
        PageAllocator {
            map: FrameTable::new(),
            free: (0..capacity_pages).collect(),
            rng: SplitMix64::new(seed),
            capacity_pages,
        }
    }

    /// Translates `(space, vaddr)` to a physical address, allocating a
    /// random free page on first touch.
    ///
    /// # Panics
    ///
    /// Panics when physical memory is exhausted — the harness sizes
    /// footprints to fit (the paper does not model page faults either).
    pub fn translate(&mut self, space: u8, vaddr: VAddr) -> PAddr {
        self.translate_tracking(space, vaddr).0
    }

    /// Like [`PageAllocator::translate`], also reporting whether this touch
    /// allocated a fresh page (drives §3.8 OS allocation hints).
    ///
    /// # Panics
    ///
    /// Panics when physical memory is exhausted.
    #[inline]
    pub fn translate_tracking(&mut self, space: u8, vaddr: VAddr) -> (PAddr, bool) {
        let vpage = vaddr.raw() / PAGE;
        let offset = vaddr.raw() % PAGE;
        let key = FrameTable::pack(space, vpage);
        let (ppage, fresh) = match self.map.probe(key) {
            Ok(p) => (p, false),
            Err(slot) => {
                assert!(
                    !self.free.is_empty(),
                    "physical memory exhausted: footprint exceeds the flat space \
                     (the paper's workloads always fit; check scaling)"
                );
                let idx = self.rng.gen_range(self.free.len() as u64) as usize;
                let p = self.free.swap_remove(idx);
                self.map.insert_at(slot, key, p);
                (p, true)
            }
        };
        (PAddr::new(ppage * PAGE + offset), fresh)
    }

    /// Read-only translation: `Some(paddr)` iff `(space, vaddr)`'s page is
    /// already mapped; never allocates. The epoch-batched machine loop uses
    /// this to let a run-ahead core translate through existing mappings
    /// (reads of the table commute with other cores' insertions) while
    /// first touches — which consume the shared RNG stream and must keep
    /// their global order — wait until the core is globally earliest.
    #[inline]
    pub fn lookup(&self, space: u8, vaddr: VAddr) -> Option<PAddr> {
        let vpage = vaddr.raw() / PAGE;
        let offset = vaddr.raw() % PAGE;
        let key = FrameTable::pack(space, vpage);
        self.map
            .probe(key)
            .ok()
            .map(|ppage| PAddr::new(ppage * PAGE + offset))
    }

    /// Order-independent digest (FNV-1a over the sorted entries) of the
    /// complete `(space, vpage) → frame` mapping. Frames are drawn from one
    /// shared RNG stream, so any change in first-touch order permutes the
    /// mapping and changes this digest — it is the observable form of the
    /// allocation-order invariant the batched machine loop must preserve.
    pub fn table_digest(&self) -> u64 {
        let mut entries: Vec<(u64, u64)> = self
            .map
            .keys
            .iter()
            .zip(&self.map.frames)
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &f)| (k, f))
            .collect();
        entries.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (k, f) in entries {
            for word in [k, f] {
                for byte in word.to_le_bytes() {
                    h ^= u64::from(byte);
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
        }
        h
    }

    /// Pages allocated so far.
    pub fn allocated_pages(&self) -> u64 {
        self.map.len as u64
    }

    /// Bytes of distinct memory touched (the measured footprint).
    pub fn footprint_bytes(&self) -> u64 {
        self.allocated_pages() * PAGE
    }

    /// Total physical pages managed.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_is_stable() {
        let mut a = PageAllocator::new(1 << 20, 1);
        let p1 = a.translate(0, VAddr::new(0x1234));
        let p2 = a.translate(0, VAddr::new(0x1234));
        assert_eq!(p1, p2);
        assert_eq!(p1.raw() % PAGE, 0x234);
    }

    #[test]
    fn same_page_same_frame_different_offset() {
        let mut a = PageAllocator::new(1 << 20, 1);
        let p1 = a.translate(0, VAddr::new(0x1000));
        let p2 = a.translate(0, VAddr::new(0x1fff));
        assert_eq!(p1.raw() / PAGE, p2.raw() / PAGE);
    }

    #[test]
    fn spaces_are_isolated() {
        let mut a = PageAllocator::new(1 << 20, 1);
        let p0 = a.translate(0, VAddr::new(0));
        let p1 = a.translate(1, VAddr::new(0));
        assert_ne!(p0.raw() / PAGE, p1.raw() / PAGE);
        assert_eq!(a.allocated_pages(), 2);
    }

    #[test]
    fn placement_is_roughly_uniform() {
        // With NM-backed pages being the first 1/17 of the flat space,
        // uniform placement puts ~1/17 of pages there.
        let mut a = PageAllocator::new(17 << 20, 7);
        for v in 0..1000u64 {
            a.translate(0, VAddr::new(v * PAGE));
        }
        let nm_limit = (1u64 << 20) / PAGE; // first 1/17 of frames
        let in_nm = a.map.iter_frames().filter(|&p| p < nm_limit).count() as f64;
        let frac = in_nm / 1000.0;
        assert!((frac - 1.0 / 17.0).abs() < 0.03, "NM fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = PageAllocator::new(1 << 20, 42);
        let mut b = PageAllocator::new(1 << 20, 42);
        for v in 0..100u64 {
            assert_eq!(
                a.translate(0, VAddr::new(v * PAGE)),
                b.translate(0, VAddr::new(v * PAGE))
            );
        }
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut a = PageAllocator::new(8 * PAGE, 1);
        for v in 0..9u64 {
            a.translate(0, VAddr::new(v * PAGE));
        }
    }

    #[test]
    fn translate_tracking_reports_first_touch() {
        let mut a = PageAllocator::new(1 << 20, 1);
        let (p1, fresh1) = a.translate_tracking(0, VAddr::new(0x1000));
        assert!(fresh1);
        let (p2, fresh2) = a.translate_tracking(0, VAddr::new(0x1008));
        assert!(!fresh2);
        assert_eq!(p1.raw() / PAGE, p2.raw() / PAGE);
    }

    #[test]
    fn footprint_tracks_distinct_pages() {
        let mut a = PageAllocator::new(1 << 20, 1);
        a.translate(0, VAddr::new(0));
        a.translate(0, VAddr::new(100));
        a.translate(0, VAddr::new(PAGE));
        assert_eq!(a.footprint_bytes(), 2 * PAGE);
    }

    /// The open-addressing table must keep every mapping stable across its
    /// growth thresholds (the old HashMap made this free; here rehashing
    /// moves slots, so pin it).
    #[test]
    fn mappings_survive_table_growth() {
        let mut a = PageAllocator::new(1 << 28, 9);
        let n = 5000u64; // crosses several grow() calls from 1024 slots
        let first: Vec<PAddr> = (0..n)
            .map(|v| a.translate(0, VAddr::new(v * PAGE)))
            .collect();
        for v in 0..n {
            assert_eq!(a.translate(0, VAddr::new(v * PAGE)), first[v as usize]);
        }
        assert_eq!(a.allocated_pages(), n);
    }

    /// Frame assignment order must match what any map implementation gives:
    /// it is a pure function of the RNG and the touch sequence.
    #[test]
    fn frame_sequence_is_rng_driven_only() {
        let mut a = PageAllocator::new(1 << 20, 3);
        let mut reference = {
            let mut free: Vec<u64> = (0..(1u64 << 20) / PAGE).collect();
            let mut rng = SplitMix64::new(3);
            move || {
                let idx = rng.gen_range(free.len() as u64) as usize;
                free.swap_remove(idx)
            }
        };
        for v in 0..64u64 {
            let expect = reference();
            assert_eq!(a.translate(2, VAddr::new(v * PAGE)).raw() / PAGE, expect);
        }
    }

    #[test]
    fn lookup_never_allocates_and_agrees_with_translate() {
        let mut a = PageAllocator::new(1 << 20, 1);
        assert_eq!(a.lookup(0, VAddr::new(0x1234)), None);
        assert_eq!(a.allocated_pages(), 0, "lookup must not allocate");
        let p = a.translate(0, VAddr::new(0x1234));
        assert_eq!(a.lookup(0, VAddr::new(0x1234)), Some(p));
        // Same page, different offset: lookup carries the offset through.
        let q = a.lookup(0, VAddr::new(0x1fff)).unwrap();
        assert_eq!(q.raw() / PAGE, p.raw() / PAGE);
        assert_eq!(q.raw() % PAGE, 0xfff);
        assert_eq!(a.lookup(1, VAddr::new(0x1234)), None, "spaces isolated");
    }

    #[test]
    fn table_digest_tracks_allocation_order() {
        let order_a = [0u64, 1, 2, 3];
        let order_b = [3u64, 2, 1, 0];
        let digest_of = |order: &[u64]| {
            let mut a = PageAllocator::new(1 << 20, 5);
            for &v in order {
                a.translate(0, VAddr::new(v * PAGE));
            }
            a.table_digest()
        };
        // Same touch order → same digest; permuted first touches hand the
        // RNG-drawn frames to different pages → different digest.
        assert_eq!(digest_of(&order_a), digest_of(&order_a));
        assert_ne!(digest_of(&order_a), digest_of(&order_b));
    }

    /// Keys that collide into the same slot chain stay distinguishable.
    #[test]
    fn colliding_spaces_and_pages_disambiguate() {
        let mut a = PageAllocator::new(1 << 24, 5);
        let mut seen = std::collections::BTreeSet::new();
        for space in 0..8u8 {
            for v in 0..256u64 {
                let p = a.translate(space, VAddr::new(v * PAGE));
                assert!(seen.insert(p.raw() / PAGE), "frame handed out twice");
            }
        }
        assert_eq!(a.allocated_pages(), 8 * 256);
    }
}
