//! Random, capacity-proportional page allocation (§4 of the paper).
//!
//! "Through all of our experiments the memory pages are allocated randomly
//! in the HBM or DDR4 proportionally to their capacity." We realize this by
//! allocating each first-touched virtual page a uniformly random free
//! physical page of the scheme's flat space — since the flat space is the
//! concatenation of NM-backed and FM-backed sectors, uniform sampling is
//! exactly capacity-proportional placement. Multi-programmed workloads get
//! one address space per core; multi-threaded workloads share space 0.

use sim_types::rng::SplitMix64;
use sim_types::{PAddr, VAddr};
use std::collections::HashMap;

const PAGE: u64 = 4096;

/// Lazy random page table over a fixed physical capacity.
#[derive(Clone, Debug)]
pub struct PageAllocator {
    map: HashMap<(u8, u64), u64>,
    free: Vec<u64>,
    rng: SplitMix64,
    capacity_pages: u64,
}

impl PageAllocator {
    /// Creates an allocator over `capacity_bytes` of physical memory.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds no full page.
    pub fn new(capacity_bytes: u64, seed: u64) -> Self {
        let capacity_pages = capacity_bytes / PAGE;
        assert!(capacity_pages > 0, "capacity below one page");
        PageAllocator {
            map: HashMap::new(),
            free: (0..capacity_pages).collect(),
            rng: SplitMix64::new(seed),
            capacity_pages,
        }
    }

    /// Translates `(space, vaddr)` to a physical address, allocating a
    /// random free page on first touch.
    ///
    /// # Panics
    ///
    /// Panics when physical memory is exhausted — the harness sizes
    /// footprints to fit (the paper does not model page faults either).
    pub fn translate(&mut self, space: u8, vaddr: VAddr) -> PAddr {
        self.translate_tracking(space, vaddr).0
    }

    /// Like [`PageAllocator::translate`], also reporting whether this touch
    /// allocated a fresh page (drives §3.8 OS allocation hints).
    ///
    /// # Panics
    ///
    /// Panics when physical memory is exhausted.
    pub fn translate_tracking(&mut self, space: u8, vaddr: VAddr) -> (PAddr, bool) {
        let vpage = vaddr.raw() / PAGE;
        let offset = vaddr.raw() % PAGE;
        let (ppage, fresh) = match self.map.get(&(space, vpage)) {
            Some(&p) => (p, false),
            None => {
                assert!(
                    !self.free.is_empty(),
                    "physical memory exhausted: footprint exceeds the flat space \
                     (the paper's workloads always fit; check scaling)"
                );
                let idx = self.rng.gen_range(self.free.len() as u64) as usize;
                let p = self.free.swap_remove(idx);
                self.map.insert((space, vpage), p);
                (p, true)
            }
        };
        (PAddr::new(ppage * PAGE + offset), fresh)
    }

    /// Pages allocated so far.
    pub fn allocated_pages(&self) -> u64 {
        self.map.len() as u64
    }

    /// Bytes of distinct memory touched (the measured footprint).
    pub fn footprint_bytes(&self) -> u64 {
        self.allocated_pages() * PAGE
    }

    /// Total physical pages managed.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_is_stable() {
        let mut a = PageAllocator::new(1 << 20, 1);
        let p1 = a.translate(0, VAddr::new(0x1234));
        let p2 = a.translate(0, VAddr::new(0x1234));
        assert_eq!(p1, p2);
        assert_eq!(p1.raw() % PAGE, 0x234);
    }

    #[test]
    fn same_page_same_frame_different_offset() {
        let mut a = PageAllocator::new(1 << 20, 1);
        let p1 = a.translate(0, VAddr::new(0x1000));
        let p2 = a.translate(0, VAddr::new(0x1fff));
        assert_eq!(p1.raw() / PAGE, p2.raw() / PAGE);
    }

    #[test]
    fn spaces_are_isolated() {
        let mut a = PageAllocator::new(1 << 20, 1);
        let p0 = a.translate(0, VAddr::new(0));
        let p1 = a.translate(1, VAddr::new(0));
        assert_ne!(p0.raw() / PAGE, p1.raw() / PAGE);
        assert_eq!(a.allocated_pages(), 2);
    }

    #[test]
    fn placement_is_roughly_uniform() {
        // With NM-backed pages being the first 1/17 of the flat space,
        // uniform placement puts ~1/17 of pages there.
        let mut a = PageAllocator::new(17 << 20, 7);
        for v in 0..1000u64 {
            a.translate(0, VAddr::new(v * PAGE));
        }
        let nm_limit = (1u64 << 20) / PAGE; // first 1/17 of frames
        let in_nm = a.map.values().filter(|&&p| p < nm_limit).count() as f64;
        let frac = in_nm / 1000.0;
        assert!((frac - 1.0 / 17.0).abs() < 0.03, "NM fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = PageAllocator::new(1 << 20, 42);
        let mut b = PageAllocator::new(1 << 20, 42);
        for v in 0..100u64 {
            assert_eq!(
                a.translate(0, VAddr::new(v * PAGE)),
                b.translate(0, VAddr::new(v * PAGE))
            );
        }
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut a = PageAllocator::new(8 * PAGE, 1);
        for v in 0..9u64 {
            a.translate(0, VAddr::new(v * PAGE));
        }
    }

    #[test]
    fn translate_tracking_reports_first_touch() {
        let mut a = PageAllocator::new(1 << 20, 1);
        let (p1, fresh1) = a.translate_tracking(0, VAddr::new(0x1000));
        assert!(fresh1);
        let (p2, fresh2) = a.translate_tracking(0, VAddr::new(0x1008));
        assert!(!fresh2);
        assert_eq!(p1.raw() / PAGE, p2.raw() / PAGE);
    }

    #[test]
    fn footprint_tracks_distinct_pages() {
        let mut a = PageAllocator::new(1 << 20, 1);
        a.translate(0, VAddr::new(0));
        a.translate(0, VAddr::new(100));
        a.translate(0, VAddr::new(PAGE));
        assert_eq!(a.footprint_bytes(), 2 * PAGE);
    }
}
