//! Plain-text table rendering for the experiment reports.

use std::fmt::Write as _;

/// A titled, column-aligned text table.
#[derive(Clone, Debug)]
pub struct Report {
    /// Title printed above the table (e.g. `"Figure 12a — ..."`).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows (each the same length as `header`).
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes printed under the table.
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>, header: Vec<&str>) -> Self {
        Report {
            title: title.into(),
            header: header.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Appends a footnote.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:<width$}", c, width = widths[i]);
            }
            s
        };
        // A zero-column report (title + notes only) has no table to draw;
        // `widths.len() - 1` below would underflow on it.
        if !self.header.is_empty() {
            let _ = writeln!(out, "{}", line(&self.header, &widths));
            let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
            let _ = writeln!(out, "{}", "-".repeat(total));
            for row in &self.rows {
                let _ = writeln!(out, "{}", line(row, &widths));
            }
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }
}

/// Formats a float with 3 decimals (speedups, normalized metrics).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut r = Report::new("Demo", vec!["name", "value"]);
        r.push_row(vec!["alpha".into(), "1.000".into()]);
        r.push_row(vec!["b".into(), "22.5".into()]);
        r.push_note("normalized to baseline");
        let s = r.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("alpha  1.000"));
        assert!(s.contains("note: normalized"));
        // Columns align: 'b' padded to the width of 'alpha'.
        assert!(s.contains("b      22.5"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut r = Report::new("x", vec!["a", "b"]);
        r.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn zero_column_report_renders_title_only() {
        // Regression: `2 * (widths.len() - 1)` underflowed usize on a
        // headerless report and panicked.
        let mut r = Report::new("Empty", Vec::new());
        r.push_note("still prints");
        let s = r.render();
        assert!(s.contains("== Empty =="));
        assert!(s.contains("note: still prints"));
        assert!(!s.contains('-'), "no separator without columns: {s:?}");
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(pct(0.841), "84.1%");
    }
}
