//! Structured per-run telemetry: append-only run records and the
//! queryable result store behind `reproduce query`.
//!
//! Every execution path — [`crate::run_one`] (via the timed grid runner),
//! [`Matrix::run`]/`run_shard`, [`crate::scenario::run_grid`] and the
//! `reproduce` run subcommands — can append one **run record** per
//! simulated (scheme, workload) cell to a *run directory*. A record pins
//! everything needed to reproduce the cell (workload, scheme, NM:FM
//! ratio, scale/instrs/seed/batch/threads, a digest of the
//! result-affecting knobs) next to everything it measured (the full
//! [`RunResult`] including the scheme's [`SchemeStats`] window counters,
//! plus wall-clock seconds and mem-ops/sec simulator throughput).
//!
//! The on-disk format follows the shard-interchange discipline of
//! [`crate::shard`]: versioned (`hybrid2-runlog-v1`), line-oriented,
//! tab-separated, floats as IEEE-754 bit patterns so records round-trip
//! float-bit exactly, and encode/decode destructure [`RunRecord`],
//! [`RunResult`] and [`SchemeStats`] exhaustively so format drift fails
//! to compile instead of silently dropping columns. Each process appends
//! to its own `run-NNNNN.runlog.tsv` file inside the run directory
//! (claimed atomically with `create_new`), so concurrent shard processes
//! never interleave writes; a run directory accumulates files over time —
//! the append-only history `reproduce query` aggregates.
//!
//! Reading is strict, mirroring `reproduce merge`: version and writer
//! headers are mandatory, per-file record sequence numbers must be
//! contiguous from zero, rows must hold exactly [`REC_COLS`] columns, a
//! file whose last line lost its newline is rejected as truncated, and
//! the same writer appearing twice (the same file supplied twice, under
//! any name) is an error naming both files. All failures are `Err`s
//! naming the offending file — never a panic.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use dram::{SchemeStats, ServiceModel};
use sim_types::stats::geomean;

use crate::machine::RunResult;
use crate::matrix::Matrix;
use crate::report::{f3, Report};
use crate::runner::{EvalConfig, SchemeKind};
use crate::scale::NmRatio;
use crate::shard::{
    f64_bits, kind_token, parse_f64_bits, parse_kind_token, parse_ratio_token, parse_u64,
    ratio_token, CellKey,
};

/// First line of every run-record file; bumped on any format change.
/// v2 appended the cluster-dispatcher lease telemetry columns
/// (`lease_wall_secs`, `redeals`); v3 appended the memory-service
/// columns (`service_model`, `queue_depth`, per-side mean/max
/// queue-occupancy).
pub const VERSION: &str = "hybrid2-runlog-v3";

/// Number of tab-separated columns in a `record` row.
pub const REC_COLS: usize = 45;

/// File-name suffix of every record file inside a run directory.
pub const FILE_SUFFIX: &str = ".runlog.tsv";

/// Largest `run-NNNNN` file number a run directory can hold.
const MAX_FILE_NUMBER: u64 = 99_999;

/// How many `create_new` collisions [`RunLog::create`] absorbs after its
/// directory scan before giving up. Collisions past the scan can only
/// come from concurrent writers racing for the same number, so a small
/// fixed budget suffices — and a budget overrun is an error, not a spin.
const CLAIM_RETRIES: u32 = 32;

/// The highest `run-NNNNN` number currently claimed in `dir` (0 if none),
/// so [`RunLog::create`] can start probing past the dense prefix.
fn next_file_number_hint(dir: &Path) -> Result<u64, String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read run directory {}: {e}", dir.display()))?;
    let mut max = 0u64;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name
            .strip_prefix("run-")
            .and_then(|rest| rest.strip_suffix(FILE_SUFFIX))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            max = max.max(num);
        }
    }
    Ok(max)
}

/// One structured run record: the full provenance and measurements of a
/// single simulated (scheme, workload) grid cell.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Which execution path produced the record (`"scenario:all"`,
    /// `"eval:smoke"`, `"bench:e2e"`, …). Free-form, no tabs/newlines.
    pub source: String,
    /// Workload name.
    pub workload: String,
    /// The scheme simulated.
    pub kind: SchemeKind,
    /// The scheme's own display name (as in the paper's figures).
    pub scheme: String,
    /// NM:FM capacity ratio of the run.
    pub ratio: NmRatio,
    /// Capacity divisor vs the paper's system.
    pub scale_den: u64,
    /// Instructions retired per core.
    pub instrs_per_core: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Epoch-batch scheduling knob (never affects results).
    pub batch: u64,
    /// Worker threads of the run (never affects results).
    pub threads: u64,
    /// [`config_digest`] over the result-affecting knobs, for pairing
    /// records of the same logical configuration across runs.
    pub config_digest: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Memory operations replayed (the per-op loop's iteration count).
    pub mem_ops: u64,
    /// Measured LLC misses per kilo-instruction.
    pub mpki: f64,
    /// Fraction of requests served from NM, in [0, 1].
    pub nm_served: f64,
    /// Bytes moved on the FM interface.
    pub fm_traffic: u64,
    /// Bytes moved on the NM interface.
    pub nm_traffic: u64,
    /// Dynamic memory energy in millijoules.
    pub energy_mj: f64,
    /// Measured footprint in bytes.
    pub footprint: u64,
    /// The scheme's per-window counters, recorded whole.
    pub stats: SchemeStats,
    /// Wall-clock seconds the cell took to simulate (telemetry; varies
    /// run to run and machine to machine).
    pub wall_secs: f64,
    /// Simulator throughput in mem-ops/sec ([`ops_per_sec`]; always
    /// finite, 0.0 when no ops ran).
    pub mem_ops_per_sec: f64,
    /// Wall-clock seconds of the cluster *lease* that produced this cell
    /// (deal → accepted result, as observed by the dispatcher). 0.0 for
    /// records from non-cluster sources, where no lease exists.
    pub lease_wall_secs: f64,
    /// How many times the cluster dispatcher re-dealt this cell's shard
    /// slice before a result was accepted (dead/stalled workers). 0 for
    /// non-cluster sources and for slices completed on the first deal.
    pub redeals: u64,
    /// The memory-service model the run simulated under (a
    /// result-affecting knob, unlike batch/threads).
    pub service_model: ServiceModel,
    /// The per-node queue depth of the service model (0 under the
    /// unbounded model); redundant with `service_model` but kept as its
    /// own column so queries can aggregate on depth directly.
    pub queue_depth: u64,
    /// Mean NM service-queue occupancy at admission (0 when unbounded).
    pub nm_queue_mean: f64,
    /// Peak NM service-queue occupancy at admission.
    pub nm_queue_max: u64,
    /// Mean FM service-queue occupancy at admission.
    pub fm_queue_mean: f64,
    /// Peak FM service-queue occupancy at admission.
    pub fm_queue_max: u64,
}

impl RunRecord {
    /// Builds a record from one run's result and its wall-clock seconds.
    pub fn new(
        source: &str,
        kind: SchemeKind,
        ratio: NmRatio,
        cfg: &EvalConfig,
        r: &RunResult,
        wall_secs: f64,
    ) -> RunRecord {
        // Destructure exhaustively: a new RunResult field must not
        // compile until the record format learns about it.
        let RunResult {
            scheme,
            ref workload,
            cycles,
            instructions,
            mem_ops,
            mpki,
            nm_served,
            fm_traffic,
            nm_traffic,
            energy_mj,
            footprint,
            nm_queue_mean,
            nm_queue_max,
            fm_queue_mean,
            fm_queue_max,
            ref stats,
        } = *r;
        RunRecord {
            source: source.to_owned(),
            workload: workload.to_owned(),
            kind,
            scheme: scheme.to_owned(),
            ratio,
            scale_den: cfg.scale_den,
            instrs_per_core: cfg.instrs_per_core,
            seed: cfg.seed,
            batch: cfg.batch as u64,
            threads: cfg.threads as u64,
            config_digest: config_digest(ratio, cfg),
            cycles,
            instructions,
            mem_ops,
            mpki,
            nm_served,
            fm_traffic,
            nm_traffic,
            energy_mj,
            footprint,
            stats: stats.clone(),
            wall_secs,
            mem_ops_per_sec: ops_per_sec(mem_ops, wall_secs),
            lease_wall_secs: 0.0,
            redeals: 0,
            service_model: cfg.service,
            queue_depth: u64::from(cfg.service.queue_depth()),
            nm_queue_mean,
            nm_queue_max,
            fm_queue_mean,
            fm_queue_max,
        }
    }

    /// Attaches cluster lease telemetry: `lease_wall_secs` is the deal →
    /// accepted-result wall clock of the slice that carried this cell,
    /// `redeals` how often the dispatcher had to re-deal that slice.
    pub fn with_lease(mut self, lease_wall_secs: f64, redeals: u64) -> RunRecord {
        self.lease_wall_secs = lease_wall_secs;
        self.redeals = redeals;
        self
    }
}

/// Simulator throughput in mem-ops/sec, guarded so the result is always
/// finite: zero ops yield 0.0, and an elapsed reading that rounds to
/// (or below) zero on a fast machine is clamped to a nanosecond instead
/// of dividing by zero — NaN/inf must never reach a record, a golden
/// digest or a floor comparison.
pub fn ops_per_sec(mem_ops: u64, secs: f64) -> f64 {
    if mem_ops == 0 {
        return 0.0;
    }
    // f64::max ignores a NaN operand, so even a poisoned elapsed
    // reading clamps to the 1 ns floor rather than propagating.
    mem_ops as f64 / secs.max(1e-9)
}

/// FNV-1a digest over the *result-affecting* knobs (ratio, scale,
/// instrs, seed, service model). Threads, batch and machine-threads are
/// deliberately excluded — the scheduler's byte-identity contracts make
/// them irrelevant to results, so records from a `--batch 1` reference
/// run pair with batched or parallel-stepped runs. The service model is
/// *included*: bounded queues change every latency, so a queued record
/// must never pair with an unbounded baseline.
pub fn config_digest(ratio: NmRatio, cfg: &EvalConfig) -> u64 {
    // Exhaustive destructure: adding an EvalConfig field forces a
    // decision on whether it affects results.
    let EvalConfig {
        scale_den,
        instrs_per_core,
        seed,
        threads: _,
        batch: _,
        machine_threads: _,
        service,
    } = *cfg;
    let canon = format!(
        "ratio={};scale={scale_den};instrs={instrs_per_core};seed={seed};service={}",
        ratio_token(ratio),
        service.token()
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canon.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Replaces the characters the line-oriented format reserves.
fn sanitize(s: &str) -> String {
    s.replace(['\t', '\n', '\r'], "-")
}

/// Encodes one record row. `seq` is the record's 0-based position within
/// its file.
fn encode_record(rec: &RunRecord, seq: u64) -> String {
    // Exhaustive destructure: format drift fails to compile.
    let RunRecord {
        ref source,
        ref workload,
        kind,
        ref scheme,
        ratio,
        scale_den,
        instrs_per_core,
        seed,
        batch,
        threads,
        config_digest,
        cycles,
        instructions,
        mem_ops,
        mpki,
        nm_served,
        fm_traffic,
        nm_traffic,
        energy_mj,
        footprint,
        ref stats,
        wall_secs,
        mem_ops_per_sec,
        lease_wall_secs,
        redeals,
        service_model,
        queue_depth,
        nm_queue_mean,
        nm_queue_max,
        fm_queue_mean,
        fm_queue_max,
    } = *rec;
    let SchemeStats {
        requests,
        reads,
        writes,
        served_from_nm,
        lookup_hits,
        lookup_misses,
        moved_into_nm,
        moved_out_of_nm,
        dirty_writebacks,
        metadata_reads,
        metadata_writes,
        fetched_bytes,
        used_bytes,
    } = *stats;
    let mut line = String::with_capacity(256);
    let _ = writeln!(
        line,
        "record\t{seq}\t{source}\t{workload}\t{kind}\t{scheme}\t{ratio}\t{scale_den}\t\
         {instrs_per_core}\t{seed}\t{batch}\t{threads}\t{config_digest:016x}\t{cycles}\t\
         {instructions}\t{mem_ops}\t{mpki}\t{nm_served}\t{fm_traffic}\t{nm_traffic}\t{energy}\t\
         {footprint}\t{requests}\t{reads}\t{writes}\t{served_from_nm}\t{lookup_hits}\t\
         {lookup_misses}\t{moved_into_nm}\t{moved_out_of_nm}\t{dirty_writebacks}\t\
         {metadata_reads}\t{metadata_writes}\t{fetched_bytes}\t{used_bytes}\t{wall_secs}\t\
         {mem_ops_per_sec}\t{lease_wall_secs}\t{redeals}\t{service}\t{queue_depth}\t\
         {nm_queue_mean}\t{nm_queue_max}\t{fm_queue_mean}\t{fm_queue_max}",
        source = sanitize(source),
        workload = sanitize(workload),
        kind = kind_token(kind),
        scheme = sanitize(scheme),
        ratio = ratio_token(ratio),
        mpki = f64_bits(mpki),
        nm_served = f64_bits(nm_served),
        energy = f64_bits(energy_mj),
        wall_secs = f64_bits(wall_secs),
        mem_ops_per_sec = f64_bits(mem_ops_per_sec),
        lease_wall_secs = f64_bits(lease_wall_secs),
        service = service_model.token(),
        nm_queue_mean = f64_bits(nm_queue_mean),
        fm_queue_mean = f64_bits(fm_queue_mean),
    );
    line
}

/// Decodes one `record` row (already split into columns).
fn decode_record(cols: &[&str]) -> Result<(u64, RunRecord), String> {
    let u = |i: usize, what: &str| parse_u64(cols[i], what);
    let fb = |i: usize, what: &str| parse_f64_bits(cols[i], what);
    let seq = u(1, "record sequence")?;
    let config_digest = u64::from_str_radix(cols[12], 16)
        .map_err(|_| format!("config digest {:?} is not a hex integer", cols[12]))?;
    let rec = RunRecord {
        source: cols[2].to_owned(),
        workload: cols[3].to_owned(),
        kind: parse_kind_token(cols[4])?,
        scheme: cols[5].to_owned(),
        ratio: parse_ratio_token(cols[6])?,
        scale_den: u(7, "scale")?,
        instrs_per_core: u(8, "instrs")?,
        seed: u(9, "seed")?,
        batch: u(10, "batch")?,
        threads: u(11, "threads")?,
        config_digest,
        cycles: u(13, "cycles")?,
        instructions: u(14, "instructions")?,
        mem_ops: u(15, "mem_ops")?,
        mpki: fb(16, "mpki")?,
        nm_served: fb(17, "nm_served")?,
        fm_traffic: u(18, "fm_traffic")?,
        nm_traffic: u(19, "nm_traffic")?,
        energy_mj: fb(20, "energy_mj")?,
        footprint: u(21, "footprint")?,
        stats: SchemeStats {
            requests: u(22, "requests")?,
            reads: u(23, "reads")?,
            writes: u(24, "writes")?,
            served_from_nm: u(25, "served_from_nm")?,
            lookup_hits: u(26, "lookup_hits")?,
            lookup_misses: u(27, "lookup_misses")?,
            moved_into_nm: u(28, "moved_into_nm")?,
            moved_out_of_nm: u(29, "moved_out_of_nm")?,
            dirty_writebacks: u(30, "dirty_writebacks")?,
            metadata_reads: u(31, "metadata_reads")?,
            metadata_writes: u(32, "metadata_writes")?,
            fetched_bytes: u(33, "fetched_bytes")?,
            used_bytes: u(34, "used_bytes")?,
        },
        wall_secs: fb(35, "wall_secs")?,
        mem_ops_per_sec: fb(36, "mem_ops_per_sec")?,
        lease_wall_secs: fb(37, "lease_wall_secs")?,
        redeals: u(38, "redeals")?,
        service_model: ServiceModel::parse(cols[39])
            .ok_or_else(|| format!("unknown service model {:?}", cols[39]))?,
        queue_depth: u(40, "queue_depth")?,
        nm_queue_mean: fb(41, "nm_queue_mean")?,
        nm_queue_max: u(42, "nm_queue_max")?,
        fm_queue_mean: fb(43, "fm_queue_mean")?,
        fm_queue_max: u(44, "fm_queue_max")?,
    };
    Ok((seq, rec))
}

/// An open, append-only run-record file inside a run directory.
///
/// Each [`RunLog::create`] claims a fresh `run-NNNNN.runlog.tsv` with
/// `create_new`, so concurrent processes writing to the same directory
/// never share a file. Every I/O failure surfaces as an `Err` naming the
/// path — a record that fails to append mid-line leaves a file the
/// strict reader rejects as truncated, never a silently-short history.
#[derive(Debug)]
pub struct RunLog {
    path: PathBuf,
    file: File,
    seq: u64,
}

impl RunLog {
    /// Creates the run directory (if needed) and claims the next free
    /// record file in it, stamping the version and writer headers. The
    /// writer identity embeds the process id and a nanosecond timestamp,
    /// so two invocations never collide — the reader uses it to reject
    /// the same *file* supplied twice while still accepting two
    /// identical *runs*.
    pub fn create(dir: &Path, context: &str) -> Result<RunLog, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create run directory {}: {e}", dir.display()))?;
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let writer = sanitize(&format!("{context}.{}.{nanos}", std::process::id()));
        // Scan for the highest claimed number first, so a dense run
        // directory costs one readdir, not one failed create_new per
        // existing file. The claim loop after the scan only has to absorb
        // *races* (another process claiming the same number between our
        // scan and our create), so its retry budget is small and fixed —
        // exhausting it is an error naming the directory, never a spin.
        let mut next: u64 = 1 + next_file_number_hint(dir)?;
        for _ in 0..CLAIM_RETRIES {
            if next > MAX_FILE_NUMBER {
                break;
            }
            let path = dir.join(format!("run-{next:05}{FILE_SUFFIX}"));
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    file.write_all(format!("{VERSION}\nwriter\t{writer}\n").as_bytes())
                        .map_err(|e| {
                            format!("cannot write run-record header to {}: {e}", path.display())
                        })?;
                    return Ok(RunLog { path, file, seq: 0 });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => next += 1,
                Err(e) => {
                    return Err(format!(
                        "cannot create run-record file {}: {e}",
                        path.display()
                    ))
                }
            }
        }
        Err(format!(
            "cannot claim a run-record file in {} after {CLAIM_RETRIES} attempts \
             (next candidate run-{next:05}{FILE_SUFFIX}, cap {MAX_FILE_NUMBER})",
            dir.display()
        ))
    }

    /// The file this log appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record. Sequence numbers are assigned here, in append
    /// order, starting at 0.
    pub fn append(&mut self, rec: &RunRecord) -> Result<(), String> {
        let line = encode_record(rec, self.seq);
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| format!("cannot append run record to {}: {e}", self.path.display()))?;
        self.seq += 1;
        Ok(())
    }
}

/// Appends one record per cell of an assembled [`Matrix`], in slot order
/// (baseline rows first, then each scheme row). `wall_secs` is the
/// per-slot timing vector of [`Matrix::run_timed`].
pub fn record_matrix(
    log: &mut RunLog,
    source: &str,
    m: &Matrix,
    wall_secs: &[f64],
    cfg: &EvalConfig,
) -> Result<(), String> {
    let n = m.workloads.len();
    assert_eq!(
        wall_secs.len(),
        (m.schemes.len() + 1) * n,
        "one wall-clock sample per grid slot"
    );
    for (w, r) in m.baseline.iter().enumerate() {
        log.append(&RunRecord::new(
            source,
            SchemeKind::Baseline,
            m.ratio,
            cfg,
            r,
            wall_secs[w],
        ))?;
    }
    for (s, row) in m.schemes.iter().enumerate() {
        for (w, r) in row.runs.iter().enumerate() {
            log.append(&RunRecord::new(
                source,
                row.kind,
                m.ratio,
                cfg,
                r,
                wall_secs[(s + 1) * n + w],
            ))?;
        }
    }
    Ok(())
}

/// Appends one record per sharded grid cell (the timed `(cell, result,
/// wall-secs)` triples of a `--shard` run), in slot order.
pub fn record_cells(
    log: &mut RunLog,
    source: &str,
    ratio: NmRatio,
    cfg: &EvalConfig,
    cells: &[(CellKey, RunResult, f64)],
) -> Result<(), String> {
    for (key, r, secs) in cells {
        log.append(&RunRecord::new(source, key.kind, ratio, cfg, r, *secs))?;
    }
    Ok(())
}

/// One parsed record file.
struct DecodedFile {
    writer: String,
    records: Vec<RunRecord>,
}

/// Parses one record file, strictly (see the module docs).
fn decode_file(contents: &str) -> Result<DecodedFile, String> {
    if contents.is_empty() {
        return Err("empty run-record file".to_owned());
    }
    if !contents.ends_with('\n') {
        return Err("file is truncated (last line has no newline)".to_owned());
    }
    let mut lines = contents.lines();
    match lines.next() {
        Some(v) if v == VERSION => {}
        Some(v) => {
            return Err(format!(
                "unsupported run-record format {v:?} (expected {VERSION})"
            ))
        }
        None => return Err("empty run-record file".to_owned()),
    }
    let writer = match lines.next().map(|l| l.split('\t').collect::<Vec<_>>()) {
        Some(cols) if cols.len() == 2 && cols[0] == "writer" => cols[1].to_owned(),
        other => return Err(format!("missing writer header, got {other:?}")),
    };
    let mut records = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.first() != Some(&"record") {
            return Err(format!("expected record row, got {line:?}"));
        }
        if cols.len() != REC_COLS {
            return Err(format!(
                "record row has {} columns, expected {REC_COLS}: {line:?}",
                cols.len()
            ));
        }
        let (seq, rec) = decode_record(&cols)?;
        if seq != records.len() as u64 {
            return Err(format!(
                "record sequence broken: expected {}, found {seq} (rows missing or spliced?)",
                records.len()
            ));
        }
        records.push(rec);
    }
    Ok(DecodedFile { writer, records })
}

/// An assembled result store: every record of every supplied file, in a
/// deterministic global order (files sorted by name, records in file
/// order). A record's position in [`Store::records`] is its *global
/// record id* — the number `reproduce query --since-record` filters on.
#[derive(Debug)]
pub struct Store {
    /// Number of files the store was read from.
    pub files: usize,
    /// All records; the index is the global record id.
    pub records: Vec<RunRecord>,
}

/// Reads a store from `(name, contents)` pairs (names only for error
/// messages and ordering). Input order is irrelevant: files are sorted
/// by name, so any enumeration order yields a byte-identical store.
/// Rejects the same writer appearing twice — the same file supplied
/// twice under any name — naming both files.
pub fn read_store(inputs: &[(String, String)]) -> Result<Store, String> {
    let mut sorted: Vec<&(String, String)> = inputs.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut writers: BTreeMap<String, String> = BTreeMap::new();
    let mut records = Vec::new();
    for (name, contents) in sorted {
        let f = decode_file(contents).map_err(|e| format!("{name}: {e}"))?;
        if let Some(prev) = writers.insert(f.writer.clone(), name.clone()) {
            return Err(format!(
                "writer {:?} appears in both {prev} and {name} (same record file supplied twice?)",
                f.writer
            ));
        }
        records.extend(f.records);
    }
    Ok(Store {
        files: inputs.len(),
        records,
    })
}

/// Collects the record files (`*.runlog.tsv`) of a run directory as
/// `(name, contents)` pairs, sorted by name. `Err` if the directory is
/// unreadable or holds no record files.
pub fn dir_inputs(dir: &Path) -> Result<Vec<(String, String)>, String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read run directory {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let path = entry.path();
        if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(FILE_SUFFIX))
        {
            paths.push(path);
        }
    }
    if paths.is_empty() {
        return Err(format!(
            "no run-record files (*{FILE_SUFFIX}) in {}",
            dir.display()
        ));
    }
    paths.sort();
    let mut inputs = Vec::with_capacity(paths.len());
    for path in paths {
        let contents = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        inputs.push((path.display().to_string(), contents));
    }
    Ok(inputs)
}

/// The filters of one `reproduce query` invocation. `None` means "any".
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Query {
    /// Keep records of this scheme only.
    pub scheme: Option<SchemeKind>,
    /// Keep records of this workload only.
    pub workload: Option<String>,
    /// Keep records of this NM:FM ratio only.
    pub ratio: Option<NmRatio>,
    /// Keep records of this memory-service model only (exact match,
    /// depth included: `queued:8` does not match `queued:4`).
    pub service: Option<ServiceModel>,
    /// Keep records with a global record id ≥ this.
    pub since_record: Option<usize>,
}

impl Query {
    fn matches(&self, id: usize, r: &RunRecord) -> bool {
        self.since_record.is_none_or(|n| id >= n)
            && self.scheme.is_none_or(|k| r.kind == k)
            && self.workload.as_deref().is_none_or(|w| r.workload == w)
            && self.ratio.is_none_or(|rt| r.ratio == rt)
            && self.service.is_none_or(|s| r.service_model == s)
    }
}

/// Formats a throughput value (mem-ops/sec) for the query tables.
fn fops(v: f64) -> String {
    format!("{v:.0}")
}

/// Aggregate of one scheme's matched values: total count, the count of
/// finite positive samples actually aggregated, then geomean/min/max over
/// those samples. The two counts render side by side so a store whose
/// records carry no throughput reading (for example zero-rate rows from an
/// old cluster dispatcher) shows "counted 10, aggregated 3" instead of
/// passing a geomean of 3 values off as a geomean of 10.
fn summarize(vals: &[f64]) -> [String; 5] {
    let clean: Vec<f64> = vals
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    let fmt = |v: Option<f64>, f: fn(f64) -> String| v.map(f).unwrap_or_else(|| "-".to_owned());
    [
        vals.len().to_string(),
        clean.len().to_string(),
        fmt(geomean(clean.iter().copied()), fops),
        fmt(clean.iter().copied().reduce(f64::min), fops),
        fmt(clean.iter().copied().reduce(f64::max), fops),
    ]
}

/// Runs a query over a store, returning the rendered-ready reports: a
/// per-scheme mem-ops/sec throughput summary and a per-scheme speedup
/// summary (each non-baseline record paired with the baseline records of
/// the same workload, ratio and [`config_digest`], drawn from the whole
/// store so scheme filters never starve the pairing). Output depends
/// only on the store contents — same records, any file order, same
/// bytes.
pub fn run_query(store: &Store, q: &Query) -> Vec<Report> {
    let matched: Vec<(usize, &RunRecord)> = store
        .records
        .iter()
        .enumerate()
        .filter(|(id, r)| q.matches(*id, r))
        .collect();

    // Throughput by scheme (BTreeMap: deterministic row order).
    let mut rates: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for (_, r) in &matched {
        rates
            .entry(kind_token(r.kind))
            .or_default()
            .push(r.mem_ops_per_sec);
    }
    let mut thr = Report::new(
        "Run records — simulator throughput by scheme",
        vec![
            "scheme",
            "records",
            "samples",
            "geomean ops/s",
            "min ops/s",
            "max ops/s",
        ],
    );
    for (tok, vals) in &rates {
        let [count, samples, gm, min, max] = summarize(vals);
        thr.push_row(vec![tok.clone(), count, samples, gm, min, max]);
    }
    thr.push_note(format!(
        "records: {} of {} from {} file(s)",
        matched.len(),
        store.records.len(),
        store.files
    ));

    // Baseline cycles by (workload, ratio, config digest), store-wide.
    let mut base: BTreeMap<(String, &'static str, u64), Vec<f64>> = BTreeMap::new();
    for r in &store.records {
        if r.kind == SchemeKind::Baseline && r.cycles > 0 {
            base.entry((r.workload.clone(), ratio_token(r.ratio), r.config_digest))
                .or_default()
                .push(r.cycles as f64);
        }
    }
    let mut speedups: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for (_, r) in &matched {
        if r.kind == SchemeKind::Baseline || r.cycles == 0 {
            continue;
        }
        let key = (r.workload.clone(), ratio_token(r.ratio), r.config_digest);
        // Matching baselines of a deterministic run all recorded the
        // same cycle count; the geomean tolerates histories that mix
        // configurations the digest cannot tell apart.
        let Some(b) = base.get(&key).and_then(|bs| geomean(bs.iter().copied())) else {
            continue;
        };
        if b > 0.0 {
            speedups
                .entry(kind_token(r.kind))
                .or_default()
                .push(b / r.cycles as f64);
        }
    }
    let mut sp = Report::new(
        "Run records — speedup over recorded baseline",
        vec!["scheme", "paired", "geomean", "min", "max"],
    );
    for (tok, vals) in &speedups {
        let fmt = |v: Option<f64>| v.map(f3).unwrap_or_else(|| "-".to_owned());
        sp.push_row(vec![
            tok.clone(),
            vals.len().to_string(),
            fmt(geomean(vals.iter().copied())),
            fmt(vals.iter().copied().reduce(f64::min)),
            fmt(vals.iter().copied().reduce(f64::max)),
        ]);
    }
    sp.push_note(
        "pairs each record with baseline records of the same (workload, ratio, config digest)",
    );
    vec![thr, sp]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scratch directory inside the workspace `target/` tree (tests
    /// must not touch paths outside the repository).
    fn temp_dir(tag: &str) -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/test-tmp"
        ))
        .join(format!("runlog-{tag}-{}-{nanos}", std::process::id()))
    }

    /// A record with adversarial float bit patterns decimal formatting
    /// would destroy.
    fn nasty_record(slot: u64) -> RunRecord {
        let cfg = EvalConfig::smoke();
        RunRecord {
            source: "test:unit".to_owned(),
            workload: format!("w{slot}"),
            kind: if slot == 0 {
                SchemeKind::Baseline
            } else {
                SchemeKind::Hybrid2
            },
            scheme: "HYBRID2".to_owned(),
            ratio: NmRatio::OneGb,
            scale_den: cfg.scale_den,
            instrs_per_core: cfg.instrs_per_core,
            seed: cfg.seed,
            batch: 64,
            threads: 4,
            config_digest: config_digest(NmRatio::OneGb, &cfg),
            cycles: 1000 + slot,
            instructions: 77 * slot + 1,
            mem_ops: 13 * slot + 3,
            mpki: (slot as f64 + 0.1) / 3.0,
            nm_served: if slot.is_multiple_of(2) {
                -0.0
            } else {
                f64::MIN_POSITIVE
            },
            fm_traffic: slot << 20,
            nm_traffic: slot << 18,
            energy_mj: 1e-300 * (slot + 1) as f64,
            footprint: 4096 * slot,
            stats: SchemeStats {
                requests: slot,
                reads: slot / 2,
                writes: slot - slot / 2,
                served_from_nm: slot / 3,
                lookup_hits: 2 * slot,
                lookup_misses: slot + 5,
                moved_into_nm: slot % 7,
                moved_out_of_nm: slot % 5,
                dirty_writebacks: slot % 3,
                metadata_reads: 9 * slot,
                metadata_writes: 8 * slot,
                fetched_bytes: slot << 10,
                used_bytes: slot << 9,
            },
            wall_secs: 1e-9 * (slot + 1) as f64,
            mem_ops_per_sec: ops_per_sec(13 * slot + 3, 1e-9 * (slot + 1) as f64),
            lease_wall_secs: 0.25 * slot as f64 + f64::MIN_POSITIVE,
            redeals: slot % 4,
            service_model: if slot.is_multiple_of(2) {
                ServiceModel::Unbounded
            } else {
                ServiceModel::Queued { depth: slot as u32 }
            },
            queue_depth: if slot.is_multiple_of(2) { 0 } else { slot },
            nm_queue_mean: -0.0 + slot as f64 / 7.0,
            nm_queue_max: slot * 2,
            fm_queue_mean: f64::MIN_POSITIVE * (slot + 1) as f64,
            fm_queue_max: slot,
        }
    }

    fn bits_equal(a: &RunRecord, b: &RunRecord) {
        assert_eq!(a.source, b.source);
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.scheme, b.scheme);
        assert_eq!(a.ratio, b.ratio);
        assert_eq!(
            (a.scale_den, a.instrs_per_core, a.seed, a.batch, a.threads),
            (b.scale_den, b.instrs_per_core, b.seed, b.batch, b.threads)
        );
        assert_eq!(a.config_digest, b.config_digest);
        assert_eq!(
            (a.cycles, a.instructions, a.mem_ops),
            (b.cycles, b.instructions, b.mem_ops)
        );
        assert_eq!(a.mpki.to_bits(), b.mpki.to_bits());
        assert_eq!(a.nm_served.to_bits(), b.nm_served.to_bits());
        assert_eq!(
            (a.fm_traffic, a.nm_traffic, a.footprint),
            (b.fm_traffic, b.nm_traffic, b.footprint)
        );
        assert_eq!(a.energy_mj.to_bits(), b.energy_mj.to_bits());
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.wall_secs.to_bits(), b.wall_secs.to_bits());
        assert_eq!(a.mem_ops_per_sec.to_bits(), b.mem_ops_per_sec.to_bits());
        assert_eq!(a.lease_wall_secs.to_bits(), b.lease_wall_secs.to_bits());
        assert_eq!(a.redeals, b.redeals);
        assert_eq!(a.service_model, b.service_model);
        assert_eq!(a.queue_depth, b.queue_depth);
        assert_eq!(a.nm_queue_mean.to_bits(), b.nm_queue_mean.to_bits());
        assert_eq!(a.nm_queue_max, b.nm_queue_max);
        assert_eq!(a.fm_queue_mean.to_bits(), b.fm_queue_mean.to_bits());
        assert_eq!(a.fm_queue_max, b.fm_queue_max);
    }

    #[test]
    fn ops_per_sec_is_always_finite() {
        assert_eq!(ops_per_sec(0, 0.0), 0.0);
        assert_eq!(ops_per_sec(0, f64::NAN), 0.0);
        for secs in [0.0, -1.0, 1e-300, f64::NAN, 1.5] {
            let v = ops_per_sec(1_000, secs);
            assert!(v.is_finite() && v >= 0.0, "secs={secs} -> {v}");
        }
        assert_eq!(ops_per_sec(300, 2.0), 150.0);
    }

    #[test]
    fn config_digest_ignores_scheduling_knobs() {
        let a = EvalConfig::smoke();
        let mut b = a;
        b.threads = 1;
        b.batch = 1;
        assert_eq!(
            config_digest(NmRatio::OneGb, &a),
            config_digest(NmRatio::OneGb, &b)
        );
        let mut c = a;
        c.seed = a.seed + 1;
        assert_ne!(
            config_digest(NmRatio::OneGb, &a),
            config_digest(NmRatio::OneGb, &c)
        );
        assert_ne!(
            config_digest(NmRatio::OneGb, &a),
            config_digest(NmRatio::TwoGb, &a)
        );
        // The service model is a result-affecting knob: changing it (or
        // just the depth) must change the digest, so queued records never
        // pair with unbounded baselines.
        let mut q = a;
        q.service = ServiceModel::Queued { depth: 8 };
        assert_ne!(
            config_digest(NmRatio::OneGb, &a),
            config_digest(NmRatio::OneGb, &q)
        );
        let mut q4 = a;
        q4.service = ServiceModel::Queued { depth: 4 };
        assert_ne!(
            config_digest(NmRatio::OneGb, &q),
            config_digest(NmRatio::OneGb, &q4)
        );
    }

    #[test]
    fn write_read_round_trips_float_bits() {
        let dir = temp_dir("roundtrip");
        let want: Vec<RunRecord> = (0..5).map(nasty_record).collect();
        let mut log = RunLog::create(&dir, "unit").unwrap();
        for r in &want {
            log.append(r).unwrap();
        }
        let store = read_store(&dir_inputs(&dir).unwrap()).unwrap();
        assert_eq!(store.files, 1);
        assert_eq!(store.records.len(), want.len());
        for (got, want) in store.records.iter().zip(&want) {
            bits_equal(got, want);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reader_rejects_same_file_twice_and_names_both() {
        let dir = temp_dir("dup");
        let mut log = RunLog::create(&dir, "unit").unwrap();
        log.append(&nasty_record(1)).unwrap();
        let contents = std::fs::read_to_string(log.path()).unwrap();
        let e = read_store(&[
            ("a.runlog.tsv".to_owned(), contents.clone()),
            ("b-copy.runlog.tsv".to_owned(), contents),
        ])
        .unwrap_err();
        assert!(
            e.contains("a.runlog.tsv") && e.contains("b-copy.runlog.tsv"),
            "{e}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reader_rejects_truncation_and_splice() {
        let dir = temp_dir("trunc");
        let mut log = RunLog::create(&dir, "unit").unwrap();
        for s in 0..3 {
            log.append(&nasty_record(s)).unwrap();
        }
        let good = std::fs::read_to_string(log.path()).unwrap();

        // Mid-value truncation of the final line: the cut row still has
        // the right column count and still parses as a number, so only
        // the missing trailing newline betrays it.
        let cut = &good[..good.len() - 2];
        let e = read_store(&[("t.runlog.tsv".to_owned(), cut.to_owned())]).unwrap_err();
        assert!(e.contains("truncated") && e.contains("t.runlog.tsv"), "{e}");

        // A deleted middle row breaks the sequence.
        let lines: Vec<&str> = good.lines().collect();
        let spliced = format!(
            "{}\n",
            lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != 3)
                .map(|(_, l)| *l)
                .collect::<Vec<_>>()
                .join("\n")
        );
        let e = read_store(&[("s.runlog.tsv".to_owned(), spliced)]).unwrap_err();
        assert!(e.contains("sequence"), "{e}");

        // A wrong column count is named, not panicked on.
        let short_row = format!("{}record\t3\tonly\tfour\tcols\n", good);
        let e = read_store(&[("c.runlog.tsv".to_owned(), short_row)]).unwrap_err();
        assert!(e.contains("columns"), "{e}");

        // Wrong version and a missing writer header are clear errors.
        let e = read_store(&[("v.runlog.tsv".to_owned(), "hybrid2-runlog-v0\n".to_owned())])
            .unwrap_err();
        assert!(e.contains("unsupported"), "{e}");
        let e = read_store(&[("w.runlog.tsv".to_owned(), format!("{VERSION}\n"))]).unwrap_err();
        assert!(e.contains("writer"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reader_accepts_crlf_with_identical_bits() {
        let dir = temp_dir("crlf");
        let want: Vec<RunRecord> = (0..3).map(nasty_record).collect();
        let mut log = RunLog::create(&dir, "unit").unwrap();
        for r in &want {
            log.append(r).unwrap();
        }
        let crlf = std::fs::read_to_string(log.path())
            .unwrap()
            .replace('\n', "\r\n");
        let store = read_store(&[("crlf.runlog.tsv".to_owned(), crlf)]).unwrap();
        for (got, want) in store.records.iter().zip(&want) {
            bits_equal(got, want);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_filters_and_aggregates_deterministically() {
        let recs: Vec<RunRecord> = (0..6).map(nasty_record).collect();
        let store = Store {
            files: 1,
            records: recs,
        };
        let all = run_query(&store, &Query::default());
        assert_eq!(all.len(), 2);
        let text = all[0].render();
        assert!(text.contains("records: 6 of 6"), "{text}");

        let filtered = run_query(
            &store,
            &Query {
                scheme: Some(SchemeKind::Hybrid2),
                since_record: Some(2),
                ..Query::default()
            },
        );
        assert!(filtered[0].render().contains("records: 4 of 6"));

        // Service filter is exact: unbounded matches the 3 even slots,
        // queued:3 matches exactly slot 3, queued:8 matches nothing.
        let by_service = |s| {
            run_query(
                &store,
                &Query {
                    service: Some(s),
                    ..Query::default()
                },
            )[0]
            .render()
        };
        assert!(by_service(ServiceModel::Unbounded).contains("records: 3 of 6"));
        assert!(by_service(ServiceModel::Queued { depth: 3 }).contains("records: 1 of 6"));
        assert!(by_service(ServiceModel::Queued { depth: 8 }).contains("records: 0 of 6"));

        // Zero matches still renders (the zero-row tables plus counts).
        let none = run_query(
            &store,
            &Query {
                workload: Some("no-such-workload".to_owned()),
                ..Query::default()
            },
        );
        assert!(none[0].render().contains("records: 0 of 6"));
    }

    #[test]
    fn query_speedup_pairs_with_baseline_and_guards_zero_cycles() {
        let mut base = nasty_record(0);
        base.workload = "w".to_owned();
        base.cycles = 2000;
        let mut fast = nasty_record(1);
        fast.workload = "w".to_owned();
        fast.cycles = 1000;
        // A corrupt zero-cycle record must be skipped, never divide.
        let mut zero = nasty_record(1);
        zero.workload = "w".to_owned();
        zero.cycles = 0;
        let store = Store {
            files: 1,
            records: vec![base, fast, zero],
        };
        let sp = &run_query(&store, &Query::default())[1];
        let text = sp.render();
        assert!(text.contains("hybrid2"), "{text}");
        assert!(text.contains("2.000"), "{text}");
        assert!(!text.to_lowercase().contains("nan"), "{text}");
        assert!(!text.contains("inf"), "{text}");
    }

    #[test]
    fn with_lease_attaches_telemetry() {
        let rec = nasty_record(0);
        // RunRecord::new zeroes the lease columns; nasty_record fills
        // them in by hand — rebuild via new() to check the default.
        let cfg = EvalConfig::smoke();
        let fresh = RunRecord::new(
            "test:unit",
            SchemeKind::Baseline,
            NmRatio::OneGb,
            &cfg,
            &RunResult {
                scheme: "BASELINE",
                workload: "lbm".into(),
                cycles: rec.cycles,
                instructions: rec.instructions,
                mem_ops: rec.mem_ops,
                mpki: rec.mpki,
                nm_served: rec.nm_served,
                fm_traffic: rec.fm_traffic,
                nm_traffic: rec.nm_traffic,
                energy_mj: rec.energy_mj,
                footprint: rec.footprint,
                nm_queue_mean: 0.0,
                nm_queue_max: 0,
                fm_queue_mean: 0.0,
                fm_queue_max: 0,
                stats: rec.stats.clone(),
            },
            0.5,
        );
        assert_eq!(fresh.lease_wall_secs, 0.0);
        assert_eq!(fresh.redeals, 0);
        let leased = fresh.with_lease(3.25, 2);
        assert_eq!(leased.lease_wall_secs, 3.25);
        assert_eq!(leased.redeals, 2);
    }

    #[test]
    fn dense_run_directory_claims_without_spinning() {
        // 200 pre-existing files: the scan must land on run-00201 in one
        // create_new attempt, not probe 200 occupied slots.
        let dir = temp_dir("dense");
        std::fs::create_dir_all(&dir).unwrap();
        for n in 1..=200u32 {
            std::fs::write(dir.join(format!("run-{n:05}{FILE_SUFFIX}")), "x").unwrap();
        }
        // Unrelated files must not confuse the scan.
        std::fs::write(dir.join("notes.txt"), "y").unwrap();
        let log = RunLog::create(&dir, "unit").unwrap();
        assert!(
            log.path().ends_with(format!("run-00201{FILE_SUFFIX}")),
            "claimed {}",
            log.path().display()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_file_number_space_errors_naming_the_directory() {
        // A file at the number cap leaves no claimable slot: create must
        // give up after its fixed retry budget with an error naming the
        // directory — bounded work, not 99 999 failed creates.
        let dir = temp_dir("cap");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(format!("run-{MAX_FILE_NUMBER:05}{FILE_SUFFIX}")),
            "x",
        )
        .unwrap();
        let started = std::time::Instant::now();
        let e = RunLog::create(&dir, "unit").unwrap_err();
        assert!(started.elapsed().as_secs() < 5, "claim loop must not spin");
        assert!(e.contains(&dir.display().to_string()), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn unwritable_run_directory_is_an_err_naming_the_path() {
        use std::os::unix::fs::PermissionsExt;
        let dir = temp_dir("readonly");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o555)).unwrap();
        match RunLog::create(&dir, "unit") {
            Err(e) => assert!(e.contains("run-00001") || e.contains("readonly"), "{e}"),
            // Root ignores permission bits; the CI runner does not.
            Ok(_) => eprintln!("skipping: permissions not enforced (running as root?)"),
        }
        let _ = std::fs::set_permissions(&dir, std::fs::Permissions::from_mode(0o755));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
