//! Scheme construction and single-run orchestration.

use baselines::{
    Chameleon, ChameleonConfig, Dfc, DfcConfig, FmOnly, IdealCache, IdealCacheConfig, Lgm,
    LgmConfig, MemPod, MemPodConfig, Tagless, TaglessConfig,
};
use dram::{DramSystem, ServiceModel};
use hybrid2_core::{Dcmc, Hybrid2Config, Variant};
use mem_cache::Hierarchy;
use sim_types::Geometry;
use workloads::{Workload, WorkloadSpec};

use crate::any_scheme::AnyScheme;
use crate::machine::{Machine, RunResult, DEFAULT_BATCH};
use crate::scale::{NmRatio, ScaledSystem};

/// Which memory-management scheme to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// No NM at all (the normalization baseline).
    Baseline,
    /// MemPod.
    MemPod,
    /// Chameleon.
    Chameleon,
    /// LGM.
    Lgm,
    /// Tagless DRAM cache.
    Tagless,
    /// Decoupled Fused Cache at its best line size (1 KB).
    Dfc,
    /// DFC with an explicit line size (Figure 2 sweep).
    DfcLine(u64),
    /// Ideal (zero-overhead) cache with an explicit line size.
    IdealLine(u64),
    /// Hybrid2, full design, paper-best configuration.
    Hybrid2,
    /// Hybrid2 with an explicit ablation variant (Figure 14).
    Hybrid2Variant(Variant),
    /// Hybrid2 with an explicit (cache bytes at paper scale, sector, line)
    /// configuration (Figure 11 design space).
    Hybrid2Config {
        /// DRAM-cache capacity at paper scale in bytes.
        cache_bytes_paper: u64,
        /// Sector size in bytes.
        sector: u64,
        /// Cache-line size in bytes.
        line: u64,
    },
}

impl SchemeKind {
    /// The six head-to-head schemes of Figures 12–18.
    pub const MAIN: [SchemeKind; 6] = [
        SchemeKind::MemPod,
        SchemeKind::Chameleon,
        SchemeKind::Lgm,
        SchemeKind::Tagless,
        SchemeKind::Dfc,
        SchemeKind::Hybrid2,
    ];
}

/// Simulation-size knobs shared by all experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalConfig {
    /// Capacity divisor (1 = paper scale). Default 64.
    pub scale_den: u64,
    /// Instructions retired per core per run.
    pub instrs_per_core: u64,
    /// Base RNG seed (workloads and placement derive from it).
    pub seed: u64,
    /// Worker threads for matrix runs.
    pub threads: usize,
    /// Ops-per-pick cap of the epoch-batched machine loop (`--batch`);
    /// 1 degenerates to the per-op reference schedule. Any value yields
    /// byte-identical results — this is a scheduling knob, never a
    /// semantic one. Default [`DEFAULT_BATCH`].
    pub batch: usize,
    /// Scoped worker threads stepping one machine's cores concurrently
    /// (`--machine-threads`); 1 = today's single-threaded epoch-batched
    /// schedule. Like `batch`, a scheduling knob: every value yields
    /// byte-identical results (pinned by `tests/batched_differential.rs`),
    /// so it is excluded from the run-record config digest. Default 1.
    pub machine_threads: usize,
    /// Memory-service model (`--service`): [`ServiceModel::Unbounded`] is
    /// the closed-form reference path; `Queued { depth }` engages bounded
    /// per-channel/per-bank service queues with backpressure. Unlike
    /// `batch`/`machine_threads` this is a *semantic* knob — it changes
    /// results and is part of the config digest.
    pub service: ServiceModel,
}

impl EvalConfig {
    /// The default evaluation size: 1/256 capacities with the instruction
    /// window scaled alike (the paper simulates 1 B instructions per core;
    /// 1e9/256 ≈ 4 M keeps window:footprint proportional, which reuse-driven
    /// results depend on).
    pub fn default_eval() -> Self {
        EvalConfig {
            scale_den: 256,
            instrs_per_core: 4_000_000,
            seed: 2020,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            batch: DEFAULT_BATCH,
            machine_threads: 1,
            service: ServiceModel::Unbounded,
        }
    }

    /// A fast configuration for tests and benches: 1/1024 capacities with a
    /// proportional ~1 M-instruction window.
    pub fn smoke() -> Self {
        EvalConfig {
            scale_den: 1024,
            instrs_per_core: 1_000_000,
            seed: 7,
            threads: 4,
            batch: DEFAULT_BATCH,
            machine_threads: 1,
            service: ServiceModel::Unbounded,
        }
    }
}

/// Builds a scheme instance for `kind` on a `sys`-sized machine. The
/// returned [`AnyScheme`] dispatches statically on the per-op path (it
/// still implements [`dram::MemoryScheme`] for trait-generic callers).
///
/// # Panics
///
/// Panics if a scheme configuration is structurally invalid at this scale —
/// that is a harness bug, not an input error.
pub fn build_scheme(kind: SchemeKind, sys: &ScaledSystem) -> AnyScheme {
    match kind {
        SchemeKind::Baseline => FmOnly::new(sys.fm_bytes).into(),
        SchemeKind::MemPod => MemPod::new(MemPodConfig::paper_default(
            sys.nm_bytes,
            sys.fm_bytes,
            sys.remap_cache_bytes,
        ))
        .into(),
        SchemeKind::Chameleon => Chameleon::new(ChameleonConfig::paper_default(
            sys.nm_bytes,
            sys.fm_bytes,
            sys.cache_bytes,
            sys.remap_cache_bytes,
        ))
        .into(),
        SchemeKind::Lgm => Lgm::new(LgmConfig::paper_default(
            sys.nm_bytes,
            sys.fm_bytes,
            sys.remap_cache_bytes,
        ))
        .into(),
        SchemeKind::Tagless => Tagless::new(TaglessConfig::new(sys.nm_bytes, sys.fm_bytes)).into(),
        SchemeKind::Dfc => Dfc::new(DfcConfig::paper_best(
            sys.nm_bytes,
            sys.fm_bytes,
            sys.llc_bytes,
        ))
        .into(),
        SchemeKind::DfcLine(line) => {
            let mut cfg = DfcConfig::paper_best(sys.nm_bytes, sys.fm_bytes, sys.llc_bytes);
            cfg.line_bytes = line;
            Dfc::new(cfg).into()
        }
        SchemeKind::IdealLine(line) => IdealCache::new(IdealCacheConfig {
            nm_bytes: sys.nm_bytes,
            fm_bytes: sys.fm_bytes,
            line_bytes: line,
            assoc: 16,
        })
        .into(),
        SchemeKind::Hybrid2 => Dcmc::new(hybrid2_config(
            sys,
            sys.cache_bytes,
            2048,
            256,
            Variant::Full,
        ))
        .expect("paper-best Hybrid2 config is valid")
        .into(),
        SchemeKind::Hybrid2Variant(variant) => {
            Dcmc::new(hybrid2_config(sys, sys.cache_bytes, 2048, 256, variant))
                .expect("variant config is valid")
                .into()
        }
        SchemeKind::Hybrid2Config {
            cache_bytes_paper,
            sector,
            line,
        } => Dcmc::new(hybrid2_config(
            sys,
            cache_bytes_paper / sys.scale_den,
            sector,
            line,
            Variant::Full,
        ))
        .expect("design-space config is valid")
        .into(),
    }
}

fn hybrid2_config(
    sys: &ScaledSystem,
    cache_bytes: u64,
    sector: u64,
    line: u64,
    variant: Variant,
) -> Hybrid2Config {
    let mut cfg = Hybrid2Config::paper_default();
    cfg.geometry = Geometry::new(line, sector).expect("valid geometry");
    cfg.cache_bytes = cache_bytes;
    cfg.nm_bytes = sys.nm_bytes;
    cfg.fm_bytes = sys.fm_bytes;
    cfg.variant = variant;
    cfg
}

/// Human-readable label for a scheme kind (figure legends).
pub fn scheme_label(kind: SchemeKind) -> String {
    match kind {
        SchemeKind::Baseline => "BASELINE".into(),
        SchemeKind::MemPod => "MPOD".into(),
        SchemeKind::Chameleon => "CHA".into(),
        SchemeKind::Lgm => "LGM".into(),
        SchemeKind::Tagless => "TAGLESS".into(),
        SchemeKind::Dfc => "DFC".into(),
        SchemeKind::DfcLine(l) => format!("DFC-{l}"),
        SchemeKind::IdealLine(l) => format!("IDEAL-{l}"),
        SchemeKind::Hybrid2 => "HYBRID2".into(),
        SchemeKind::Hybrid2Variant(v) => v.label().into(),
        SchemeKind::Hybrid2Config {
            cache_bytes_paper,
            sector,
            line,
        } => format!("{}MB/{}K/{}B", cache_bytes_paper >> 20, sector >> 10, line),
    }
}

/// Simulates one (scheme, workload) pair and returns its measurements.
pub fn run_one(
    kind: SchemeKind,
    spec: &WorkloadSpec,
    ratio: NmRatio,
    cfg: &EvalConfig,
) -> RunResult {
    let sys = ScaledSystem::new(ratio, cfg.scale_den);
    let scheme = build_scheme(kind, &sys);
    let workload = Workload::build(spec, 8, cfg.scale_den, cfg.seed);
    let hierarchy = Hierarchy::new(sys.hierarchy());
    let mut machine = Machine::new(
        8,
        hierarchy,
        scheme,
        DramSystem::paper_default().with_service(cfg.service),
        workload,
        cfg.seed,
    );
    machine.run_parallel(cfg.instrs_per_core, cfg.batch, cfg.machine_threads)
}

/// [`run_one`] plus the wall-clock seconds the run took — the timing the
/// `sim::runlog` run records and the perf-smoke floor consume. The result
/// itself is deterministic; only the seconds vary run to run.
pub fn run_one_timed(
    kind: SchemeKind,
    spec: &WorkloadSpec,
    ratio: NmRatio,
    cfg: &EvalConfig,
) -> (RunResult, f64) {
    let started = std::time::Instant::now();
    let r = run_one(kind, spec, ratio, cfg);
    (r, started.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::catalog;

    #[test]
    fn all_main_schemes_build_at_default_scale() {
        let sys = ScaledSystem::new(NmRatio::OneGb, 64);
        for kind in SchemeKind::MAIN {
            let s = build_scheme(kind, &sys);
            assert!(!s.name().is_empty());
        }
        let b = build_scheme(SchemeKind::Baseline, &sys);
        assert_eq!(b.flat_capacity_bytes(), sys.fm_bytes);
    }

    #[test]
    fn migration_schemes_offer_more_capacity_than_caches() {
        let sys = ScaledSystem::new(NmRatio::OneGb, 64);
        let cache = build_scheme(SchemeKind::Tagless, &sys).flat_capacity_bytes();
        for kind in [SchemeKind::MemPod, SchemeKind::Lgm, SchemeKind::Hybrid2] {
            let cap = build_scheme(kind, &sys).flat_capacity_bytes();
            assert!(
                cap > cache,
                "{kind:?} must expose more memory than a pure cache"
            );
        }
    }

    #[test]
    fn labels_are_paper_names() {
        assert_eq!(scheme_label(SchemeKind::Hybrid2), "HYBRID2");
        assert_eq!(scheme_label(SchemeKind::MemPod), "MPOD");
        assert_eq!(scheme_label(SchemeKind::IdealLine(256)), "IDEAL-256");
        assert_eq!(
            scheme_label(SchemeKind::Hybrid2Config {
                cache_bytes_paper: 64 << 20,
                sector: 2048,
                line: 256
            }),
            "64MB/2K/256B"
        );
    }

    #[test]
    fn smoke_run_produces_sane_results() {
        let cfg = EvalConfig::smoke();
        let spec = catalog::by_name("lbm").unwrap();
        let base = run_one(SchemeKind::Baseline, spec, NmRatio::OneGb, &cfg);
        let h2 = run_one(SchemeKind::Hybrid2, spec, NmRatio::OneGb, &cfg);
        assert_eq!(base.instructions, h2.instructions);
        assert!(base.cycles > 0 && h2.cycles > 0);
        // A streaming workload must benefit from NM bandwidth.
        let speedup = base.cycles as f64 / h2.cycles as f64;
        assert!(speedup > 1.0, "Hybrid2 speedup on lbm was {speedup:.2}");
    }
}
