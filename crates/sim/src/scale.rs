//! Proportional scaling of the paper's system (DESIGN.md §3, substitution 2).

use mem_cache::HierarchyConfig;

/// The three NM:FM ratios of the evaluation (§4: 1 GB, 2 GB, 4 GB of NM
/// against 16 GB of FM).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NmRatio {
    /// 1 GB NM : 16 GB FM (1:16) — the paper's stress configuration.
    OneGb,
    /// 2 GB NM : 16 GB FM (1:8).
    TwoGb,
    /// 4 GB NM : 16 GB FM (1:4).
    FourGb,
}

impl NmRatio {
    /// All ratios in reporting order.
    pub const ALL: [NmRatio; 3] = [NmRatio::OneGb, NmRatio::TwoGb, NmRatio::FourGb];

    /// NM capacity at paper scale, in bytes.
    pub fn nm_bytes_paper(self) -> u64 {
        match self {
            NmRatio::OneGb => 1 << 30,
            NmRatio::TwoGb => 2 << 30,
            NmRatio::FourGb => 4 << 30,
        }
    }

    /// Label used in figure captions.
    pub fn label(self) -> &'static str {
        match self {
            NmRatio::OneGb => "1GB (1:16)",
            NmRatio::TwoGb => "2GB (1:8)",
            NmRatio::FourGb => "4GB (1:4)",
        }
    }

    /// The extra main-memory capacity migration offers over caches at this
    /// ratio, as the paper states it (5.9% / 12.1% / 24.6%).
    pub fn capacity_gain_pct(self) -> f64 {
        // (NM - 64 MB cache) / 16 GB, approximately.
        let nm = self.nm_bytes_paper() as f64;
        let cache = (64u64 << 20) as f64;
        100.0 * (nm - cache) / (16u64 << 30) as f64
    }
}

/// All capacities of one simulated system, derived from a scale
/// denominator; ratios are preserved exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScaledSystem {
    /// The divisor applied to every capacity (1 = paper scale).
    pub scale_den: u64,
    /// NM capacity in bytes.
    pub nm_bytes: u64,
    /// FM capacity in bytes.
    pub fm_bytes: u64,
    /// Hybrid2 DRAM-cache slice in bytes (64 MB at paper scale).
    pub cache_bytes: u64,
    /// On-chip remap-cache budget for the baselines (512 KB at paper scale,
    /// clamped to stay a functional cache at extreme scales).
    pub remap_cache_bytes: u64,
    /// LLC capacity in bytes after scaling (for DFC's fused store sizing).
    pub llc_bytes: u64,
}

impl ScaledSystem {
    /// Derives the system for `ratio` at `1/scale_den` of paper scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale_den` is zero or so large that NM vanishes.
    pub fn new(ratio: NmRatio, scale_den: u64) -> Self {
        assert!(scale_den > 0, "scale denominator must be non-zero");
        let nm_bytes = ratio.nm_bytes_paper() / scale_den;
        let fm_bytes = (16u64 << 30) / scale_den;
        let cache_bytes = (64u64 << 20) / scale_den;
        assert!(
            cache_bytes >= 16 * 2048,
            "scale too extreme: the DRAM cache shrinks below one XTA set"
        );
        let hier = HierarchyConfig::scaled(8, 1, scale_den);
        ScaledSystem {
            scale_den,
            nm_bytes,
            fm_bytes,
            cache_bytes,
            remap_cache_bytes: ((512u64 << 10) / scale_den).max(4 * 64 * 4),
            llc_bytes: hier.llc.capacity(),
        }
    }

    /// The scaled 8-core hierarchy matching these capacities.
    pub fn hierarchy(&self) -> HierarchyConfig {
        HierarchyConfig::scaled(8, 1, self.scale_den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_table_1() {
        assert_eq!(NmRatio::OneGb.nm_bytes_paper(), 1 << 30);
        assert_eq!(NmRatio::FourGb.nm_bytes_paper(), 4 << 30);
        assert_eq!(NmRatio::ALL.len(), 3);
    }

    #[test]
    fn capacity_gains_match_paper_abstract() {
        // Paper: 5.9%, 12.1%, 24.6% more main memory than caches.
        assert!((NmRatio::OneGb.capacity_gain_pct() - 5.9).abs() < 0.3);
        assert!((NmRatio::TwoGb.capacity_gain_pct() - 12.1).abs() < 0.3);
        assert!((NmRatio::FourGb.capacity_gain_pct() - 24.6).abs() < 0.3);
    }

    #[test]
    fn scaling_preserves_ratios() {
        let s = ScaledSystem::new(NmRatio::OneGb, 64);
        assert_eq!(s.fm_bytes / s.nm_bytes, 16);
        assert_eq!(s.nm_bytes / s.cache_bytes, 16);
        let s2 = ScaledSystem::new(NmRatio::FourGb, 64);
        assert_eq!(s2.fm_bytes / s2.nm_bytes, 4);
    }

    #[test]
    fn paper_scale_is_identity() {
        let s = ScaledSystem::new(NmRatio::OneGb, 1);
        assert_eq!(s.nm_bytes, 1 << 30);
        assert_eq!(s.fm_bytes, 16 << 30);
        assert_eq!(s.cache_bytes, 64 << 20);
        assert_eq!(s.remap_cache_bytes, 512 << 10);
    }

    #[test]
    #[should_panic(expected = "scale too extreme")]
    fn absurd_scale_rejected() {
        let _ = ScaledSystem::new(NmRatio::OneGb, 1 << 20);
    }
}
