//! The scenario grid: runs the named phased/mix workloads of
//! [`workloads::scenarios`] through the six MAIN schemes and renders the
//! per-scenario speedup, NM-service and traffic tables.
//!
//! Scenarios are ordinary [`WorkloadSpec`]s wrapping composite patterns,
//! so the grid is just [`Matrix::run`] over a different workload set — the
//! same work-stealing scheduler, the same determinism contract (two runs,
//! or a `--threads 1` run, are byte-identical).

use workloads::{Catalog, Scenario, WorkloadSpec};

use crate::machine::RunResult;
use crate::report::{f3, pct, Report};
use crate::runner::{EvalConfig, SchemeKind};
use crate::scale::NmRatio;
use crate::shard::{CellKey, ShardSpec};
use crate::Matrix;

/// Resolves a CLI selector against a catalog: `"all"` for every scenario,
/// otherwise a single scenario by name. `None` if the name is unknown.
pub fn select<'c>(cat: &'c Catalog, selector: &str) -> Option<Vec<&'c Scenario>> {
    if selector == "all" {
        Some(cat.iter().collect())
    } else {
        cat.by_name(selector).map(|s| vec![s])
    }
}

/// The workload list of a scenario selection, in catalog order.
pub fn workloads_of(scens: &[&Scenario]) -> Vec<WorkloadSpec> {
    scens.iter().map(|s| s.workload.clone()).collect()
}

/// Runs the MAIN six schemes (plus the baseline) over `scens` at `ratio`.
pub fn run_grid(scens: &[&Scenario], ratio: NmRatio, cfg: &EvalConfig) -> Matrix {
    run_grid_timed(scens, ratio, cfg).0
}

/// [`run_grid`] plus per-cell wall-clock seconds in slot order — the
/// telemetry `--runlog` run records carry. The matrix is identical to
/// [`run_grid`]'s; only the timings vary run to run.
pub fn run_grid_timed(scens: &[&Scenario], ratio: NmRatio, cfg: &EvalConfig) -> (Matrix, Vec<f64>) {
    Matrix::run_timed(&SchemeKind::MAIN, &workloads_of(scens), ratio, cfg)
}

/// Runs one `--shard K/N` slice of the same scenario grid [`run_grid`]
/// covers, returning `(cell, result, wall-clock secs)` triples in slot
/// order for the [`crate::shard`] interchange format. Merging every slice
/// of a split reproduces [`run_grid`]'s matrix exactly.
pub fn run_grid_shard(
    scens: &[&Scenario],
    ratio: NmRatio,
    cfg: &EvalConfig,
    shard: ShardSpec,
) -> Vec<(CellKey, RunResult, f64)> {
    crate::shard::run_matrix_shard(&SchemeKind::MAIN, &workloads_of(scens), ratio, cfg, shard)
}

/// One scenario × scheme table: a row per workload, a column per scheme,
/// each cell rendered by `cell(scheme_idx, workload_idx)`.
fn metric_report(m: &Matrix, title: String, cell: impl Fn(usize, usize) -> String) -> Report {
    let mut header = vec!["scenario"];
    header.extend(m.schemes.iter().map(|s| s.label.as_str()));
    let mut r = Report::new(title, header);
    for (w, spec) in m.workloads.iter().enumerate() {
        let mut row = vec![spec.name.to_owned()];
        for s in 0..m.schemes.len() {
            row.push(cell(s, w));
        }
        r.push_row(row);
    }
    r
}

/// Per-scenario speedup over the no-NM baseline, one column per scheme —
/// the scenario analogue of Figure 13.
pub fn speedup_report(m: &Matrix) -> Report {
    let mut r = metric_report(
        m,
        format!("Scenarios — speedup over baseline, NM {}", m.ratio.label()),
        |s, w| f3(m.speedup(s, w)),
    );
    r.push_note("phased/mix composite workloads; see `reproduce scenario --list`");
    r
}

/// Per-scenario fraction of requests served from NM (Figure 15 analogue).
pub fn nm_served_report(m: &Matrix) -> Report {
    metric_report(
        m,
        format!("Scenarios — requests served from NM, {}", m.ratio.label()),
        |s, w| pct(m.nm_served(s, w)),
    )
}

/// Per-scenario FM traffic normalized to the baseline (Figure 16
/// analogue): below 1.0 means the scheme shields far memory.
pub fn fm_traffic_report(m: &Matrix) -> Report {
    metric_report(
        m,
        format!("Scenarios — FM traffic vs baseline, {}", m.ratio.label()),
        |s, w| f3(m.fm_traffic_norm(s, w)),
    )
}

/// The full scenario report set for one grid.
pub fn grid_reports(m: &Matrix) -> Vec<Report> {
    vec![speedup_report(m), nm_served_report(m), fm_traffic_report(m)]
}

/// A scenario catalog as a table (`reproduce scenario --list`).
pub fn catalog_report(cat: &Catalog) -> Report {
    let mut r = Report::new(
        "Scenario catalog",
        vec!["name", "family", "class", "summary"],
    );
    for s in cat.iter() {
        let family = if matches!(s.workload.pattern, workloads::PatternSpec::Phased { .. }) {
            "phased"
        } else {
            "mix"
        };
        r.push_row(vec![
            s.name().to_owned(),
            family.to_owned(),
            s.class().to_string(),
            s.summary.to_owned(),
        ]);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::scenarios;

    fn tiny_cfg() -> EvalConfig {
        EvalConfig {
            scale_den: 1024,
            instrs_per_core: 10_000,
            seed: 9,
            threads: 4,
            ..EvalConfig::smoke()
        }
    }

    #[test]
    fn select_resolves_names_and_all() {
        let cat = scenarios::builtin();
        assert_eq!(select(cat, "all").unwrap().len(), cat.len());
        assert_eq!(select(cat, "quad-mix").unwrap().len(), 1);
        assert!(select(cat, "not-a-scenario").is_none());
    }

    #[test]
    fn grid_runs_and_reports_render() {
        let scens = select(scenarios::builtin(), "stream-chase").unwrap();
        let m = run_grid(&scens, NmRatio::OneGb, &tiny_cfg());
        assert_eq!(m.workloads.len(), 1);
        assert_eq!(m.schemes.len(), SchemeKind::MAIN.len());
        for rep in grid_reports(&m) {
            let text = rep.render();
            assert!(text.contains("stream-chase"), "{text}");
        }
    }

    #[test]
    fn grid_shard_runs_exactly_its_partition_slice() {
        let scens = select(scenarios::builtin(), "stream-chase").unwrap();
        let shard = ShardSpec { index: 1, count: 3 };
        let cells = run_grid_shard(&scens, NmRatio::OneGb, &tiny_cfg(), shard);
        let keys = crate::shard::shard_cell_keys(&SchemeKind::MAIN, &workloads_of(&scens), shard);
        assert!(!cells.is_empty());
        assert_eq!(cells.len(), keys.len());
        for ((cell, r, secs), key) in cells.iter().zip(&keys) {
            assert_eq!(cell, key);
            assert_eq!(r.workload, key.workload);
            assert!(r.cycles > 0);
            assert!(secs.is_finite() && *secs >= 0.0);
        }
    }

    #[test]
    fn catalog_report_lists_every_scenario() {
        let text = catalog_report(scenarios::builtin()).render();
        for s in scenarios::all() {
            assert!(text.contains(s.name()), "missing {}", s.name());
        }
    }
}
