//! Process-level sharding of the evaluation grids.
//!
//! PR 3 made the in-process matrix scheduler work-stealing; this module is
//! the distribution layer above it. A grid — the scenario grid or the
//! `evalsuite` scheme × workload matrix — is partitioned deterministically
//! into `--shard K/N` slices ([`matrix::shard_jobs`] deals the LPT-sorted
//! job list round-robin, so every slice gets its share of heavy and light
//! cells). Each slice runs through the existing work-stealing scheduler in
//! its own process (a CI job today, another machine tomorrow) and emits its
//! per-cell results in a stable, hand-rolled TSV interchange format.
//! [`merge`] reassembles the slices into the exact [`Matrix`] a monolithic
//! run computes, so the rendered reports are **byte-identical** — floats
//! are carried as IEEE-754 bit patterns, never re-parsed decimal text.
//!
//! The byte-identity contract, concretely:
//!
//! ```text
//! reproduce scenario all --shard 1/2 --out s1.tsv
//! reproduce scenario all --shard 2/2 --out s2.tsv
//! reproduce merge s1.tsv s2.tsv > merged.txt
//! reproduce scenario all           > mono.txt
//! cmp merged.txt mono.txt          # always identical
//! ```
//!
//! CI enforces exactly this with a sharded job matrix feeding a blocking
//! `merge-verify` job (see `.github/workflows/ci.yml`).
//!
//! The interchange format is versioned (`hybrid2-shard-v1`), line-oriented
//! and tab-separated: a header block naming the grid, NM:FM ratio, sizing
//! knobs and shard position, then one `cell` row per grid cell with every
//! [`RunResult`] field. Worker thread count is deliberately *not* part of
//! the header — the scheduler's determinism contract makes it irrelevant
//! to the output.

use std::fmt;

use dram::{SchemeStats, ServiceModel};
use workloads::{Catalog, Scenario, WorkloadSpec};

use crate::machine::RunResult;
use crate::matrix::{self, Job};
use crate::report::Report;
use crate::runner::{build_scheme, EvalConfig, SchemeKind};
use crate::scale::{NmRatio, ScaledSystem};
use crate::{experiments, scenario, Matrix};

/// First line of every shard file; bumped on any format change.
/// v2 added the `service` header line and the four queue-occupancy
/// cell columns of the queued memory-service model.
const VERSION: &str = "hybrid2-shard-v2";

/// Number of tab-separated columns in a `cell` row.
const CELL_COLS: usize = 31;

/// One slice of an `N`-way grid split, as written on the CLI: `K/N` with
/// `K` in `1..=N`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// 1-based slice index (`K` in `K/N`).
    pub index: usize,
    /// Total number of slices (`N` in `K/N`).
    pub count: usize,
}

impl ShardSpec {
    /// Parses the CLI form `K/N` (e.g. `"2/4"`), requiring `1 <= K <= N`.
    pub fn parse(s: &str) -> Result<ShardSpec, String> {
        let (k, n) = s
            .split_once('/')
            .ok_or_else(|| format!("shard {s:?} is not of the form K/N (e.g. 2/4)"))?;
        let index: usize = k
            .parse()
            .map_err(|_| format!("shard index {k:?} is not an integer"))?;
        let count: usize = n
            .parse()
            .map_err(|_| format!("shard count {n:?} is not an integer"))?;
        if count == 0 {
            return Err("shard count must be at least 1".to_owned());
        }
        if index == 0 || index > count {
            return Err(format!(
                "shard index {index} out of range 1..={count} (indices are 1-based)"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// 0-based slice index.
    fn index0(self) -> usize {
        self.index - 1
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Which evaluation grid a shard file slices. The grid id plus the sizing
/// knobs in the header fully determine the job space, so [`merge`] can
/// re-enumerate it and verify each slice claims exactly its cells.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GridId {
    /// The scenario grid (`reproduce scenario <selector>`): the MAIN six
    /// schemes plus the baseline over the selected scenarios.
    Scenario {
        /// Scenario selector as passed to [`scenario::select`]: `"all"` or
        /// one catalog name.
        selector: String,
    },
    /// The `evalsuite` scheme × workload matrix (`reproduce --exp
    /// evalsuite`): the MAIN six schemes plus the baseline over the
    /// 30-workload catalog (or the 3-workload smoke set).
    Eval {
        /// `true` for the smoke workload set.
        smoke: bool,
    },
    /// A scenario grid over a `.scn` spec file (`reproduce scenario --spec
    /// FILE`). Merge and cluster workers re-read the file, so the path
    /// must resolve wherever the shard is decoded.
    SpecFile {
        /// Path of the `.scn` file (no tabs or newlines).
        path: String,
        /// Scenario selector within the compiled catalog.
        selector: String,
    },
    /// A scenario grid over a generated catalog (`reproduce scenario
    /// --generate N --seed S`). Generation is a pure function of
    /// `(count, seed)`, so any decoder re-derives the identical grid.
    Generated {
        /// Number of scenarios generated.
        count: usize,
        /// Generator seed.
        seed: u64,
        /// Scenario selector within the generated catalog.
        selector: String,
    },
}

/// Stable address of one grid cell: its slot in the [`Matrix`] result
/// layout plus the (scheme, workload) pair that determines it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellKey {
    /// Position in the flat result layout (baseline rows first, then each
    /// scheme row in grid order).
    pub slot: usize,
    /// The scheme simulated in this cell.
    pub kind: SchemeKind,
    /// The workload name (unique within a grid).
    pub workload: String,
}

impl CellKey {
    fn of(job: &Job, specs: &[WorkloadSpec]) -> CellKey {
        CellKey {
            slot: job.slot,
            kind: job.kind,
            workload: specs[job.w].name.clone(),
        }
    }
}

/// The cell addresses of shard `shard` over a `kinds` × `specs` grid, in
/// slot order — the pure enumeration behind [`run_matrix_shard`], exposed
/// so tests can check the partition is disjoint, covering and
/// order-stable without running any simulation.
pub fn shard_cell_keys(
    kinds: &[SchemeKind],
    specs: &[WorkloadSpec],
    shard: ShardSpec,
) -> Vec<CellKey> {
    matrix::shard_jobs(kinds, specs, shard.index0(), shard.count)
        .iter()
        .map(|j| CellKey::of(j, specs))
        .collect()
}

/// Runs shard `shard` of a `kinds` × `specs` grid on the work-stealing
/// scheduler, returning `(cell, result, wall-clock secs)` triples in slot
/// order. The timing is run-record telemetry only — it never enters the
/// interchange format, which stays byte-identical run to run.
pub fn run_matrix_shard(
    kinds: &[SchemeKind],
    specs: &[WorkloadSpec],
    ratio: NmRatio,
    cfg: &EvalConfig,
    shard: ShardSpec,
) -> Vec<(CellKey, RunResult, f64)> {
    Matrix::run_shard(kinds, specs, ratio, cfg, shard.index0(), shard.count)
        .into_iter()
        .map(|(job, r, secs)| (CellKey::of(&job, specs), r, secs))
        .collect()
}

/// Short stable token for an NM:FM ratio (`1gb`/`2gb`/`4gb`), used in
/// shard headers and accepted by the CLI's `--ratio` flag.
pub fn ratio_token(ratio: NmRatio) -> &'static str {
    match ratio {
        NmRatio::OneGb => "1gb",
        NmRatio::TwoGb => "2gb",
        NmRatio::FourGb => "4gb",
    }
}

/// Parses a [`ratio_token`] back to the ratio.
pub fn parse_ratio_token(s: &str) -> Result<NmRatio, String> {
    match s {
        "1gb" => Ok(NmRatio::OneGb),
        "2gb" => Ok(NmRatio::TwoGb),
        "4gb" => Ok(NmRatio::FourGb),
        other => Err(format!("unknown ratio {other:?}; use 1gb, 2gb or 4gb")),
    }
}

/// Stable token for a scheme kind, used in cell/record rows and accepted
/// by the CLI's `query --scheme` filter.
pub fn kind_token(kind: SchemeKind) -> String {
    use hybrid2_core::Variant;
    match kind {
        SchemeKind::Baseline => "baseline".into(),
        SchemeKind::MemPod => "mempod".into(),
        SchemeKind::Chameleon => "chameleon".into(),
        SchemeKind::Lgm => "lgm".into(),
        SchemeKind::Tagless => "tagless".into(),
        SchemeKind::Dfc => "dfc".into(),
        SchemeKind::Hybrid2 => "hybrid2".into(),
        SchemeKind::DfcLine(l) => format!("dfc-line={l}"),
        SchemeKind::IdealLine(l) => format!("ideal-line={l}"),
        SchemeKind::Hybrid2Variant(v) => format!(
            "hybrid2-variant={}",
            match v {
                Variant::Full => "full",
                Variant::CacheOnly => "cache-only",
                Variant::MigrateAll => "migrate-all",
                Variant::MigrateNone => "migrate-none",
                Variant::NoRemap => "no-remap",
            }
        ),
        SchemeKind::Hybrid2Config {
            cache_bytes_paper,
            sector,
            line,
        } => format!("hybrid2-config={cache_bytes_paper}:{sector}:{line}"),
    }
}

/// Parses a [`kind_token`] back to the scheme kind.
pub fn parse_kind_token(s: &str) -> Result<SchemeKind, String> {
    use hybrid2_core::Variant;
    let plain = match s {
        "baseline" => Some(SchemeKind::Baseline),
        "mempod" => Some(SchemeKind::MemPod),
        "chameleon" => Some(SchemeKind::Chameleon),
        "lgm" => Some(SchemeKind::Lgm),
        "tagless" => Some(SchemeKind::Tagless),
        "dfc" => Some(SchemeKind::Dfc),
        "hybrid2" => Some(SchemeKind::Hybrid2),
        _ => None,
    };
    if let Some(kind) = plain {
        return Ok(kind);
    }
    let err = || format!("unknown scheme token {s:?}");
    let (name, arg) = s.split_once('=').ok_or_else(err)?;
    match name {
        "dfc-line" => Ok(SchemeKind::DfcLine(parse_u64(arg, "dfc line size")?)),
        "ideal-line" => Ok(SchemeKind::IdealLine(parse_u64(arg, "ideal line size")?)),
        "hybrid2-variant" => {
            let v = match arg {
                "full" => Variant::Full,
                "cache-only" => Variant::CacheOnly,
                "migrate-all" => Variant::MigrateAll,
                "migrate-none" => Variant::MigrateNone,
                "no-remap" => Variant::NoRemap,
                _ => return Err(err()),
            };
            Ok(SchemeKind::Hybrid2Variant(v))
        }
        "hybrid2-config" => {
            let mut it = arg.split(':');
            let (Some(c), Some(sec), Some(line), None) =
                (it.next(), it.next(), it.next(), it.next())
            else {
                return Err(err());
            };
            Ok(SchemeKind::Hybrid2Config {
                cache_bytes_paper: parse_u64(c, "hybrid2 cache bytes")?,
                sector: parse_u64(sec, "hybrid2 sector")?,
                line: parse_u64(line, "hybrid2 line")?,
            })
        }
        _ => Err(err()),
    }
}

/// The schemes of every shardable grid: the baseline row plus MAIN, in
/// slot-row order. (Parameterized sweeps like Figure 11 stay in-process.)
fn grid_kinds() -> Vec<SchemeKind> {
    SchemeKind::MAIN.to_vec()
}

/// Selects scenarios from `cat` and clones out their workloads, failing
/// with a nearest-match suggestion on an unknown name.
fn select_workloads(cat: &Catalog, selector: &str) -> Result<Vec<WorkloadSpec>, String> {
    let scens: Vec<&Scenario> =
        scenario::select(cat, selector).ok_or_else(|| match cat.nearest(selector) {
            Some(near) => {
                format!("unknown scenario selector {selector:?} (did you mean {near:?}?)")
            }
            None => format!("unknown scenario selector {selector:?}"),
        })?;
    Ok(scenario::workloads_of(&scens))
}

/// Resolves a grid id to its owned (scheme rows, workloads) job space.
/// [`GridId::Generated`] grids are re-derived (generation is a pure
/// function of count and seed); [`GridId::SpecFile`] grids re-read the
/// spec file, so the path must resolve wherever the shard is decoded.
pub(crate) fn resolve(grid: &GridId) -> Result<(Vec<SchemeKind>, Vec<WorkloadSpec>), String> {
    match grid {
        GridId::Scenario { selector } => Ok((
            grid_kinds(),
            select_workloads(workloads::scenarios::builtin(), selector)?,
        )),
        GridId::Eval { smoke } => Ok((grid_kinds(), experiments::workload_set(*smoke))),
        GridId::SpecFile { path, selector } => {
            let cat =
                Catalog::from_scn_file(std::path::Path::new(path)).map_err(|e| e.to_string())?;
            Ok((grid_kinds(), select_workloads(&cat, selector)?))
        }
        GridId::Generated {
            count,
            seed,
            selector,
        } => Ok((
            grid_kinds(),
            select_workloads(&Catalog::generate(*count, *seed), selector)?,
        )),
    }
}

/// Checks that `grid` resolves — the spec file reads and compiles, the
/// generated catalog derives, and the selector names a scenario — without
/// running anything. The CLI calls this at parse time so a bad grid is a
/// usage error (exit 2), not a mid-run failure.
pub fn validate_grid(grid: &GridId) -> Result<(), String> {
    resolve(grid).map(|_| ())
}

/// One executed shard: the encoded interchange file plus the timed cells,
/// so the CLI can both emit the shard file and append run records without
/// simulating twice.
pub struct ShardRun {
    /// The encoded shard file contents (what `--shard` writes to `--out`).
    pub encoded: String,
    /// `(cell, result, wall-clock secs)` triples in slot order.
    pub cells: Vec<(CellKey, RunResult, f64)>,
}

/// Runs one shard of `grid` and returns the encoded shard file contents
/// alongside the timed cells.
pub fn run_shard(
    grid: &GridId,
    ratio: NmRatio,
    cfg: &EvalConfig,
    shard: ShardSpec,
) -> Result<ShardRun, String> {
    let (kinds, specs) = resolve(grid)?;
    let cells = run_matrix_shard(&kinds, &specs, ratio, cfg, shard);
    let encoded = encode(grid, ratio, cfg, shard, &cells);
    Ok(ShardRun { encoded, cells })
}

/// Validates one result payload against the job a cluster lease dispatched:
/// the payload must be a well-formed shard file whose header names exactly
/// the dispatcher's grid, ratio, sizing knobs and slice. The dispatcher
/// rejects (and re-deals) anything else *before* it can poison the final
/// merge — [`merge`] remains the second, authoritative gate.
pub(crate) fn check_slice(
    contents: &str,
    grid: &GridId,
    ratio: NmRatio,
    cfg: &EvalConfig,
    shard: ShardSpec,
) -> Result<(), String> {
    let f = decode(contents)?;
    if f.grid != *grid
        || f.ratio != ratio
        || f.scale_den != cfg.scale_den
        || f.instrs_per_core != cfg.instrs_per_core
        || f.seed != cfg.seed
        || f.service != cfg.service
    {
        return Err("payload header disagrees with the dispatched job".to_owned());
    }
    if f.shard != shard {
        return Err(format!(
            "payload claims slice {}, lease covers {shard}",
            f.shard
        ));
    }
    Ok(())
}

/// Renders the reports a monolithic run of `grid` would print — the merge
/// path and the monolithic path share this function, so byte-identity of
/// the rendered output reduces to equality of the [`Matrix`].
pub fn reports(grid: &GridId, m: &Matrix) -> Vec<Report> {
    match grid {
        GridId::Scenario { .. } | GridId::SpecFile { .. } | GridId::Generated { .. } => {
            scenario::grid_reports(m)
        }
        GridId::Eval { .. } => experiments::evalsuite_reports(m),
    }
}

/// IEEE-754 bit pattern of `v` as fixed-width hex — the exact-round-trip
/// float encoding used in cell rows.
pub(crate) fn f64_bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

pub(crate) fn parse_f64_bits(s: &str, what: &str) -> Result<f64, String> {
    if s.len() != 16 {
        return Err(format!("{what} {s:?} is not a 16-digit hex bit pattern"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("{what} {s:?} is not a 16-digit hex bit pattern"))
}

pub(crate) fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse()
        .map_err(|_| format!("{what} {s:?} is not an unsigned integer"))
}

pub(crate) fn parse_usize(s: &str, what: &str) -> Result<usize, String> {
    s.parse()
        .map_err(|_| format!("{what} {s:?} is not an unsigned integer"))
}

/// Encodes one shard's cells to the versioned TSV interchange format.
/// Rows are written in slot order; floats as bit patterns; the header
/// pins everything [`merge`] needs to re-enumerate the job space.
fn encode(
    grid: &GridId,
    ratio: NmRatio,
    cfg: &EvalConfig,
    shard: ShardSpec,
    cells: &[(CellKey, RunResult, f64)],
) -> String {
    let mut out = String::new();
    out.push_str(VERSION);
    out.push('\n');
    match grid {
        GridId::Scenario { selector } => {
            debug_assert!(!selector.contains(['\t', '\n']));
            out.push_str(&format!("grid\tscenario\t{selector}\n"));
        }
        GridId::Eval { smoke } => {
            out.push_str(&format!(
                "grid\teval\t{}\n",
                if *smoke { "smoke" } else { "full" }
            ));
        }
        GridId::SpecFile { path, selector } => {
            debug_assert!(!path.contains(['\t', '\n']) && !selector.contains(['\t', '\n']));
            out.push_str(&format!("grid\tspecfile\t{path}\t{selector}\n"));
        }
        GridId::Generated {
            count,
            seed,
            selector,
        } => {
            debug_assert!(!selector.contains(['\t', '\n']));
            out.push_str(&format!("grid\tgenerated\t{count}\t{seed}\t{selector}\n"));
        }
    }
    out.push_str(&format!("ratio\t{}\n", ratio_token(ratio)));
    out.push_str(&format!("scale\t{}\n", cfg.scale_den));
    out.push_str(&format!("instrs\t{}\n", cfg.instrs_per_core));
    out.push_str(&format!("seed\t{}\n", cfg.seed));
    out.push_str(&format!("service\t{}\n", cfg.service.token()));
    out.push_str(&format!("shard\t{shard}\n"));
    out.push_str(&format!("cells\t{}\n", cells.len()));
    for (key, r, _secs) in cells {
        // Destructure exhaustively: adding a RunResult or SchemeStats
        // field without extending the format (and bumping VERSION) must
        // not compile.
        let RunResult {
            scheme,
            ref workload,
            cycles,
            instructions,
            mem_ops,
            mpki,
            nm_served,
            fm_traffic,
            nm_traffic,
            energy_mj,
            footprint,
            nm_queue_mean,
            nm_queue_max,
            fm_queue_mean,
            fm_queue_max,
            ref stats,
        } = *r;
        let SchemeStats {
            requests,
            reads,
            writes,
            served_from_nm,
            lookup_hits,
            lookup_misses,
            moved_into_nm,
            moved_out_of_nm,
            dirty_writebacks,
            metadata_reads,
            metadata_writes,
            fetched_bytes,
            used_bytes,
        } = *stats;
        out.push_str(&format!(
            "cell\t{slot}\t{kind}\t{workload}\t{scheme}\t{cycles}\t{instructions}\t{mem_ops}\t\
             {mpki}\t{nm_served}\t{fm_traffic}\t{nm_traffic}\t{energy}\t{footprint}\t\
             {requests}\t{reads}\t{writes}\t{served_from_nm}\t{lookup_hits}\t{lookup_misses}\t\
             {moved_into_nm}\t{moved_out_of_nm}\t{dirty_writebacks}\t{metadata_reads}\t\
             {metadata_writes}\t{fetched_bytes}\t{used_bytes}\t{nm_q_mean}\t{nm_queue_max}\t\
             {fm_q_mean}\t{fm_queue_max}\n",
            slot = key.slot,
            kind = kind_token(key.kind),
            mpki = f64_bits(mpki),
            nm_served = f64_bits(nm_served),
            energy = f64_bits(energy_mj),
            nm_q_mean = f64_bits(nm_queue_mean),
            fm_q_mean = f64_bits(fm_queue_mean),
        ));
    }
    out
}

/// A decoded cell row: the address plus every measurement, with the
/// `&'static str` scheme/workload names still as owned strings (merge
/// substitutes the statics after verifying them against the grid).
struct DecodedCell {
    slot: usize,
    kind: SchemeKind,
    workload: String,
    scheme_name: String,
    cycles: u64,
    instructions: u64,
    mem_ops: u64,
    mpki: f64,
    nm_served: f64,
    fm_traffic: u64,
    nm_traffic: u64,
    energy_mj: f64,
    footprint: u64,
    nm_queue_mean: f64,
    nm_queue_max: u64,
    fm_queue_mean: f64,
    fm_queue_max: u64,
    stats: SchemeStats,
}

/// A fully parsed shard file.
struct ShardFile {
    grid: GridId,
    ratio: NmRatio,
    scale_den: u64,
    instrs_per_core: u64,
    seed: u64,
    service: ServiceModel,
    shard: ShardSpec,
    cells: Vec<DecodedCell>,
}

/// Parses one shard file.
fn decode(contents: &str) -> Result<ShardFile, String> {
    // A mid-value cut of the final row can survive every other check (the
    // truncated number still parses, the column count is intact), so the
    // trailing newline every encoder writes is load-bearing: its absence
    // is the one reliable truncation tell.
    if !contents.is_empty() && !contents.ends_with('\n') {
        return Err("file is truncated (last line has no newline)".to_owned());
    }
    let mut lines = contents.lines();
    match lines.next() {
        Some(v) if v == VERSION => {}
        Some(v) => {
            return Err(format!(
                "unsupported shard format {v:?} (expected {VERSION})"
            ))
        }
        None => return Err("empty shard file".to_owned()),
    }
    let mut header = |key: &str| -> Result<Vec<String>, String> {
        let line = lines
            .next()
            .ok_or_else(|| format!("missing {key:?} header"))?;
        let mut cols = line.split('\t');
        match cols.next() {
            Some(k) if k == key => Ok(cols.map(str::to_owned).collect()),
            _ => Err(format!("expected {key:?} header, got {line:?}")),
        }
    };
    let grid_cols = header("grid")?;
    let grid = match grid_cols.as_slice() {
        [k, sel] if k == "scenario" => GridId::Scenario {
            selector: sel.clone(),
        },
        [k, set] if k == "eval" && set == "smoke" => GridId::Eval { smoke: true },
        [k, set] if k == "eval" && set == "full" => GridId::Eval { smoke: false },
        [k, path, sel] if k == "specfile" => GridId::SpecFile {
            path: path.clone(),
            selector: sel.clone(),
        },
        [k, count, seed, sel] if k == "generated" => GridId::Generated {
            count: parse_usize(count, "generated count")?,
            seed: parse_u64(seed, "generated seed")?,
            selector: sel.clone(),
        },
        _ => return Err(format!("unknown grid header {grid_cols:?}")),
    };
    let one = |cols: Vec<String>, key: &str| -> Result<String, String> {
        match cols.as_slice() {
            [v] => Ok(v.clone()),
            _ => Err(format!("{key:?} header needs exactly one value")),
        }
    };
    let ratio = parse_ratio_token(&one(header("ratio")?, "ratio")?)?;
    let scale_den = parse_u64(&one(header("scale")?, "scale")?, "scale")?;
    let instrs_per_core = parse_u64(&one(header("instrs")?, "instrs")?, "instrs")?;
    let seed = parse_u64(&one(header("seed")?, "seed")?, "seed")?;
    let service_tok = one(header("service")?, "service")?;
    let service = ServiceModel::parse(&service_tok)
        .ok_or_else(|| format!("unknown service model {service_tok:?}"))?;
    let shard = ShardSpec::parse(&one(header("shard")?, "shard")?)?;
    let cell_count = parse_usize(&one(header("cells")?, "cells")?, "cells")?;
    if scale_den == 0 || scale_den > 1 << 30 {
        return Err(format!("scale {scale_den} out of range"));
    }

    // Cap the pre-allocation: `cell_count` is untrusted file input, and a
    // corrupt header must produce an Err (exit 1), never an allocation
    // panic/abort. The count-vs-rows check below still catches any lie.
    let mut cells = Vec::with_capacity(cell_count.min(4096));
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.first() != Some(&"cell") {
            return Err(format!("expected cell row, got {line:?}"));
        }
        if cols.len() != CELL_COLS {
            return Err(format!(
                "cell row has {} columns, expected {CELL_COLS}: {line:?}",
                cols.len()
            ));
        }
        let u = |i: usize, what: &str| parse_u64(cols[i], what);
        cells.push(DecodedCell {
            slot: parse_usize(cols[1], "slot")?,
            kind: parse_kind_token(cols[2])?,
            workload: cols[3].to_owned(),
            scheme_name: cols[4].to_owned(),
            cycles: u(5, "cycles")?,
            instructions: u(6, "instructions")?,
            mem_ops: u(7, "mem_ops")?,
            mpki: parse_f64_bits(cols[8], "mpki")?,
            nm_served: parse_f64_bits(cols[9], "nm_served")?,
            fm_traffic: u(10, "fm_traffic")?,
            nm_traffic: u(11, "nm_traffic")?,
            energy_mj: parse_f64_bits(cols[12], "energy_mj")?,
            footprint: u(13, "footprint")?,
            nm_queue_mean: parse_f64_bits(cols[27], "nm_queue_mean")?,
            nm_queue_max: u(28, "nm_queue_max")?,
            fm_queue_mean: parse_f64_bits(cols[29], "fm_queue_mean")?,
            fm_queue_max: u(30, "fm_queue_max")?,
            stats: SchemeStats {
                requests: u(14, "requests")?,
                reads: u(15, "reads")?,
                writes: u(16, "writes")?,
                served_from_nm: u(17, "served_from_nm")?,
                lookup_hits: u(18, "lookup_hits")?,
                lookup_misses: u(19, "lookup_misses")?,
                moved_into_nm: u(20, "moved_into_nm")?,
                moved_out_of_nm: u(21, "moved_out_of_nm")?,
                dirty_writebacks: u(22, "dirty_writebacks")?,
                metadata_reads: u(23, "metadata_reads")?,
                metadata_writes: u(24, "metadata_writes")?,
                fetched_bytes: u(25, "fetched_bytes")?,
                used_bytes: u(26, "used_bytes")?,
            },
        });
    }
    if cells.len() != cell_count {
        return Err(format!(
            "header declares {cell_count} cells but file holds {}",
            cells.len()
        ));
    }
    Ok(ShardFile {
        grid,
        ratio,
        scale_den,
        instrs_per_core,
        seed,
        service,
        shard,
        cells,
    })
}

/// The reassembled result of [`merge`].
#[derive(Debug)]
pub struct Merged {
    /// The grid the shards sliced.
    pub grid: GridId,
    /// The NM:FM ratio of the run.
    pub ratio: NmRatio,
    /// Sizing knobs recovered from the shard headers (threads is the
    /// caller's business — it never affects results).
    pub scale_den: u64,
    /// Instructions per core per run.
    pub instrs_per_core: u64,
    /// RNG seed of the run.
    pub seed: u64,
    /// The memory-service model every shard ran under.
    pub service: ServiceModel,
    /// The full grid, exactly as a monolithic run computes it.
    pub matrix: Matrix,
}

/// How many absent slice indices a missing-slice error lists before
/// summarizing the rest as a `+N more` tail.
const MISSING_LIST_CAP: usize = 16;

/// Names exactly which slice indices of a `count`-way split are absent
/// from the supplied files, so an incomplete merge says what to re-run
/// instead of making callers diff slice files by hand. The listing is
/// capped at [`MISSING_LIST_CAP`] entries — the index walk stays bounded
/// even when a corrupt header claims an astronomically wide split.
fn missing_slices_message(have: &std::collections::BTreeMap<usize, &str>, count: usize) -> String {
    let total_missing = count - have.len();
    let mut listed: Vec<String> = Vec::new();
    // Walk indices upward skipping present ones: the first
    // MISSING_LIST_CAP absent indices all sit within the first
    // `cap + have.len()` integers, so the walk is bounded by the *input*
    // size, not the header's count.
    let mut k = 1usize;
    while listed.len() < MISSING_LIST_CAP.min(total_missing) && k <= count {
        if !have.contains_key(&k) {
            listed.push(format!("{k}/{count}"));
        }
        k += 1;
    }
    let more = total_missing - listed.len();
    let tail = if more > 0 {
        format!(" (+{more} more)")
    } else {
        String::new()
    };
    format!(
        "{total_missing} of {count} slice(s) missing: {}{tail}",
        listed.join(", ")
    )
}

/// Merges shard files (as `(name, contents)` pairs, names only for error
/// messages) back into the full [`Matrix`].
///
/// Validation is strict: all headers must agree on grid, ratio, sizing and
/// shard count; all `N` shard indices must be present exactly once; and
/// every file must claim exactly the cells the deterministic partition
/// assigns it, with scheme/workload names matching the grid's own. Any
/// violation is an `Err` naming the offending file — never a panic.
pub fn merge(inputs: &[(String, String)]) -> Result<Merged, String> {
    let first_name = match inputs {
        [] => return Err("merge needs at least one shard file".to_owned()),
        [(name, _), ..] => name.clone(),
    };
    let mut files = Vec::with_capacity(inputs.len());
    for (name, contents) in inputs {
        files.push((
            name.as_str(),
            decode(contents).map_err(|e| format!("{name}: {e}"))?,
        ));
    }
    let head = &files[0].1;
    for (name, f) in &files[1..] {
        if f.grid != head.grid
            || f.ratio != head.ratio
            || f.scale_den != head.scale_den
            || f.instrs_per_core != head.instrs_per_core
            || f.seed != head.seed
            || f.service != head.service
        {
            return Err(format!(
                "{name}: header disagrees with {first_name} (grid/ratio/scale/instrs/seed/service \
                 must match across shards)"
            ));
        }
        if f.shard.count != head.shard.count {
            return Err(format!(
                "{name}: shard count {} disagrees with {first_name}'s {}",
                f.shard.count, head.shard.count
            ));
        }
    }
    let count = head.shard.count;
    // Presence is tracked by (1-based) slice index in a map, never in an
    // allocation sized by the untrusted header count — a corrupt
    // `K/<huge N>` header must produce an Err, not an OOM.
    let mut have: std::collections::BTreeMap<usize, &str> = std::collections::BTreeMap::new();
    for (name, f) in &files {
        if let Some(prev) = have.insert(f.shard.index, name) {
            return Err(format!(
                "shard {} appears twice ({prev} and {name})",
                f.shard
            ));
        }
    }
    if have.len() < count {
        return Err(missing_slices_message(&have, count));
    }

    let (kinds, specs) = resolve(&head.grid)?;
    // Scheme names are scale-independent, so extract them at a known-good
    // reference scale: the untrusted `scale` header (metadata from here
    // on) must never reach `ScaledSystem::new`'s validity asserts.
    let sys = ScaledSystem::new(head.ratio, 1024);
    let row_kinds: Vec<SchemeKind> = std::iter::once(SchemeKind::Baseline)
        .chain(kinds.iter().copied())
        .collect();
    let scheme_names: Vec<&'static str> = row_kinds
        .iter()
        .map(|&k| build_scheme(k, &sys).name())
        .collect();

    let total = (kinds.len() + 1) * specs.len();
    let mut flat: Vec<Option<RunResult>> = (0..total).map(|_| None).collect();
    for (name, f) in &files {
        let expected = shard_cell_keys(&kinds, &specs, f.shard);
        if f.cells.len() != expected.len() {
            return Err(format!(
                "{name}: shard {} holds {} cells but the partition assigns it {}",
                f.shard,
                f.cells.len(),
                expected.len()
            ));
        }
        for (cell, key) in f.cells.iter().zip(&expected) {
            if cell.slot != key.slot || cell.kind != key.kind || cell.workload != key.workload {
                return Err(format!(
                    "{name}: cell (slot {}, {}, {}) does not match the partition's (slot {}, {}, \
                     {})",
                    cell.slot,
                    kind_token(cell.kind),
                    cell.workload,
                    key.slot,
                    kind_token(key.kind),
                    key.workload
                ));
            }
            let row = key.slot / specs.len();
            let expected_name = scheme_names[row];
            if cell.scheme_name != expected_name {
                return Err(format!(
                    "{name}: slot {} records scheme name {:?}, grid says {expected_name:?}",
                    key.slot, cell.scheme_name
                ));
            }
            let w = key.slot % specs.len();
            flat[key.slot] = Some(RunResult {
                scheme: expected_name,
                workload: specs[w].name.clone(),
                cycles: cell.cycles,
                instructions: cell.instructions,
                mem_ops: cell.mem_ops,
                mpki: cell.mpki,
                nm_served: cell.nm_served,
                fm_traffic: cell.fm_traffic,
                nm_traffic: cell.nm_traffic,
                energy_mj: cell.energy_mj,
                footprint: cell.footprint,
                nm_queue_mean: cell.nm_queue_mean,
                nm_queue_max: cell.nm_queue_max,
                fm_queue_mean: cell.fm_queue_mean,
                fm_queue_max: cell.fm_queue_max,
                stats: cell.stats.clone(),
            });
        }
    }
    let flat: Vec<RunResult> = flat
        .into_iter()
        .enumerate()
        .map(|(slot, cell)| cell.ok_or_else(|| format!("no shard supplied slot {slot}")))
        .collect::<Result<_, _>>()?;
    Ok(Merged {
        grid: head.grid.clone(),
        ratio: head.ratio,
        scale_den: head.scale_den,
        instrs_per_core: head.instrs_per_core,
        seed: head.seed,
        service: head.service,
        matrix: Matrix::assemble(&kinds, &specs, head.ratio, flat),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::catalog;

    #[test]
    fn shard_spec_parses_and_rejects() {
        assert_eq!(
            ShardSpec::parse("2/4").unwrap(),
            ShardSpec { index: 2, count: 4 }
        );
        assert_eq!(ShardSpec::parse("1/1").unwrap().to_string(), "1/1");
        for bad in ["", "3", "0/4", "5/4", "1/0", "a/b", "1/2/3", "-1/2"] {
            assert!(ShardSpec::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn ratio_tokens_round_trip() {
        for r in NmRatio::ALL {
            assert_eq!(parse_ratio_token(ratio_token(r)).unwrap(), r);
        }
        assert!(parse_ratio_token("8gb").is_err());
    }

    #[test]
    fn kind_tokens_round_trip() {
        use hybrid2_core::Variant;
        let mut kinds = vec![
            SchemeKind::Baseline,
            SchemeKind::DfcLine(1024),
            SchemeKind::IdealLine(256),
            SchemeKind::Hybrid2Config {
                cache_bytes_paper: 64 << 20,
                sector: 2048,
                line: 256,
            },
        ];
        kinds.extend(SchemeKind::MAIN);
        kinds.extend(Variant::ALL.map(SchemeKind::Hybrid2Variant));
        for kind in kinds {
            let tok = kind_token(kind);
            assert_eq!(parse_kind_token(&tok).unwrap(), kind, "token {tok}");
        }
        assert!(parse_kind_token("quantum-cache").is_err());
        assert!(parse_kind_token("hybrid2-variant=bogus").is_err());
        assert!(parse_kind_token("hybrid2-config=1:2").is_err());
    }

    #[test]
    fn cell_keys_are_disjoint_covering_and_slot_ordered() {
        let specs: Vec<WorkloadSpec> = catalog::smoke_set().map(Clone::clone).to_vec();
        let kinds = grid_kinds();
        let total = (kinds.len() + 1) * specs.len();
        for count in [1, 2, 3, 7, total + 5] {
            let mut seen = vec![false; total];
            for index in 1..=count {
                let keys = shard_cell_keys(&kinds, &specs, ShardSpec { index, count });
                assert!(keys.windows(2).all(|p| p[0].slot < p[1].slot));
                for k in keys {
                    assert!(!seen[k.slot]);
                    seen[k.slot] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "count={count} not covering");
        }
    }

    /// A synthetic grid (no simulation): every cell gets distinctive
    /// numbers, including float bit patterns that decimal formatting
    /// would destroy.
    fn synthetic_cells(
        kinds: &[SchemeKind],
        specs: &[WorkloadSpec],
        ratio: NmRatio,
        scale_den: u64,
        shard: ShardSpec,
    ) -> Vec<(CellKey, RunResult, f64)> {
        let sys = ScaledSystem::new(ratio, scale_den);
        shard_cell_keys(kinds, specs, shard)
            .into_iter()
            .map(|key| {
                let x = key.slot as u64;
                let r = RunResult {
                    scheme: build_scheme(key.kind, &sys).name(),
                    workload: key.workload.clone(),
                    cycles: 1000 + x,
                    instructions: 77 * x + 1,
                    mem_ops: 13 * x,
                    mpki: (x as f64 + 0.1) / 3.0,
                    nm_served: if x.is_multiple_of(2) {
                        -0.0
                    } else {
                        f64::MIN_POSITIVE
                    },
                    fm_traffic: x << 20,
                    nm_traffic: x << 18,
                    energy_mj: 1e-300 * (x + 1) as f64,
                    footprint: 4096 * x,
                    nm_queue_mean: -0.0 + x as f64 / 7.0,
                    nm_queue_max: 2 * x,
                    fm_queue_mean: f64::MIN_POSITIVE * (x + 1) as f64,
                    fm_queue_max: x,
                    stats: SchemeStats {
                        requests: x,
                        reads: x / 2,
                        writes: x - x / 2,
                        served_from_nm: x / 3,
                        lookup_hits: 2 * x,
                        lookup_misses: x + 5,
                        moved_into_nm: x % 7,
                        moved_out_of_nm: x % 5,
                        dirty_writebacks: x % 3,
                        metadata_reads: 9 * x,
                        metadata_writes: 8 * x,
                        fetched_bytes: x << 10,
                        used_bytes: x << 9,
                    },
                };
                (key, r, 0.0)
            })
            .collect()
    }

    fn synthetic_shards(count: usize) -> (GridId, EvalConfig, Vec<(String, String)>) {
        let grid = GridId::Scenario {
            selector: "stream-chase".to_owned(),
        };
        let cfg = EvalConfig {
            scale_den: 1024,
            instrs_per_core: 1,
            seed: 11,
            threads: 1,
            ..EvalConfig::smoke()
        };
        let (kinds, specs) = resolve(&grid).unwrap();
        let files = (1..=count)
            .map(|index| {
                let shard = ShardSpec { index, count };
                let cells = synthetic_cells(&kinds, &specs, NmRatio::OneGb, cfg.scale_den, shard);
                (
                    format!("s{index}.tsv"),
                    encode(&grid, NmRatio::OneGb, &cfg, shard, &cells),
                )
            })
            .collect();
        (grid, cfg, files)
    }

    #[test]
    fn encode_merge_round_trips_every_field_bit_for_bit() {
        let (grid, cfg, files) = synthetic_shards(3);
        let merged = merge(&files).unwrap();
        assert_eq!(merged.grid, grid);
        assert_eq!(merged.scale_den, cfg.scale_den);
        assert_eq!(merged.seed, cfg.seed);
        let (kinds, specs) = resolve(&grid).unwrap();
        let all = synthetic_cells(
            &kinds,
            &specs,
            NmRatio::OneGb,
            cfg.scale_den,
            ShardSpec { index: 1, count: 1 },
        );
        let m = &merged.matrix;
        for (key, want, _) in &all {
            let got = if key.slot < specs.len() {
                &m.baseline[key.slot]
            } else {
                &m.schemes[key.slot / specs.len() - 1].runs[key.slot % specs.len()]
            };
            assert_eq!(got.scheme, want.scheme);
            assert_eq!(got.workload, want.workload);
            assert_eq!(got.cycles, want.cycles);
            assert_eq!(got.mpki.to_bits(), want.mpki.to_bits());
            assert_eq!(got.nm_served.to_bits(), want.nm_served.to_bits());
            assert_eq!(got.energy_mj.to_bits(), want.energy_mj.to_bits());
            assert_eq!(got.nm_queue_mean.to_bits(), want.nm_queue_mean.to_bits());
            assert_eq!(got.nm_queue_max, want.nm_queue_max);
            assert_eq!(got.fm_queue_mean.to_bits(), want.fm_queue_mean.to_bits());
            assert_eq!(got.fm_queue_max, want.fm_queue_max);
            assert_eq!(got.stats, want.stats);
        }
        assert_eq!(merged.service, dram::ServiceModel::Unbounded);
    }

    #[test]
    fn merge_handles_empty_shards_when_count_exceeds_cells() {
        // 7 cells (MAIN + baseline × 1 scenario), 9 shards: two are empty.
        let (_, _, files) = synthetic_shards(9);
        assert!(files.iter().any(|(_, c)| c.contains("\ncells\t0\n")));
        assert!(merge(&files).is_ok());
    }

    #[test]
    fn merge_lists_exactly_the_missing_slices() {
        // Slices 2 and 5 of a 5-way split withheld: the error must name
        // both absent indices (and only those) so the caller knows what
        // to re-run without diffing files by hand.
        let (_, _, files) = synthetic_shards(5);
        let partial: Vec<(String, String)> = files
            .into_iter()
            .enumerate()
            .filter(|(i, _)| *i != 1 && *i != 4)
            .map(|(_, f)| f)
            .collect();
        let e = merge(&partial).unwrap_err();
        assert!(e.contains("2 of 5 slice(s) missing"), "{e}");
        assert!(e.contains("2/5") && e.contains("5/5"), "{e}");
        assert!(
            !e.contains("1/5") && !e.contains("3/5") && !e.contains("4/5"),
            "{e}"
        );
        assert!(!e.contains("more"), "{e}");
    }

    #[test]
    fn merge_survives_adversarial_slice_files() {
        let (grid, _, files) = synthetic_shards(2);

        // The same slice under a different file name is still a duplicate
        // — the shard index betrays it, and the error names both files.
        let copied = vec![
            files[0].clone(),
            ("sneaky-rename.tsv".to_owned(), files[0].1.clone()),
            files[1].clone(),
        ];
        let e = merge(&copied).unwrap_err();
        assert!(e.contains("appears twice"), "{e}");
        assert!(e.contains("sneaky-rename.tsv"), "{e}");

        // Mid-value truncation of the final row: the cut `used_bytes`
        // still parses as an integer and the column count is intact, so
        // only the missing trailing newline betrays the damage. (Before
        // the newline check this merged "successfully" with a silently
        // corrupted value.)
        let mut cut = files.clone();
        assert!(cut[0].1.ends_with('\n'));
        let new_len = cut[0].1.len() - 2;
        cut[0].1.truncate(new_len);
        let e = merge(&cut).unwrap_err();
        assert!(e.contains("truncated"), "{e}");
        assert!(e.contains(&files[0].0), "error must name the file: {e}");

        // CRLF line endings (a Windows checkout, a careless transfer)
        // parse to the identical matrix — the merged reports stay
        // byte-identical to the LF merge.
        let want = merge(&files).unwrap();
        let crlf: Vec<(String, String)> = files
            .iter()
            .map(|(n, c)| (n.clone(), c.replace('\n', "\r\n")))
            .collect();
        let got = merge(&crlf).unwrap();
        let render = |m: &Matrix| {
            reports(&grid, m)
                .iter()
                .map(Report::render)
                .collect::<String>()
        };
        assert_eq!(render(&want.matrix), render(&got.matrix));
    }

    #[test]
    fn merge_rejects_bad_inputs() {
        let (_, _, files) = synthetic_shards(2);

        assert!(merge(&[]).unwrap_err().contains("at least one"));

        let mut missing = files.clone();
        missing.pop();
        let e = merge(&missing).unwrap_err();
        assert!(e.contains("1 of 2 slice(s) missing: 2/2"), "{e}");

        let dup = vec![files[0].clone(), files[0].clone()];
        assert!(merge(&dup).unwrap_err().contains("appears twice"));

        let mut bad_seed = files.clone();
        bad_seed[1].1 = bad_seed[1].1.replace("seed\t11", "seed\t12");
        assert!(merge(&bad_seed).unwrap_err().contains("disagrees"));

        // Shards simulated under different service models must never
        // merge: a queued slice is a different experiment.
        let mut bad_service = files.clone();
        bad_service[1].1 = bad_service[1]
            .1
            .replace("service\tunbounded", "service\tqueued:8");
        assert!(merge(&bad_service).unwrap_err().contains("disagrees"));

        // An unknown service token is a decode error naming the file.
        let mut bad_token = files.clone();
        bad_token[0].1 = bad_token[0]
            .1
            .replace("service\tunbounded", "service\twarp-speed");
        let e = merge(&bad_token).unwrap_err();
        assert!(e.contains("service model"), "{e}");

        let mut bad_version = files.clone();
        bad_version[0].1 = bad_version[0].1.replacen(VERSION, "hybrid2-shard-v0", 1);
        assert!(merge(&bad_version).unwrap_err().contains("unsupported"));

        let mut truncated = files.clone();
        let cut = truncated[0].1.rfind("cell\t").unwrap();
        truncated[0].1.truncate(cut);
        assert!(merge(&truncated).unwrap_err().contains("cells"));

        // A corrupt cell count must be an Err, never an allocation
        // panic/abort — the CI merge gate feeds merge untrusted artifacts.
        let mut huge_count = files.clone();
        huge_count[0].1 = huge_count[0]
            .1
            .replace("\ncells\t4\n", &format!("\ncells\t{}\n", u64::MAX));
        let e = merge(&huge_count).unwrap_err();
        assert!(e.contains("cells"), "{e}");

        // Likewise a corrupt shard count: the missing-slice walk and its
        // listing are bounded by the input size, never by the header's
        // claimed width — no allocation or iteration scales with it.
        let mut huge_split: Vec<(String, String)> = files.clone();
        for f in &mut huge_split {
            f.1 = f.1.replace("/2\n", "/99999999999\n");
        }
        let e = merge(&huge_split).unwrap_err();
        assert!(
            e.contains("99999999997 of 99999999999 slice(s) missing"),
            "{e}"
        );
        assert!(e.contains("3/99999999999"), "{e}");
        assert!(e.contains("more"), "{e}");

        // An extreme `scale` header is metadata at merge time — it must
        // not reach ScaledSystem's validity asserts and panic.
        let mut wild_scale = files.clone();
        for f in &mut wild_scale {
            f.1 = f.1.replace("scale\t1024", "scale\t1000000");
        }
        assert!(merge(&wild_scale).is_ok());

        let mut bad_float = files.clone();
        // -0.0's bit pattern: nm_served of every even slot, of which a
        // 4-cell shard of a 7-cell grid always holds at least one.
        bad_float[0].1 = bad_float[0]
            .1
            .replace("\t8000000000000000\t", "\tnot-a-float-xx\t");
        let e = merge(&bad_float).unwrap_err();
        assert!(e.contains("hex bit pattern"), "{e}");
    }
}
