//! `reproduce … | head` must exit cleanly: a reader closing the pipe
//! early is its prerogative, not a failure. Before the fix, the bare
//! `print!` in `emit` panicked on EPIPE ("failed printing to stdout");
//! now a broken pipe on stdout maps to exit 0 while every other stdout
//! failure stays a normal exit-1 error.
//!
//! The tests close the read end of the child's stdout immediately after
//! spawn. Whether the child's write then hits EPIPE or sneaks into the
//! pipe buffer first is a race, but both outcomes must exit 0 — the old
//! code exited 101 with a panic message whenever the race was lost.

use std::process::{Command, Stdio};

fn reproduce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
}

/// Spawns `reproduce <args>` with a piped stdout, drops the read end
/// right away, and returns (exit-code, stderr).
fn run_with_closed_stdout(args: &[&str]) -> (Option<i32>, String) {
    let mut child = reproduce()
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn reproduce");
    drop(child.stdout.take());
    let output = child.wait_with_output().expect("wait for reproduce");
    (
        output.status.code(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn scenario_list_into_closed_pipe_exits_zero() {
    let (code, stderr) = run_with_closed_stdout(&["scenario", "--list"]);
    assert_eq!(code, Some(0), "stderr:\n{stderr}");
    assert!(!stderr.contains("panicked"), "stderr:\n{stderr}");
}

#[test]
fn experiment_list_into_closed_pipe_exits_zero() {
    let (code, stderr) = run_with_closed_stdout(&["--list"]);
    assert_eq!(code, Some(0), "stderr:\n{stderr}");
    assert!(!stderr.contains("panicked"), "stderr:\n{stderr}");
}

#[test]
fn query_into_closed_pipe_exits_zero() {
    // Build a small run directory to query, then pipe the query's stdout
    // into a closed pipe.
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-tmp")
        .join(format!("cli-pipe-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let rundir = dir.join("runs");
    let status = reproduce()
        .args(["scenario", "stream-chase"])
        .args(["--scale", "1024", "--instrs", "2000", "--threads", "1"])
        .arg("--runlog")
        .arg(&rundir)
        .arg("--out")
        .arg(dir.join("out.txt"))
        .stderr(Stdio::null())
        .status()
        .expect("seed a run directory");
    assert!(status.success(), "seeding run failed: {status}");

    let rundir_str = rundir.to_str().expect("utf-8 path");
    let (code, stderr) = run_with_closed_stdout(&["query", rundir_str]);
    assert_eq!(code, Some(0), "stderr:\n{stderr}");
    assert!(!stderr.contains("panicked"), "stderr:\n{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A scratch directory under `target/` (works in sandboxes without /tmp).
fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-tmp")
        .join(format!("cli-pipe-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Cheap sizing shared by the report-producing runs below.
const SIZING: [&str; 6] = ["--scale", "1024", "--instrs", "2000", "--threads", "1"];

#[test]
fn merge_into_closed_pipe_exits_zero() {
    let dir = temp_dir("merge");
    let mut shards = Vec::new();
    for part in ["1/2", "2/2"] {
        let path = dir.join(format!("shard-{}.tsv", part.replace('/', "of")));
        let status = reproduce()
            .args(["scenario", "stream-chase"])
            .args(SIZING)
            .args(["--shard", part])
            .arg("--out")
            .arg(&path)
            .stderr(Stdio::null())
            .status()
            .expect("write shard file");
        assert!(status.success(), "shard run failed: {status}");
        shards.push(path.to_str().expect("utf-8 path").to_owned());
    }
    let args: Vec<&str> = std::iter::once("merge")
        .chain(shards.iter().map(String::as_str))
        .collect();
    let (code, stderr) = run_with_closed_stdout(&args);
    assert_eq!(code, Some(0), "stderr:\n{stderr}");
    assert!(!stderr.contains("panicked"), "stderr:\n{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The dispatcher's report lands on stdout *after* the grid completes via
/// in-process takeover (zero workers, sub-second deadline) — a closed
/// pipe at that point must still be a clean exit, not a panic or a
/// dispatcher hang.
#[test]
fn serve_into_closed_pipe_exits_zero() {
    let (code, stderr) = run_with_closed_stdout(&[
        "serve",
        "scenario:stream-chase",
        "--shards",
        "2",
        "--deadline-secs",
        "0.3",
        "--listen",
        "127.0.0.1:0",
        "--scale",
        "1024",
        "--instrs",
        "2000",
        "--threads",
        "1",
    ]);
    assert_eq!(code, Some(0), "stderr:\n{stderr}");
    assert!(!stderr.contains("panicked"), "stderr:\n{stderr}");
}

#[test]
fn experiment_report_into_closed_pipe_exits_zero() {
    let mut args = vec!["--exp", "fig12"];
    args.extend_from_slice(&SIZING);
    let (code, stderr) = run_with_closed_stdout(&args);
    assert_eq!(code, Some(0), "stderr:\n{stderr}");
    assert!(!stderr.contains("panicked"), "stderr:\n{stderr}");
}

/// Regression: an early-exiting reader must not cost run records. The
/// old `emit` called `process::exit(0)` on EPIPE, so `--runlog` appends
/// scheduled after the report never happened — records silently vanished
/// exactly when output was piped through `head`. Now the broken pipe is
/// latched, later stdout writes are skipped, and every record still
/// lands on disk.
#[test]
fn runlog_records_survive_closed_stdout() {
    let dir = temp_dir("runlog");
    let rundir = dir.join("runs");
    let rundir_str = rundir.to_str().expect("utf-8 path");
    let mut args = vec!["scenario", "stream-chase"];
    args.extend_from_slice(&SIZING);
    args.extend_from_slice(&["--runlog", rundir_str]);
    let (code, stderr) = run_with_closed_stdout(&args);
    assert_eq!(code, Some(0), "stderr:\n{stderr}");
    assert!(!stderr.contains("panicked"), "stderr:\n{stderr}");

    let mut record_files = 0usize;
    for entry in std::fs::read_dir(&rundir).expect("run dir exists despite closed stdout") {
        let path = entry.expect("dir entry").path();
        if path.to_string_lossy().ends_with(".runlog.tsv") {
            let contents = std::fs::read_to_string(&path).expect("record file reads");
            assert!(
                contents.lines().count() > 1,
                "record file {} holds no records",
                path.display()
            );
            record_files += 1;
        }
    }
    assert!(record_files > 0, "no run-record files were written");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The counterpart guarantee: a *real* stdout failure (not EPIPE) still
/// exits 1 via the normal error path. `--out` into a nonexistent
/// directory exercises the same `emit` plumbing.
#[test]
fn non_pipe_io_errors_still_exit_one() {
    let out = reproduce()
        .args([
            "scenario",
            "--list",
            "--out",
            "/nonexistent-dir-for-sure/x.txt",
        ])
        .output()
        .expect("run reproduce");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "stderr:\n{stderr}");
    assert!(!stderr.contains("panicked"), "stderr:\n{stderr}");
}
