//! `reproduce … | head` must exit cleanly: a reader closing the pipe
//! early is its prerogative, not a failure. Before the fix, the bare
//! `print!` in `emit` panicked on EPIPE ("failed printing to stdout");
//! now a broken pipe on stdout maps to exit 0 while every other stdout
//! failure stays a normal exit-1 error.
//!
//! The tests close the read end of the child's stdout immediately after
//! spawn. Whether the child's write then hits EPIPE or sneaks into the
//! pipe buffer first is a race, but both outcomes must exit 0 — the old
//! code exited 101 with a panic message whenever the race was lost.

use std::process::{Command, Stdio};

fn reproduce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
}

/// Spawns `reproduce <args>` with a piped stdout, drops the read end
/// right away, and returns (exit-code, stderr).
fn run_with_closed_stdout(args: &[&str]) -> (Option<i32>, String) {
    let mut child = reproduce()
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn reproduce");
    drop(child.stdout.take());
    let output = child.wait_with_output().expect("wait for reproduce");
    (
        output.status.code(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn scenario_list_into_closed_pipe_exits_zero() {
    let (code, stderr) = run_with_closed_stdout(&["scenario", "--list"]);
    assert_eq!(code, Some(0), "stderr:\n{stderr}");
    assert!(!stderr.contains("panicked"), "stderr:\n{stderr}");
}

#[test]
fn experiment_list_into_closed_pipe_exits_zero() {
    let (code, stderr) = run_with_closed_stdout(&["--list"]);
    assert_eq!(code, Some(0), "stderr:\n{stderr}");
    assert!(!stderr.contains("panicked"), "stderr:\n{stderr}");
}

#[test]
fn query_into_closed_pipe_exits_zero() {
    // Build a small run directory to query, then pipe the query's stdout
    // into a closed pipe.
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-tmp")
        .join(format!("cli-pipe-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let rundir = dir.join("runs");
    let status = reproduce()
        .args(["scenario", "stream-chase"])
        .args(["--scale", "1024", "--instrs", "2000", "--threads", "1"])
        .arg("--runlog")
        .arg(&rundir)
        .arg("--out")
        .arg(dir.join("out.txt"))
        .stderr(Stdio::null())
        .status()
        .expect("seed a run directory");
    assert!(status.success(), "seeding run failed: {status}");

    let rundir_str = rundir.to_str().expect("utf-8 path");
    let (code, stderr) = run_with_closed_stdout(&["query", rundir_str]);
    assert_eq!(code, Some(0), "stderr:\n{stderr}");
    assert!(!stderr.contains("panicked"), "stderr:\n{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The counterpart guarantee: a *real* stdout failure (not EPIPE) still
/// exits 1 via the normal error path. `--out` into a nonexistent
/// directory exercises the same `emit` plumbing.
#[test]
fn non_pipe_io_errors_still_exit_one() {
    let out = reproduce()
        .args([
            "scenario",
            "--list",
            "--out",
            "/nonexistent-dir-for-sure/x.txt",
        ])
        .output()
        .expect("run reproduce");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "stderr:\n{stderr}");
    assert!(!stderr.contains("panicked"), "stderr:\n{stderr}");
}
