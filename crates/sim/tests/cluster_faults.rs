//! Fault-injection integration tests for the cluster dispatcher
//! (`reproduce serve` / `reproduce worker` over localhost TCP).
//!
//! Every test asserts the one property that matters: whatever workers do —
//! never show up, get SIGKILLed mid-run, stall past their lease deadline,
//! or deliver the same result twice — the dispatcher completes and its
//! output is byte-identical to the monolithic run of the same grid.

use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Sizing shared by every run in this file: small enough for a debug
/// build on a 1-vCPU runner, large enough that slices take real time.
const SIZING: [&str; 6] = ["--scale", "1024", "--instrs", "60000", "--threads", "1"];
const GRID: &str = "scenario:stream-chase";

/// A scratch directory under `target/` (works in sandboxes without /tmp).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/test-tmp")
        .join(format!("cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn reproduce() -> Command {
    Command::new(env!("CARGO_BIN_EXE_reproduce"))
}

/// Runs the monolithic reference of [`GRID`] and returns its output path.
fn monolithic(dir: &Path) -> PathBuf {
    let out = dir.join("mono.txt");
    let status = reproduce()
        .args(["scenario", "stream-chase"])
        .args(SIZING)
        .arg("--out")
        .arg(&out)
        .stderr(Stdio::null())
        .status()
        .expect("run monolithic reference");
    assert!(status.success(), "monolithic run failed: {status}");
    out
}

/// Starts `reproduce serve` for [`GRID`] and waits for the bound address.
fn start_serve(dir: &Path, shards: u32, workers: u32, deadline: &str) -> (Child, String, PathBuf) {
    let out = dir.join("cluster.txt");
    let addr_file = dir.join("addr.txt");
    let child = reproduce()
        .args(["serve", GRID])
        .args(["--shards", &shards.to_string()])
        .args(["--workers-expected", &workers.to_string()])
        .args(["--deadline-secs", deadline])
        .args(["--listen", "127.0.0.1:0"])
        .arg("--addr-file")
        .arg(&addr_file)
        .args(SIZING)
        .arg("--out")
        .arg(&out)
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let start = Instant::now();
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(&addr_file) {
            let s = s.trim().to_owned();
            if !s.is_empty() {
                break s;
            }
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "dispatcher never wrote its address file"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    (child, addr, out)
}

fn start_worker(addr: &str, extra: &[&str]) -> Child {
    reproduce()
        .args(["worker", addr, "--threads", "1"])
        .args(extra)
        .stderr(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn worker")
}

/// Waits for `child` with an overall cap, returning (exit-success, stderr).
fn wait_capped(mut child: Child, cap: Duration) -> (bool, String) {
    let start = Instant::now();
    loop {
        match child.try_wait().expect("poll child") {
            Some(status) => {
                let mut stderr = String::new();
                if let Some(mut pipe) = child.stderr.take() {
                    let _ = pipe.read_to_string(&mut stderr);
                }
                return (status.success(), stderr);
            }
            None => {
                if start.elapsed() >= cap {
                    let _ = child.kill();
                    let _ = child.wait();
                    panic!("dispatcher still running after {cap:?} — the no-hang guarantee failed");
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

fn assert_identical(mono: &Path, cluster: &Path, stderr: &str) {
    let a = std::fs::read(mono).expect("read monolithic output");
    let b = std::fs::read(cluster).expect("read cluster output");
    assert!(!a.is_empty(), "monolithic output is empty");
    assert_eq!(
        a, b,
        "cluster output differs from monolithic\n--- dispatcher stderr ---\n{stderr}"
    );
}

/// The no-hang guarantee, worst case: zero workers ever connect. Every
/// slice is taken over in-process once the (short) deadline passes with
/// no progress, and the output still matches the monolithic run.
#[test]
fn zero_workers_degrades_to_in_process_completion() {
    let dir = temp_dir("zero-workers");
    let mono = monolithic(&dir);
    let (serve, _addr, out) = start_serve(&dir, 3, 2, "0.3");
    let (ok, stderr) = wait_capped(serve, Duration::from_secs(120));
    assert!(ok, "serve failed:\n{stderr}");
    assert!(
        stderr.contains("running it in-process"),
        "expected in-process takeover in stderr:\n{stderr}"
    );
    assert_identical(&mono, &out, &stderr);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The headline artifact: three workers, one SIGKILLed mid-run, one
/// stalled far past its lease deadline — the dispatcher re-deals their
/// slices and the merged output is still `cmp`-identical.
#[test]
fn killed_and_stalled_workers_still_yield_identical_output() {
    let dir = temp_dir("kill-stall");
    let mono = monolithic(&dir);
    let (serve, addr, out) = start_serve(&dir, 4, 3, "1");
    let healthy = start_worker(&addr, &[]);
    let mut stalled = start_worker(&addr, &["--fault-stall-secs", "120"]);
    let mut victim = start_worker(&addr, &[]);
    // Let the victim connect and lease a slice, then SIGKILL it.
    std::thread::sleep(Duration::from_millis(300));
    victim.kill().expect("kill worker");
    let _ = victim.wait();

    let (ok, stderr) = wait_capped(serve, Duration::from_secs(120));
    // The stalled worker outlives the run by design; reap it.
    let _ = stalled.kill();
    let _ = stalled.wait();
    let _ = wait_capped(healthy, Duration::from_secs(30));
    assert!(ok, "serve failed:\n{stderr}");
    assert!(
        stderr.contains("re-dealing"),
        "expected at least one re-deal in stderr:\n{stderr}"
    );
    assert_identical(&mono, &out, &stderr);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Re-deal dedup: a worker that delivers every result twice exercises
/// first-result-wins — the duplicate is acknowledged and discarded, never
/// double-counted, and the output stays byte-identical.
#[test]
fn duplicate_results_are_discarded_not_double_counted() {
    let dir = temp_dir("duplicate");
    let mono = monolithic(&dir);
    let (serve, addr, out) = start_serve(&dir, 2, 1, "60");
    let worker = start_worker(&addr, &["--fault-duplicate"]);
    let (ok, stderr) = wait_capped(serve, Duration::from_secs(120));
    let _ = wait_capped(worker, Duration::from_secs(30));
    assert!(ok, "serve failed:\n{stderr}");
    assert!(
        stderr.contains("duplicate result") && stderr.contains("discarded"),
        "expected duplicate-discard lines in stderr:\n{stderr}"
    );
    assert_identical(&mono, &out, &stderr);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cluster runs land in the runlog as `cluster:<grid>` records carrying
/// per-lease telemetry, queryable like any other source.
#[test]
fn cluster_runs_record_lease_telemetry() {
    let dir = temp_dir("runlog");
    let rundir = dir.join("runs");
    let out = dir.join("cluster.txt");
    let addr_file = dir.join("addr.txt");
    let serve = reproduce()
        .args(["serve", GRID, "--shards", "2", "--deadline-secs", "0.3"])
        .args(["--listen", "127.0.0.1:0"])
        .arg("--addr-file")
        .arg(&addr_file)
        .arg("--runlog")
        .arg(&rundir)
        .args(SIZING)
        .arg("--out")
        .arg(&out)
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let (ok, stderr) = wait_capped(serve, Duration::from_secs(120));
    assert!(ok, "serve failed:\n{stderr}");
    assert!(
        stderr.contains("recorded") && stderr.contains("run record(s)"),
        "expected a runlog confirmation in stderr:\n{stderr}"
    );
    // The records round-trip through `reproduce query`.
    let q = reproduce()
        .arg("query")
        .arg(&rundir)
        .output()
        .expect("run query");
    assert!(
        q.status.success(),
        "query failed: {}",
        String::from_utf8_lossy(&q.stderr)
    );
    assert!(
        !q.stdout.is_empty(),
        "query over the cluster run dir printed nothing"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
