//! The 30-benchmark catalog mirroring Table 2 of the paper.
//!
//! Each entry records the paper's published characterization (MPKI,
//! footprint, traffic) and the synthetic-generator parameters chosen to
//! reproduce its *class* of behaviour: memory intensity (via `mem_every`),
//! footprint (scaled from Table 2), spatial locality (pattern choice) and
//! store share. The pattern assignments follow the paper's own commentary
//! where it exists — e.g. dc.B "streaming nature ... little potential for
//! data reuse", deepsjeng "low memory intensity with a wide memory footprint
//! and very limited spatial locality", omnetpp punished by large cache
//! lines.

use std::collections::HashMap;
use std::sync::LazyLock;

use crate::patterns::PatternSpec;
use crate::spec::{MpkiClass, PaperRow, WorkloadKind, WorkloadSpec};

use MpkiClass::{High, Low, Medium};
use PatternSpec as P;
use WorkloadKind::{MultiProgrammed as MP, MultiThreaded as MT};

const fn row(mpki: f64, footprint_gb: f64, traffic_gb: f64) -> PaperRow {
    PaperRow {
        mpki,
        footprint_gb,
        traffic_gb,
    }
}

/// All 30 workloads of the evaluation (Table 2), in the paper's order:
/// high-MPKI, then medium, then low. Built once on first use — the specs
/// own their names and pattern trees, so they can no longer live in a
/// `static` array.
static ALL: LazyLock<Vec<WorkloadSpec>> = LazyLock::new(build_all);

fn build_all() -> Vec<WorkloadSpec> {
    vec![
        // ---- High MPKI -----------------------------------------------------
        WorkloadSpec {
            name: "cg.D".into(),
            kind: MT,
            class: High,
            paper: row(90.6, 7.8, 43.3),
            pattern: P::StreamMix {
                stream_pct: 50,
                stride: 8,
                hot_bp: 60,
                hot_pct: 95,
            },
            mem_every: 6,
            write_pct: 25,
        },
        WorkloadSpec {
            name: "sp.D".into(),
            kind: MT,
            class: High,
            paper: row(30.1, 11.2, 21.6),
            pattern: P::TiledStream {
                stride: 32,
                tile_bp: 400,
                repeats: 2,
            },
            mem_every: 17,
            write_pct: 30,
        },
        WorkloadSpec {
            name: "bt.D".into(),
            kind: MT,
            class: High,
            paper: row(30.1, 10.7, 21.3),
            pattern: P::TiledStream {
                stride: 32,
                tile_bp: 400,
                repeats: 2,
            },
            mem_every: 17,
            write_pct: 30,
        },
        WorkloadSpec {
            name: "fotonik3d".into(),
            kind: MP,
            class: High,
            paper: row(28.1, 6.4, 19.9),
            pattern: P::TiledStream {
                stride: 16,
                tile_bp: 400,
                repeats: 2,
            },
            mem_every: 9,
            write_pct: 30,
        },
        WorkloadSpec {
            name: "lbm".into(),
            kind: MP,
            class: High,
            paper: row(27.4, 3.1, 21.7),
            pattern: P::TiledStream {
                stride: 8,
                tile_bp: 400,
                repeats: 2,
            },
            mem_every: 5,
            write_pct: 40,
        },
        WorkloadSpec {
            name: "bwaves".into(),
            kind: MP,
            class: High,
            paper: row(26.8, 3.3, 13.8),
            pattern: P::TiledStream {
                stride: 16,
                tile_bp: 500,
                repeats: 3,
            },
            mem_every: 9,
            write_pct: 25,
        },
        WorkloadSpec {
            name: "lu.D".into(),
            kind: MT,
            class: High,
            paper: row(25.8, 2.9, 19.1),
            pattern: P::TiledStream {
                stride: 64,
                tile_bp: 400,
                repeats: 2,
            },
            mem_every: 39,
            write_pct: 30,
        },
        WorkloadSpec {
            name: "mcf".into(),
            kind: MP,
            class: High,
            paper: row(25.8, 0.1, 12.6),
            pattern: P::PointerChase {
                hot_bp: 2000,
                hot_pct: 85,
            },
            mem_every: 39,
            write_pct: 15,
        },
        WorkloadSpec {
            name: "gcc".into(),
            kind: MP,
            class: High,
            paper: row(21.2, 1.6, 13.0),
            pattern: P::PhasedHotspot {
                period: 200_000,
                hot_bp: 200,
                hot_pct: 70,
            },
            mem_every: 14,
            write_pct: 25,
        },
        WorkloadSpec {
            name: "roms".into(),
            kind: MP,
            class: High,
            paper: row(15.5, 2.3, 9.7),
            pattern: P::TiledStream {
                stride: 16,
                tile_bp: 400,
                repeats: 2,
            },
            mem_every: 16,
            write_pct: 25,
        },
        // ---- Medium MPKI ---------------------------------------------------
        WorkloadSpec {
            name: "mg.C".into(),
            kind: MT,
            class: Medium,
            paper: row(14.2, 2.8, 8.9),
            pattern: P::TiledStream {
                stride: 64,
                tile_bp: 400,
                repeats: 2,
            },
            mem_every: 70,
            write_pct: 25,
        },
        WorkloadSpec {
            name: "omnetpp".into(),
            kind: MP,
            class: Medium,
            paper: row(9.8, 1.5, 6.9),
            pattern: P::PointerChase {
                hot_bp: 3000,
                hot_pct: 85,
            },
            mem_every: 102,
            write_pct: 20,
        },
        WorkloadSpec {
            name: "is.C".into(),
            kind: MT,
            class: Medium,
            paper: row(9.0, 1.0, 5.4),
            pattern: P::Hotspot {
                hot_bp: 1500,
                hot_pct: 75,
            },
            mem_every: 111,
            write_pct: 30,
        },
        WorkloadSpec {
            name: "dc.B".into(),
            kind: MT,
            class: Medium,
            paper: row(8.4, 4.0, 8.0),
            pattern: P::Stream { stride: 8 },
            mem_every: 15,
            write_pct: 30,
        },
        WorkloadSpec {
            name: "ua.D".into(),
            kind: MT,
            class: Medium,
            paper: row(7.8, 3.1, 4.9),
            pattern: P::Hotspot {
                hot_bp: 1200,
                hot_pct: 80,
            },
            mem_every: 128,
            write_pct: 25,
        },
        WorkloadSpec {
            name: "xz".into(),
            kind: MP,
            class: Medium,
            paper: row(5.6, 0.7, 4.3),
            pattern: P::PhasedHotspot {
                period: 300_000,
                hot_bp: 200,
                hot_pct: 60,
            },
            mem_every: 71,
            write_pct: 25,
        },
        WorkloadSpec {
            name: "parest".into(),
            kind: MP,
            class: Medium,
            paper: row(4.3, 0.2, 2.2),
            pattern: P::Hotspot {
                hot_bp: 200,
                hot_pct: 80,
            },
            mem_every: 47,
            write_pct: 20,
        },
        WorkloadSpec {
            name: "cactus".into(),
            kind: MP,
            class: Medium,
            paper: row(3.4, 0.8, 2.0),
            pattern: P::StreamMix {
                stream_pct: 70,
                stride: 16,
                hot_bp: 1000,
                hot_pct: 80,
            },
            mem_every: 140,
            write_pct: 25,
        },
        WorkloadSpec {
            name: "ft.C".into(),
            kind: MT,
            class: Medium,
            paper: row(3.1, 0.9, 2.6),
            pattern: P::TiledStream {
                stride: 128,
                tile_bp: 600,
                repeats: 2,
            },
            mem_every: 323,
            write_pct: 30,
        },
        WorkloadSpec {
            name: "cam4".into(),
            kind: MP,
            class: Medium,
            paper: row(2.2, 0.3, 1.6),
            pattern: P::StreamMix {
                stream_pct: 60,
                stride: 8,
                hot_bp: 1000,
                hot_pct: 80,
            },
            mem_every: 216,
            write_pct: 25,
        },
        // ---- Low MPKI --------------------------------------------------------
        WorkloadSpec {
            name: "wrf".into(),
            kind: MP,
            class: Low,
            paper: row(1.4, 0.4, 1.1),
            pattern: P::Hotspot {
                hot_bp: 150,
                hot_pct: 95,
            },
            mem_every: 36,
            write_pct: 25,
        },
        WorkloadSpec {
            name: "xalanc".into(),
            kind: MP,
            class: Low,
            paper: row(1.1, 0.1, 1.0),
            pattern: P::Hotspot {
                hot_bp: 150,
                hot_pct: 97,
            },
            mem_every: 27,
            write_pct: 20,
        },
        WorkloadSpec {
            name: "imagick".into(),
            kind: MP,
            class: Low,
            paper: row(1.1, 0.4, 0.9),
            pattern: P::Stream { stride: 8 },
            mem_every: 114,
            write_pct: 30,
        },
        WorkloadSpec {
            name: "x264".into(),
            kind: MP,
            class: Low,
            paper: row(0.9, 0.3, 0.6),
            pattern: P::StreamMix {
                stream_pct: 80,
                stride: 8,
                hot_bp: 1000,
                hot_pct: 85,
            },
            mem_every: 333,
            write_pct: 30,
        },
        WorkloadSpec {
            name: "perlbench".into(),
            kind: MP,
            class: Low,
            paper: row(0.7, 0.2, 0.4),
            pattern: P::Hotspot {
                hot_bp: 150,
                hot_pct: 96,
            },
            mem_every: 57,
            write_pct: 25,
        },
        WorkloadSpec {
            name: "blender".into(),
            kind: MP,
            class: Low,
            paper: row(0.7, 0.2, 0.3),
            pattern: P::Hotspot {
                hot_bp: 150,
                hot_pct: 95,
            },
            mem_every: 71,
            write_pct: 25,
        },
        WorkloadSpec {
            name: "deepsjeng".into(),
            kind: MP,
            class: Low,
            paper: row(0.3, 3.4, 0.2),
            pattern: P::Random,
            mem_every: 3333,
            write_pct: 15,
        },
        WorkloadSpec {
            name: "nab".into(),
            kind: MP,
            class: Low,
            paper: row(0.2, 0.2, 0.1),
            pattern: P::Hotspot {
                hot_bp: 150,
                hot_pct: 97,
            },
            mem_every: 150,
            write_pct: 25,
        },
        WorkloadSpec {
            name: "leela".into(),
            kind: MP,
            class: Low,
            paper: row(0.1, 0.1, 0.1),
            pattern: P::Hotspot {
                hot_bp: 150,
                hot_pct: 98,
            },
            mem_every: 200,
            write_pct: 20,
        },
        WorkloadSpec {
            name: "namd".into(),
            kind: MP,
            class: Low,
            paper: row(0.13, 0.1, 0.1),
            pattern: P::Hotspot {
                hot_bp: 150,
                hot_pct: 97,
            },
            mem_every: 230,
            write_pct: 25,
        },
    ]
}

/// All workloads in Table 2 order.
pub fn all() -> &'static [WorkloadSpec] {
    &ALL
}

/// Looks a workload up by its paper name (e.g. `"cg.D"`, `"lbm"`).
pub fn by_name(name: &str) -> Option<&'static WorkloadSpec> {
    ALL.iter().find(|s| s.name == name)
}

/// The ten workloads of one MPKI class, in catalog order.
pub fn by_class(class: MpkiClass) -> impl Iterator<Item = &'static WorkloadSpec> {
    ALL.iter().filter(move |s| s.class == class)
}

/// A small representative subset (one per class) for fast tests/examples.
pub fn smoke_set() -> [&'static WorkloadSpec; 3] {
    [
        by_name("lbm").expect("catalog contains lbm"),
        by_name("omnetpp").expect("catalog contains omnetpp"),
        by_name("xalanc").expect("catalog contains xalanc"),
    ]
}

// ---- The scenario catalog type ------------------------------------------

/// One named scenario: a composite workload plus its catalog metadata.
///
/// For `Mix` scenarios the wrapped spec's `mem_every`/`write_pct` are
/// *headline* values only (reports, accounting bounds): generation is
/// driven entirely by each part's own `MixPart::mem_every`/`write_pct`.
/// Tune a mix's intensity in its part list, not in the spec.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// One-line description printed by `reproduce scenario --list`.
    pub summary: String,
    /// The workload the simulator runs (its `name`/`class` are the
    /// scenario's name and expected MPKI class).
    pub workload: WorkloadSpec,
}

impl Scenario {
    /// The scenario's name (shared with the wrapped workload).
    pub fn name(&self) -> &str {
        &self.workload.name
    }

    /// The scenario's expected MPKI class.
    pub fn class(&self) -> MpkiClass {
        self.workload.class
    }
}

/// An owned, name-indexed collection of [`Scenario`] values.
///
/// This is the unit the whole scenario machinery works over: the 8
/// built-ins ([`crate::scenarios::builtin`]), a `.scn` spec file
/// ([`Catalog::from_scn_str`]), or a seeded generated catalog
/// ([`Catalog::generate`]) all produce one, and `sim`'s grid / shard /
/// cluster / runlog layers identify a scenario by its *name* within the
/// catalog, never by address.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    scenarios: Vec<Scenario>,
    index: HashMap<String, usize>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds a scenario; rejects duplicate names (the name is the identity,
    /// so a catalog with two scenarios of one name is meaningless).
    pub fn push(&mut self, scenario: Scenario) -> Result<(), String> {
        let name = scenario.name().to_owned();
        if self.index.contains_key(&name) {
            return Err(format!("duplicate scenario name '{name}'"));
        }
        self.index.insert(name, self.scenarios.len());
        self.scenarios.push(scenario);
        Ok(())
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when the catalog holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The scenarios in insertion (catalog) order.
    pub fn iter(&self) -> impl Iterator<Item = &Scenario> {
        self.scenarios.iter()
    }

    /// The scenarios in insertion (catalog) order, as a slice.
    pub fn as_slice(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// O(1) lookup by name via the catalog's name index.
    pub fn by_name(&self, name: &str) -> Option<&Scenario> {
        self.index.get(name).map(|&i| &self.scenarios[i])
    }

    /// The workload of scenario `name`.
    pub fn workload_of(&self, name: &str) -> Option<&WorkloadSpec> {
        self.by_name(name).map(|s| &s.workload)
    }

    /// The closest catalog name within Levenshtein distance 2 of `name` —
    /// the "did you mean" suggestion for CLI typos. Ties break to the
    /// earlier catalog entry.
    pub fn nearest(&self, name: &str) -> Option<&str> {
        self.scenarios
            .iter()
            .filter_map(|s| {
                let d = edit_distance(name, s.name());
                (d <= 2).then_some((d, s.name()))
            })
            .min_by_key(|&(d, _)| d)
            .map(|(_, n)| n)
    }
}

/// Plain Levenshtein distance, early-exited only by its inputs' size (the
/// names involved are tens of bytes, so the O(nm) table is irrelevant).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_workloads_ten_per_class() {
        assert_eq!(ALL.len(), 30);
        for class in MpkiClass::ALL {
            assert_eq!(by_class(class).count(), 10, "class {class}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = ALL.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 30);
    }

    #[test]
    fn catalog_matches_paper_class_thresholds() {
        for s in all() {
            assert_eq!(
                MpkiClass::of_mpki(s.paper.mpki),
                s.class,
                "{} is grouped inconsistently with its paper MPKI",
                s.name
            );
        }
    }

    #[test]
    fn kind_counts_match_paper() {
        // 21 SPEC (MP) + 9 NAS (MT).
        let mt = ALL
            .iter()
            .filter(|s| s.kind == WorkloadKind::MultiThreaded)
            .count();
        let mp = ALL
            .iter()
            .filter(|s| s.kind == WorkloadKind::MultiProgrammed)
            .count();
        assert_eq!(mt, 9);
        assert_eq!(mp, 21);
    }

    #[test]
    fn lookups_work() {
        assert!(by_name("cg.D").is_some());
        assert!(by_name("namd").is_some());
        assert!(by_name("does-not-exist").is_none());
    }

    #[test]
    fn footprints_are_positive_and_ordered_sanely() {
        for s in all() {
            assert!(s.paper.footprint_gb > 0.0, "{}", s.name);
            assert!(s.paper.traffic_gb > 0.0, "{}", s.name);
            assert!(s.mem_every >= 1, "{}", s.name);
            assert!(s.write_pct <= 60, "{}", s.name);
        }
    }

    #[test]
    fn high_class_is_more_intense_than_low() {
        // Memory intensity proxy: pattern miss share / mem_every. Rather than
        // re-deriving the model here, check the grouped paper MPKIs.
        let min_high = by_class(MpkiClass::High)
            .map(|s| s.paper.mpki)
            .fold(f64::INFINITY, f64::min);
        let max_low = by_class(MpkiClass::Low)
            .map(|s| s.paper.mpki)
            .fold(0.0, f64::max);
        assert!(min_high > max_low);
    }

    #[test]
    fn smoke_set_covers_all_classes() {
        let set = smoke_set();
        let classes: Vec<_> = set.iter().map(|s| s.class).collect();
        assert!(classes.contains(&MpkiClass::High));
        assert!(classes.contains(&MpkiClass::Medium));
        assert!(classes.contains(&MpkiClass::Low));
    }

    #[test]
    fn exceeds_llc_filter_matches_paper_claim() {
        // At paper scale every catalog entry exceeds the 8 MB LLC.
        for s in all() {
            assert!(
                s.exceeds_llc(1, 8 * 1024 * 1024),
                "{} should exceed the LLC at paper scale",
                s.name
            );
        }
    }
}
