//! Synthetic workload generators calibrated to the Hybrid2 paper's Table 2.
//!
//! The paper drives its evaluation with Pin-captured traces of 21 SPEC CPU
//! 2017 benchmarks (run as 8 identical multi-programmed instances) and 9
//! OpenMP NAS benchmarks (run as 8 threads sharing one address space). We
//! cannot redistribute or capture those traces, so this crate synthesizes
//! per-benchmark address streams from composable access-pattern primitives
//! (see `DESIGN.md` §3, substitution 1):
//!
//! * streaming / strided walks — stencil and grid codes (lbm, sp.D, bt.D…),
//! * uniform-random and pointer-chase jumps — mcf, omnetpp, deepsjeng,
//! * hot-set (temporal-locality) references — the low-MPKI group,
//! * phased working-set shifts — gcc, xz,
//! * probabilistic mixes of the above.
//!
//! Each of the 30 entries in [`catalog::all()`] carries the paper's reported
//! MPKI / footprint / traffic (Table 2) plus generator parameters chosen so
//! that the *measured* characteristics land in the same MPKI class with the
//! same relative footprints. The `table2` experiment in the `sim` crate
//! regenerates the characterization table for comparison.
//!
//! Beyond the stationary Table 2 stand-ins, [`scenarios`] names composite
//! workloads built from two extra pattern combinators —
//! [`PatternSpec::Phased`] (exact-budget phase changes) and
//! [`PatternSpec::Mix`] (deterministic multi-program interleaves in
//! disjoint footprint slices) — exercising the access-pattern *dynamics*
//! the paper's eviction-time migration claims to adapt to.
//!
//! # Example
//!
//! ```
//! use workloads::{catalog, Workload};
//! use sim_types::TraceSource;
//!
//! let spec = catalog::by_name("lbm").expect("lbm is in the catalog");
//! let mut wl = Workload::build(spec, /*cores=*/8, /*scale_den=*/64, /*seed=*/1);
//! let op = wl.source_mut(0).next_op().expect("traces are unbounded");
//! assert!(op.addr.raw() < wl.footprint_bytes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod patterns;
pub mod scenarios;
pub mod scn;
mod spec;

pub use catalog::{Catalog, Scenario};
pub use patterns::{MixPart, PatternSpec, Phase, TraceGen};
pub use spec::{MpkiClass, PaperRow, WorkloadKind, WorkloadSpec};

use sim_types::rng::SplitMix64;

/// A workload instantiated for a number of cores at a given scale: one trace
/// source per core plus the address-space layout information the system
/// runner needs.
#[derive(Clone, Debug)]
pub struct Workload {
    spec: WorkloadSpec,
    sources: Vec<TraceGen>,
    footprint_bytes: u64,
    shared_address_space: bool,
}

impl Workload {
    /// Instantiates `spec` for `cores` hardware threads with all sizes
    /// divided by `scale_den` (1 = paper scale). The generators are seeded
    /// deterministically from `seed`.
    ///
    /// Multi-threaded (NAS) workloads share one virtual address space:
    /// every thread walks its own partition plus a shared region.
    /// Multi-programmed (SPEC) workloads get one private address space per
    /// core; the paper's Table 2 footprint is the aggregate, so each
    /// instance receives `footprint / cores`.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or `scale_den == 0`.
    pub fn build(spec: &WorkloadSpec, cores: usize, scale_den: u64, seed: u64) -> Self {
        assert!(cores > 0, "workload needs at least one core");
        assert!(scale_den > 0, "scale denominator must be non-zero");
        let total = (spec.paper.footprint_bytes() / scale_den).max(64 * 1024);
        let mut root = SplitMix64::new(seed ^ hash_name(&spec.name));
        let shared = spec.kind == WorkloadKind::MultiThreaded;
        let sources = (0..cores)
            .map(|core| {
                let rng = root.fork();
                if shared {
                    // Threads partition the space; ~1/8 of references go to
                    // a shared region at the bottom of the address space.
                    let part = total / cores as u64;
                    TraceGen::new(
                        spec.pattern.clone(),
                        spec.mem_every,
                        spec.write_pct,
                        core as u64 * part,
                        part,
                        total / 8,
                        rng,
                    )
                } else {
                    // Private space per instance; the runner maps each
                    // core's virtual space to disjoint physical pages.
                    let part = (total / cores as u64).max(64 * 1024);
                    TraceGen::new(
                        spec.pattern.clone(),
                        spec.mem_every,
                        spec.write_pct,
                        0,
                        part,
                        0,
                        rng,
                    )
                }
            })
            .collect();
        Workload {
            spec: spec.clone(),
            sources,
            footprint_bytes: total,
            shared_address_space: shared,
        }
    }

    /// The specification this workload was built from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Scaled total footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.footprint_bytes
    }

    /// Whether all cores share one virtual address space (NAS/MT) or each
    /// core owns a private one (SPEC/MP).
    pub fn shared_address_space(&self) -> bool {
        self.shared_address_space
    }

    /// Number of per-core trace sources.
    pub fn cores(&self) -> usize {
        self.sources.len()
    }

    /// Mutable access to core `i`'s trace source.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn source_mut(&mut self, i: usize) -> &mut TraceGen {
        &mut self.sources[i]
    }

    /// Detaches the per-core trace sources so the parallel machine loop can
    /// hand each speculation worker exclusive ownership of its core's
    /// generator. While detached, [`Workload::source_mut`] panics; restore
    /// with [`Workload::attach_sources`].
    pub fn detach_sources(&mut self) -> Vec<TraceGen> {
        std::mem::take(&mut self.sources)
    }

    /// Restores sources taken by [`Workload::detach_sources`].
    pub fn attach_sources(&mut self, sources: Vec<TraceGen>) {
        assert!(self.sources.is_empty(), "sources already attached");
        self.sources = sources;
    }

    /// The per-core virtual footprint (bytes) the runner must map for core
    /// `i`: the whole space when shared, the private partition otherwise.
    pub fn core_space_bytes(&self, _i: usize) -> u64 {
        if self.shared_address_space {
            self.footprint_bytes
        } else {
            (self.footprint_bytes / self.sources.len() as u64).max(64 * 1024)
        }
    }
}

/// Stable tiny hash so each benchmark gets an independent seed stream.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_types::TraceSource;

    #[test]
    fn build_respects_scaled_footprint() {
        let spec = catalog::by_name("lbm").unwrap();
        let wl = Workload::build(spec, 8, 64, 7);
        let expected = spec.paper.footprint_bytes() / 64;
        assert_eq!(wl.footprint_bytes(), expected.max(64 * 1024));
    }

    #[test]
    fn mp_sources_stay_in_private_partition() {
        let spec = catalog::by_name("mcf").unwrap();
        let mut wl = Workload::build(spec, 8, 64, 7);
        let bound = wl.core_space_bytes(0);
        for core in 0..8 {
            for _ in 0..2000 {
                let op = wl.source_mut(core).next_op().unwrap();
                assert!(op.addr.raw() < bound, "MP trace escaped its partition");
            }
        }
    }

    #[test]
    fn mt_sources_cover_shared_space() {
        let spec = catalog::by_name("cg.D").unwrap();
        let mut wl = Workload::build(spec, 8, 64, 7);
        assert!(wl.shared_address_space());
        let total = wl.footprint_bytes();
        let mut max_seen = 0u64;
        for core in 0..8 {
            for _ in 0..2000 {
                let op = wl.source_mut(core).next_op().unwrap();
                assert!(op.addr.raw() < total);
                max_seen = max_seen.max(op.addr.raw());
            }
        }
        // Threads other than 0 reference beyond the first partition.
        assert!(max_seen > total / 8);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let spec = catalog::by_name("omnetpp").unwrap();
        let mut a = Workload::build(spec, 2, 64, 42);
        let mut b = Workload::build(spec, 2, 64, 42);
        for _ in 0..1000 {
            assert_eq!(a.source_mut(0).next_op(), b.source_mut(0).next_op());
            assert_eq!(a.source_mut(1).next_op(), b.source_mut(1).next_op());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let spec = catalog::by_name("omnetpp").unwrap();
        let mut a = Workload::build(spec, 1, 64, 1);
        let mut b = Workload::build(spec, 1, 64, 2);
        let same = (0..200)
            .filter(|_| a.source_mut(0).next_op() == b.source_mut(0).next_op())
            .count();
        assert!(same < 200, "independent seeds should diverge");
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let spec = catalog::by_name("lbm").unwrap();
        let _ = Workload::build(spec, 0, 64, 1);
    }

    #[test]
    fn hash_name_distinguishes_benchmarks() {
        assert_ne!(hash_name("lbm"), hash_name("mcf"));
        assert_eq!(hash_name("lbm"), hash_name("lbm"));
    }
}
