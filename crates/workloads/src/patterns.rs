//! Access-pattern primitives and the trace generator.

use sim_types::rng::SplitMix64;
use sim_types::{TraceOp, TraceSource, VAddr};

/// The family of synthetic access patterns used to stand in for the paper's
/// benchmarks (see `DESIGN.md` §3).
///
/// Real applications mix *spatial* locality (streams, runs) with *temporal*
/// locality (hot working sets, re-walked tiles); these primitives expose
/// both as explicit knobs. All footprint-relative parameters are expressed
/// in basis points (1 bp = 0.01%) so specs stay valid under scaling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatternSpec {
    /// Dense sequential walk with a small element stride and **no reuse** —
    /// the paper singles out dc.B's "streaming nature ... little potential
    /// for data reuse".
    Stream {
        /// Byte stride between consecutive references.
        stride: u32,
    },
    /// Sequential walk organized in *tiles* that are re-walked `repeats`
    /// times before moving on — the timestep/subdomain reuse of stencil and
    /// grid codes (lbm, sp.D, bt.D, fotonik3d). This is what lets caches
    /// and migration cut FM traffic on streaming codes (Figure 16).
    TiledStream {
        /// Byte stride between consecutive references.
        stride: u32,
        /// Tile size as basis points of the footprint.
        tile_bp: u32,
        /// Number of times each tile is walked (>= 1).
        repeats: u8,
    },
    /// Regular walk with a stride that skips lines — partial spatial
    /// locality (ft.C transposes).
    Strided {
        /// Byte stride between consecutive references.
        stride: u32,
    },
    /// Uniform random 8-byte references over the whole footprint — no
    /// spatial *or* temporal locality at all. Reserved for deepsjeng
    /// ("wide memory footprint and very limited spatial locality"; the
    /// paper notes *no* scheme beats the baseline on it).
    Random,
    /// Random 64-byte-granule jumps concentrated on a hot subset — pointer
    /// chasing over node-sized objects with a warm core (mcf, omnetpp,
    /// ua.D). Poor spatial locality (large cache lines over-fetch), decent
    /// temporal locality (NM capacity pays off).
    PointerChase {
        /// Hot-region size as basis points of the footprint.
        hot_bp: u32,
        /// Percentage of references that go to the hot region.
        hot_pct: u8,
    },
    /// A hot subset absorbs most references; cold references walk short
    /// sequential runs (page-level locality) — the low-MPKI SPEC group.
    Hotspot {
        /// Hot-region size as basis points of the footprint.
        hot_bp: u32,
        /// Percentage of references that go to the hot region.
        hot_pct: u8,
    },
    /// Like [`PatternSpec::Hotspot`] but the hot region relocates every
    /// `period` memory references — working-set shifts (gcc, xz), the case
    /// caches adapt to faster than migration schemes.
    PhasedHotspot {
        /// Memory references between hot-region moves.
        period: u64,
        /// Hot-region size as basis points of the footprint.
        hot_bp: u32,
        /// Percentage of references that go to the hot region.
        hot_pct: u8,
    },
    /// A probabilistic blend: `stream_pct`% sequential walk, the rest
    /// hot-set random gathers — sparse algebra and mixed codes (cg.D,
    /// cactus, cam4, x264).
    StreamMix {
        /// Percentage of references that continue the sequential walk.
        stream_pct: u8,
        /// Byte stride of the sequential component.
        stride: u32,
        /// Hot-region size (basis points) for the gather component.
        hot_bp: u32,
        /// Percentage of gathers that stay in the hot region.
        hot_pct: u8,
    },
}

/// A deterministic, unbounded trace generator for one hardware thread.
///
/// Produced by [`Workload::build`](crate::Workload::build); implements
/// [`TraceSource`] for the core model.
#[derive(Clone, Debug)]
pub struct TraceGen {
    pattern: PatternSpec,
    mem_every: u32,
    write_pct: u8,
    /// First byte of this thread's own region.
    base: u64,
    /// Size of this thread's own region in bytes.
    size: u64,
    /// Bytes of the shared region at the bottom of the address space
    /// (0 for private/MP address spaces).
    shared_bytes: u64,
    rng: SplitMix64,
    cursor: u64,
    cold_cursor: u64,
    tile_start: u64,
    tile_walked: u64,
    tile_rep: u8,
    ops: u64,
    hot_base: u64,
}

impl TraceGen {
    /// Creates a generator over `[base, base + size)` with an optional
    /// shared region `[0, shared_bytes)` receiving ~1/8 of references.
    ///
    /// # Panics
    ///
    /// Panics if `size` is smaller than 4 KB (degenerate regions make the
    /// pattern arithmetic meaningless).
    pub fn new(
        pattern: PatternSpec,
        mem_every: u32,
        write_pct: u8,
        base: u64,
        size: u64,
        shared_bytes: u64,
        rng: SplitMix64,
    ) -> Self {
        assert!(
            size >= 4096,
            "trace region must be at least 4 KB, got {size}"
        );
        TraceGen {
            pattern,
            mem_every: mem_every.max(1),
            write_pct,
            base,
            size,
            shared_bytes,
            rng,
            cursor: 0,
            cold_cursor: 0,
            tile_start: 0,
            tile_walked: 0,
            tile_rep: 0,
            ops: 0,
            hot_base: 0,
        }
    }

    /// The pattern this generator follows.
    pub fn pattern(&self) -> PatternSpec {
        self.pattern
    }

    /// Exactly `x % m`, but the per-op common case (`x` already below `m`
    /// or barely past it) never executes a 64-bit divide — address
    /// wrap-around runs once per generated op, and `div` is the single
    /// most expensive ALU instruction on that path.
    #[inline]
    fn wrap(x: u64, m: u64) -> u64 {
        if x < m {
            x
        } else if x < 2 * m {
            x - m
        } else {
            x % m
        }
    }

    fn gap(&mut self) -> u32 {
        // Uniform around the mean: mean gap = mem_every - 1.
        if self.mem_every <= 1 {
            0
        } else {
            self.rng.gen_range(u64::from(2 * (self.mem_every - 1) + 1)) as u32
        }
    }

    fn region_of_bp(&self, bp: u32) -> u64 {
        (self.size * u64::from(bp) / 10_000).max(4096)
    }

    /// A 64 B-granular reference biased to a hot region of `hot_bp` with
    /// probability `hot_pct`, uniform over the footprint otherwise.
    fn hot_jump(&mut self, hot_bp: u32, hot_pct: u8, hot_base: u64) -> u64 {
        let hot = self.region_of_bp(hot_bp);
        if self.rng.chance(u64::from(hot_pct), 100) {
            Self::wrap(hot_base + self.rng.gen_range(hot / 64) * 64, self.size)
        } else {
            self.rng.gen_range(self.size / 64) * 64
        }
    }

    /// A cold reference with page-level locality: short sequential runs of
    /// 64 B lines with occasional random restarts (mean run ~8 lines).
    fn cold_run(&mut self) -> u64 {
        if self.rng.chance(1, 8) {
            self.cold_cursor = self.rng.gen_range(self.size / 64) * 64;
        } else {
            self.cold_cursor = Self::wrap(self.cold_cursor + 64, self.size);
        }
        self.cold_cursor
    }

    fn own_addr(&mut self) -> u64 {
        let size = self.size;
        match self.pattern {
            PatternSpec::Stream { stride } | PatternSpec::Strided { stride } => {
                self.cursor = Self::wrap(self.cursor + u64::from(stride), size);
                self.cursor
            }
            PatternSpec::TiledStream {
                stride,
                tile_bp,
                repeats,
            } => {
                let tile = self.region_of_bp(tile_bp);
                self.tile_walked += u64::from(stride);
                if self.tile_walked >= tile {
                    self.tile_walked = 0;
                    self.tile_rep += 1;
                    if self.tile_rep >= repeats.max(1) {
                        self.tile_rep = 0;
                        self.tile_start = (self.tile_start + tile) % size;
                    }
                }
                Self::wrap(self.tile_start + self.tile_walked, size)
            }
            PatternSpec::Random => self.rng.gen_range(size / 8) * 8,
            PatternSpec::PointerChase { hot_bp, hot_pct } => self.hot_jump(hot_bp, hot_pct, 0),
            PatternSpec::Hotspot { hot_bp, hot_pct } => {
                let hot = self.region_of_bp(hot_bp);
                if self.rng.chance(u64::from(hot_pct), 100) {
                    self.rng.gen_range(hot / 8) * 8
                } else {
                    self.cold_run()
                }
            }
            PatternSpec::PhasedHotspot {
                period,
                hot_bp,
                hot_pct,
            } => {
                let hot = self.region_of_bp(hot_bp);
                if self.ops > 0 && self.ops.is_multiple_of(period) {
                    // Relocate the hot region to fresh addresses.
                    self.hot_base = (self.hot_base + hot) % size.saturating_sub(hot).max(1);
                }
                if self.rng.chance(u64::from(hot_pct), 100) {
                    (self.hot_base + self.rng.gen_range(hot / 8) * 8) % size
                } else {
                    self.cold_run()
                }
            }
            PatternSpec::StreamMix {
                stream_pct,
                stride,
                hot_bp,
                hot_pct,
            } => {
                if self.rng.chance(u64::from(stream_pct), 100) {
                    self.cursor = Self::wrap(self.cursor + u64::from(stride), size);
                    self.cursor
                } else {
                    self.hot_jump(hot_bp, hot_pct, 0)
                }
            }
        }
    }
}

impl TraceSource for TraceGen {
    fn next_op(&mut self) -> Option<TraceOp> {
        self.ops += 1;
        let gap = self.gap();
        // Shared-region reference (MT workloads only): 1 in 8. Shared
        // OpenMP structures (reduction variables, lookup tables, boundary
        // planes) are compact and hot, so shared traffic concentrates on a
        // core an eighth the size of the shared region.
        let addr = if self.shared_bytes >= 4096 && self.rng.chance(1, 8) {
            self.rng.gen_range((self.shared_bytes / 8).max(4096) / 64) * 64
        } else {
            self.base + self.own_addr()
        };
        let write = self.rng.chance(u64::from(self.write_pct), 100);
        Some(if write {
            TraceOp::store(gap, VAddr::new(addr))
        } else {
            TraceOp::load(gap, VAddr::new(addr))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: PatternSpec, size: u64) -> TraceGen {
        TraceGen::new(pattern, 10, 20, 0, size, 0, SplitMix64::new(7))
    }

    fn collect(g: &mut TraceGen, n: usize) -> Vec<TraceOp> {
        (0..n).map(|_| g.next_op().unwrap()).collect()
    }

    #[test]
    fn stream_is_sequential_with_wraparound() {
        let mut g = gen(PatternSpec::Stream { stride: 8 }, 4096);
        let ops = collect(&mut g, 1024);
        for w in ops.windows(2) {
            let a = w[0].addr.raw();
            let b = w[1].addr.raw();
            assert!(
                b == a + 8 || b == 0,
                "stream must advance by stride or wrap"
            );
        }
    }

    #[test]
    fn addresses_stay_in_region() {
        for p in [
            PatternSpec::Stream { stride: 8 },
            PatternSpec::TiledStream {
                stride: 8,
                tile_bp: 500,
                repeats: 2,
            },
            PatternSpec::Strided { stride: 320 },
            PatternSpec::Random,
            PatternSpec::PointerChase {
                hot_bp: 2000,
                hot_pct: 85,
            },
            PatternSpec::Hotspot {
                hot_bp: 100,
                hot_pct: 90,
            },
            PatternSpec::PhasedHotspot {
                period: 100,
                hot_bp: 100,
                hot_pct: 90,
            },
            PatternSpec::StreamMix {
                stream_pct: 70,
                stride: 8,
                hot_bp: 1000,
                hot_pct: 80,
            },
        ] {
            let size = 1 << 20;
            let mut g = TraceGen::new(p, 5, 10, 1 << 30, size, 0, SplitMix64::new(3));
            for _ in 0..5000 {
                let op = g.next_op().unwrap();
                let a = op.addr.raw();
                assert!(
                    a >= (1 << 30) && a < (1 << 30) + size,
                    "pattern {p:?} escaped its region: {a:#x}"
                );
            }
        }
    }

    #[test]
    fn tiled_stream_revisits_lines() {
        let size = 1u64 << 20;
        let mut g = gen(
            PatternSpec::TiledStream {
                stride: 64,
                tile_bp: 100, // ~10 KB tiles
                repeats: 3,
            },
            size,
        );
        let ops = collect(&mut g, 3000);
        let mut counts = std::collections::HashMap::new();
        for o in &ops {
            *counts.entry(o.addr.raw() / 64).or_insert(0u32) += 1;
        }
        let revisited = counts.values().filter(|&&c| c >= 3).count();
        assert!(
            revisited > counts.len() / 2,
            "tiles must be re-walked: {revisited}/{}",
            counts.len()
        );
    }

    #[test]
    fn pure_stream_never_revisits_within_footprint() {
        let size = 1u64 << 20;
        let mut g = gen(PatternSpec::Stream { stride: 64 }, size);
        let ops = collect(&mut g, 10_000); // < size/64 ops: no wrap yet
        let mut seen = std::collections::HashSet::new();
        for o in &ops {
            assert!(seen.insert(o.addr.raw()), "stream revisited before wrap");
        }
    }

    #[test]
    fn pointer_chase_is_line_aligned_and_hot_biased() {
        let size = 1u64 << 22;
        let mut g = gen(
            PatternSpec::PointerChase {
                hot_bp: 1000, // 10%
                hot_pct: 85,
            },
            size,
        );
        let ops = collect(&mut g, 20_000);
        let hot_limit = size / 10;
        let mut hot = 0;
        for op in &ops {
            assert_eq!(op.addr.raw() % 64, 0);
            if op.addr.raw() < hot_limit {
                hot += 1;
            }
        }
        let frac = hot as f64 / ops.len() as f64;
        assert!(frac > 0.8, "hot fraction was {frac}");
    }

    #[test]
    fn hotspot_concentrates_references() {
        let size = 1u64 << 22; // 4 MB
        let mut g = gen(
            PatternSpec::Hotspot {
                hot_bp: 100, // 1% of footprint
                hot_pct: 90,
            },
            size,
        );
        let hot_limit = size / 100;
        let ops = collect(&mut g, 20_000);
        let hot = ops.iter().filter(|o| o.addr.raw() < hot_limit).count();
        let frac = hot as f64 / ops.len() as f64;
        assert!(frac > 0.85, "hot fraction was {frac}");
    }

    #[test]
    fn cold_references_form_sequential_runs() {
        let size = 1u64 << 22;
        let mut g = gen(
            PatternSpec::Hotspot {
                hot_bp: 100,
                hot_pct: 0, // everything cold
            },
            size,
        );
        let ops = collect(&mut g, 10_000);
        let sequential = ops
            .windows(2)
            .filter(|w| w[1].addr.raw() == (w[0].addr.raw() + 64) % size)
            .count();
        let frac = sequential as f64 / ops.len() as f64;
        assert!(
            frac > 0.7,
            "cold walker should mostly advance sequentially, got {frac}"
        );
    }

    #[test]
    fn phased_hotspot_moves_its_hot_set() {
        let size = 1u64 << 22;
        let mut g = gen(
            PatternSpec::PhasedHotspot {
                period: 5_000,
                hot_bp: 100,
                hot_pct: 95,
            },
            size,
        );
        let first: Vec<u64> = collect(&mut g, 4_000)
            .iter()
            .map(|o| o.addr.raw())
            .collect();
        let _skip = collect(&mut g, 2_000);
        let second: Vec<u64> = collect(&mut g, 4_000)
            .iter()
            .map(|o| o.addr.raw())
            .collect();
        let median = |mut v: Vec<u64>| {
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert_ne!(
            median(first) / 4096,
            median(second) / 4096,
            "hot set should have relocated between phases"
        );
    }

    #[test]
    fn write_fraction_is_respected() {
        let mut g = TraceGen::new(
            PatternSpec::Random,
            5,
            30,
            0,
            1 << 20,
            0,
            SplitMix64::new(11),
        );
        let ops = collect(&mut g, 20_000);
        let writes = ops.iter().filter(|o| o.kind.is_write()).count();
        let frac = writes as f64 / ops.len() as f64;
        assert!((frac - 0.30).abs() < 0.02, "write fraction was {frac}");
    }

    #[test]
    fn gap_mean_tracks_mem_every() {
        let mut g = TraceGen::new(
            PatternSpec::Random,
            40,
            0,
            0,
            1 << 20,
            0,
            SplitMix64::new(13),
        );
        let ops = collect(&mut g, 50_000);
        let mean_gap: f64 = ops.iter().map(|o| f64::from(o.gap)).sum::<f64>() / ops.len() as f64;
        assert!((mean_gap - 39.0).abs() < 1.5, "mean gap was {mean_gap}");
    }

    #[test]
    fn shared_region_gets_a_slice_of_references() {
        let mut g = TraceGen::new(
            PatternSpec::Random,
            5,
            0,
            1 << 20,   // own region above 1 MB
            1 << 20,   // 1 MB own
            64 * 1024, // 64 KB shared at the bottom
            SplitMix64::new(17),
        );
        let ops = collect(&mut g, 20_000);
        let shared = ops.iter().filter(|o| o.addr.raw() < 64 * 1024).count();
        let frac = shared as f64 / ops.len() as f64;
        assert!((frac - 0.125).abs() < 0.02, "shared fraction was {frac}");
    }

    #[test]
    #[should_panic(expected = "at least 4 KB")]
    fn tiny_region_rejected() {
        let _ = TraceGen::new(PatternSpec::Random, 5, 0, 0, 1024, 0, SplitMix64::new(1));
    }

    #[test]
    fn mem_every_one_means_zero_gaps() {
        let mut g = TraceGen::new(PatternSpec::Random, 1, 0, 0, 1 << 20, 0, SplitMix64::new(1));
        for op in collect(&mut g, 100) {
            assert_eq!(op.gap, 0);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_pattern() -> impl Strategy<Value = PatternSpec> {
        prop_oneof![
            (3u32..10).prop_map(|p| PatternSpec::Stream { stride: 1 << p }),
            ((3u32..10), (50u32..2000), (1u8..4)).prop_map(|(p, t, r)| {
                PatternSpec::TiledStream {
                    stride: 1 << p,
                    tile_bp: t,
                    repeats: r,
                }
            }),
            Just(PatternSpec::Random),
            ((50u32..5000), (0u8..=100)).prop_map(|(h, p)| PatternSpec::PointerChase {
                hot_bp: h,
                hot_pct: p,
            }),
            ((50u32..5000), (0u8..=100)).prop_map(|(h, p)| PatternSpec::Hotspot {
                hot_bp: h,
                hot_pct: p,
            }),
        ]
    }

    proptest! {
        /// Every pattern stays inside its region for any parameters.
        #[test]
        fn any_pattern_stays_in_bounds(
            pattern in arb_pattern(),
            base in (0u64..1u64<<30).prop_map(|b| b & !4095),
            size_kb in 4u64..4096,
            seed in any::<u64>(),
        ) {
            let size = size_kb * 1024;
            let mut g = TraceGen::new(pattern, 5, 20, base, size, 0, SplitMix64::new(seed));
            for _ in 0..500 {
                let op = g.next_op().unwrap();
                prop_assert!(op.addr.raw() >= base && op.addr.raw() < base + size,
                    "{pattern:?} escaped: {:#x}", op.addr.raw());
            }
        }

        /// Generators are deterministic functions of their seed.
        #[test]
        fn generator_determinism(pattern in arb_pattern(), seed in any::<u64>()) {
            let mk = || TraceGen::new(pattern, 7, 25, 0, 1 << 20, 0, SplitMix64::new(seed));
            let (mut a, mut b) = (mk(), mk());
            for _ in 0..200 {
                prop_assert_eq!(a.next_op(), b.next_op());
            }
        }
    }
}
