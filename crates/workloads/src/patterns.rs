//! Access-pattern primitives and the trace generator.

use sim_types::rng::SplitMix64;
use sim_types::{TraceOp, TraceSource, VAddr};

/// The family of synthetic access patterns used to stand in for the paper's
/// benchmarks (see `DESIGN.md` §3).
///
/// Real applications mix *spatial* locality (streams, runs) with *temporal*
/// locality (hot working sets, re-walked tiles); these primitives expose
/// both as explicit knobs. All footprint-relative parameters are expressed
/// in basis points (1 bp = 0.01%) so specs stay valid under scaling.
///
/// Leaf variants carry only scalars; the composite variants own their
/// phase/part lists, so pattern trees can be built at runtime (by the
/// `.scn` scenario compiler and generator) as well as in code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatternSpec {
    /// Dense sequential walk with a small element stride and **no reuse** —
    /// the paper singles out dc.B's "streaming nature ... little potential
    /// for data reuse".
    Stream {
        /// Byte stride between consecutive references.
        stride: u32,
    },
    /// Sequential walk organized in *tiles* that are re-walked `repeats`
    /// times before moving on — the timestep/subdomain reuse of stencil and
    /// grid codes (lbm, sp.D, bt.D, fotonik3d). This is what lets caches
    /// and migration cut FM traffic on streaming codes (Figure 16).
    TiledStream {
        /// Byte stride between consecutive references.
        stride: u32,
        /// Tile size as basis points of the footprint.
        tile_bp: u32,
        /// Number of times each tile is walked (>= 1).
        repeats: u8,
    },
    /// Regular walk with a stride that skips lines — partial spatial
    /// locality (ft.C transposes).
    Strided {
        /// Byte stride between consecutive references.
        stride: u32,
    },
    /// Uniform random 8-byte references over the whole footprint — no
    /// spatial *or* temporal locality at all. Reserved for deepsjeng
    /// ("wide memory footprint and very limited spatial locality"; the
    /// paper notes *no* scheme beats the baseline on it).
    Random,
    /// Random 64-byte-granule jumps concentrated on a hot subset — pointer
    /// chasing over node-sized objects with a warm core (mcf, omnetpp,
    /// ua.D). Poor spatial locality (large cache lines over-fetch), decent
    /// temporal locality (NM capacity pays off).
    PointerChase {
        /// Hot-region size as basis points of the footprint.
        hot_bp: u32,
        /// Percentage of references that go to the hot region.
        hot_pct: u8,
    },
    /// A hot subset absorbs most references; cold references walk short
    /// sequential runs (page-level locality) — the low-MPKI SPEC group.
    Hotspot {
        /// Hot-region size as basis points of the footprint.
        hot_bp: u32,
        /// Percentage of references that go to the hot region.
        hot_pct: u8,
    },
    /// Like [`PatternSpec::Hotspot`] but the hot region relocates every
    /// `period` memory references — working-set shifts (gcc, xz), the case
    /// caches adapt to faster than migration schemes.
    PhasedHotspot {
        /// Memory references between hot-region moves.
        period: u64,
        /// Hot-region size as basis points of the footprint.
        hot_bp: u32,
        /// Percentage of references that go to the hot region.
        hot_pct: u8,
    },
    /// A probabilistic blend: `stream_pct`% sequential walk, the rest
    /// hot-set random gathers — sparse algebra and mixed codes (cg.D,
    /// cactus, cam4, x264).
    StreamMix {
        /// Percentage of references that continue the sequential walk.
        stream_pct: u8,
        /// Byte stride of the sequential component.
        stride: u32,
        /// Hot-region size (basis points) for the gather component.
        hot_bp: u32,
        /// Percentage of gathers that stay in the hot region.
        hot_pct: u8,
    },
    /// Concatenation of sub-patterns with exact per-phase op budgets —
    /// program *phase changes* (hot-set drift, compute/IO alternation)
    /// that single-phase loops never exercise. The phase list cycles
    /// indefinitely: after the last phase's budget is spent the stream
    /// re-enters phase 0 (trace sources are unbounded by contract).
    Phased {
        /// The phases, in execution order. Must be non-empty, each with a
        /// non-zero op budget and a leaf or [`PatternSpec::Mix`] pattern
        /// (a mix phase models tenants entering/leaving at op budgets).
        phases: Vec<Phase>,
    },
    /// Deterministic weighted interleave of 2–4 co-running programs, each
    /// confined to its own disjoint slice of the footprint — multi-program
    /// co-run interference (a bandwidth hog next to a latency-sensitive
    /// hot-set walker). The interleave schedule is a smooth weighted
    /// round-robin fixed at construction, so the op stream is a pure
    /// function of the spec and seed.
    Mix {
        /// The co-running programs. Must be 2–4 parts, each with a leaf
        /// pattern, a non-zero weight, and slices that fit the region.
        parts: Vec<MixPart>,
    },
}

/// One phase of a [`PatternSpec::Phased`] stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Phase {
    /// Pattern driving this phase: a leaf, or a [`PatternSpec::Mix`]
    /// (tenant churn — the set of co-running programs changes when the
    /// phase does).
    pub pattern: PatternSpec,
    /// Memory references generated before the next phase begins. The
    /// boundary is exact: op `sum(budgets so far)` is the last op of the
    /// phase and the very next op comes from the following phase.
    pub ops: u64,
    /// Per-phase intensity override: mean instructions per memory
    /// reference while this phase runs. `None` inherits the workload's
    /// `mem_every` (diurnal schedules alternate quiet/busy phases by
    /// overriding it per phase).
    pub mem_every: Option<u32>,
}

/// One co-running program of a [`PatternSpec::Mix`] stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MixPart {
    /// Leaf pattern of this program.
    pub pattern: PatternSpec,
    /// Mean instructions per memory reference for this program.
    pub mem_every: u32,
    /// Store share of this program's references, in percent.
    pub write_pct: u8,
    /// This program's slice of the footprint, in basis points (the slices
    /// are laid out back-to-back from the region base; each is at least
    /// 4 KB, and together they must fit the region).
    pub span_bp: u32,
    /// Relative share of the interleave: ops per schedule round.
    pub weight: u8,
}

impl PatternSpec {
    /// True for the composite scenario patterns ([`PatternSpec::Phased`],
    /// [`PatternSpec::Mix`]); leaf patterns generate addresses directly.
    pub fn is_composite(&self) -> bool {
        matches!(self, PatternSpec::Phased { .. } | PatternSpec::Mix { .. })
    }

    /// The largest `mem_every` any op of this pattern can be generated
    /// with: `default` for leaf patterns, the max over parts for a mix
    /// (each part has its own), and the recursive max over phases for a
    /// phased pattern (each phase may override the default and may itself
    /// be a mix). Bounds the per-op gap for instruction-accounting
    /// invariants.
    pub fn max_mem_every(&self, default: u32) -> u32 {
        match self {
            PatternSpec::Mix { parts } => parts.iter().map(|p| p.mem_every).fold(default, u32::max),
            PatternSpec::Phased { phases } => phases
                .iter()
                .map(|ph| ph.pattern.max_mem_every(ph.mem_every.unwrap_or(default)))
                .fold(default, u32::max),
            _ => default,
        }
    }
}

/// The smooth weighted-round-robin interleave order for `weights`: a cycle
/// of `sum(weights)` part indices in which each part appears `weight` times,
/// spread as evenly as possible (classic smooth-WRR: add each weight every
/// step, emit the largest accumulator, subtract the total). Deterministic,
/// ties broken by lowest index.
fn wrr_order(weights: &[u8]) -> Vec<u8> {
    let total: i64 = weights.iter().map(|&w| i64::from(w)).sum();
    let mut current = vec![0i64; weights.len()];
    let mut order = Vec::with_capacity(total as usize);
    for _ in 0..total {
        for (c, &w) in current.iter_mut().zip(weights) {
            *c += i64::from(w);
        }
        let best = (0..current.len())
            .max_by_key(|&i| (current[i], std::cmp::Reverse(i)))
            .expect("mix has at least one part");
        current[best] -= total;
        order.push(best as u8);
    }
    order
}

/// A deterministic, unbounded trace generator for one hardware thread.
///
/// Produced by [`Workload::build`](crate::Workload::build); implements
/// [`TraceSource`] for the core model.
#[derive(Clone, Debug)]
pub struct TraceGen {
    pattern: PatternSpec,
    mem_every: u32,
    write_pct: u8,
    /// First byte of this thread's own region.
    base: u64,
    /// Size of this thread's own region in bytes.
    size: u64,
    /// Bytes of the shared region at the bottom of the address space
    /// (0 for private/MP address spaces).
    shared_bytes: u64,
    rng: SplitMix64,
    cursor: u64,
    cold_cursor: u64,
    tile_start: u64,
    tile_walked: u64,
    tile_rep: u8,
    ops: u64,
    hot_base: u64,
    /// Sub-generators of a composite pattern (empty for leaf patterns).
    kids: Vec<TraceGen>,
    /// Which kid produces the next op (leaf patterns generate directly).
    sched: Sched,
}

/// Delegation state of a composite [`TraceGen`].
#[derive(Clone, Debug)]
enum Sched {
    /// Leaf pattern: no delegation.
    Leaf,
    /// Phased: kid `idx` produces the next `left` ops, then the next phase
    /// (cyclically) takes over with a fresh budget from `budgets`.
    Phased {
        idx: usize,
        left: u64,
        budgets: Vec<u64>,
    },
    /// Mix: `order[pos]` names the kid producing the next op.
    Mix { order: Vec<u8>, pos: usize },
}

impl TraceGen {
    /// Creates a generator over `[base, base + size)` with an optional
    /// shared region `[0, shared_bytes)` receiving ~1/8 of references.
    ///
    /// # Panics
    ///
    /// Panics if `size` is smaller than 4 KB (degenerate regions make the
    /// pattern arithmetic meaningless), or if a composite pattern is
    /// structurally invalid: empty/zero-budget phases, phases nesting
    /// another `Phased`, a zero phase `mem_every` override, fewer than 2
    /// or more than 4 mix parts, mix parts that are not leaves, zero mix
    /// weights, or mix slices that do not fit the region.
    pub fn new(
        pattern: PatternSpec,
        mem_every: u32,
        write_pct: u8,
        base: u64,
        size: u64,
        shared_bytes: u64,
        mut rng: SplitMix64,
    ) -> Self {
        assert!(
            size >= 4096,
            "trace region must be at least 4 KB, got {size}"
        );
        let (kids, sched) = match &pattern {
            PatternSpec::Phased { phases } => {
                assert!(!phases.is_empty(), "Phased needs at least one phase");
                let kids = phases
                    .iter()
                    .map(|ph| {
                        assert!(
                            !matches!(ph.pattern, PatternSpec::Phased { .. }),
                            "phases must not nest phased patterns"
                        );
                        assert!(ph.ops > 0, "phase op budgets must be non-zero");
                        assert!(
                            ph.mem_every != Some(0),
                            "phase mem_every overrides must be non-zero"
                        );
                        let fork = rng.fork();
                        TraceGen::new(
                            ph.pattern.clone(),
                            ph.mem_every.unwrap_or(mem_every),
                            write_pct,
                            base,
                            size,
                            shared_bytes,
                            fork,
                        )
                    })
                    .collect();
                (
                    kids,
                    Sched::Phased {
                        idx: 0,
                        left: phases[0].ops,
                        budgets: phases.iter().map(|ph| ph.ops).collect(),
                    },
                )
            }
            PatternSpec::Mix { parts } => {
                assert!(
                    (2..=4).contains(&parts.len()),
                    "Mix needs 2-4 parts, got {}",
                    parts.len()
                );
                // Mix models *private* co-running programs: parts never
                // reference a shared region, so a shared (MT) address
                // space would silently lose its documented ~1/8 shared
                // traffic. Reject it instead of dropping it.
                assert!(
                    shared_bytes == 0,
                    "Mix parts are private programs; use an MP (private \
                     address space) workload kind, got shared_bytes={shared_bytes}"
                );
                let mut offset = 0u64;
                let kids: Vec<TraceGen> = parts
                    .iter()
                    .map(|p| {
                        assert!(!p.pattern.is_composite(), "mix parts must be leaf patterns");
                        assert!(p.weight > 0, "mix part weights must be non-zero");
                        let span = (size * u64::from(p.span_bp) / 10_000).max(4096);
                        let fork = rng.fork();
                        let kid = TraceGen::new(
                            p.pattern.clone(),
                            p.mem_every,
                            p.write_pct,
                            base + offset,
                            span,
                            0,
                            fork,
                        );
                        offset += span;
                        kid
                    })
                    .collect();
                assert!(
                    offset <= size,
                    "mix slices overflow the region: {offset} > {size}"
                );
                let weights: Vec<u8> = parts.iter().map(|p| p.weight).collect();
                (
                    kids,
                    Sched::Mix {
                        order: wrr_order(&weights),
                        pos: 0,
                    },
                )
            }
            _ => (Vec::new(), Sched::Leaf),
        };
        TraceGen {
            pattern,
            mem_every: mem_every.max(1),
            write_pct,
            base,
            size,
            shared_bytes,
            rng,
            cursor: 0,
            cold_cursor: 0,
            tile_start: 0,
            tile_walked: 0,
            tile_rep: 0,
            ops: 0,
            hot_base: 0,
            kids,
            sched,
        }
    }

    /// The pattern this generator follows.
    pub fn pattern(&self) -> &PatternSpec {
        &self.pattern
    }

    /// For a [`PatternSpec::Phased`] generator: the index of the phase the
    /// *next* op will come from. `None` for every other pattern.
    pub fn phase_index(&self) -> Option<usize> {
        match &self.sched {
            Sched::Phased { idx, left, .. } => {
                // A spent budget means the next op re-enters the following
                // phase (cyclically) even though `idx` has not advanced yet.
                if *left == 0 {
                    Some((*idx + 1) % self.kids.len())
                } else {
                    Some(*idx)
                }
            }
            _ => None,
        }
    }

    /// Exactly `x % m`, but the per-op common case (`x` already below `m`
    /// or barely past it) never executes a 64-bit divide — address
    /// wrap-around runs once per generated op, and `div` is the single
    /// most expensive ALU instruction on that path.
    #[inline]
    fn wrap(x: u64, m: u64) -> u64 {
        if x < m {
            x
        } else if x < 2 * m {
            x - m
        } else {
            x % m
        }
    }

    fn gap(&mut self) -> u32 {
        // Uniform around the mean: mean gap = mem_every - 1.
        if self.mem_every <= 1 {
            0
        } else {
            self.rng.gen_range(u64::from(2 * (self.mem_every - 1) + 1)) as u32
        }
    }

    fn region_of_bp(&self, bp: u32) -> u64 {
        (self.size * u64::from(bp) / 10_000).max(4096)
    }

    /// A 64 B-granular reference biased to a hot region of `hot_bp` with
    /// probability `hot_pct`, uniform over the footprint otherwise.
    fn hot_jump(&mut self, hot_bp: u32, hot_pct: u8, hot_base: u64) -> u64 {
        let hot = self.region_of_bp(hot_bp);
        if self.rng.chance(u64::from(hot_pct), 100) {
            Self::wrap(hot_base + self.rng.gen_range(hot / 64) * 64, self.size)
        } else {
            self.rng.gen_range(self.size / 64) * 64
        }
    }

    /// A cold reference with page-level locality: short sequential runs of
    /// 64 B lines with occasional random restarts (mean run ~8 lines).
    fn cold_run(&mut self) -> u64 {
        if self.rng.chance(1, 8) {
            self.cold_cursor = self.rng.gen_range(self.size / 64) * 64;
        } else {
            self.cold_cursor = Self::wrap(self.cold_cursor + 64, self.size);
        }
        self.cold_cursor
    }

    fn own_addr(&mut self) -> u64 {
        let size = self.size;
        match self.pattern {
            PatternSpec::Stream { stride } | PatternSpec::Strided { stride } => {
                self.cursor = Self::wrap(self.cursor + u64::from(stride), size);
                self.cursor
            }
            PatternSpec::TiledStream {
                stride,
                tile_bp,
                repeats,
            } => {
                let tile = self.region_of_bp(tile_bp);
                self.tile_walked += u64::from(stride);
                if self.tile_walked >= tile {
                    self.tile_walked = 0;
                    self.tile_rep += 1;
                    if self.tile_rep >= repeats.max(1) {
                        self.tile_rep = 0;
                        self.tile_start = (self.tile_start + tile) % size;
                    }
                }
                Self::wrap(self.tile_start + self.tile_walked, size)
            }
            PatternSpec::Random => self.rng.gen_range(size / 8) * 8,
            PatternSpec::PointerChase { hot_bp, hot_pct } => self.hot_jump(hot_bp, hot_pct, 0),
            PatternSpec::Hotspot { hot_bp, hot_pct } => {
                let hot = self.region_of_bp(hot_bp);
                if self.rng.chance(u64::from(hot_pct), 100) {
                    self.rng.gen_range(hot / 8) * 8
                } else {
                    self.cold_run()
                }
            }
            PatternSpec::PhasedHotspot {
                period,
                hot_bp,
                hot_pct,
            } => {
                let hot = self.region_of_bp(hot_bp);
                if self.ops > 0 && self.ops.is_multiple_of(period) {
                    // Relocate the hot region to fresh addresses.
                    self.hot_base = (self.hot_base + hot) % size.saturating_sub(hot).max(1);
                }
                if self.rng.chance(u64::from(hot_pct), 100) {
                    (self.hot_base + self.rng.gen_range(hot / 8) * 8) % size
                } else {
                    self.cold_run()
                }
            }
            PatternSpec::StreamMix {
                stream_pct,
                stride,
                hot_bp,
                hot_pct,
            } => {
                if self.rng.chance(u64::from(stream_pct), 100) {
                    self.cursor = Self::wrap(self.cursor + u64::from(stride), size);
                    self.cursor
                } else {
                    self.hot_jump(hot_bp, hot_pct, 0)
                }
            }
            PatternSpec::Phased { .. } | PatternSpec::Mix { .. } => {
                unreachable!("composite patterns delegate to sub-generators")
            }
        }
    }
}

impl TraceSource for TraceGen {
    fn next_op(&mut self) -> Option<TraceOp> {
        // Composite patterns delegate the whole op (address, gap, r/w) to
        // the scheduled sub-generator; only its state advances, so phase
        // and part streams are independent of the interleave around them.
        match &mut self.sched {
            Sched::Leaf => {}
            Sched::Phased { idx, left, budgets } => {
                if *left == 0 {
                    *idx = (*idx + 1) % budgets.len();
                    *left = budgets[*idx];
                }
                *left -= 1;
                let i = *idx;
                return self.kids[i].next_op();
            }
            Sched::Mix { order, pos } => {
                let k = order[*pos] as usize;
                *pos = (*pos + 1) % order.len();
                return self.kids[k].next_op();
            }
        }
        self.ops += 1;
        let gap = self.gap();
        // Shared-region reference (MT workloads only): 1 in 8. Shared
        // OpenMP structures (reduction variables, lookup tables, boundary
        // planes) are compact and hot, so shared traffic concentrates on a
        // core an eighth the size of the shared region.
        let addr = if self.shared_bytes >= 4096 && self.rng.chance(1, 8) {
            self.rng.gen_range((self.shared_bytes / 8).max(4096) / 64) * 64
        } else {
            self.base + self.own_addr()
        };
        let write = self.rng.chance(u64::from(self.write_pct), 100);
        Some(if write {
            TraceOp::store(gap, VAddr::new(addr))
        } else {
            TraceOp::load(gap, VAddr::new(addr))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: PatternSpec, size: u64) -> TraceGen {
        TraceGen::new(pattern, 10, 20, 0, size, 0, SplitMix64::new(7))
    }

    fn collect(g: &mut TraceGen, n: usize) -> Vec<TraceOp> {
        (0..n).map(|_| g.next_op().unwrap()).collect()
    }

    #[test]
    fn stream_is_sequential_with_wraparound() {
        let mut g = gen(PatternSpec::Stream { stride: 8 }, 4096);
        let ops = collect(&mut g, 1024);
        for w in ops.windows(2) {
            let a = w[0].addr.raw();
            let b = w[1].addr.raw();
            assert!(
                b == a + 8 || b == 0,
                "stream must advance by stride or wrap"
            );
        }
    }

    #[test]
    fn addresses_stay_in_region() {
        for p in [
            PatternSpec::Stream { stride: 8 },
            PatternSpec::TiledStream {
                stride: 8,
                tile_bp: 500,
                repeats: 2,
            },
            PatternSpec::Strided { stride: 320 },
            PatternSpec::Random,
            PatternSpec::PointerChase {
                hot_bp: 2000,
                hot_pct: 85,
            },
            PatternSpec::Hotspot {
                hot_bp: 100,
                hot_pct: 90,
            },
            PatternSpec::PhasedHotspot {
                period: 100,
                hot_bp: 100,
                hot_pct: 90,
            },
            PatternSpec::StreamMix {
                stream_pct: 70,
                stride: 8,
                hot_bp: 1000,
                hot_pct: 80,
            },
        ] {
            let size = 1 << 20;
            let mut g = TraceGen::new(p.clone(), 5, 10, 1 << 30, size, 0, SplitMix64::new(3));
            for _ in 0..5000 {
                let op = g.next_op().unwrap();
                let a = op.addr.raw();
                assert!(
                    a >= (1 << 30) && a < (1 << 30) + size,
                    "pattern {p:?} escaped its region: {a:#x}"
                );
            }
        }
    }

    #[test]
    fn tiled_stream_revisits_lines() {
        let size = 1u64 << 20;
        let mut g = gen(
            PatternSpec::TiledStream {
                stride: 64,
                tile_bp: 100, // ~10 KB tiles
                repeats: 3,
            },
            size,
        );
        let ops = collect(&mut g, 3000);
        let mut counts = std::collections::HashMap::new();
        for o in &ops {
            *counts.entry(o.addr.raw() / 64).or_insert(0u32) += 1;
        }
        let revisited = counts.values().filter(|&&c| c >= 3).count();
        assert!(
            revisited > counts.len() / 2,
            "tiles must be re-walked: {revisited}/{}",
            counts.len()
        );
    }

    #[test]
    fn pure_stream_never_revisits_within_footprint() {
        let size = 1u64 << 20;
        let mut g = gen(PatternSpec::Stream { stride: 64 }, size);
        let ops = collect(&mut g, 10_000); // < size/64 ops: no wrap yet
        let mut seen = std::collections::HashSet::new();
        for o in &ops {
            assert!(seen.insert(o.addr.raw()), "stream revisited before wrap");
        }
    }

    #[test]
    fn pointer_chase_is_line_aligned_and_hot_biased() {
        let size = 1u64 << 22;
        let mut g = gen(
            PatternSpec::PointerChase {
                hot_bp: 1000, // 10%
                hot_pct: 85,
            },
            size,
        );
        let ops = collect(&mut g, 20_000);
        let hot_limit = size / 10;
        let mut hot = 0;
        for op in &ops {
            assert_eq!(op.addr.raw() % 64, 0);
            if op.addr.raw() < hot_limit {
                hot += 1;
            }
        }
        let frac = hot as f64 / ops.len() as f64;
        assert!(frac > 0.8, "hot fraction was {frac}");
    }

    #[test]
    fn hotspot_concentrates_references() {
        let size = 1u64 << 22; // 4 MB
        let mut g = gen(
            PatternSpec::Hotspot {
                hot_bp: 100, // 1% of footprint
                hot_pct: 90,
            },
            size,
        );
        let hot_limit = size / 100;
        let ops = collect(&mut g, 20_000);
        let hot = ops.iter().filter(|o| o.addr.raw() < hot_limit).count();
        let frac = hot as f64 / ops.len() as f64;
        assert!(frac > 0.85, "hot fraction was {frac}");
    }

    #[test]
    fn cold_references_form_sequential_runs() {
        let size = 1u64 << 22;
        let mut g = gen(
            PatternSpec::Hotspot {
                hot_bp: 100,
                hot_pct: 0, // everything cold
            },
            size,
        );
        let ops = collect(&mut g, 10_000);
        let sequential = ops
            .windows(2)
            .filter(|w| w[1].addr.raw() == (w[0].addr.raw() + 64) % size)
            .count();
        let frac = sequential as f64 / ops.len() as f64;
        assert!(
            frac > 0.7,
            "cold walker should mostly advance sequentially, got {frac}"
        );
    }

    #[test]
    fn phased_hotspot_moves_its_hot_set() {
        let size = 1u64 << 22;
        let mut g = gen(
            PatternSpec::PhasedHotspot {
                period: 5_000,
                hot_bp: 100,
                hot_pct: 95,
            },
            size,
        );
        let first: Vec<u64> = collect(&mut g, 4_000)
            .iter()
            .map(|o| o.addr.raw())
            .collect();
        let _skip = collect(&mut g, 2_000);
        let second: Vec<u64> = collect(&mut g, 4_000)
            .iter()
            .map(|o| o.addr.raw())
            .collect();
        let median = |mut v: Vec<u64>| {
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert_ne!(
            median(first) / 4096,
            median(second) / 4096,
            "hot set should have relocated between phases"
        );
    }

    #[test]
    fn write_fraction_is_respected() {
        let mut g = TraceGen::new(
            PatternSpec::Random,
            5,
            30,
            0,
            1 << 20,
            0,
            SplitMix64::new(11),
        );
        let ops = collect(&mut g, 20_000);
        let writes = ops.iter().filter(|o| o.kind.is_write()).count();
        let frac = writes as f64 / ops.len() as f64;
        assert!((frac - 0.30).abs() < 0.02, "write fraction was {frac}");
    }

    #[test]
    fn gap_mean_tracks_mem_every() {
        let mut g = TraceGen::new(
            PatternSpec::Random,
            40,
            0,
            0,
            1 << 20,
            0,
            SplitMix64::new(13),
        );
        let ops = collect(&mut g, 50_000);
        let mean_gap: f64 = ops.iter().map(|o| f64::from(o.gap)).sum::<f64>() / ops.len() as f64;
        assert!((mean_gap - 39.0).abs() < 1.5, "mean gap was {mean_gap}");
    }

    #[test]
    fn shared_region_gets_a_slice_of_references() {
        let mut g = TraceGen::new(
            PatternSpec::Random,
            5,
            0,
            1 << 20,   // own region above 1 MB
            1 << 20,   // 1 MB own
            64 * 1024, // 64 KB shared at the bottom
            SplitMix64::new(17),
        );
        let ops = collect(&mut g, 20_000);
        let shared = ops.iter().filter(|o| o.addr.raw() < 64 * 1024).count();
        let frac = shared as f64 / ops.len() as f64;
        assert!((frac - 0.125).abs() < 0.02, "shared fraction was {frac}");
    }

    #[test]
    #[should_panic(expected = "at least 4 KB")]
    fn tiny_region_rejected() {
        let _ = TraceGen::new(PatternSpec::Random, 5, 0, 0, 1024, 0, SplitMix64::new(1));
    }

    #[test]
    fn mem_every_one_means_zero_gaps() {
        let mut g = TraceGen::new(PatternSpec::Random, 1, 0, 0, 1 << 20, 0, SplitMix64::new(1));
        for op in collect(&mut g, 100) {
            assert_eq!(op.gap, 0);
        }
    }

    #[test]
    fn wrr_order_is_smooth_and_exact() {
        assert_eq!(wrr_order(&[2, 1]), vec![0, 1, 0]);
        assert_eq!(wrr_order(&[1, 1]), vec![0, 1]);
        let order = wrr_order(&[3, 1, 2]);
        assert_eq!(order.len(), 6);
        for part in 0..3u8 {
            let n = order.iter().filter(|&&p| p == part).count();
            assert_eq!(n, [3, 1, 2][part as usize], "part {part} share");
        }
        // Smooth: the heaviest part never runs 3 times back-to-back.
        for w in order.windows(3) {
            assert!(!(w[0] == w[1] && w[1] == w[2]), "clumped: {order:?}");
        }
    }

    #[test]
    fn phased_switches_exactly_on_budgets_and_cycles() {
        let phases = vec![
            Phase {
                pattern: PatternSpec::Stream { stride: 64 },
                ops: 100,
                mem_every: None,
            },
            Phase {
                pattern: PatternSpec::Random,
                ops: 40,
                mem_every: None,
            },
        ];
        let mut g = gen(PatternSpec::Phased { phases }, 1 << 20);
        // Two full cycles: ops 0..100 from phase 0, 100..140 from phase 1,
        // 140..240 from phase 0 again, …
        for n in 0..280u64 {
            let expect = if n % 140 < 100 { 0 } else { 1 };
            assert_eq!(
                g.phase_index(),
                Some(expect),
                "op {n} attributed to the wrong phase"
            );
            let _ = g.next_op().unwrap();
        }
    }

    #[test]
    fn phased_stream_phase_is_really_sequential() {
        let phases = vec![
            Phase {
                pattern: PatternSpec::Stream { stride: 8 },
                ops: 50,
                mem_every: None,
            },
            Phase {
                pattern: PatternSpec::Random,
                ops: 50,
                mem_every: None,
            },
        ];
        let mut g = gen(PatternSpec::Phased { phases }, 1 << 20);
        let ops = collect(&mut g, 50);
        for w in ops.windows(2) {
            let (a, b) = (w[0].addr.raw(), w[1].addr.raw());
            assert!(b == a + 8 || b == 0, "phase-0 stream must be sequential");
        }
    }

    #[test]
    fn mix_parts_stay_in_their_slices() {
        let parts = vec![
            MixPart {
                pattern: PatternSpec::Stream { stride: 8 },
                mem_every: 5,
                write_pct: 30,
                span_bp: 5000,
                weight: 2,
            },
            MixPart {
                pattern: PatternSpec::Random,
                mem_every: 50,
                write_pct: 10,
                span_bp: 4000,
                weight: 1,
            },
        ];
        let size = 1u64 << 20;
        let mut g = gen(PatternSpec::Mix { parts }, size);
        let span0 = size * 5000 / 10_000;
        let span1 = size * 4000 / 10_000;
        let order = wrr_order(&[2, 1]);
        for n in 0..3000usize {
            let op = g.next_op().unwrap();
            let a = op.addr.raw();
            match order[n % order.len()] {
                0 => assert!(a < span0, "part 0 escaped its slice: {a:#x}"),
                _ => assert!(
                    (span0..span0 + span1).contains(&a),
                    "part 1 escaped its slice: {a:#x}"
                ),
            }
        }
    }

    #[test]
    #[should_panic(expected = "private programs")]
    fn mix_rejects_shared_address_space() {
        let parts = vec![
            MixPart {
                pattern: PatternSpec::Random,
                mem_every: 5,
                write_pct: 0,
                span_bp: 4000,
                weight: 1,
            },
            MixPart {
                pattern: PatternSpec::Random,
                mem_every: 5,
                write_pct: 0,
                span_bp: 4000,
                weight: 1,
            },
        ];
        let _ = TraceGen::new(
            PatternSpec::Mix { parts },
            5,
            0,
            0,
            1 << 20,
            8192,
            SplitMix64::new(1),
        );
    }

    #[test]
    #[should_panic(expected = "overflow the region")]
    fn oversized_mix_slices_rejected() {
        let parts = vec![
            MixPart {
                pattern: PatternSpec::Random,
                mem_every: 5,
                write_pct: 0,
                span_bp: 9000,
                weight: 1,
            },
            MixPart {
                pattern: PatternSpec::Random,
                mem_every: 5,
                write_pct: 0,
                span_bp: 9000,
                weight: 1,
            },
        ];
        let _ = gen(PatternSpec::Mix { parts }, 1 << 20);
    }

    #[test]
    #[should_panic(expected = "must not nest phased")]
    fn nested_phased_rejected() {
        let inner = vec![Phase {
            pattern: PatternSpec::Random,
            ops: 10,
            mem_every: None,
        }];
        let outer = vec![Phase {
            pattern: PatternSpec::Phased { phases: inner },
            ops: 10,
            mem_every: None,
        }];
        let _ = gen(PatternSpec::Phased { phases: outer }, 1 << 20);
    }

    #[test]
    #[should_panic(expected = "leaf patterns")]
    fn mix_inside_mix_rejected() {
        let inner = vec![
            MixPart {
                pattern: PatternSpec::Random,
                mem_every: 5,
                write_pct: 0,
                span_bp: 2000,
                weight: 1,
            },
            MixPart {
                pattern: PatternSpec::Random,
                mem_every: 5,
                write_pct: 0,
                span_bp: 2000,
                weight: 1,
            },
        ];
        let parts = vec![
            MixPart {
                pattern: PatternSpec::Mix { parts: inner },
                mem_every: 5,
                write_pct: 0,
                span_bp: 4000,
                weight: 1,
            },
            MixPart {
                pattern: PatternSpec::Random,
                mem_every: 5,
                write_pct: 0,
                span_bp: 4000,
                weight: 1,
            },
        ];
        let _ = gen(PatternSpec::Mix { parts }, 1 << 20);
    }

    /// Tenant churn: a phase may be a whole `Mix`, so the set of
    /// co-running programs changes at exact op budgets.
    #[test]
    fn mix_phase_inside_phased_is_allowed_and_confined() {
        let tenants = vec![
            MixPart {
                pattern: PatternSpec::Stream { stride: 8 },
                mem_every: 5,
                write_pct: 30,
                span_bp: 5000,
                weight: 2,
            },
            MixPart {
                pattern: PatternSpec::Random,
                mem_every: 50,
                write_pct: 10,
                span_bp: 4000,
                weight: 1,
            },
        ];
        let phases = vec![
            Phase {
                pattern: PatternSpec::Stream { stride: 64 },
                ops: 100,
                mem_every: None,
            },
            Phase {
                pattern: PatternSpec::Mix { parts: tenants },
                ops: 200,
                mem_every: None,
            },
        ];
        let size = 1u64 << 20;
        let mut g = gen(PatternSpec::Phased { phases }, size);
        for n in 0..600u64 {
            let expect = if n % 300 < 100 { 0 } else { 1 };
            assert_eq!(g.phase_index(), Some(expect), "op {n}");
            let a = g.next_op().unwrap().addr.raw();
            assert!(a < size, "churn op escaped: {a:#x}");
        }
    }

    /// Diurnal schedules: a phase-level `mem_every` override drives that
    /// phase's gaps; `None` inherits the workload default.
    #[test]
    fn phase_mem_every_override_changes_gap_mean() {
        let phases = vec![
            Phase {
                pattern: PatternSpec::Random,
                ops: 5_000,
                mem_every: Some(100),
            },
            Phase {
                pattern: PatternSpec::Random,
                ops: 5_000,
                mem_every: None,
            },
        ];
        let mut g = TraceGen::new(
            PatternSpec::Phased { phases },
            10,
            0,
            0,
            1 << 20,
            0,
            SplitMix64::new(7),
        );
        let busy: Vec<TraceOp> = collect(&mut g, 5_000);
        let quiet: Vec<TraceOp> = collect(&mut g, 5_000);
        let mean =
            |ops: &[TraceOp]| ops.iter().map(|o| f64::from(o.gap)).sum::<f64>() / ops.len() as f64;
        assert!(
            (mean(&busy) - 99.0).abs() < 5.0,
            "override phase mean gap was {}",
            mean(&busy)
        );
        assert!(
            (mean(&quiet) - 9.0).abs() < 1.0,
            "inherit phase mean gap was {}",
            mean(&quiet)
        );
    }

    #[test]
    #[should_panic(expected = "overrides must be non-zero")]
    fn zero_phase_mem_every_override_rejected() {
        let phases = vec![Phase {
            pattern: PatternSpec::Random,
            ops: 10,
            mem_every: Some(0),
        }];
        let _ = gen(PatternSpec::Phased { phases }, 1 << 20);
    }

    #[test]
    fn max_mem_every_covers_mix_parts() {
        let parts = vec![
            MixPart {
                pattern: PatternSpec::Random,
                mem_every: 500,
                write_pct: 0,
                span_bp: 4000,
                weight: 1,
            },
            MixPart {
                pattern: PatternSpec::Random,
                mem_every: 5,
                write_pct: 0,
                span_bp: 4000,
                weight: 1,
            },
        ];
        assert_eq!(
            PatternSpec::Mix {
                parts: parts.clone()
            }
            .max_mem_every(10),
            500
        );
        assert_eq!(PatternSpec::Random.max_mem_every(10), 10);
        let phases = vec![Phase {
            pattern: PatternSpec::Random,
            ops: 10,
            mem_every: None,
        }];
        assert_eq!(PatternSpec::Phased { phases }.max_mem_every(7), 7);
        // Recursive: a phase override above the default, and a mix phase
        // whose parts run hotter still, both raise the bound.
        let phases = vec![
            Phase {
                pattern: PatternSpec::Random,
                ops: 10,
                mem_every: Some(90),
            },
            Phase {
                pattern: PatternSpec::Mix { parts },
                ops: 10,
                mem_every: None,
            },
        ];
        assert_eq!(PatternSpec::Phased { phases }.max_mem_every(7), 500);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_pattern() -> impl Strategy<Value = PatternSpec> {
        prop_oneof![
            (3u32..10).prop_map(|p| PatternSpec::Stream { stride: 1 << p }),
            ((3u32..10), (50u32..2000), (1u8..4)).prop_map(|(p, t, r)| {
                PatternSpec::TiledStream {
                    stride: 1 << p,
                    tile_bp: t,
                    repeats: r,
                }
            }),
            Just(PatternSpec::Random),
            ((50u32..5000), (0u8..=100)).prop_map(|(h, p)| PatternSpec::PointerChase {
                hot_bp: h,
                hot_pct: p,
            }),
            ((50u32..5000), (0u8..=100)).prop_map(|(h, p)| PatternSpec::Hotspot {
                hot_bp: h,
                hot_pct: p,
            }),
        ]
    }

    proptest! {
        /// Every pattern stays inside its region for any parameters.
        #[test]
        fn any_pattern_stays_in_bounds(
            pattern in arb_pattern(),
            base in (0u64..1u64<<30).prop_map(|b| b & !4095),
            size_kb in 4u64..4096,
            seed in any::<u64>(),
        ) {
            let size = size_kb * 1024;
            let mut g = TraceGen::new(pattern.clone(), 5, 20, base, size, 0, SplitMix64::new(seed));
            for _ in 0..500 {
                let op = g.next_op().unwrap();
                prop_assert!(op.addr.raw() >= base && op.addr.raw() < base + size,
                    "{pattern:?} escaped: {:#x}", op.addr.raw());
            }
        }

        /// Generators are deterministic functions of their seed.
        #[test]
        fn generator_determinism(pattern in arb_pattern(), seed in any::<u64>()) {
            let mk = || TraceGen::new(pattern.clone(), 7, 25, 0, 1 << 20, 0, SplitMix64::new(seed));
            let (mut a, mut b) = (mk(), mk());
            for _ in 0..200 {
                prop_assert_eq!(a.next_op(), b.next_op());
            }
        }

        /// Phased streams stay inside the declared region and attribute
        /// every op to the phase its budget dictates — boundaries land
        /// exactly on the per-phase op counts, cycle after cycle.
        #[test]
        fn phased_stays_in_bounds_with_exact_boundaries(
            raw in proptest::collection::vec((arb_pattern(), 1u64..600), 1..4),
            base in (0u64..1u64<<30).prop_map(|b| b & !4095),
            seed in any::<u64>(),
        ) {
            let phases: Vec<Phase> = raw
                .iter()
                .map(|(pattern, ops)| Phase {
                    pattern: pattern.clone(),
                    ops: *ops,
                    mem_every: None,
                })
                .collect();
            let size = 1u64 << 20;
            let mut g = TraceGen::new(
                PatternSpec::Phased { phases: phases.clone() },
                5, 20, base, size, 0, SplitMix64::new(seed),
            );
            for cycle in 0..2 {
                for (i, ph) in phases.iter().enumerate() {
                    for k in 0..ph.ops {
                        prop_assert_eq!(
                            g.phase_index(), Some(i),
                            "cycle {} phase {} op {} misattributed", cycle, i, k
                        );
                        let a = g.next_op().unwrap().addr.raw();
                        prop_assert!(a >= base && a < base + size,
                            "phased escaped: {:#x}", a);
                    }
                }
            }
        }

        /// Every mix op stays inside the slice of the exact part the
        /// deterministic interleave schedules for it.
        #[test]
        fn mix_ops_confined_to_scheduled_part(
            raw in proptest::collection::vec(
                (arb_pattern(), 1u32..300, 0u8..=100, 500u32..2400, 1u8..6), 2..5),
            seed in any::<u64>(),
        ) {
            let parts: Vec<MixPart> = raw
                .iter()
                .map(|(pattern, mem_every, write_pct, span_bp, weight)| MixPart {
                    pattern: pattern.clone(),
                    mem_every: *mem_every,
                    write_pct: *write_pct,
                    span_bp: *span_bp,
                    weight: *weight,
                })
                .collect();
            let size = 1u64 << 20;
            let mut g = TraceGen::new(
                PatternSpec::Mix { parts: parts.clone() },
                5, 20, 0, size, 0, SplitMix64::new(seed),
            );
            // Recompute the slices and schedule the way the constructor
            // does; the generator must agree op for op.
            let mut slices = Vec::new();
            let mut offset = 0u64;
            for p in &parts {
                let span = (size * u64::from(p.span_bp) / 10_000).max(4096);
                slices.push(offset..offset + span);
                offset += span;
            }
            let weights: Vec<u8> = parts.iter().map(|p| p.weight).collect();
            let order = wrr_order(&weights);
            for n in 0..1000usize {
                let a = g.next_op().unwrap().addr.raw();
                let part = order[n % order.len()] as usize;
                prop_assert!(slices[part].contains(&a),
                    "op {} from part {} escaped {:?}: {:#x}", n, part, slices[part], a);
            }
        }

        /// Composite generators are deterministic functions of their seed.
        #[test]
        fn composite_determinism(
            raw in proptest::collection::vec((arb_pattern(), 1u64..200), 1..4),
            spans in proptest::collection::vec((arb_pattern(), 1u32..100, 1u8..6), 2..5),
            seed in any::<u64>(),
        ) {
            let phases: Vec<Phase> = raw
                .iter()
                .map(|(pattern, ops)| Phase {
                    pattern: pattern.clone(),
                    ops: *ops,
                    mem_every: None,
                })
                .collect();
            let parts: Vec<MixPart> = spans
                .iter()
                .map(|(pattern, mem_every, weight)| MixPart {
                    pattern: pattern.clone(),
                    mem_every: *mem_every,
                    write_pct: 25,
                    span_bp: 2000,
                    weight: *weight,
                })
                .collect();
            for spec in [PatternSpec::Phased { phases }, PatternSpec::Mix { parts }] {
                let mk = || TraceGen::new(spec.clone(), 7, 25, 0, 1 << 20, 0, SplitMix64::new(seed));
                let (mut a, mut b) = (mk(), mk());
                for _ in 0..300 {
                    prop_assert_eq!(a.next_op(), b.next_op());
                }
            }
        }
    }
}
