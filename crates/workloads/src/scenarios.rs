//! The scenario catalog: named phased and multi-program workloads.
//!
//! The 30-entry benchmark catalog ([`crate::catalog`]) is single-phase and
//! single-program — every core replays one stationary pattern forever. Real
//! SPEC/NAS mixes are not: programs change phase (gcc's pass structure,
//! xz's compress/decompress alternation) and co-scheduled programs
//! interfere (a streaming bandwidth hog beside a latency-bound pointer
//! chaser). Eviction-time migration's headline claim is exactly that it
//! *adapts* to such dynamics, so the reproduction needs workloads that
//! exercise them.
//!
//! Each [`ScenarioSpec`] wraps an ordinary [`WorkloadSpec`] whose pattern
//! is one of the two composite generators:
//!
//! * [`PatternSpec::Phased`] — leaf patterns concatenated with exact
//!   per-phase op budgets, cycling indefinitely (hot-set drift);
//! * [`PatternSpec::Mix`] — a deterministic weighted interleave of 2–4
//!   leaf programs confined to disjoint slices of the footprint
//!   (co-run interference).
//!
//! Because a scenario *is* a `WorkloadSpec`, the whole experiment
//! machinery — `Workload::build`, `run_one`, `Matrix` — runs scenarios
//! unchanged; `sim::scenario` wires them to the CLI and report tables.

use crate::patterns::{MixPart, PatternSpec, Phase};
use crate::spec::{MpkiClass, PaperRow, WorkloadKind, WorkloadSpec};

use MpkiClass::{High, Low, Medium};
use PatternSpec as P;
use WorkloadKind::{MultiProgrammed as MP, MultiThreaded as MT};

/// One named scenario: a composite workload plus its catalog metadata.
///
/// For `Mix` scenarios the wrapped spec's `mem_every`/`write_pct` are
/// *headline* values only (reports, accounting bounds): generation is
/// driven entirely by each part's own `MixPart::mem_every`/`write_pct`.
/// Tune a mix's intensity in its part list, not in the spec.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioSpec {
    /// One-line description printed by `reproduce scenario --list`.
    pub summary: &'static str,
    /// The workload the simulator runs (its `name`/`class` are the
    /// scenario's name and expected MPKI class).
    pub workload: WorkloadSpec,
}

impl ScenarioSpec {
    /// The scenario's name (shared with the wrapped workload).
    pub fn name(&self) -> &'static str {
        self.workload.name
    }

    /// The scenario's expected MPKI class.
    pub fn class(&self) -> MpkiClass {
        self.workload.class
    }
}

const fn row(mpki: f64, footprint_gb: f64, traffic_gb: f64) -> PaperRow {
    PaperRow {
        mpki,
        footprint_gb,
        traffic_gb,
    }
}

// ---- Phase lists ---------------------------------------------------------
//
// Budgets are in *memory ops*, and a core retires ~`mem_every`
// instructions per op, so a phase's instruction cost is roughly
// `ops * mem_every`. Each list is sized so one full cycle costs
// ~45–160k instructions: every shipped run size — the 200k-instrs/core
// golden digests and CI grid, and the 4M-instrs/core `default_eval` —
// crosses every phase boundary at least once (most several times). A
// budget that exceeds the run's op count would silently degenerate the
// scenario to its first leaf pattern.

/// Stencil tiles → pointer chase → finer tiles: a grid code alternating
/// compute kernels with an irregular graph pass.
static TILE_CHASE_DRIFT: [Phase; 3] = [
    Phase {
        pattern: P::TiledStream {
            stride: 32,
            tile_bp: 400,
            repeats: 2,
        },
        ops: 5_000,
    },
    Phase {
        pattern: P::PointerChase {
            hot_bp: 2000,
            hot_pct: 85,
        },
        ops: 5_000,
    },
    Phase {
        pattern: P::TiledStream {
            stride: 16,
            tile_bp: 400,
            repeats: 2,
        },
        ops: 5_000,
    },
];

/// A warm hot set that abruptly gives way to a cold sequential sweep —
/// the regime where caches adapt faster than migration (gcc, xz).
static HOT_STREAM_DRIFT: [Phase; 2] = [
    Phase {
        pattern: P::Hotspot {
            hot_bp: 1200,
            hot_pct: 85,
        },
        ops: 1_200,
    },
    Phase {
        pattern: P::Stream { stride: 8 },
        ops: 1_200,
    },
];

/// The working set shrinks mid-run: broad tiles, then small re-walked
/// tiles, then a tight hot set (iterative solvers converging).
static TILE_SHRINK: [Phase; 3] = [
    Phase {
        pattern: P::TiledStream {
            stride: 64,
            tile_bp: 800,
            repeats: 2,
        },
        ops: 600,
    },
    Phase {
        pattern: P::TiledStream {
            stride: 64,
            tile_bp: 100,
            repeats: 4,
        },
        ops: 600,
    },
    Phase {
        pattern: P::Hotspot {
            hot_bp: 200,
            hot_pct: 90,
        },
        ops: 600,
    },
];

/// A mostly-quiet resident set with periodic streaming bursts — a
/// low-MPKI service with batch episodes.
static QUIET_BURST: [Phase; 2] = [
    Phase {
        pattern: P::Hotspot {
            hot_bp: 150,
            hot_pct: 97,
        },
        ops: 700,
    },
    Phase {
        pattern: P::StreamMix {
            stream_pct: 60,
            stride: 8,
            hot_bp: 1000,
            hot_pct: 80,
        },
        ops: 200,
    },
];

// ---- Mix part lists ------------------------------------------------------

/// A dense streamer co-running with a pointer chaser (lbm ∥ mcf).
static STREAM_CHASE: [MixPart; 2] = [
    MixPart {
        pattern: P::Stream { stride: 8 },
        mem_every: 6,
        write_pct: 30,
        span_bp: 5000,
        weight: 3,
    },
    MixPart {
        pattern: P::PointerChase {
            hot_bp: 2000,
            hot_pct: 85,
        },
        mem_every: 40,
        write_pct: 15,
        span_bp: 4800,
        weight: 1,
    },
];

/// A latency-sensitive hot-set walker squeezed by a bandwidth hog — the
/// canonical co-run interference victim study.
static BANDWIDTH_VICTIM: [MixPart; 2] = [
    MixPart {
        pattern: P::Hotspot {
            hot_bp: 300,
            hot_pct: 95,
        },
        mem_every: 80,
        write_pct: 20,
        span_bp: 2000,
        weight: 1,
    },
    MixPart {
        pattern: P::TiledStream {
            stride: 16,
            tile_bp: 400,
            repeats: 2,
        },
        mem_every: 12,
        write_pct: 30,
        span_bp: 7800,
        weight: 2,
    },
];

/// Four dissimilar programs sharing the machine: stream, hot set, uniform
/// random, and stencil tiles.
static QUAD_MIX: [MixPart; 4] = [
    MixPart {
        pattern: P::Stream { stride: 8 },
        mem_every: 15,
        write_pct: 30,
        span_bp: 3000,
        weight: 2,
    },
    MixPart {
        pattern: P::Hotspot {
            hot_bp: 1500,
            hot_pct: 75,
        },
        mem_every: 111,
        write_pct: 30,
        span_bp: 2500,
        weight: 1,
    },
    MixPart {
        pattern: P::Random,
        mem_every: 500,
        write_pct: 15,
        span_bp: 2400,
        weight: 1,
    },
    MixPart {
        pattern: P::TiledStream {
            stride: 32,
            tile_bp: 400,
            repeats: 2,
        },
        mem_every: 17,
        write_pct: 30,
        span_bp: 2000,
        weight: 2,
    },
];

/// Two programs that are *both* dynamic: a drifting hot set next to a
/// tiled streamer — the hardest case for eviction-time history.
static DRIFT_DUO: [MixPart; 2] = [
    MixPart {
        pattern: P::PhasedHotspot {
            period: 150_000,
            hot_bp: 200,
            hot_pct: 70,
        },
        mem_every: 14,
        write_pct: 25,
        span_bp: 5000,
        weight: 1,
    },
    MixPart {
        pattern: P::TiledStream {
            stride: 8,
            tile_bp: 400,
            repeats: 2,
        },
        mem_every: 5,
        write_pct: 40,
        span_bp: 4900,
        weight: 1,
    },
];

// ---- The catalog ---------------------------------------------------------

/// All named scenarios, phased first, then mixes, high MPKI before low
/// (mirroring the benchmark catalog's ordering convention).
pub static SCENARIOS: [ScenarioSpec; 8] = [
    ScenarioSpec {
        summary: "stencil tiles -> pointer chase -> finer tiles (phase drift)",
        workload: WorkloadSpec {
            name: "tile-chase-drift",
            kind: MT,
            class: High,
            paper: row(25.0, 4.0, 18.0),
            pattern: P::Phased {
                phases: &TILE_CHASE_DRIFT,
            },
            mem_every: 9,
            write_pct: 30,
        },
    },
    ScenarioSpec {
        summary: "warm hot set abruptly replaced by a cold sweep",
        workload: WorkloadSpec {
            name: "hot-stream-drift",
            kind: MP,
            class: Medium,
            paper: row(8.0, 2.0, 6.0),
            pattern: P::Phased {
                phases: &HOT_STREAM_DRIFT,
            },
            mem_every: 60,
            write_pct: 25,
        },
    },
    ScenarioSpec {
        summary: "working set shrinks: broad tiles -> small tiles -> hot set",
        workload: WorkloadSpec {
            name: "tile-shrink",
            kind: MP,
            class: Medium,
            paper: row(5.0, 1.5, 4.0),
            pattern: P::Phased {
                phases: &TILE_SHRINK,
            },
            mem_every: 90,
            write_pct: 25,
        },
    },
    ScenarioSpec {
        summary: "quiet resident set with periodic streaming bursts",
        workload: WorkloadSpec {
            name: "quiet-burst",
            kind: MP,
            class: Low,
            paper: row(0.9, 0.4, 0.8),
            pattern: P::Phased {
                phases: &QUIET_BURST,
            },
            mem_every: 150,
            write_pct: 25,
        },
    },
    ScenarioSpec {
        summary: "dense streamer co-running with a pointer chaser",
        workload: WorkloadSpec {
            name: "stream-chase",
            kind: MP,
            class: High,
            paper: row(20.0, 3.0, 14.0),
            pattern: P::Mix {
                parts: &STREAM_CHASE,
            },
            mem_every: 6,
            write_pct: 30,
        },
    },
    ScenarioSpec {
        summary: "latency-sensitive hot set beside a bandwidth hog",
        workload: WorkloadSpec {
            name: "bandwidth-victim",
            kind: MP,
            class: Medium,
            paper: row(10.0, 2.5, 7.0),
            pattern: P::Mix {
                parts: &BANDWIDTH_VICTIM,
            },
            mem_every: 12,
            write_pct: 30,
        },
    },
    ScenarioSpec {
        summary: "four dissimilar programs: stream, hot set, random, tiles",
        workload: WorkloadSpec {
            name: "quad-mix",
            kind: MP,
            class: Medium,
            paper: row(6.0, 4.0, 5.0),
            pattern: P::Mix { parts: &QUAD_MIX },
            mem_every: 15,
            write_pct: 30,
        },
    },
    ScenarioSpec {
        summary: "drifting hot set co-running with a tiled streamer",
        workload: WorkloadSpec {
            name: "drift-duo",
            kind: MP,
            class: High,
            paper: row(22.0, 2.0, 12.0),
            pattern: P::Mix { parts: &DRIFT_DUO },
            mem_every: 14,
            write_pct: 30,
        },
    },
];

/// All scenarios in catalog order.
pub fn all() -> &'static [ScenarioSpec] {
    &SCENARIOS
}

/// Looks a scenario up by name (e.g. `"stream-chase"`).
pub fn by_name(name: &str) -> Option<&'static ScenarioSpec> {
    SCENARIOS.iter().find(|s| s.name() == name)
}

/// The workload of scenario `name`, as the `&'static` reference
/// `Matrix`/`run_one` need.
pub fn workload_of(name: &str) -> Option<&'static WorkloadSpec> {
    by_name(name).map(|s| &s.workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use sim_types::TraceSource;

    #[test]
    fn eight_scenarios_named_uniquely() {
        assert_eq!(SCENARIOS.len(), 8);
        let mut names: Vec<_> = SCENARIOS.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn lookups_work() {
        assert!(by_name("tile-chase-drift").is_some());
        assert!(by_name("quad-mix").is_some());
        assert!(by_name("nope").is_none());
        assert_eq!(workload_of("drift-duo").unwrap().name, "drift-duo");
    }

    #[test]
    fn scenario_names_do_not_collide_with_benchmarks() {
        for s in all() {
            assert!(
                crate::catalog::by_name(s.name()).is_none(),
                "{} shadows a benchmark",
                s.name()
            );
        }
    }

    #[test]
    fn classes_are_consistent_with_stated_mpki() {
        for s in all() {
            assert_eq!(
                MpkiClass::of_mpki(s.workload.paper.mpki),
                s.class(),
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn mix_scenarios_are_multi_programmed() {
        // Mix parts are private co-running programs; the generator rejects
        // shared (MT) address spaces, so the catalog must not declare one.
        for s in all() {
            if matches!(s.workload.pattern, P::Mix { .. }) {
                assert_eq!(
                    s.workload.kind,
                    crate::WorkloadKind::MultiProgrammed,
                    "{}",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn every_pattern_is_composite() {
        for s in all() {
            assert!(s.workload.pattern.is_composite(), "{}", s.name());
        }
    }

    #[test]
    fn both_generator_families_are_represented() {
        let phased = all()
            .iter()
            .filter(|s| matches!(s.workload.pattern, P::Phased { .. }))
            .count();
        let mixed = all()
            .iter()
            .filter(|s| matches!(s.workload.pattern, P::Mix { .. }))
            .count();
        assert!(phased >= 2, "need phased scenarios, have {phased}");
        assert!(mixed >= 2, "need mix scenarios, have {mixed}");
        assert_eq!(phased + mixed, all().len());
    }

    #[test]
    fn scenarios_build_and_generate_in_bounds() {
        for s in all() {
            let mut wl = Workload::build(&s.workload, 8, 1024, 11);
            let bound = wl.core_space_bytes(0);
            let total = wl.footprint_bytes();
            for core in 0..8 {
                for _ in 0..2000 {
                    let op = wl.source_mut(core).next_op().unwrap();
                    let limit = if wl.shared_address_space() {
                        total
                    } else {
                        bound
                    };
                    assert!(
                        op.addr.raw() < limit,
                        "{} escaped its region: {:#x}",
                        s.name(),
                        op.addr.raw()
                    );
                }
            }
        }
    }

    #[test]
    fn mix_spans_fit_their_region_at_extreme_scale() {
        // The tightest region a scenario sees in tests: 1/1024 scale, MP,
        // 8 cores. Building is enough — the constructor asserts fit.
        for s in all() {
            let _ = Workload::build(&s.workload, 8, 1024, 1);
        }
    }
}
