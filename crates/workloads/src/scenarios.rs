//! The built-in scenario catalog: named phased and multi-program workloads.
//!
//! The 30-entry benchmark catalog ([`crate::catalog`]) is single-phase and
//! single-program — every core replays one stationary pattern forever. Real
//! SPEC/NAS mixes are not: programs change phase (gcc's pass structure,
//! xz's compress/decompress alternation) and co-scheduled programs
//! interfere (a streaming bandwidth hog beside a latency-bound pointer
//! chaser). Eviction-time migration's headline claim is exactly that it
//! *adapts* to such dynamics, so the reproduction needs workloads that
//! exercise them.
//!
//! Each [`Scenario`] wraps an ordinary [`WorkloadSpec`] whose pattern
//! is one of the two composite generators:
//!
//! * [`PatternSpec::Phased`] — sub-patterns concatenated with exact
//!   per-phase op budgets, cycling indefinitely (hot-set drift);
//! * [`PatternSpec::Mix`] — a deterministic weighted interleave of 2–4
//!   leaf programs confined to disjoint slices of the footprint
//!   (co-run interference).
//!
//! Because a scenario *is* a `WorkloadSpec`, the whole experiment
//! machinery — `Workload::build`, `run_one`, `Matrix` — runs scenarios
//! unchanged; `sim::scenario` wires them to the CLI and report tables.
//!
//! The 8 built-ins here are one [`Catalog`] among several: `.scn` spec
//! files and the seeded generator ([`Catalog::generate`]) produce catalogs
//! of the same type, and everything downstream is catalog-agnostic.

use std::sync::LazyLock;

pub use crate::catalog::{Catalog, Scenario};
use crate::patterns::{MixPart, PatternSpec, Phase};
use crate::spec::{MpkiClass, PaperRow, WorkloadKind, WorkloadSpec};

use MpkiClass::{High, Low, Medium};
use PatternSpec as P;
use WorkloadKind::{MultiProgrammed as MP, MultiThreaded as MT};

const fn row(mpki: f64, footprint_gb: f64, traffic_gb: f64) -> PaperRow {
    PaperRow {
        mpki,
        footprint_gb,
        traffic_gb,
    }
}

fn phase(pattern: PatternSpec, ops: u64) -> Phase {
    Phase {
        pattern,
        ops,
        mem_every: None,
    }
}

// ---- Phase lists ---------------------------------------------------------
//
// Budgets are in *memory ops*, and a core retires ~`mem_every`
// instructions per op, so a phase's instruction cost is roughly
// `ops * mem_every`. Each list is sized so one full cycle costs
// ~45–160k instructions: every shipped run size — the 200k-instrs/core
// golden digests and CI grid, and the 4M-instrs/core `default_eval` —
// crosses every phase boundary at least once (most several times). A
// budget that exceeds the run's op count would silently degenerate the
// scenario to its first leaf pattern.

/// Stencil tiles → pointer chase → finer tiles: a grid code alternating
/// compute kernels with an irregular graph pass.
fn tile_chase_drift() -> Vec<Phase> {
    vec![
        phase(
            P::TiledStream {
                stride: 32,
                tile_bp: 400,
                repeats: 2,
            },
            5_000,
        ),
        phase(
            P::PointerChase {
                hot_bp: 2000,
                hot_pct: 85,
            },
            5_000,
        ),
        phase(
            P::TiledStream {
                stride: 16,
                tile_bp: 400,
                repeats: 2,
            },
            5_000,
        ),
    ]
}

/// A warm hot set that abruptly gives way to a cold sequential sweep —
/// the regime where caches adapt faster than migration (gcc, xz).
fn hot_stream_drift() -> Vec<Phase> {
    vec![
        phase(
            P::Hotspot {
                hot_bp: 1200,
                hot_pct: 85,
            },
            1_200,
        ),
        phase(P::Stream { stride: 8 }, 1_200),
    ]
}

/// The working set shrinks mid-run: broad tiles, then small re-walked
/// tiles, then a tight hot set (iterative solvers converging).
fn tile_shrink() -> Vec<Phase> {
    vec![
        phase(
            P::TiledStream {
                stride: 64,
                tile_bp: 800,
                repeats: 2,
            },
            600,
        ),
        phase(
            P::TiledStream {
                stride: 64,
                tile_bp: 100,
                repeats: 4,
            },
            600,
        ),
        phase(
            P::Hotspot {
                hot_bp: 200,
                hot_pct: 90,
            },
            600,
        ),
    ]
}

/// A mostly-quiet resident set with periodic streaming bursts — a
/// low-MPKI service with batch episodes.
fn quiet_burst() -> Vec<Phase> {
    vec![
        phase(
            P::Hotspot {
                hot_bp: 150,
                hot_pct: 97,
            },
            700,
        ),
        phase(
            P::StreamMix {
                stream_pct: 60,
                stride: 8,
                hot_bp: 1000,
                hot_pct: 80,
            },
            200,
        ),
    ]
}

// ---- Mix part lists ------------------------------------------------------

/// A dense streamer co-running with a pointer chaser (lbm ∥ mcf).
fn stream_chase() -> Vec<MixPart> {
    vec![
        MixPart {
            pattern: P::Stream { stride: 8 },
            mem_every: 6,
            write_pct: 30,
            span_bp: 5000,
            weight: 3,
        },
        MixPart {
            pattern: P::PointerChase {
                hot_bp: 2000,
                hot_pct: 85,
            },
            mem_every: 40,
            write_pct: 15,
            span_bp: 4800,
            weight: 1,
        },
    ]
}

/// A latency-sensitive hot-set walker squeezed by a bandwidth hog — the
/// canonical co-run interference victim study.
fn bandwidth_victim() -> Vec<MixPart> {
    vec![
        MixPart {
            pattern: P::Hotspot {
                hot_bp: 300,
                hot_pct: 95,
            },
            mem_every: 80,
            write_pct: 20,
            span_bp: 2000,
            weight: 1,
        },
        MixPart {
            pattern: P::TiledStream {
                stride: 16,
                tile_bp: 400,
                repeats: 2,
            },
            mem_every: 12,
            write_pct: 30,
            span_bp: 7800,
            weight: 2,
        },
    ]
}

/// Four dissimilar programs sharing the machine: stream, hot set, uniform
/// random, and stencil tiles.
fn quad_mix() -> Vec<MixPart> {
    vec![
        MixPart {
            pattern: P::Stream { stride: 8 },
            mem_every: 15,
            write_pct: 30,
            span_bp: 3000,
            weight: 2,
        },
        MixPart {
            pattern: P::Hotspot {
                hot_bp: 1500,
                hot_pct: 75,
            },
            mem_every: 111,
            write_pct: 30,
            span_bp: 2500,
            weight: 1,
        },
        MixPart {
            pattern: P::Random,
            mem_every: 500,
            write_pct: 15,
            span_bp: 2400,
            weight: 1,
        },
        MixPart {
            pattern: P::TiledStream {
                stride: 32,
                tile_bp: 400,
                repeats: 2,
            },
            mem_every: 17,
            write_pct: 30,
            span_bp: 2000,
            weight: 2,
        },
    ]
}

/// Two programs that are *both* dynamic: a drifting hot set next to a
/// tiled streamer — the hardest case for eviction-time history.
fn drift_duo() -> Vec<MixPart> {
    vec![
        MixPart {
            pattern: P::PhasedHotspot {
                period: 150_000,
                hot_bp: 200,
                hot_pct: 70,
            },
            mem_every: 14,
            write_pct: 25,
            span_bp: 5000,
            weight: 1,
        },
        MixPart {
            pattern: P::TiledStream {
                stride: 8,
                tile_bp: 400,
                repeats: 2,
            },
            mem_every: 5,
            write_pct: 40,
            span_bp: 4900,
            weight: 1,
        },
    ]
}

// ---- The catalog ---------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn scenario(
    name: &str,
    summary: &str,
    kind: WorkloadKind,
    class: MpkiClass,
    paper: PaperRow,
    pattern: PatternSpec,
    mem_every: u32,
    write_pct: u8,
) -> Scenario {
    Scenario {
        summary: summary.to_owned(),
        workload: WorkloadSpec {
            name: name.to_owned(),
            kind,
            class,
            paper,
            pattern,
            mem_every,
            write_pct,
        },
    }
}

/// Builds the 8 built-in scenarios, phased first, then mixes, high MPKI
/// before low (mirroring the benchmark catalog's ordering convention).
fn build_builtin() -> Catalog {
    let mut cat = Catalog::new();
    for s in [
        scenario(
            "tile-chase-drift",
            "stencil tiles -> pointer chase -> finer tiles (phase drift)",
            MT,
            High,
            row(25.0, 4.0, 18.0),
            P::Phased {
                phases: tile_chase_drift(),
            },
            9,
            30,
        ),
        scenario(
            "hot-stream-drift",
            "warm hot set abruptly replaced by a cold sweep",
            MP,
            Medium,
            row(8.0, 2.0, 6.0),
            P::Phased {
                phases: hot_stream_drift(),
            },
            60,
            25,
        ),
        scenario(
            "tile-shrink",
            "working set shrinks: broad tiles -> small tiles -> hot set",
            MP,
            Medium,
            row(5.0, 1.5, 4.0),
            P::Phased {
                phases: tile_shrink(),
            },
            90,
            25,
        ),
        scenario(
            "quiet-burst",
            "quiet resident set with periodic streaming bursts",
            MP,
            Low,
            row(0.9, 0.4, 0.8),
            P::Phased {
                phases: quiet_burst(),
            },
            150,
            25,
        ),
        scenario(
            "stream-chase",
            "dense streamer co-running with a pointer chaser",
            MP,
            High,
            row(20.0, 3.0, 14.0),
            P::Mix {
                parts: stream_chase(),
            },
            6,
            30,
        ),
        scenario(
            "bandwidth-victim",
            "latency-sensitive hot set beside a bandwidth hog",
            MP,
            Medium,
            row(10.0, 2.5, 7.0),
            P::Mix {
                parts: bandwidth_victim(),
            },
            12,
            30,
        ),
        scenario(
            "quad-mix",
            "four dissimilar programs: stream, hot set, random, tiles",
            MP,
            Medium,
            row(6.0, 4.0, 5.0),
            P::Mix { parts: quad_mix() },
            15,
            30,
        ),
        scenario(
            "drift-duo",
            "drifting hot set co-running with a tiled streamer",
            MP,
            High,
            row(22.0, 2.0, 12.0),
            P::Mix { parts: drift_duo() },
            14,
            30,
        ),
    ] {
        cat.push(s).expect("built-in scenario names are unique");
    }
    cat
}

static BUILTIN: LazyLock<Catalog> = LazyLock::new(build_builtin);

/// The built-in 8-scenario catalog.
pub fn builtin() -> &'static Catalog {
    &BUILTIN
}

/// All built-in scenarios in catalog order.
pub fn all() -> &'static [Scenario] {
    BUILTIN.as_slice()
}

/// Looks a built-in scenario up by name (e.g. `"stream-chase"`) through
/// the catalog's name index.
pub fn by_name(name: &str) -> Option<&'static Scenario> {
    BUILTIN.by_name(name)
}

/// The workload of built-in scenario `name`.
pub fn workload_of(name: &str) -> Option<&'static WorkloadSpec> {
    BUILTIN.workload_of(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use sim_types::TraceSource;

    #[test]
    fn eight_scenarios_named_uniquely() {
        assert_eq!(all().len(), 8);
        let mut names: Vec<_> = all().iter().map(|s| s.name().to_owned()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn lookups_work() {
        assert!(by_name("tile-chase-drift").is_some());
        assert!(by_name("quad-mix").is_some());
        assert!(by_name("nope").is_none());
        assert_eq!(workload_of("drift-duo").unwrap().name, "drift-duo");
    }

    #[test]
    fn nearest_suggests_typo_fixes() {
        let cat = builtin();
        assert_eq!(cat.nearest("steam-chase"), Some("stream-chase"));
        assert_eq!(cat.nearest("quad-mx"), Some("quad-mix"));
        assert_eq!(cat.nearest("drift-duo"), Some("drift-duo"));
        assert_eq!(cat.nearest("completely-unrelated"), None);
    }

    #[test]
    fn scenario_names_do_not_collide_with_benchmarks() {
        for s in all() {
            assert!(
                crate::catalog::by_name(s.name()).is_none(),
                "{} shadows a benchmark",
                s.name()
            );
        }
    }

    #[test]
    fn classes_are_consistent_with_stated_mpki() {
        for s in all() {
            assert_eq!(
                MpkiClass::of_mpki(s.workload.paper.mpki),
                s.class(),
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn mix_scenarios_are_multi_programmed() {
        // Mix parts are private co-running programs; the generator rejects
        // shared (MT) address spaces, so the catalog must not declare one.
        for s in all() {
            if matches!(s.workload.pattern, P::Mix { .. }) {
                assert_eq!(
                    s.workload.kind,
                    crate::WorkloadKind::MultiProgrammed,
                    "{}",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn every_pattern_is_composite() {
        for s in all() {
            assert!(s.workload.pattern.is_composite(), "{}", s.name());
        }
    }

    #[test]
    fn both_generator_families_are_represented() {
        let phased = all()
            .iter()
            .filter(|s| matches!(s.workload.pattern, P::Phased { .. }))
            .count();
        let mixed = all()
            .iter()
            .filter(|s| matches!(s.workload.pattern, P::Mix { .. }))
            .count();
        assert!(phased >= 2, "need phased scenarios, have {phased}");
        assert!(mixed >= 2, "need mix scenarios, have {mixed}");
        assert_eq!(phased + mixed, all().len());
    }

    #[test]
    fn duplicate_names_rejected_by_catalog() {
        let mut cat = Catalog::new();
        let s = by_name("quad-mix").unwrap().clone();
        cat.push(s.clone()).unwrap();
        let err = cat.push(s).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        assert!(err.contains("quad-mix"), "{err}");
    }

    #[test]
    fn scenarios_build_and_generate_in_bounds() {
        for s in all() {
            let mut wl = Workload::build(&s.workload, 8, 1024, 11);
            let bound = wl.core_space_bytes(0);
            let total = wl.footprint_bytes();
            for core in 0..8 {
                for _ in 0..2000 {
                    let op = wl.source_mut(core).next_op().unwrap();
                    let limit = if wl.shared_address_space() {
                        total
                    } else {
                        bound
                    };
                    assert!(
                        op.addr.raw() < limit,
                        "{} escaped its region: {:#x}",
                        s.name(),
                        op.addr.raw()
                    );
                }
            }
        }
    }

    #[test]
    fn mix_spans_fit_their_region_at_extreme_scale() {
        // The tightest region a scenario sees in tests: 1/1024 scale, MP,
        // 8 cores. Building is enough — the constructor asserts fit.
        for s in all() {
            let _ = Workload::build(&s.workload, 8, 1024, 1);
        }
    }
}
